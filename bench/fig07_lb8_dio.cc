// Figure 7 of the paper: LB8 workload, disk I/O rate at Node B versus
// transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeLB8(n); });
  bench::PrintFigure(
      "Figure 7 - LB8 Workload: Disk I/O Rate (Node B)",
      "dio/s", points, /*node_index=*/1,
      [](const NodeResult& n) { return n.dio_per_s; },
      [](const model::SiteSolution& s) { return s.dio_per_s; });
  return 0;
}
