// Figure 5 of the paper: LB8 workload, normalized record throughput at
// Node B versus transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeLB8(n); });
  bench::PrintFigure(
      "Figure 5 - LB8 Workload: Record Throughput (Node B)",
      "recs/s", points, /*node_index=*/1,
      [](const NodeResult& n) { return n.records_per_s; },
      [](const model::SiteSolution& s) { return s.records_per_s; });
  return 0;
}
