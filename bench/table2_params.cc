// Table 2 of the paper: the basic per-phase parameter values (ms) used by
// both the analytical model and the testbed, printed from the single source
// of truth in workload::WorkloadSpec.

#include <iostream>

#include "util/table.h"
#include "workload/spec.h"

int main() {
  using namespace carat;
  const workload::WorkloadSpec wl = workload::MakeMB4(8);
  const model::ModelInput input = wl.ToModelInput();

  std::cout << "Table 2 - Basic Parameter Values (milliseconds)\n";
  util::TextTable table;
  table.SetHeader({"Node", "t", "R_U(cpu)", "R_TM(cpu)", "R_DM(cpu)",
                   "R_LR(cpu)", "R_DMIO(cpu)", "R_DMIO(disk)"});
  for (const model::SiteParams& site : input.sites) {
    for (const model::TxnType t :
         {model::TxnType::kLRO, model::TxnType::kLU, model::TxnType::kDROC,
          model::TxnType::kDUC}) {
      const model::ClassParams& c = site.Class(t);
      const char* label = t == model::TxnType::kLRO   ? "LRO"
                          : t == model::TxnType::kLU  ? "LU"
                          : t == model::TxnType::kDROC ? "DRO"
                                                       : "DU";
      table.AddRow({site.name, label, util::TextTable::Num(c.u_cpu_ms, 1),
                    util::TextTable::Num(c.tm_cpu_ms, 1),
                    util::TextTable::Num(c.dm_cpu_ms, 1),
                    util::TextTable::Num(c.lr_cpu_ms, 1),
                    util::TextTable::Num(c.dmio_cpu_ms, 1),
                    util::TextTable::Num(c.dmio_disk_ms, 1)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: U=7.8, TM=8.0 local / 12.0 distributed,\n"
               "DM=5.4 read / 8.6 update, LR=2.2, DMIO-cpu=1.5 read / 2.5\n"
               "update, DMIO-disk=28/84 (Node A) and 40/120 (Node B).\n";
  return 0;
}
