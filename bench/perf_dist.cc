// perf_dist - establishes the distributed testbed's perf trajectory. Spawns
// real carat_sited processes over loopback and measures
//
//   1. cross-check fidelity: a 2-site mb8 run with resident users must drain,
//      pass every site's shadow-copy audit, and land within the calibrated
//      tolerances of the in-process RunTestbed reference (the distributed
//      system and the event simulation execute the same protocol over the
//      same cost tables);
//   2. open-loop serving throughput: the same 2-site mesh with no resident
//      users, driven by the coordinated-omission-free load generator at a
//      fixed arrival schedule. Every scheduled operation must be answered,
//      and the sustained commit rate must clear an absolute floor; p50/p99
//      come from the per-connection histograms merged via
//      rpc::LatencyHistogram::Merge.
//
// Results land in BENCH_dist.json (cwd) so successive PRs can track the
// numbers. Usage: perf_dist [--out FILE] [--sited-bin PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/loadgen.h"
#include "dist/runtime.h"

namespace {

/// The open-loop phase must sustain at least this many committed txn/s.
/// Capacity is bounded by virtual time, not host speed: an mb8 mix
/// transaction costs ~1.2-1.5 s of scaled real time end to end, and 32
/// in-flight slots put the loopback ceiling near 12 txn/s. The floor sits
/// at two-thirds of that so only a real regression (stranded handlers, lost
/// replies, serialization in the mesh) trips it, not CI jitter.
constexpr double kMinSustainedTxnPerS = 8.0;

/// Offered open-loop arrival rate (transactions per real second). Offered
/// above the ~12 txn/s capacity on purpose: the percentiles must show the
/// queueing delay coordinated omission would hide.
constexpr double kOfferedTxnPerS = 30.0;

carat::dist::DistRunOptions BaseOptions(const std::string& sited_bin) {
  carat::dist::DistRunOptions options;
  options.config.workload = "mb8";
  options.config.requests_per_txn = 8;
  options.config.sites = 2;
  options.config.scale = 0.1;
  options.config.seed = 20260808;
  options.warmup_real_ms = 800.0;
  options.measure_real_ms = 2500.0;
  options.sited_bin = sited_bin;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dist.json";
  std::string sited_bin;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--sited-bin" && i + 1 < argc) {
      sited_bin = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_dist [--out FILE] [--sited-bin PATH]\n");
      return 2;
    }
  }
  if (sited_bin.empty()) sited_bin = carat::dist::ResolveSitedBinary();
  if (sited_bin.empty()) {
    std::fprintf(stderr, "FAIL: carat_sited binary not found (build tools/ "
                         "or pass --sited-bin)\n");
    return 1;
  }
  bool ok = true;

  // ---- 1. Cross-check against the in-process reference. --------------------
  carat::dist::DistRunResult check;
  {
    auto options = BaseOptions(sited_bin);
    check = carat::dist::RunDistributed(options);
    if (!check.ok) {
      std::fprintf(stderr, "FAIL: cross-check run: %s\n", check.error.c_str());
      ok = false;
    } else {
      if (!check.all_drained || !check.all_audits_ok) {
        std::fprintf(stderr, "FAIL: cross-check drained=%d audits=%d\n",
                     check.all_drained, check.all_audits_ok);
        ok = false;
      }
      if (!check.checked || !check.within_tolerance) {
        std::fprintf(stderr,
                     "FAIL: cross-check outside tolerance (throughput err "
                     "%.3f, response err %.3f, restart err %.3f)\n",
                     check.throughput_rel_err, check.response_rel_err,
                     check.restart_abs_err);
        ok = false;
      }
    }
  }

  // ---- 2. Open-loop load generation against an empty mesh. -----------------
  carat::dist::DistRunResult serve;
  carat::dist::LoadgenResult load;
  double sustained_txn_per_s = 0.0;
  {
    auto options = BaseOptions(sited_bin);
    options.config.spawn_users = false;
    options.check = false;
    options.during_measure =
        [&](const std::vector<std::string>& endpoints) {
          // Let every site pass its warm-up ResetStats first, so the sites'
          // ext_commits counters see the whole load-generator run.
          carat::dist::RtClock::SleepRealMs(options.warmup_real_ms + 300.0);
          carat::dist::LoadgenOptions lg;
          lg.targets = endpoints;
          lg.connections = 4;
          lg.ops_per_txn = 4;
          lg.type = "mix";
          lg.rate_per_s = kOfferedTxnPerS;
          lg.duration_s = 2.0;
          load = carat::dist::RunLoadgen(lg);
        };
    serve = carat::dist::RunDistributed(options);
    if (!serve.ok || !load.ok) {
      std::fprintf(stderr, "FAIL: open-loop run: %s%s\n", serve.error.c_str(),
                   load.error.c_str());
      ok = false;
    } else {
      if (load.errors != 0 || load.completed != load.scheduled) {
        std::fprintf(stderr,
                     "FAIL: open-loop lost operations: scheduled=%llu "
                     "completed=%llu errors=%llu\n",
                     static_cast<unsigned long long>(load.scheduled),
                     static_cast<unsigned long long>(load.completed),
                     static_cast<unsigned long long>(load.errors));
        ok = false;
      }
      sustained_txn_per_s =
          load.elapsed_s > 0.0
              ? static_cast<double>(load.committed) / load.elapsed_s
              : 0.0;
      if (sustained_txn_per_s < kMinSustainedTxnPerS) {
        std::fprintf(stderr,
                     "FAIL: sustained %.1f txn/s below the %.0f txn/s floor\n",
                     sustained_txn_per_s, kMinSustainedTxnPerS);
        ok = false;
      }
      if (serve.ext_commits != load.committed) {
        std::fprintf(stderr,
                     "FAIL: sites report %llu external commits, load "
                     "generator observed %llu\n",
                     static_cast<unsigned long long>(serve.ext_commits),
                     static_cast<unsigned long long>(load.committed));
        ok = false;
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_dist\",\n"
               "  \"cross_check\": {\n"
               "    \"sites\": 2,\n"
               "    \"workload\": \"mb8\",\n"
               "    \"alpha_rtt_real_ms\": %.4f,\n"
               "    \"alpha_virtual_ms\": %.4f,\n"
               "    \"commits\": %llu,\n"
               "    \"global_deadlocks\": %llu,\n"
               "    \"messages_sent\": %llu,\n"
               "    \"dist_txn_per_s\": %.3f,\n"
               "    \"ref_txn_per_s\": %.3f,\n"
               "    \"dist_response_ms\": %.3f,\n"
               "    \"ref_response_ms\": %.3f,\n"
               "    \"throughput_rel_err\": %.4f,\n"
               "    \"response_rel_err\": %.4f,\n"
               "    \"restart_abs_err\": %.4f,\n"
               "    \"within_tolerance\": %s\n"
               "  },\n"
               "  \"open_loop\": {\n"
               "    \"offered_per_s\": %.1f,\n"
               "    \"scheduled\": %llu,\n"
               "    \"completed\": %llu,\n"
               "    \"committed\": %llu,\n"
               "    \"retries\": %llu,\n"
               "    \"errors\": %llu,\n"
               "    \"elapsed_s\": %.3f,\n"
               "    \"sustained_txn_per_s\": %.1f,\n"
               "    \"floor_txn_per_s\": %.1f,\n"
               "    \"p50_ms\": %.3f,\n"
               "    \"p95_ms\": %.3f,\n"
               "    \"p99_ms\": %.3f,\n"
               "    \"mean_ms\": %.3f\n"
               "  }\n"
               "}\n",
               check.alpha_rtt_real_ms, check.alpha_virtual_ms,
               static_cast<unsigned long long>(check.commits),
               static_cast<unsigned long long>(check.global_deadlocks),
               static_cast<unsigned long long>(check.messages_sent),
               check.dist_txn_per_s, check.ref_txn_per_s,
               check.dist_response_ms, check.ref_response_ms,
               check.throughput_rel_err, check.response_rel_err,
               check.restart_abs_err,
               check.within_tolerance ? "true" : "false", kOfferedTxnPerS,
               static_cast<unsigned long long>(load.scheduled),
               static_cast<unsigned long long>(load.completed),
               static_cast<unsigned long long>(load.committed),
               static_cast<unsigned long long>(load.retries),
               static_cast<unsigned long long>(load.errors), load.elapsed_s,
               sustained_txn_per_s, kMinSustainedTxnPerS, load.p50_ms,
               load.p95_ms, load.p99_ms, load.mean_ms);
  std::fclose(f);

  std::printf("cross-check: %.1f txn/s distributed vs %.1f reference "
              "(throughput err %.1f%%, response err %.1f%%, restart err "
              "%.3f, alpha %.3f ms RTT)\n",
              check.dist_txn_per_s, check.ref_txn_per_s,
              check.throughput_rel_err * 100.0, check.response_rel_err * 100.0,
              check.restart_abs_err, check.alpha_rtt_real_ms);
  std::printf("open-loop: %llu/%llu ops answered, %.1f committed txn/s "
              "sustained (floor %.0f), p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(load.completed),
              static_cast<unsigned long long>(load.scheduled),
              sustained_txn_per_s, kMinSustainedTxnPerS, load.p50_ms,
              load.p99_ms);
  return ok ? 0 : 1;
}
