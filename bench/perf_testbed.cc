// Testbed kernel perf trajectory: events/s of the sharded event kernel at
// shards = 1 (serial reference) versus shards = hardware on a distributed
// 4-node workload with a real communication delay (the conservative sync's
// lookahead). The byte-identity invariant is enforced on every run — a
// speedup that changes results would be a bug, not a win.
//
// Results land in BENCH_testbed.json (cwd) so successive PRs can track the
// trajectory. The >= 1.5x speedup gate only arms on hosts with at least 4
// hardware threads; determinism is enforced everywhere.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "carat/testbed.h"
#include "workload/spec.h"

namespace {

struct RunStats {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  std::string fingerprint;
  bool ok = false;
};

RunStats RunOnce(const carat::model::ModelInput& input, int shards,
                 double measure_ms) {
  carat::TestbedOptions opts;
  opts.seed = 5;
  opts.warmup_ms = 20'000;
  opts.measure_ms = measure_ms;
  opts.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  const carat::TestbedResult result = carat::RunTestbed(input, opts);
  const auto stop = std::chrono::steady_clock::now();
  RunStats stats;
  stats.ok = result.ok && result.database_consistent;
  if (!result.ok) {
    std::fprintf(stderr, "FAIL: shards=%d: %s\n", shards,
                 result.error.c_str());
    return stats;
  }
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.events = result.events;
  stats.events_per_s =
      stats.wall_ms > 0.0 ? 1000.0 * result.events / stats.wall_ms : 0.0;
  stats.fingerprint = carat::TestbedResultFingerprint(result);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_testbed.json";
  double measure_ms = 400'000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--measure-ms") == 0 && i + 1 < argc) {
      measure_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: perf_testbed [--out FILE] [--measure-ms N]\n");
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  auto wl = carat::workload::MakeMB8(8, 4);
  wl.comm_delay_ms = 5.0;  // alpha > 0: the sync's lookahead
  const carat::model::ModelInput input = wl.ToModelInput();

  const RunStats serial = RunOnce(input, /*shards=*/1, measure_ms);
  const RunStats sharded = RunOnce(input, /*shards=*/0, measure_ms);
  if (!serial.ok || !sharded.ok) return 1;

  bool ok = true;
  const bool identical = serial.fingerprint == sharded.fingerprint;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: shards=hw result diverged from the serial run\n");
    ok = false;
  }
  const double speedup =
      sharded.wall_ms > 0.0 ? serial.wall_ms / sharded.wall_ms : 0.0;
  const bool gate_armed = hw >= 4;
  if (gate_armed && speedup < 1.5) {
    std::fprintf(stderr, "FAIL: speedup %.2fx < 1.5x with %u hw threads\n",
                 speedup, hw);
    ok = false;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_testbed\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"workload\": \"mb8 n=8 nodes=4 alpha=5ms\",\n"
               "  \"measure_ms\": %.0f,\n"
               "  \"serial\": {\n"
               "    \"shards\": 1,\n"
               "    \"events\": %llu,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_s\": %.1f\n"
               "  },\n"
               "  \"sharded\": {\n"
               "    \"shards\": \"hardware\",\n"
               "    \"events\": %llu,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_s\": %.1f\n"
               "  },\n"
               "  \"speedup\": %.3f,\n"
               "  \"speedup_gate_armed\": %s,\n"
               "  \"byte_identical\": %s\n"
               "}\n",
               hw, measure_ms,
               static_cast<unsigned long long>(serial.events), serial.wall_ms,
               serial.events_per_s,
               static_cast<unsigned long long>(sharded.events),
               sharded.wall_ms, sharded.events_per_s, speedup,
               gate_armed ? "true" : "false", identical ? "true" : "false");
  std::fclose(f);

  std::printf("serial:  %llu events in %.1f ms (%.0f events/s)\n",
              static_cast<unsigned long long>(serial.events), serial.wall_ms,
              serial.events_per_s);
  std::printf("sharded: %llu events in %.1f ms (%.0f events/s, %.2fx, "
              "hw=%u)\n",
              static_cast<unsigned long long>(sharded.events),
              sharded.wall_ms, sharded.events_per_s, speedup, hw);
  std::printf("byte-identical: %s\n", identical ? "yes" : "NO");
  return ok ? 0 : 1;
}
