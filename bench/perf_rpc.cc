// perf_rpc - establishes the network front-end's perf trajectory. Drives an
// in-process rpc::TcpServer over loopback and measures
//
//   1. cached-query throughput: one pipelined connection re-requesting a
//      cached query; must sustain >= 10k queries/s end to end (parse, key,
//      cache hit, format, socket round trip);
//   2. a 64-client burst: every client pipelines a window of requests; every
//      request must be answered (zero lost responses, zero BUSY — the
//      admission bound is sized above the offered window);
//   3. graceful drain: Shutdown() with requests in flight must answer every
//      admitted request and return.
//
// Results land in BENCH_rpc.json (cwd) so successive PRs can track the
// numbers. Usage: perf_rpc [--jobs N] [--out FILE]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "rpc/client.h"
#include "rpc/tcp_server.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Harness {
  carat::exec::ThreadPool pool;
  carat::serve::SolverService service;
  carat::rpc::TcpServer server;

  Harness(int jobs, std::size_t max_inflight)
      : pool(jobs <= 0 ? 0 : static_cast<std::size_t>(jobs)),
        service(MakeServiceOptions(&pool)),
        server(MakeServerOptions(&service, &pool, max_inflight)) {}

  static carat::serve::SolverService::Options MakeServiceOptions(
      carat::exec::ThreadPool* pool) {
    carat::serve::SolverService::Options o;
    o.pool = pool;
    return o;
  }
  static carat::rpc::TcpServer::Options MakeServerOptions(
      carat::serve::SolverService* service, carat::exec::ThreadPool* pool,
      std::size_t max_inflight) {
    carat::rpc::TcpServer::Options o;
    o.service = service;
    o.pool = pool;
    o.max_inflight = max_inflight;
    return o;
  }

  bool Start() {
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
      return false;
    }
    return true;
  }
};

bool Connect(carat::rpc::Client* client, std::uint16_t port) {
  std::string error;
  if (!client->Connect("127.0.0.1", port, &error, /*recv_timeout_ms=*/60'000)) {
    std::fprintf(stderr, "FAIL: connect: %s\n", error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;
  std::string out_path = "BENCH_rpc.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      if (!carat::util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr, "--jobs: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_rpc [--jobs N] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  bool ok = true;

  // ---- 1. Cached-query throughput on one pipelined connection. -------------
  const int kCachedRequests = 20'000;
  double cached_qps = 0.0, cached_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  {
    Harness h(jobs, /*max_inflight=*/static_cast<std::size_t>(kCachedRequests) + 16);
    if (!h.Start()) return 1;
    carat::rpc::Client client;
    if (!Connect(&client, h.server.port())) return 1;

    std::string response;
    if (!client.Request("warm mb4 8", &response) ||
        response.rfind("warm mb4,8,ok", 0) != 0) {
      std::fprintf(stderr, "FAIL: warmup response '%s'\n", response.c_str());
      return 1;
    }

    const Clock::time_point start = Clock::now();
    std::thread writer([&client] {
      for (int i = 0; i < kCachedRequests; ++i) {
        if (!client.SendLine("q mb4 8")) return;
      }
    });
    int received = 0;
    for (; received < kCachedRequests; ++received) {
      if (!client.ReadLine(&response)) break;
      if (response.rfind("q mb4,8,ok", 0) != 0) break;
    }
    writer.join();
    cached_ms = ElapsedMs(start);
    cached_qps = cached_ms > 0.0 ? kCachedRequests / cached_ms * 1000.0 : 0.0;
    p50_ms = h.server.LatencyPercentileMs(50.0);
    p99_ms = h.server.LatencyPercentileMs(99.0);
    if (received != kCachedRequests) {
      std::fprintf(stderr, "FAIL: cached phase: %d/%d responses\n", received,
                   kCachedRequests);
      ok = false;
    }
    h.server.Shutdown();
  }

  // ---- 2. 64-client burst: every request answered, none rejected. ----------
  const int kClients = 64;
  const int kPerClient = 32;
  std::uint64_t burst_sent = 0, burst_received = 0, burst_busy = 0;
  double burst_ms = 0.0;
  {
    // Admission sized above the offered window: 64 * 32 = 2048 in flight.
    Harness h(jobs, /*max_inflight=*/4096);
    if (!h.Start()) return 1;

    // Pre-solve the query mix so the burst measures the serving path, not
    // five solver fixed points.
    {
      carat::rpc::Client warm;
      if (!Connect(&warm, h.server.port())) return 1;
      for (int n = 4; n <= 20; n += 4) {
        std::string response;
        if (!warm.Request("w mb4 " + std::to_string(n), &response)) return 1;
      }
    }

    std::atomic<std::uint64_t> sent{0}, received{0}, busy{0}, failed{0};
    const std::uint16_t port = h.server.port();
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([c, port, &sent, &received, &busy, &failed] {
        carat::rpc::Client client;
        std::string error;
        if (!client.Connect("127.0.0.1", port, &error, 60'000)) {
          failed.fetch_add(kPerClient);
          return;
        }
        for (int i = 0; i < kPerClient; ++i) {
          const int n = 4 + 4 * ((c + i) % 5);
          client.SendLine("c" + std::to_string(c) + "-" + std::to_string(i) +
                          " mb4 " + std::to_string(n));
          sent.fetch_add(1);
        }
        std::string response;
        for (int i = 0; i < kPerClient; ++i) {
          if (!client.ReadLine(&response)) {
            failed.fetch_add(1);
            continue;
          }
          received.fetch_add(1);
          if (response.find(" BUSY") != std::string::npos) busy.fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    burst_ms = ElapsedMs(start);
    burst_sent = sent.load();
    burst_received = received.load();
    burst_busy = busy.load();
    if (burst_received != burst_sent || failed.load() != 0) {
      std::fprintf(stderr,
                   "FAIL: burst lost responses: sent=%llu received=%llu\n",
                   static_cast<unsigned long long>(burst_sent),
                   static_cast<unsigned long long>(burst_received));
      ok = false;
    }
    if (burst_busy != 0) {
      std::fprintf(stderr, "FAIL: burst saw %llu BUSY under a sized bound\n",
                   static_cast<unsigned long long>(burst_busy));
      ok = false;
    }
    h.server.Shutdown();
  }

  // ---- 3. Graceful drain with requests in flight. --------------------------
  std::uint64_t drain_submitted = 0, drain_answered = 0;
  bool drain_ok = false;
  {
    Harness h(jobs, /*max_inflight=*/64);
    if (!h.Start()) return 1;
    carat::rpc::Client client;
    if (!Connect(&client, h.server.port())) return 1;
    const int kDrainRequests = 12;
    for (int i = 0; i < kDrainRequests; ++i) {
      client.SendLine("d" + std::to_string(i) + " mb4 " +
                      std::to_string(4 + i));
    }
    // Wait until every request is admitted, then drain mid-batch.
    while (h.server.stats().requests_submitted <
           static_cast<std::uint64_t>(kDrainRequests)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    h.server.Shutdown();
    drain_submitted = h.server.stats().requests_submitted;
    std::string response;
    while (client.ReadLine(&response)) ++drain_answered;  // until EOF
    drain_ok = drain_answered == drain_submitted;
    if (!drain_ok) {
      std::fprintf(stderr, "FAIL: drain answered %llu of %llu admitted\n",
                   static_cast<unsigned long long>(drain_answered),
                   static_cast<unsigned long long>(drain_submitted));
      ok = false;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_rpc\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"jobs\": %d,\n"
               "  \"cached_throughput\": {\n"
               "    \"requests\": %d,\n"
               "    \"elapsed_ms\": %.3f,\n"
               "    \"queries_per_s\": %.1f,\n"
               "    \"p50_ms\": %.3f,\n"
               "    \"p99_ms\": %.3f\n"
               "  },\n"
               "  \"burst\": {\n"
               "    \"clients\": %d,\n"
               "    \"per_client\": %d,\n"
               "    \"sent\": %llu,\n"
               "    \"received\": %llu,\n"
               "    \"busy\": %llu,\n"
               "    \"elapsed_ms\": %.3f\n"
               "  },\n"
               "  \"drain\": {\n"
               "    \"submitted\": %llu,\n"
               "    \"answered\": %llu,\n"
               "    \"ok\": %s\n"
               "  }\n"
               "}\n",
               hw, jobs, kCachedRequests, cached_ms, cached_qps, p50_ms,
               p99_ms, kClients, kPerClient,
               static_cast<unsigned long long>(burst_sent),
               static_cast<unsigned long long>(burst_received),
               static_cast<unsigned long long>(burst_busy), burst_ms,
               static_cast<unsigned long long>(drain_submitted),
               static_cast<unsigned long long>(drain_answered),
               drain_ok ? "true" : "false");
  std::fclose(f);

  std::printf("cached: %.0f queries/s over %d pipelined requests "
              "(p50 %.3f ms, p99 %.3f ms)\n",
              cached_qps, kCachedRequests, p50_ms, p99_ms);
  std::printf("burst: %llu/%llu responses across %d clients (%llu BUSY)\n",
              static_cast<unsigned long long>(burst_received),
              static_cast<unsigned long long>(burst_sent), kClients,
              static_cast<unsigned long long>(burst_busy));
  std::printf("drain: %llu/%llu admitted requests answered\n",
              static_cast<unsigned long long>(drain_answered),
              static_cast<unsigned long long>(drain_submitted));

  if (cached_qps < 10'000.0) {
    std::fprintf(stderr, "FAIL: cached throughput %.0f < 10000 queries/s\n",
                 cached_qps);
    ok = false;
  }
  return ok ? 0 : 1;
}
