// perf_rpc - establishes the network front-end's perf trajectory. Drives an
// in-process rpc::TcpServer over loopback and measures
//
//   1. cached-query throughput: one pipelined connection re-requesting a
//      cached query; must sustain >= 10k queries/s end to end (parse, key,
//      cache hit, format, socket round trip);
//   2. multi-reactor fan-in: 8 pipelined connections of cached queries
//      against --reactors 1 and --reactors 4 (text framing), and against
//      --reactors 4 with binary framing (best of 3 runs each). The
//      4-reactor throughput must clear the 10k qps floor the single
//      poll-loop front-end was held to, and — on machines with >= 4
//      hardware threads, where parallel speedup is physically possible —
//      must also be >= the measured 1-reactor baseline;
//   3. a 64-client burst against 4 reactors: every client pipelines a
//      window of requests; every request must be answered (zero lost
//      responses, zero BUSY — the admission bound is sized above the
//      offered window);
//   4. graceful drain with 4 reactors: Shutdown() with requests in flight
//      must answer every admitted request and return.
//
// Results land in BENCH_rpc.json (cwd) so successive PRs can track the
// numbers. Usage: perf_rpc [--jobs N] [--out FILE]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "rpc/client.h"
#include "rpc/tcp_server.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Harness {
  carat::exec::ThreadPool pool;
  carat::serve::SolverService service;
  carat::rpc::TcpServer server;

  Harness(int jobs, std::size_t max_inflight, std::size_t reactors)
      : pool(jobs <= 0 ? 0 : static_cast<std::size_t>(jobs)),
        service(MakeServiceOptions(&pool)),
        server(MakeServerOptions(&service, &pool, max_inflight, reactors)) {}

  static carat::serve::SolverService::Options MakeServiceOptions(
      carat::exec::ThreadPool* pool) {
    carat::serve::SolverService::Options o;
    o.pool = pool;
    return o;
  }
  static carat::rpc::TcpServer::Options MakeServerOptions(
      carat::serve::SolverService* service, carat::exec::ThreadPool* pool,
      std::size_t max_inflight, std::size_t reactors) {
    carat::rpc::TcpServer::Options o;
    o.service = service;
    o.pool = pool;
    o.max_inflight = max_inflight;
    o.reactors = reactors;
    return o;
  }

  bool Start() {
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
      return false;
    }
    return true;
  }
};

bool Connect(carat::rpc::Client* client, std::uint16_t port,
             carat::rpc::FramingKind framing = carat::rpc::FramingKind::kText) {
  carat::rpc::Client::ConnectOptions options;
  options.recv_timeout_ms = 60'000;
  options.connect_timeout_ms = 10'000;
  options.framing = framing;
  std::string error;
  if (!client->Connect("127.0.0.1", port, &error, options)) {
    std::fprintf(stderr, "FAIL: connect: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// 8 pipelined connections of cached "mb4 8" queries; returns aggregate
/// queries/s, or a negative value on any lost/garbled response. Binary ids
/// must be decimal, so requests are numbered either way.
double RunFanIn(int jobs, std::size_t reactors,
                carat::rpc::FramingKind framing, int connections,
                int per_connection) {
  const std::size_t window =
      static_cast<std::size_t>(connections) * per_connection;
  Harness h(jobs, /*max_inflight=*/window + 64, reactors);
  if (!h.Start()) return -1.0;
  {
    carat::rpc::Client warm;
    std::string response;
    if (!Connect(&warm, h.server.port()) ||
        !warm.Request("0 mb4 8", &response) ||
        response.rfind("0 mb4,8,ok", 0) != 0) {
      std::fprintf(stderr, "FAIL: fan-in warmup '%s'\n", response.c_str());
      return -1.0;
    }
  }
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> failed{false};
  const std::uint16_t port = h.server.port();
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([c, port, per_connection, framing, &answered,
                          &failed] {
      carat::rpc::Client client;
      if (!Connect(&client, port, framing)) {
        failed.store(true);
        return;
      }
      std::thread writer([&client, c, per_connection] {
        for (int i = 0; i < per_connection; ++i) {
          const std::uint64_t id =
              static_cast<std::uint64_t>(c) * 1'000'000 + i + 1;
          if (!client.SendLine(std::to_string(id) + " mb4 8")) return;
        }
      });
      std::string response;
      for (int i = 0; i < per_connection; ++i) {
        if (!client.ReadLine(&response) ||
            response.find(" mb4,8,ok") == std::string::npos) {
          failed.store(true);
          break;
        }
        answered.fetch_add(1);
      }
      writer.join();
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_ms = ElapsedMs(start);
  h.server.Shutdown();
  if (failed.load() || answered.load() != window) {
    std::fprintf(stderr, "FAIL: fan-in answered %llu of %zu\n",
                 static_cast<unsigned long long>(answered.load()), window);
    return -1.0;
  }
  return elapsed_ms > 0.0 ? static_cast<double>(window) / elapsed_ms * 1000.0
                          : 0.0;
}

double BestOf(int runs, int jobs, std::size_t reactors,
              carat::rpc::FramingKind framing, int connections,
              int per_connection) {
  double best = -1.0;
  for (int r = 0; r < runs; ++r) {
    const double qps =
        RunFanIn(jobs, reactors, framing, connections, per_connection);
    if (qps < 0.0) return -1.0;
    best = std::max(best, qps);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;
  std::string out_path = "BENCH_rpc.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      if (!carat::util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr, "--jobs: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_rpc [--jobs N] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  bool ok = true;

  // ---- 1. Cached-query throughput on one pipelined connection. -------------
  const int kCachedRequests = 20'000;
  double cached_qps = 0.0, cached_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  {
    Harness h(jobs,
              /*max_inflight=*/static_cast<std::size_t>(kCachedRequests) + 16,
              /*reactors=*/1);
    if (!h.Start()) return 1;
    carat::rpc::Client client;
    if (!Connect(&client, h.server.port())) return 1;

    std::string response;
    if (!client.Request("warm mb4 8", &response) ||
        response.rfind("warm mb4,8,ok", 0) != 0) {
      std::fprintf(stderr, "FAIL: warmup response '%s'\n", response.c_str());
      return 1;
    }

    const Clock::time_point start = Clock::now();
    std::thread writer([&client] {
      for (int i = 0; i < kCachedRequests; ++i) {
        if (!client.SendLine("q mb4 8")) return;
      }
    });
    int received = 0;
    for (; received < kCachedRequests; ++received) {
      if (!client.ReadLine(&response)) break;
      if (response.rfind("q mb4,8,ok", 0) != 0) break;
    }
    writer.join();
    cached_ms = ElapsedMs(start);
    cached_qps = cached_ms > 0.0 ? kCachedRequests / cached_ms * 1000.0 : 0.0;
    p50_ms = h.server.LatencyPercentileMs(50.0);
    p99_ms = h.server.LatencyPercentileMs(99.0);
    if (received != kCachedRequests) {
      std::fprintf(stderr, "FAIL: cached phase: %d/%d responses\n", received,
                   kCachedRequests);
      ok = false;
    }
    h.server.Shutdown();
  }

  // ---- 2. Multi-reactor fan-in: 1 vs 4 reactors, text and binary. ----------
  const int kFanInConnections = 8;
  const int kFanInPerConnection = 2'500;
  const int kFanInRuns = 3;
  double fanin_r1_qps = BestOf(kFanInRuns, jobs, /*reactors=*/1,
                               carat::rpc::FramingKind::kText,
                               kFanInConnections, kFanInPerConnection);
  double fanin_r4_qps = BestOf(kFanInRuns, jobs, /*reactors=*/4,
                               carat::rpc::FramingKind::kText,
                               kFanInConnections, kFanInPerConnection);
  double fanin_r4_binary_qps = BestOf(kFanInRuns, jobs, /*reactors=*/4,
                                      carat::rpc::FramingKind::kBinary,
                                      kFanInConnections, kFanInPerConnection);
  if (fanin_r1_qps < 0.0 || fanin_r4_qps < 0.0 || fanin_r4_binary_qps < 0.0) {
    ok = false;
  } else if (fanin_r4_qps < 10'000.0) {
    // The absolute floor the single poll-loop front-end was held to.
    std::fprintf(stderr,
                 "FAIL: 4-reactor fan-in %.0f qps below the 10000 qps "
                 "single-poll baseline floor\n",
                 fanin_r4_qps);
    ok = false;
  } else if (hw >= 4 && fanin_r4_qps < fanin_r1_qps) {
    // The parallel-speedup claim only holds where 4 reactor threads can
    // actually run in parallel; on smaller machines sharding is pure
    // scheduling overhead and only the absolute floor applies.
    std::fprintf(stderr,
                 "FAIL: 4-reactor fan-in %.0f qps below the 1-reactor "
                 "baseline %.0f qps\n",
                 fanin_r4_qps, fanin_r1_qps);
    ok = false;
  }

  // ---- 3. 64-client burst on 4 reactors: every request answered. -----------
  const int kClients = 64;
  const int kPerClient = 32;
  std::uint64_t burst_sent = 0, burst_received = 0, burst_busy = 0;
  double burst_ms = 0.0;
  {
    // Admission sized above the offered window: 64 * 32 = 2048 in flight.
    Harness h(jobs, /*max_inflight=*/4096, /*reactors=*/4);
    if (!h.Start()) return 1;

    // Pre-solve the query mix so the burst measures the serving path, not
    // five solver fixed points.
    {
      carat::rpc::Client warm;
      if (!Connect(&warm, h.server.port())) return 1;
      for (int n = 4; n <= 20; n += 4) {
        std::string response;
        if (!warm.Request("w mb4 " + std::to_string(n), &response)) return 1;
      }
    }

    std::atomic<std::uint64_t> sent{0}, received{0}, busy{0}, failed{0};
    const std::uint16_t port = h.server.port();
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      // Odd-numbered clients speak binary framing, even text: the burst
      // exercises both wire formats against the same sharded server.
      const carat::rpc::FramingKind framing =
          (c % 2) != 0 ? carat::rpc::FramingKind::kBinary
                       : carat::rpc::FramingKind::kText;
      clients.emplace_back([c, port, framing, &sent, &received, &busy,
                            &failed] {
        carat::rpc::Client client;
        if (!Connect(&client, port, framing)) {
          failed.fetch_add(kPerClient);
          return;
        }
        for (int i = 0; i < kPerClient; ++i) {
          const int n = 4 + 4 * ((c + i) % 5);
          const std::uint64_t id =
              static_cast<std::uint64_t>(c) * 1'000 + i + 1;
          client.SendLine(std::to_string(id) + " mb4 " + std::to_string(n));
          sent.fetch_add(1);
        }
        std::string response;
        for (int i = 0; i < kPerClient; ++i) {
          if (!client.ReadLine(&response)) {
            failed.fetch_add(1);
            continue;
          }
          received.fetch_add(1);
          if (response.find(" BUSY") != std::string::npos) busy.fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    burst_ms = ElapsedMs(start);
    burst_sent = sent.load();
    burst_received = received.load();
    burst_busy = busy.load();
    if (burst_received != burst_sent || failed.load() != 0) {
      std::fprintf(stderr,
                   "FAIL: burst lost responses: sent=%llu received=%llu\n",
                   static_cast<unsigned long long>(burst_sent),
                   static_cast<unsigned long long>(burst_received));
      ok = false;
    }
    if (burst_busy != 0) {
      std::fprintf(stderr, "FAIL: burst saw %llu BUSY under a sized bound\n",
                   static_cast<unsigned long long>(burst_busy));
      ok = false;
    }
    h.server.Shutdown();
  }

  // ---- 4. Graceful drain with requests in flight, 4 reactors. --------------
  std::uint64_t drain_submitted = 0, drain_answered = 0;
  bool drain_ok = false;
  {
    Harness h(jobs, /*max_inflight=*/64, /*reactors=*/4);
    if (!h.Start()) return 1;
    carat::rpc::Client client;
    if (!Connect(&client, h.server.port())) return 1;
    const int kDrainRequests = 12;
    for (int i = 0; i < kDrainRequests; ++i) {
      client.SendLine("d" + std::to_string(i) + " mb4 " +
                      std::to_string(4 + i));
    }
    // Wait until every request is admitted, then drain mid-batch.
    while (h.server.stats().requests_submitted <
           static_cast<std::uint64_t>(kDrainRequests)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    h.server.Shutdown();
    drain_submitted = h.server.stats().requests_submitted;
    std::string response;
    while (client.ReadLine(&response)) ++drain_answered;  // until EOF
    drain_ok = drain_answered == drain_submitted;
    if (!drain_ok) {
      std::fprintf(stderr, "FAIL: drain answered %llu of %llu admitted\n",
                   static_cast<unsigned long long>(drain_answered),
                   static_cast<unsigned long long>(drain_submitted));
      ok = false;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_rpc\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"jobs\": %d,\n"
               "  \"cached_throughput\": {\n"
               "    \"requests\": %d,\n"
               "    \"elapsed_ms\": %.3f,\n"
               "    \"queries_per_s\": %.1f,\n"
               "    \"p50_ms\": %.3f,\n"
               "    \"p99_ms\": %.3f\n"
               "  },\n"
               "  \"fan_in\": {\n"
               "    \"connections\": %d,\n"
               "    \"per_connection\": %d,\n"
               "    \"runs\": %d,\n"
               "    \"reactors1_text_qps\": %.1f,\n"
               "    \"reactors4_text_qps\": %.1f,\n"
               "    \"reactors4_binary_qps\": %.1f\n"
               "  },\n"
               "  \"burst\": {\n"
               "    \"reactors\": 4,\n"
               "    \"clients\": %d,\n"
               "    \"per_client\": %d,\n"
               "    \"sent\": %llu,\n"
               "    \"received\": %llu,\n"
               "    \"busy\": %llu,\n"
               "    \"elapsed_ms\": %.3f\n"
               "  },\n"
               "  \"drain\": {\n"
               "    \"reactors\": 4,\n"
               "    \"submitted\": %llu,\n"
               "    \"answered\": %llu,\n"
               "    \"ok\": %s\n"
               "  }\n"
               "}\n",
               hw, jobs, kCachedRequests, cached_ms, cached_qps, p50_ms,
               p99_ms, kFanInConnections, kFanInPerConnection, kFanInRuns,
               fanin_r1_qps, fanin_r4_qps, fanin_r4_binary_qps, kClients,
               kPerClient, static_cast<unsigned long long>(burst_sent),
               static_cast<unsigned long long>(burst_received),
               static_cast<unsigned long long>(burst_busy), burst_ms,
               static_cast<unsigned long long>(drain_submitted),
               static_cast<unsigned long long>(drain_answered),
               drain_ok ? "true" : "false");
  std::fclose(f);

  std::printf("cached: %.0f queries/s over %d pipelined requests "
              "(p50 %.3f ms, p99 %.3f ms)\n",
              cached_qps, kCachedRequests, p50_ms, p99_ms);
  std::printf("fan-in: r1 text %.0f qps, r4 text %.0f qps, r4 binary "
              "%.0f qps (best of %d)\n",
              fanin_r1_qps, fanin_r4_qps, fanin_r4_binary_qps, kFanInRuns);
  std::printf("burst: %llu/%llu responses across %d clients (%llu BUSY)\n",
              static_cast<unsigned long long>(burst_received),
              static_cast<unsigned long long>(burst_sent), kClients,
              static_cast<unsigned long long>(burst_busy));
  std::printf("drain: %llu/%llu admitted requests answered\n",
              static_cast<unsigned long long>(drain_answered),
              static_cast<unsigned long long>(drain_submitted));

  if (cached_qps < 10'000.0) {
    std::fprintf(stderr, "FAIL: cached throughput %.0f < 10000 queries/s\n",
                 cached_qps);
    ok = false;
  }
  return ok ? 0 : 1;
}
