// Figure 6 of the paper: LB8 workload, total CPU utilization at Node B
// versus transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeLB8(n); });
  bench::PrintFigure(
      "Figure 6 - LB8 Workload: CPU Utilization (Node B)",
      "cpu", points, /*node_index=*/1,
      [](const NodeResult& n) { return n.cpu_utilization; },
      [](const model::SiteSolution& s) { return s.cpu_utilization; });
  return 0;
}
