// Ablation: exact MVA vs the Schweitzer-Bard approximation inside the model
// solver, and the solver's sensitivity to its damping factor.

#include <iostream>

#include "model/solver.h"
#include "util/table.h"
#include "workload/spec.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - exact MVA vs Schweitzer-Bard in the model (MB8)\n";
  util::TextTable table;
  table.SetHeader({"n", "solver", "XPUT", "CPU(A)", "DIO(A)", "iterations"});
  for (const int n : {4, 8, 12, 16, 20}) {
    const model::ModelInput input = workload::MakeMB8(n).ToModelInput();
    for (const bool exact : {true, false}) {
      model::SolverOptions opts;
      opts.use_exact_mva = exact;
      const model::ModelSolution sol =
          model::CaratModel(input).Solve(opts);
      table.AddRow({std::to_string(n), exact ? "exact" : "schweitzer",
                    util::TextTable::Num(sol.TotalTxnPerSec()),
                    util::TextTable::Num(sol.sites[0].cpu_utilization),
                    util::TextTable::Num(sol.sites[0].dio_per_s, 1),
                    std::to_string(sol.iterations)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);

  std::cout << "Damping sensitivity (MB8 n=12)\n";
  util::TextTable t2;
  t2.SetHeader({"damping", "XPUT", "iterations", "converged"});
  const model::ModelInput input = workload::MakeMB8(12).ToModelInput();
  for (const double damping : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    model::SolverOptions opts;
    opts.damping = damping;
    const model::ModelSolution sol = model::CaratModel(input).Solve(opts);
    t2.AddRow({util::TextTable::Num(damping, 1),
               util::TextTable::Num(sol.TotalTxnPerSec()),
               std::to_string(sol.iterations),
               sol.converged ? "yes" : "no"});
  }
  t2.Print(std::cout);
  return 0;
}
