// Ablation: shared database+log disk (the paper's forced configuration,
// which it calls out as something that "would not be done in practice")
// versus a separate log disk. Quantifies how much the single-disk testbed
// constrained the published numbers.

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - shared DB+log disk vs separate log disk (LB8)\n";
  util::TextTable table;
  table.SetHeader({"n", "config", "sim XPUT", "sim DIO", "model XPUT",
                   "model DIO", "log-disk util"});
  for (const int n : bench::kPaperSweep) {
    for (const bool split : {false, true}) {
      workload::WorkloadSpec wl = workload::MakeLB8(n);
      wl.separate_log_disk = split;
      const model::ModelInput input = wl.ToModelInput();
      const model::ModelSolution m = model::CaratModel(input).Solve();
      TestbedOptions opts;
      opts.warmup_ms = 100'000;
      opts.measure_ms = 1'000'000;
      const TestbedResult s = RunTestbed(input, opts);
      table.AddRow(
          {std::to_string(n), split ? "separate" : "shared",
           util::TextTable::Num(s.TotalTxnPerSec()),
           util::TextTable::Num(s.nodes[0].dio_per_s + s.nodes[1].dio_per_s, 1),
           util::TextTable::Num(m.TotalTxnPerSec()),
           util::TextTable::Num(m.sites[0].dio_per_s + m.sites[1].dio_per_s, 1),
           util::TextTable::Num(s.nodes[0].log_disk_utilization)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
