// Table 4 of the paper: UB6 workload, model vs measurement for TR-XPUT,
// Total-CPU and Total-DIO at both nodes over the n sweep, with the paper's
// published values as reference columns.

#include "repro_common.h"

int main() {
  using namespace carat;
  using bench::PaperRow;
  // Paper Table 4 (UB6).
  const std::vector<PaperRow> paper = {
      {4, 0, 0.99, 0.44, 29.6, 1.13, 0.51, 35.1},
      {4, 1, 0.70, 0.33, 20.9, 0.81, 0.39, 24.9},
      {8, 0, 0.53, 0.38, 30.9, 0.56, 0.44, 33.7},
      {8, 1, 0.39, 0.30, 23.2, 0.42, 0.34, 24.6},
      {12, 0, 0.27, 0.31, 28.2, 0.32, 0.35, 30.2},
      {12, 1, 0.21, 0.25, 22.7, 0.24, 0.28, 23.1},
      {16, 0, 0.15, 0.27, 27.0, 0.17, 0.28, 27.9},
      {16, 1, 0.14, 0.23, 22.0, 0.14, 0.23, 21.8},
      {20, 0, 0.10, 0.25, 24.9, 0.10, 0.26, 30.2},
      {20, 1, 0.08, 0.22, 21.3, 0.08, 0.21, 22.8},
  };
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeUB6(n); });
  bench::PrintSummaryTable(
      "Table 4 - Model vs Measurement Results (UB6)", points, paper);
  return 0;
}
