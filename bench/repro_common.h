// Shared harness for the paper-reproduction benches (Figures 5-10 and
// Tables 3-5). Each bench sweeps the transaction size n, runs both the
// analytical model ("Model") and the simulated testbed ("Measurement"), and
// prints rows in the style of the paper.

#ifndef CARAT_BENCH_REPRO_COMMON_H_
#define CARAT_BENCH_REPRO_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "carat/testbed.h"
#include "model/solver.h"
#include "workload/spec.h"

namespace carat::bench {

/// Transaction sizes used throughout the paper's evaluation.
inline const std::vector<int> kPaperSweep = {4, 8, 12, 16, 20};

struct SweepPoint {
  int n = 0;
  model::ModelSolution model;
  TestbedResult sim;
};

/// Runs model + testbed for each n. `make` builds the workload for a given
/// transaction size (it may be called concurrently and must be pure).
///
/// The model side runs as one batch through serve::SolverService (with warm
/// starting off, so every solve is cold); the testbed side fans out over the
/// same pool. `jobs` is the number of worker threads: 0 means
/// hardware_concurrency. Every point is solved/simulated from its own seed,
/// so the results — and the order of the returned vector — are identical
/// for any `jobs` value.
std::vector<SweepPoint> RunSweep(
    const std::function<workload::WorkloadSpec(int)>& make,
    const std::vector<int>& sizes = kPaperSweep,
    double measure_ms = 2'000'000, std::uint64_t seed = 1, int jobs = 0);

/// Per-(point, node) metric extractor for figure-style series.
using SimMetric = std::function<double(const NodeResult&)>;
using ModelMetric = std::function<double(const model::SiteSolution&)>;

/// Prints a figure-style series: one row per n with Measurement and Model
/// columns for the selected nodes (node_index = -1 means every node).
void PrintFigure(const std::string& title, const std::string& metric_name,
                 const std::vector<SweepPoint>& points, int node_index,
                 const SimMetric& sim_metric, const ModelMetric& model_metric);

/// A published reference row of Tables 3/4: measurement and model triplets
/// (TR-XPUT, Total-CPU, Total-DIO) for one (n, node).
struct PaperRow {
  int n;
  int node;  // 0 = A, 1 = B
  double meas_xput, meas_cpu, meas_dio;
  double model_xput, model_cpu, model_dio;
};

/// Prints a Table 3/4-style comparison: our measurement and model columns
/// next to the paper's published values.
void PrintSummaryTable(const std::string& title,
                       const std::vector<SweepPoint>& points,
                       const std::vector<PaperRow>& paper);

}  // namespace carat::bench

#endif  // CARAT_BENCH_REPRO_COMMON_H_
