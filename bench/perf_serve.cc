// perf_serve - establishes the serving layer's perf trajectory. Measures
//
//   1. warm-start effectiveness: total fixed-point iterations for a what-if
//      query stream (a paper sweep plus fine think-time perturbations around
//      each point, the sensitivity-analysis pattern a serving layer sees)
//      with nearest-neighbor seeding off vs. on — the warm run must need
//      >= 30% fewer iterations;
//   2. cache effectiveness: re-submitting an identical batch must be
//      answered entirely from the solution cache (100% hit rate);
//   3. the allocation-free warm path: CaratModel::SolveInto with a warmed
//      same-shape arena, a reused output and a warm seed must perform zero
//      heap allocations per solve (global operator-new hook, as in
//      perf_solver).
//
// Results land in BENCH_serve.json (cwd) so successive PRs can track the
// numbers. Usage: perf_serve [--jobs N] [--out FILE]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "model/solver.h"
#include "serve/solver_service.h"
#include "util/cli.h"
#include "workload/spec.h"

// ---- Global allocation counter ---------------------------------------------
// Counts every operator-new in the process; the warm-path benchmark reads
// the delta around the solve calls.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The what-if stream: every paper MPL point of MB4, each followed by fine
// think-time perturbations (sensitivity probing around an operating point).
// Nearest-neighbor seeding answers each perturbed query from the converged
// state of its base point, which is where warm starting pays.
std::vector<carat::model::ModelInput> MakeWhatIfStream() {
  const int sizes[] = {4, 8, 12, 16, 20};
  const double think_deltas_ms[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
  std::vector<carat::model::ModelInput> stream;
  for (const int n : sizes) {
    const carat::model::ModelInput base =
        carat::workload::MakeMB4(n).ToModelInput();
    stream.push_back(base);
    for (const double delta : think_deltas_ms) {
      carat::model::ModelInput probe = base;
      for (carat::model::SiteParams& site : probe.sites) {
        site.think_time_ms += delta;
      }
      stream.push_back(std::move(probe));
    }
  }
  return stream;
}

// Runs the stream through a fresh single-worker service one query at a time
// (sequential, so the warm index always holds every earlier point) and
// returns the summed fixed-point iteration count.
std::uint64_t StreamIterations(const std::vector<carat::model::ModelInput>& stream,
                               bool warm_start, double* elapsed_ms) {
  carat::serve::SolverService::Options opts;
  opts.threads = 1;
  opts.use_cache = false;  // isolate the solver: every query must solve
  opts.warm_start = warm_start;
  carat::serve::SolverService service(std::move(opts));
  const Clock::time_point start = Clock::now();
  for (const carat::model::ModelInput& input : stream) {
    const carat::model::ModelSolution sol = service.Submit(input).get();
    if (!sol.ok || !sol.converged) {
      std::fprintf(stderr, "FAIL: stream query did not converge: %s\n",
                   sol.error.c_str());
      std::exit(1);
    }
  }
  *elapsed_ms = ElapsedMs(start);
  return service.stats().total_iterations;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0: one worker per hardware thread
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      if (!carat::util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr, "--jobs: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_serve [--jobs N] [--out FILE]\n");
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (jobs > 0 && hw > 0 && static_cast<unsigned>(jobs) > hw) {
    std::fprintf(stderr,
                 "warning: --jobs %d exceeds the %u hardware threads on this "
                 "host; expect oversubscription, not speedup\n",
                 jobs, hw);
  }

  const std::vector<carat::model::ModelInput> stream = MakeWhatIfStream();

  // ---- 1. Warm-start effectiveness on the what-if stream. ------------------
  double cold_ms = 0.0, warm_ms = 0.0;
  const std::uint64_t cold_iters =
      StreamIterations(stream, /*warm_start=*/false, &cold_ms);
  const std::uint64_t warm_iters =
      StreamIterations(stream, /*warm_start=*/true, &warm_ms);
  const double reduction =
      cold_iters > 0
          ? 1.0 - static_cast<double>(warm_iters) / static_cast<double>(cold_iters)
          : 0.0;

  // ---- 2. Cache effectiveness on a repeated batch. -------------------------
  double batch_hit_rate = 0.0;
  std::uint64_t repeat_hits = 0;
  {
    carat::serve::SolverService::Options opts;
    opts.threads = jobs <= 0 ? 0 : static_cast<std::size_t>(jobs);
    carat::serve::SolverService service(std::move(opts));
    service.SolveBatch(stream);
    const std::uint64_t hits_before = service.stats().cache_hits;
    service.SolveBatch(stream);
    repeat_hits = service.stats().cache_hits - hits_before;
    batch_hit_rate =
        stream.empty() ? 0.0
                       : static_cast<double>(repeat_hits) / stream.size();
  }

  // ---- 3. Allocation-free warm solve path. ---------------------------------
  std::uint64_t warm_allocs_per_call = 0;
  double warm_solves_per_s = 0.0;
  {
    const carat::model::CaratModel model(
        carat::workload::MakeMB4(12).ToModelInput());
    carat::model::SolveArena arena;
    carat::model::ModelSolution out;
    carat::model::WarmStart seed;
    // Warm everything: first solve sizes the arena and output, second runs
    // seeded from the first's converged state.
    model.SolveInto({}, &arena, nullptr, &out, &seed);
    model.SolveInto({}, &arena, &seed, &out, &seed);
    const int kCalls = 200;
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < kCalls; ++i) {
      model.SolveInto({}, &arena, &seed, &out, &seed);
    }
    const double ms = ElapsedMs(start);
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    warm_allocs_per_call = allocs / kCalls;
    warm_solves_per_s = ms > 0.0 ? kCalls / ms * 1000.0 : 0.0;
    if (!out.ok) {
      std::fprintf(stderr, "FAIL: warm-path solve failed: %s\n",
                   out.error.c_str());
      return 1;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_serve\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"jobs\": %d,\n"
               "  \"warm_start\": {\n"
               "    \"queries\": %zu,\n"
               "    \"cold_iterations\": %llu,\n"
               "    \"warm_iterations\": %llu,\n"
               "    \"iteration_reduction\": %.3f,\n"
               "    \"cold_ms\": %.3f,\n"
               "    \"warm_ms\": %.3f\n"
               "  },\n"
               "  \"cache\": {\n"
               "    \"batch_size\": %zu,\n"
               "    \"repeat_hits\": %llu,\n"
               "    \"repeat_hit_rate\": %.3f\n"
               "  },\n"
               "  \"warm_solve\": {\n"
               "    \"solves_per_s\": %.1f,\n"
               "    \"allocs_per_call\": %llu\n"
               "  }\n"
               "}\n",
               hw, jobs, stream.size(),
               static_cast<unsigned long long>(cold_iters),
               static_cast<unsigned long long>(warm_iters), reduction, cold_ms,
               warm_ms, stream.size(),
               static_cast<unsigned long long>(repeat_hits), batch_hit_rate,
               warm_solves_per_s,
               static_cast<unsigned long long>(warm_allocs_per_call));
  std::fclose(f);

  std::printf(
      "warm start: %llu -> %llu fixed-point iterations over %zu queries "
      "(%.1f%% reduction)\n",
      static_cast<unsigned long long>(cold_iters),
      static_cast<unsigned long long>(warm_iters), stream.size(),
      reduction * 100.0);
  std::printf("cache: %llu/%zu repeat-batch hits (%.0f%%)\n",
              static_cast<unsigned long long>(repeat_hits), stream.size(),
              batch_hit_rate * 100.0);
  std::printf("warm solve path: %.0f solves/s, %llu allocs/call\n",
              warm_solves_per_s,
              static_cast<unsigned long long>(warm_allocs_per_call));

  bool ok = true;
  if (reduction < 0.30) {
    std::fprintf(stderr, "FAIL: warm-start iteration reduction %.1f%% < 30%%\n",
                 reduction * 100.0);
    ok = false;
  }
  if (repeat_hits != stream.size()) {
    std::fprintf(stderr, "FAIL: repeat-batch cache hit rate %.0f%% < 100%%\n",
                 batch_hit_rate * 100.0);
    ok = false;
  }
  if (warm_allocs_per_call != 0) {
    std::fprintf(stderr, "FAIL: warm solve path allocated (%llu per call)\n",
                 static_cast<unsigned long long>(warm_allocs_per_call));
    ok = false;
  }
  return ok ? 0 : 1;
}
