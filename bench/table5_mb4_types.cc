// Table 5 of the paper: MB4 workload, per-transaction-type throughput at
// each node, model vs measurement, with the paper's published values.

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

namespace {

struct PaperTypeRow {
  int n;
  const char* type;
  double meas_a, meas_b, model_a, model_b;
};

// Paper Table 5 (MB4 per-type throughput, transactions/second).
const PaperTypeRow kPaper[] = {
    {4, "LRO", 0.39, 0.25, 0.46, 0.29},  {4, "LU", 0.19, 0.11, 0.21, 0.12},
    {4, "DRO", 0.22, 0.22, 0.25, 0.25},  {4, "DU", 0.11, 0.11, 0.11, 0.11},
    {8, "LRO", 0.20, 0.13, 0.22, 0.14},  {8, "LU", 0.10, 0.07, 0.11, 0.06},
    {8, "DRO", 0.14, 0.14, 0.14, 0.14},  {8, "DU", 0.07, 0.06, 0.06, 0.06},
    {12, "LRO", 0.11, 0.08, 0.12, 0.08}, {12, "LU", 0.06, 0.04, 0.06, 0.04},
    {12, "DRO", 0.09, 0.08, 0.09, 0.09}, {12, "DU", 0.04, 0.03, 0.04, 0.04},
    {16, "LRO", 0.07, 0.05, 0.07, 0.05}, {16, "LU", 0.04, 0.03, 0.03, 0.02},
    {16, "DRO", 0.05, 0.07, 0.06, 0.06}, {16, "DU", 0.03, 0.02, 0.03, 0.03},
    {20, "LRO", 0.05, 0.04, 0.04, 0.03}, {20, "LU", 0.02, 0.02, 0.01, 0.01},
    {20, "DRO", 0.04, 0.04, 0.04, 0.04}, {20, "DU", 0.02, 0.01, 0.02, 0.02},
};

}  // namespace

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeMB4(n); });

  std::cout << "Table 5 - Model vs Measurement Throughput per TR Type (MB4)\n";
  util::TextTable table;
  table.SetHeader({"n", "Type", "ours meas A", "ours meas B", "ours model A",
                   "ours model B", "paper meas A", "paper meas B",
                   "paper model A", "paper model B"});
  const struct {
    model::TxnType t;
    const char* label;
  } kTypes[] = {{model::TxnType::kLRO, "LRO"},
                {model::TxnType::kLU, "LU"},
                {model::TxnType::kDROC, "DRO"},
                {model::TxnType::kDUC, "DU"}};
  for (const auto& p : points) {
    for (const auto& [t, label] : kTypes) {
      std::vector<std::string> row = {
          std::to_string(p.n), label,
          util::TextTable::Num(p.sim.nodes[0].Type(t).throughput_per_s),
          util::TextTable::Num(p.sim.nodes[1].Type(t).throughput_per_s),
          util::TextTable::Num(p.model.sites[0].Class(t).throughput_per_s),
          util::TextTable::Num(p.model.sites[1].Class(t).throughput_per_s)};
      for (const PaperTypeRow& pr : kPaper) {
        if (pr.n == p.n && std::string(pr.type) == label) {
          row.push_back(util::TextTable::Num(pr.meas_a));
          row.push_back(util::TextTable::Num(pr.meas_b));
          row.push_back(util::TextTable::Num(pr.model_a));
          row.push_back(util::TextTable::Num(pr.model_b));
        }
      }
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
