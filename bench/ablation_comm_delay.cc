// Ablation: sensitivity to the inter-site communication delay alpha. The
// paper neglected alpha on its lightly loaded Ethernet; this bench sweeps it
// (including values computed by the Ethernet contention model) to show when
// that simplification stops being safe.

#include <iostream>

#include "qn/ethernet.h"
#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - communication delay alpha (MB4, n=8)\n";

  // Alpha from the Ethernet model at increasing background loads, for a
  // 1000-byte message on 10 Mb/s.
  qn::EthernetParams eth;
  const double frame_bits = 8000.0;
  util::TextTable table;
  table.SetHeader({"alpha (ms)", "source", "sim XPUT", "model XPUT",
                   "sim DRO resp (ms)"});
  struct Case {
    double alpha;
    std::string source;
  };
  std::vector<Case> cases = {{0.0, "paper (neglected)"}};
  for (const double load : {0.05, 0.5, 0.95}) {
    cases.push_back({qn::EthernetMeanDelayMs(eth, frame_bits,
                                             load / (frame_bits /
                                                     eth.bandwidth_bits_per_ms)),
                     "ethernet model @" + util::TextTable::Num(load, 2)});
  }
  cases.push_back({20.0, "slow WAN"});
  cases.push_back({100.0, "very slow WAN"});

  for (const Case& c : cases) {
    workload::WorkloadSpec wl = workload::MakeMB4(8);
    wl.comm_delay_ms = c.alpha;
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.warmup_ms = 100'000;
    opts.measure_ms = 1'000'000;
    const TestbedResult s = RunTestbed(input, opts);
    table.AddRow({util::TextTable::Num(c.alpha, 3), c.source,
                  util::TextTable::Num(s.TotalTxnPerSec()),
                  util::TextTable::Num(m.TotalTxnPerSec()),
                  util::TextTable::Num(
                      s.nodes[0].Type(model::TxnType::kDROC).response_ms, 0)});
  }
  table.Print(std::cout);
  return 0;
}
