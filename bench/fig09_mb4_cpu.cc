// Figure 9 of the paper: MB4 workload, CPU utilization at both nodes versus
// transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeMB4(n); });
  bench::PrintFigure(
      "Figure 9 - MB4 Workload: CPU Utilization",
      "cpu", points, /*node_index=*/-1,
      [](const NodeResult& n) { return n.cpu_utilization; },
      [](const model::SiteSolution& s) { return s.cpu_utilization; });
  return 0;
}
