// Ablation: DM server pool size. CARAT fixes the pool at start-up and
// allocates one DM server per transaction per node for the transaction's
// lifetime. The paper sized pools generously; this shows what happens when
// the pool itself becomes the bottleneck (admission throttling).

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - DM server pool size (LB8, n=8; 8 users/node)\n";
  util::TextTable table;
  table.SetHeader({"pool/node", "XPUT", "DM waits/s", "disk util",
                   "lock blocks/s"});
  for (const int pool : {0, 8, 4, 2, 1}) {
    workload::WorkloadSpec wl = workload::MakeLB8(8);
    wl.dm_pool_size = pool;
    TestbedOptions opts;
    opts.warmup_ms = 100'000;
    opts.measure_ms = 1'000'000;
    const TestbedResult r = RunTestbed(wl.ToModelInput(), opts);
    const double window_s = r.measured_ms / 1000.0;
    table.AddRow({pool == 0 ? "unlimited" : std::to_string(pool),
                  util::TextTable::Num(r.TotalTxnPerSec()),
                  util::TextTable::Num(
                      (r.nodes[0].dm_pool_waits + r.nodes[1].dm_pool_waits) /
                          window_s,
                      2),
                  util::TextTable::Num(r.nodes[0].db_disk_utilization),
                  util::TextTable::Num(
                      (r.nodes[0].lock_blocks + r.nodes[1].lock_blocks) /
                          window_s,
                      2)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: small pools throttle admission, which *reduces* lock\n"
               "contention while capping throughput - the classic MPL-control\n"
               "trade-off.\n";
  return 0;
}
