// Ablation (paper future work): the effect of a shared database buffer.
// The paper's testbed performed one disk I/O per granule access; this
// sweeps an LRU buffer per node from nothing to the whole database and
// compares the testbed's measured hit ratio with the model's working-set
// approximation.

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - shared database buffer (MB8, n=8; 3000 blocks "
               "per node)\n";
  util::TextTable table;
  table.SetHeader({"buffer blocks", "sim hit", "model hit est", "sim XPUT",
                   "model XPUT", "sim DIO/s", "model DIO/s"});
  for (const int blocks : {0, 150, 300, 750, 1500, 3000}) {
    workload::WorkloadSpec wl = workload::MakeMB8(8);
    wl.buffer_blocks = blocks;
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.warmup_ms = 200'000;  // long warm-up so the pool fills
    opts.measure_ms = 1'000'000;
    const TestbedResult s = RunTestbed(input, opts);
    const double model_hit =
        blocks > 0 ? std::min(1.0, static_cast<double>(blocks) /
                                       input.sites[0].num_granules)
                   : 0.0;
    table.AddRow({std::to_string(blocks),
                  util::TextTable::Num(s.nodes[0].buffer_hit_ratio),
                  util::TextTable::Num(model_hit),
                  util::TextTable::Num(s.TotalTxnPerSec()),
                  util::TextTable::Num(m.TotalTxnPerSec()),
                  util::TextTable::Num(s.nodes[0].dio_per_s, 1),
                  util::TextTable::Num(m.sites[0].dio_per_s, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nWith a hot set that fits (5% of data, 80% of accesses):\n";
  util::TextTable t2;
  t2.SetHeader({"buffer blocks", "sim hit", "sim XPUT", "model XPUT"});
  for (const int blocks : {0, 150, 300}) {
    workload::WorkloadSpec wl = workload::MakeMB8(8);
    wl.buffer_blocks = blocks;
    wl.hot_data_fraction = 0.05;
    wl.hot_access_fraction = 0.8;
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.warmup_ms = 200'000;
    opts.measure_ms = 1'000'000;
    const TestbedResult s = RunTestbed(input, opts);
    t2.AddRow({std::to_string(blocks),
               util::TextTable::Num(s.nodes[0].buffer_hit_ratio),
               util::TextTable::Num(s.TotalTxnPerSec()),
               util::TextTable::Num(m.TotalTxnPerSec())});
  }
  t2.Print(std::cout);
  return 0;
}
