// perf_solver - establishes the repo's solver perf trajectory. Times
//
//   1. an end-to-end model sweep (8 MPL points x 4 paper workloads) run
//      serially vs. on the exec::ThreadPool, asserting the parallel run is
//      numerically identical to the serial one, and
//   2. the exact / Schweitzer MVA hot path with a reused MvaWorkspace,
//      counting heap allocations per call via a global operator-new hook
//      (must be zero once the workspace is warm), and
//   3. the lockstep SoA batch Schweitzer kernel against the scalar kernel on
//      the same scenarios: 8 lanes of a representative site network with
//      per-lane demand skews, measured as interleaved medians to shrug off
//      shared-host noise. The batch must be bit-identical per lane AND at
//      least 2x the scalar solve rate — this gate is armed on every host
//      (single-core included: the win is SIMD lanes, not threads).
//
// Results land in BENCH_solver.json (cwd) so successive PRs can track the
// numbers. Usage: perf_solver [--jobs N] [--out FILE]
//
// Note: the thread-sweep speedup is bounded by the host's core count; its
// gate (>= 1.5x) arms only when the host has >= 4 hardware threads. The
// batch-vs-scalar gate is thread-independent and always armed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "qn/mva.h"
#include "qn/mva_batch.h"
#include "workload/spec.h"

// ---- Global allocation counter ---------------------------------------------
// Counts every operator-new in the process; the MVA micro-benchmark reads
// the delta around the solve calls.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct SweepCase {
  const char* workload;
  carat::workload::WorkloadSpec (*make)(int);
  int n;
};

// 8 MPL points x 4 paper workloads, solved with the analytical model only
// (the testbed runs are benchmarked elsewhere; the solver is this PR's hot
// path).
std::vector<SweepCase> MakeSweepCases() {
  using carat::workload::WorkloadSpec;
  struct Factory {
    const char* name;
    WorkloadSpec (*make)(int);
  };
  const Factory factories[] = {
      {"lb8", [](int n) { return carat::workload::MakeLB8(n); }},
      {"mb4", [](int n) { return carat::workload::MakeMB4(n); }},
      {"mb8", [](int n) { return carat::workload::MakeMB8(n); }},
      {"ub6", [](int n) { return carat::workload::MakeUB6(n); }},
  };
  const int sizes[] = {4, 6, 8, 10, 12, 14, 16, 20};
  std::vector<SweepCase> cases;
  for (const Factory& f : factories)
    for (int n : sizes) cases.push_back({f.name, f.make, n});
  return cases;
}

// Solves every case, fanning points out over `pool` (null: serial). The
// per-site MVA parallelism inside Solve() stays off so the measurement
// isolates sweep-level parallelism.
std::vector<double> SolveAll(const std::vector<SweepCase>& cases,
                             carat::exec::ThreadPool* pool, double* elapsed_ms) {
  std::vector<double> xput(cases.size(), 0.0);
  const Clock::time_point start = Clock::now();
  carat::exec::ParallelFor(pool, 0, cases.size(), [&](std::size_t i) {
    const carat::model::ModelInput input = cases[i].make(cases[i].n).ToModelInput();
    const carat::model::ModelSolution sol =
        carat::model::CaratModel(input).Solve();
    xput[i] = sol.ok ? sol.TotalTxnPerSec() : -1.0;
  });
  *elapsed_ms = ElapsedMs(start);
  return xput;
}

// Representative site network: CPU + 2 disks (queueing), 4 delay centers,
// 4 chains.
carat::qn::ClosedNetwork MakeSiteNetwork(int population) {
  using namespace carat::qn;
  ClosedNetwork net;
  net.AddCenter("CPU", CenterKind::kQueueing);
  net.AddCenter("DISK", CenterKind::kQueueing);
  net.AddCenter("LOG", CenterKind::kQueueing);
  net.AddCenter("LW", CenterKind::kDelay);
  net.AddCenter("RW", CenterKind::kDelay);
  net.AddCenter("CW", CenterKind::kDelay);
  net.AddCenter("UT", CenterKind::kDelay);
  const double base[4][7] = {
      {1.4, 11.0, 2.2, 3.0, 0.0, 0.0, 1.0},
      {2.8, 14.0, 4.4, 6.0, 12.0, 21.0, 2.0},
      {0.9, 7.0, 1.1, 2.0, 0.0, 0.0, 1.5},
      {1.7, 9.0, 3.3, 4.0, 8.0, 17.0, 2.5},
  };
  for (int k = 0; k < 4; ++k) {
    const std::size_t c = net.AddChain("chain" + std::to_string(k),
                                       population, /*think_time=*/1000.0);
    for (int m = 0; m < 7; ++m) net.chains[c].demands[m] = base[k][m];
  }
  return net;
}

struct MvaBench {
  double solves_per_s = 0.0;
  std::uint64_t allocs_per_call = 0;
};

// ---- Lockstep batch vs scalar Schweitzer. ----------------------------------

struct BatchBench {
  double scalar_solves_per_s = 0.0;
  double batch_solves_per_s = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
  std::uint64_t batch_allocs_per_call = 0;
};

bool SameSolutionBits(const carat::qn::Solution& a,
                      const carat::qn::Solution& b) {
  auto same = [](const std::vector<double>& x, const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  if (!(same(a.throughput, b.throughput) &&
        same(a.response_time, b.response_time) &&
        same(a.queue_length, b.queue_length) &&
        same(a.utilization, b.utilization))) {
    return false;
  }
  if (a.residence.size() != b.residence.size()) return false;
  for (std::size_t k = 0; k < a.residence.size(); ++k) {
    if (!same(a.residence[k], b.residence[k])) return false;
  }
  return true;
}

// W lanes of the representative site network with per-lane demand skews
// (the serving layer's sweep pattern: same shape, different parameters).
// Cold Schweitzer solves on both paths; interleaved reps with a median pick
// so a noisy neighbor on a shared host cannot flip the comparison.
BatchBench BenchBatchSchweitzer() {
  using namespace carat::qn;
  constexpr std::size_t kLanes = kMvaBatchLaneWidth;
  std::vector<ClosedNetwork> nets;
  std::vector<const ClosedNetwork*> ptrs;
  for (std::size_t w = 0; w < kLanes; ++w) {
    nets.push_back(MakeSiteNetwork(/*population=*/64));
    for (Chain& chain : nets.back().chains) {
      for (double& d : chain.demands) d *= 1.0 + 0.03 * w;
    }
  }
  for (const ClosedNetwork& net : nets) ptrs.push_back(&net);

  std::vector<MvaWorkspace> scalar_ws(kLanes);
  BatchMvaWorkspace batch_ws;

  const auto scalar_pass = [&] {
    for (std::size_t w = 0; w < kLanes; ++w) {
      SchweitzerMvaInPlace(nets[w], &scalar_ws[w], /*tolerance=*/1e-9,
                           /*max_iterations=*/10000, /*warm_start=*/false);
    }
  };
  const auto batch_pass = [&] {
    SchweitzerMvaBatchInPlace(ptrs.data(), kLanes, &batch_ws,
                              /*tolerance=*/1e-9, /*max_iterations=*/10000,
                              /*warm_start=*/false);
  };

  BatchBench out;
  // Warm the workspaces, then verify per-lane bit-identity (all Solution
  // fields and iteration counts) before timing anything.
  scalar_pass();
  batch_pass();
  out.bit_identical = true;
  for (std::size_t w = 0; w < kLanes; ++w) {
    out.bit_identical =
        out.bit_identical &&
        SameSolutionBits(scalar_ws[w].solution, batch_ws.solutions[w]) &&
        scalar_ws[w].iterations == batch_ws.iterations[w];
  }

  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  batch_pass();
  out.batch_allocs_per_call =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  constexpr int kReps = 9;
  constexpr int kCallsPerRep = 300;
  std::vector<double> scalar_rates, batch_rates, ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    Clock::time_point start = Clock::now();
    for (int i = 0; i < kCallsPerRep; ++i) scalar_pass();
    const double scalar_ms = ElapsedMs(start);
    start = Clock::now();
    for (int i = 0; i < kCallsPerRep; ++i) batch_pass();
    const double batch_ms = ElapsedMs(start);
    const double solves = static_cast<double>(kCallsPerRep) * kLanes;
    scalar_rates.push_back(scalar_ms > 0.0 ? solves / scalar_ms * 1000.0
                                           : 0.0);
    batch_rates.push_back(batch_ms > 0.0 ? solves / batch_ms * 1000.0 : 0.0);
    ratios.push_back(scalar_ms > 0.0 && batch_ms > 0.0
                         ? scalar_ms / batch_ms
                         : 0.0);
  }
  const auto median = [](std::vector<double>* v) {
    std::sort(v->begin(), v->end());
    return (*v)[v->size() / 2];
  };
  out.scalar_solves_per_s = median(&scalar_rates);
  out.batch_solves_per_s = median(&batch_rates);
  out.speedup = median(&ratios);
  return out;
}

template <typename Solve>
MvaBench BenchMva(const Solve& solve, int iterations) {
  MvaBench out;
  // Warm up the workspace, then count allocations over the timed calls.
  solve();
  solve();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < iterations; ++i) solve();
  const double ms = ElapsedMs(start);
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  out.solves_per_s = ms > 0.0 ? iterations / ms * 1000.0 : 0.0;
  out.allocs_per_call = allocs / iterations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 8;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs <= 1) {
        std::fprintf(stderr, "--jobs must be >= 2\n");
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_solver [--jobs N] [--out FILE]\n");
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && static_cast<unsigned>(jobs) > hw) {
    std::fprintf(stderr,
                 "warning: --jobs %d exceeds the %u hardware threads on this "
                 "host; expect oversubscription, not speedup\n",
                 jobs, hw);
  }
  const std::vector<SweepCase> cases = MakeSweepCases();

  // ---- End-to-end sweep, serial vs. parallel. ------------------------------
  double serial_ms = 0.0, parallel_ms = 0.0;
  const std::vector<double> serial = SolveAll(cases, nullptr, &serial_ms);
  std::vector<double> parallel;
  {
    carat::exec::ThreadPool pool(static_cast<std::size_t>(jobs));
    parallel = SolveAll(cases, &pool, &parallel_ms);
  }
  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = std::memcmp(&serial[i], &parallel[i], sizeof(double)) == 0;
  }
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  // The thread-sweep gate arms only with real parallel headroom (the same
  // policy as perf_testbed): on a 1-2 core host the sweep still runs, and
  // identical_output is still enforced, but the speedup is informational.
  const bool sweep_gate_armed = hw >= 4;

  // ---- MVA hot path with a reused workspace. -------------------------------
  const carat::qn::ClosedNetwork exact_net = MakeSiteNetwork(/*population=*/4);
  const carat::qn::ClosedNetwork approx_net =
      MakeSiteNetwork(/*population=*/64);
  carat::qn::MvaWorkspace exact_ws, approx_ws;
  const MvaBench exact = BenchMva(
      [&] {
        carat::qn::ExactMvaInPlace(exact_net, &exact_ws);
      },
      2000);
  const MvaBench approx = BenchMva(
      [&] {
        carat::qn::SchweitzerMvaInPlace(approx_net, &approx_ws,
                                        /*tolerance=*/1e-9,
                                        /*max_iterations=*/10000,
                                        /*warm_start=*/true);
      },
      2000);

  // ---- Lockstep batch vs scalar Schweitzer (gate armed on every host). -----
  const BatchBench batch = BenchBatchSchweitzer();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_solver\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"sweep\": {\n"
               "    \"workloads\": 4,\n"
               "    \"points_per_workload\": 8,\n"
               "    \"jobs\": %d,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"speedup_gate_armed\": %s,\n"
               "    \"identical_output\": %s\n"
               "  },\n"
               "  \"exact_mva_workspace\": {\n"
               "    \"solves_per_s\": %.1f,\n"
               "    \"allocs_per_call_warm\": %llu\n"
               "  },\n"
               "  \"schweitzer_mva_workspace\": {\n"
               "    \"solves_per_s\": %.1f,\n"
               "    \"allocs_per_call_warm\": %llu\n"
               "  },\n"
               "  \"batch_schweitzer\": {\n"
               "    \"lane_width\": %zu,\n"
               "    \"simd_double_lanes\": %zu,\n"
               "    \"scalar_solves_per_s\": %.1f,\n"
               "    \"batch_solves_per_s\": %.1f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"speedup_gate_armed\": true,\n"
               "    \"bit_identical\": %s,\n"
               "    \"allocs_per_call_warm\": %llu\n"
               "  }\n"
               "}\n",
               hw, jobs, serial_ms, parallel_ms, speedup,
               sweep_gate_armed ? "true" : "false",
               identical ? "true" : "false", exact.solves_per_s,
               static_cast<unsigned long long>(exact.allocs_per_call),
               approx.solves_per_s,
               static_cast<unsigned long long>(approx.allocs_per_call),
               static_cast<std::size_t>(carat::qn::kMvaBatchLaneWidth),
               carat::qn::MvaCompiledSimdDoubleLanes(),
               batch.scalar_solves_per_s, batch.batch_solves_per_s,
               batch.speedup, batch.bit_identical ? "true" : "false",
               static_cast<unsigned long long>(batch.batch_allocs_per_call));
  std::fclose(f);

  std::printf(
      "sweep: serial %.1f ms, parallel(%d jobs) %.1f ms, speedup %.2fx, "
      "identical=%s (host has %u hardware threads)\n",
      serial_ms, jobs, parallel_ms, speedup, identical ? "yes" : "NO",
      hw);
  std::printf("exact MVA (warm workspace): %.0f solves/s, %llu allocs/call\n",
              exact.solves_per_s,
              static_cast<unsigned long long>(exact.allocs_per_call));
  std::printf(
      "schweitzer MVA (warm workspace): %.0f solves/s, %llu allocs/call\n",
      approx.solves_per_s,
      static_cast<unsigned long long>(approx.allocs_per_call));
  std::printf(
      "batch schweitzer (%zu lanes, %zu simd double lanes): scalar %.0f "
      "solves/s, batch %.0f solves/s, speedup %.2fx, identical=%s, "
      "%llu allocs/call\n",
      static_cast<std::size_t>(carat::qn::kMvaBatchLaneWidth),
      carat::qn::MvaCompiledSimdDoubleLanes(), batch.scalar_solves_per_s,
      batch.batch_solves_per_s, batch.speedup,
      batch.bit_identical ? "yes" : "NO",
      static_cast<unsigned long long>(batch.batch_allocs_per_call));
  if (!identical) return 1;
  if (exact.allocs_per_call != 0 || approx.allocs_per_call != 0) {
    std::fprintf(stderr, "FAIL: warm-workspace MVA solve allocated\n");
    return 1;
  }
  if (sweep_gate_armed && speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: sweep speedup %.2fx < 1.5x with %u hardware "
                 "threads\n",
                 speedup, hw);
    return 1;
  }
  if (!batch.bit_identical) {
    std::fprintf(stderr, "FAIL: batch lanes not bit-identical to scalar\n");
    return 1;
  }
  if (batch.batch_allocs_per_call != 0) {
    std::fprintf(stderr, "FAIL: warm-workspace batch solve allocated\n");
    return 1;
  }
  if (batch.speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batch speedup %.2fx < 2.0x at lane width %zu\n",
                 batch.speedup,
                 static_cast<std::size_t>(carat::qn::kMvaBatchLaneWidth));
    return 1;
  }
  return 0;
}
