// perf_solver - establishes the repo's solver perf trajectory. Times
//
//   1. an end-to-end model sweep (8 MPL points x 4 paper workloads) run
//      serially vs. on the exec::ThreadPool, asserting the parallel run is
//      numerically identical to the serial one, and
//   2. the exact / Schweitzer MVA hot path with a reused MvaWorkspace,
//      counting heap allocations per call via a global operator-new hook
//      (must be zero once the workspace is warm).
//
// Results land in BENCH_solver.json (cwd) so successive PRs can track the
// numbers. Usage: perf_solver [--jobs N] [--out FILE]
//
// Note: speedup is bounded by the host's core count; the acceptance target
// (>= 3x at --jobs 8) presumes >= 8 hardware threads.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "qn/mva.h"
#include "workload/spec.h"

// ---- Global allocation counter ---------------------------------------------
// Counts every operator-new in the process; the MVA micro-benchmark reads
// the delta around the solve calls.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct SweepCase {
  const char* workload;
  carat::workload::WorkloadSpec (*make)(int);
  int n;
};

// 8 MPL points x 4 paper workloads, solved with the analytical model only
// (the testbed runs are benchmarked elsewhere; the solver is this PR's hot
// path).
std::vector<SweepCase> MakeSweepCases() {
  using carat::workload::WorkloadSpec;
  struct Factory {
    const char* name;
    WorkloadSpec (*make)(int);
  };
  const Factory factories[] = {
      {"lb8", [](int n) { return carat::workload::MakeLB8(n); }},
      {"mb4", [](int n) { return carat::workload::MakeMB4(n); }},
      {"mb8", [](int n) { return carat::workload::MakeMB8(n); }},
      {"ub6", [](int n) { return carat::workload::MakeUB6(n); }},
  };
  const int sizes[] = {4, 6, 8, 10, 12, 14, 16, 20};
  std::vector<SweepCase> cases;
  for (const Factory& f : factories)
    for (int n : sizes) cases.push_back({f.name, f.make, n});
  return cases;
}

// Solves every case, fanning points out over `pool` (null: serial). The
// per-site MVA parallelism inside Solve() stays off so the measurement
// isolates sweep-level parallelism.
std::vector<double> SolveAll(const std::vector<SweepCase>& cases,
                             carat::exec::ThreadPool* pool, double* elapsed_ms) {
  std::vector<double> xput(cases.size(), 0.0);
  const Clock::time_point start = Clock::now();
  carat::exec::ParallelFor(pool, 0, cases.size(), [&](std::size_t i) {
    const carat::model::ModelInput input = cases[i].make(cases[i].n).ToModelInput();
    const carat::model::ModelSolution sol =
        carat::model::CaratModel(input).Solve();
    xput[i] = sol.ok ? sol.TotalTxnPerSec() : -1.0;
  });
  *elapsed_ms = ElapsedMs(start);
  return xput;
}

// Representative site network: CPU + 2 disks (queueing), 4 delay centers,
// 4 chains.
carat::qn::ClosedNetwork MakeSiteNetwork(int population) {
  using namespace carat::qn;
  ClosedNetwork net;
  net.AddCenter("CPU", CenterKind::kQueueing);
  net.AddCenter("DISK", CenterKind::kQueueing);
  net.AddCenter("LOG", CenterKind::kQueueing);
  net.AddCenter("LW", CenterKind::kDelay);
  net.AddCenter("RW", CenterKind::kDelay);
  net.AddCenter("CW", CenterKind::kDelay);
  net.AddCenter("UT", CenterKind::kDelay);
  const double base[4][7] = {
      {1.4, 11.0, 2.2, 3.0, 0.0, 0.0, 1.0},
      {2.8, 14.0, 4.4, 6.0, 12.0, 21.0, 2.0},
      {0.9, 7.0, 1.1, 2.0, 0.0, 0.0, 1.5},
      {1.7, 9.0, 3.3, 4.0, 8.0, 17.0, 2.5},
  };
  for (int k = 0; k < 4; ++k) {
    const std::size_t c = net.AddChain("chain" + std::to_string(k),
                                       population, /*think_time=*/1000.0);
    for (int m = 0; m < 7; ++m) net.chains[c].demands[m] = base[k][m];
  }
  return net;
}

struct MvaBench {
  double solves_per_s = 0.0;
  std::uint64_t allocs_per_call = 0;
};

template <typename Solve>
MvaBench BenchMva(const Solve& solve, int iterations) {
  MvaBench out;
  // Warm up the workspace, then count allocations over the timed calls.
  solve();
  solve();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < iterations; ++i) solve();
  const double ms = ElapsedMs(start);
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  out.solves_per_s = ms > 0.0 ? iterations / ms * 1000.0 : 0.0;
  out.allocs_per_call = allocs / iterations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 8;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs <= 1) {
        std::fprintf(stderr, "--jobs must be >= 2\n");
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_solver [--jobs N] [--out FILE]\n");
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && static_cast<unsigned>(jobs) > hw) {
    std::fprintf(stderr,
                 "warning: --jobs %d exceeds the %u hardware threads on this "
                 "host; expect oversubscription, not speedup\n",
                 jobs, hw);
  }
  const std::vector<SweepCase> cases = MakeSweepCases();

  // ---- End-to-end sweep, serial vs. parallel. ------------------------------
  double serial_ms = 0.0, parallel_ms = 0.0;
  const std::vector<double> serial = SolveAll(cases, nullptr, &serial_ms);
  std::vector<double> parallel;
  {
    carat::exec::ThreadPool pool(static_cast<std::size_t>(jobs));
    parallel = SolveAll(cases, &pool, &parallel_ms);
  }
  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = std::memcmp(&serial[i], &parallel[i], sizeof(double)) == 0;
  }
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

  // ---- MVA hot path with a reused workspace. -------------------------------
  const carat::qn::ClosedNetwork exact_net = MakeSiteNetwork(/*population=*/4);
  const carat::qn::ClosedNetwork approx_net =
      MakeSiteNetwork(/*population=*/64);
  carat::qn::MvaWorkspace exact_ws, approx_ws;
  const MvaBench exact = BenchMva(
      [&] {
        carat::qn::ExactMvaInPlace(exact_net, &exact_ws);
      },
      2000);
  const MvaBench approx = BenchMva(
      [&] {
        carat::qn::SchweitzerMvaInPlace(approx_net, &approx_ws,
                                        /*tolerance=*/1e-9,
                                        /*max_iterations=*/10000,
                                        /*warm_start=*/true);
      },
      2000);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_solver\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"sweep\": {\n"
               "    \"workloads\": 4,\n"
               "    \"points_per_workload\": 8,\n"
               "    \"jobs\": %d,\n"
               "    \"serial_ms\": %.3f,\n"
               "    \"parallel_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical_output\": %s\n"
               "  },\n"
               "  \"exact_mva_workspace\": {\n"
               "    \"solves_per_s\": %.1f,\n"
               "    \"allocs_per_call_warm\": %llu\n"
               "  },\n"
               "  \"schweitzer_mva_workspace\": {\n"
               "    \"solves_per_s\": %.1f,\n"
               "    \"allocs_per_call_warm\": %llu\n"
               "  }\n"
               "}\n",
               hw, jobs, serial_ms, parallel_ms, speedup,
               identical ? "true" : "false", exact.solves_per_s,
               static_cast<unsigned long long>(exact.allocs_per_call),
               approx.solves_per_s,
               static_cast<unsigned long long>(approx.allocs_per_call));
  std::fclose(f);

  std::printf(
      "sweep: serial %.1f ms, parallel(%d jobs) %.1f ms, speedup %.2fx, "
      "identical=%s (host has %u hardware threads)\n",
      serial_ms, jobs, parallel_ms, speedup, identical ? "yes" : "NO",
      hw);
  std::printf("exact MVA (warm workspace): %.0f solves/s, %llu allocs/call\n",
              exact.solves_per_s,
              static_cast<unsigned long long>(exact.allocs_per_call));
  std::printf(
      "schweitzer MVA (warm workspace): %.0f solves/s, %llu allocs/call\n",
      approx.solves_per_s,
      static_cast<unsigned long long>(approx.allocs_per_call));
  if (!identical) return 1;
  if (exact.allocs_per_call != 0 || approx.allocs_per_call != 0) {
    std::fprintf(stderr, "FAIL: warm-workspace MVA solve allocated\n");
    return 1;
  }
  return 0;
}
