// Ablation: multiprogramming level. Sweeps the number of update users per
// node at fixed transaction size to expose the classic lock-thrashing curve
// (cf. Franaszek & Robinson 1985, cited by the paper): throughput rises
// with MPL while the disk has headroom, flattens at saturation, then decays
// as blocking and deadlock-rollback dominate. Model and testbed side by
// side.

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - multiprogramming level (LU-only users, n=12)\n";
  util::TextTable table;
  table.SetHeader({"users/node", "sim XPUT", "model XPUT", "sim blocks/commit",
                   "sim aborts/commit", "sim disk util"});
  for (const int users : {1, 2, 4, 6, 8, 12, 16}) {
    workload::WorkloadSpec wl = workload::MakeLB8(12);
    for (workload::NodeMix& node : wl.nodes) node = {0, users, 0, 0};
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.warmup_ms = 100'000;
    opts.measure_ms = 1'500'000;
    const TestbedResult s = RunTestbed(input, opts);
    std::uint64_t commits = 0, aborts = 0, blocks = 0;
    for (const NodeResult& node : s.nodes) {
      blocks += node.lock_blocks;
      for (const TypeResult& t : node.types) {
        commits += t.commits;
        aborts += t.aborts;
      }
    }
    table.AddRow(
        {std::to_string(users), util::TextTable::Num(s.TotalTxnPerSec()),
         util::TextTable::Num(m.TotalTxnPerSec()),
         util::TextTable::Num(
             commits ? static_cast<double>(blocks) / commits : 0.0, 2),
         util::TextTable::Num(
             commits ? static_cast<double>(aborts) / commits : 0.0, 3),
         util::TextTable::Num(s.nodes[0].db_disk_utilization)});
  }
  table.Print(std::cout);
  std::cout << "\nThe knee: beyond disk saturation, extra users only add\n"
               "conflicts - blocking and rollback eat the concurrency.\n";
  return 0;
}
