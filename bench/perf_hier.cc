// perf_hier - hierarchical site-class solving perf trajectory (DESIGN.md
// §14). Three self-checking measurements, all on the MB4 workload whose
// alternating disk speeds give exactly 2 site classes at any node count:
//
//   1. flat vs collapsed solve at 1024 sites, interleaved median-of-9
//      through warm arenas. The collapsed solve runs the fixed point over 2
//      representatives instead of 1024 sites; the gate (armed on every
//      host — the win is algorithmic, not parallel) requires >= 3x, and the
//      two solutions must be bit-identical.
//   2. a 4096-site / 2-class collapsed Schweitzer solve under a hard
//      wall-clock budget. Headroom is ~30x on an idle host; tripping it
//      means the per-site work crept back into the iteration loop.
//   3. marginal per-iteration cost, isolated by differencing fixed-
//      iteration runs (tolerance 0, 400 vs 200 iterations): per-solve
//      O(sites) work — class detection, seeding, expansion, assembly —
//      cancels in the delta, leaving pure fixed-point stepping. The gate
//      requires the 4096-site marginal cost within 2.5x of the 1024-site
//      one: O(classes) stepping is flat in the site count (both inputs
//      have 2 classes), while O(sites) stepping would quadruple.
//
// An 8-class variant at 1024 sites is reported (unagated) to show the cost
// scales with the class count. Results land in BENCH_hier.json.
// Usage: perf_hier [--out FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "model/solver.h"
#include "workload/spec.h"

namespace {

using Clock = std::chrono::steady_clock;
using carat::model::CaratModel;
using carat::model::ModelInput;
using carat::model::ModelSolution;
using carat::model::SolveArena;
using carat::model::SolverOptions;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

ModelInput MakeInput(int num_nodes, int num_classes) {
  carat::workload::WorkloadSpec spec = carat::workload::MakeMB4(4, num_nodes);
  // One block-I/O speed per class, cycled over the nodes.
  spec.block_io_ms.clear();
  for (int c = 0; c < num_classes; ++c)
    spec.block_io_ms.push_back(28.0 + 12.0 * (c % 2) + 3.0 * (c / 2));
  return spec.ToModelInput();
}

SolverOptions HierOptions(bool collapse) {
  SolverOptions opts;
  opts.use_exact_mva = false;  // slave populations are in the thousands
  opts.collapse_site_classes = collapse;
  return opts;
}

// Median-of-`reps` warm-arena solve time. The first (cold) solve builds the
// arena and is discarded.
double TimedSolveMs(const CaratModel& model, const SolverOptions& opts,
                    int reps, ModelSolution* out) {
  SolveArena arena;
  model.SolveInto(opts, &arena, nullptr, out);
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    model.SolveInto(opts, &arena, nullptr, out);
    ms.push_back(ElapsedMs(start));
  }
  return Median(ms);
}

// Marginal cost of one fixed-point iteration: difference of two
// fixed-iteration runs (tolerance 0 never converges, so the iteration count
// is exactly max_iterations), which cancels every per-solve O(sites) term.
double MarginalIterUs(const CaratModel& model, int reps) {
  constexpr int kShort = 200, kLong = 400;
  SolverOptions opts = HierOptions(true);
  opts.tolerance = 0.0;
  SolveArena arena;
  ModelSolution out;
  opts.max_iterations = kLong;
  model.SolveInto(opts, &arena, nullptr, &out);  // cold
  std::vector<double> us;
  for (int r = 0; r < reps; ++r) {
    opts.max_iterations = kShort;
    Clock::time_point start = Clock::now();
    model.SolveInto(opts, &arena, nullptr, &out);
    const double short_ms = ElapsedMs(start);
    opts.max_iterations = kLong;
    start = Clock::now();
    model.SolveInto(opts, &arena, nullptr, &out);
    const double long_ms = ElapsedMs(start);
    us.push_back((long_ms - short_ms) * 1000.0 / (kLong - kShort));
  }
  return Median(us);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hier.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_hier [--out FILE]\n");
      return 2;
    }
  }

  // ---- 1. Flat vs collapsed at 1024 sites, interleaved. --------------------
  constexpr int kReps = 9;
  const ModelInput input1k = MakeInput(1024, 2);
  const CaratModel model1k(input1k);
  ModelSolution flat_sol, hier_sol;
  std::vector<double> flat_ms_v, hier_ms_v;
  {
    SolveArena flat_arena, hier_arena;
    model1k.SolveInto(HierOptions(false), &flat_arena, nullptr, &flat_sol);
    model1k.SolveInto(HierOptions(true), &hier_arena, nullptr, &hier_sol);
    for (int r = 0; r < kReps; ++r) {
      Clock::time_point start = Clock::now();
      model1k.SolveInto(HierOptions(false), &flat_arena, nullptr, &flat_sol);
      flat_ms_v.push_back(ElapsedMs(start));
      start = Clock::now();
      model1k.SolveInto(HierOptions(true), &hier_arena, nullptr, &hier_sol);
      hier_ms_v.push_back(ElapsedMs(start));
    }
  }
  const double flat_ms = Median(flat_ms_v);
  const double hier_ms = Median(hier_ms_v);
  const double speedup = hier_ms > 0 ? flat_ms / hier_ms : 0.0;

  if (!flat_sol.ok || !flat_sol.converged || !hier_sol.ok ||
      !hier_sol.converged) {
    std::fprintf(stderr, "FAIL: 1024-site solve did not converge\n");
    return 1;
  }
  if (carat::fuzz::ModelSolutionFingerprint(flat_sol) !=
      carat::fuzz::ModelSolutionFingerprint(hier_sol)) {
    std::fprintf(stderr,
                 "FAIL: collapsed solve is not bit-identical to flat\n");
    return 1;
  }
  std::printf("1024 sites / 2 classes: flat %.2f ms, collapsed %.3f ms "
              "(%.1fx, %d iterations)\n",
              flat_ms, hier_ms, speedup, hier_sol.iterations);
  constexpr double kSpeedupFloor = 3.0;
  if (speedup < kSpeedupFloor) {
    std::fprintf(stderr, "FAIL: collapsed speedup %.2fx < %.1fx floor\n",
                 speedup, kSpeedupFloor);
    return 1;
  }

  // ---- 2. 4096-site budget. ------------------------------------------------
  const ModelInput input4k = MakeInput(4096, 2);
  const CaratModel model4k(input4k);
  ModelSolution sol4k;
  const double ms4k = TimedSolveMs(model4k, HierOptions(true), 5, &sol4k);
  if (!sol4k.ok || !sol4k.converged) {
    std::fprintf(stderr, "FAIL: 4096-site solve did not converge\n");
    return 1;
  }
  constexpr double kBudgetMs = 500.0;
  std::printf("4096 sites / 2 classes: %.2f ms (budget %.0f ms)\n", ms4k,
              kBudgetMs);
  if (ms4k > kBudgetMs) {
    std::fprintf(stderr, "FAIL: 4096-site solve %.2f ms > %.0f ms budget\n",
                 ms4k, kBudgetMs);
    return 1;
  }

  // ---- 3. Marginal per-iteration cost. -------------------------------------
  const double iter_us_1k = MarginalIterUs(model1k, 5);
  const double iter_us_4k = MarginalIterUs(model4k, 5);
  const ModelInput input1k8 = MakeInput(1024, 8);
  const double iter_us_1k8 = MarginalIterUs(CaratModel(input1k8), 5);
  const double iter_ratio =
      iter_us_1k > 0 ? iter_us_4k / iter_us_1k : 0.0;
  std::printf("marginal iteration: %.2f us at 1024 sites, %.2f us at 4096 "
              "(%.2fx; 4x would be O(sites)), %.2f us at 1024/8 classes\n",
              iter_us_1k, iter_us_4k, iter_ratio, iter_us_1k8);
  constexpr double kIterRatioCeiling = 2.5;
  if (iter_ratio > kIterRatioCeiling) {
    std::fprintf(stderr,
                 "FAIL: per-iteration cost grew %.2fx from 1024 to 4096 "
                 "sites (ceiling %.1fx) — stepping is no longer O(classes)\n",
                 iter_ratio, kIterRatioCeiling);
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_hier\",\n"
               "  \"collapse_1024\": {\n"
               "    \"flat_ms\": %.3f,\n"
               "    \"hier_ms\": %.3f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"speedup_floor\": %.1f,\n"
               "    \"speedup_gate_armed\": true,\n"
               "    \"iterations\": %d,\n"
               "    \"bit_identical\": true\n"
               "  },\n"
               "  \"solve_4096\": {\n"
               "    \"ms\": %.3f,\n"
               "    \"budget_ms\": %.1f,\n"
               "    \"iterations\": %d\n"
               "  },\n"
               "  \"marginal_iteration_us\": {\n"
               "    \"sites_1024_classes_2\": %.3f,\n"
               "    \"sites_4096_classes_2\": %.3f,\n"
               "    \"sites_1024_classes_8\": %.3f,\n"
               "    \"ratio_4096_vs_1024\": %.3f,\n"
               "    \"ratio_ceiling\": %.1f\n"
               "  }\n"
               "}\n",
               flat_ms, hier_ms, speedup, kSpeedupFloor, hier_sol.iterations,
               ms4k, kBudgetMs, sol4k.iterations, iter_us_1k, iter_us_4k,
               iter_us_1k8, iter_ratio, kIterRatioCeiling);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
