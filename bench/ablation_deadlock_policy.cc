// Ablation: deadlock victim selection policy. The testbed (and the model's
// LW -> TA transition) victimizes the blocked requester; this bench compares
// that against youngest-victim and oldest-victim policies on a contended
// update-heavy workload.

#include <iostream>

#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - deadlock victim policy (MB8)\n";
  util::TextTable table;
  table.SetHeader({"n", "policy", "XPUT", "aborts/commit", "local dl",
                   "global dl"});
  const struct {
    lock::VictimPolicy policy;
    const char* label;
  } kPolicies[] = {{lock::VictimPolicy::kRequester, "requester"},
                   {lock::VictimPolicy::kYoungest, "youngest"},
                   {lock::VictimPolicy::kOldest, "oldest"}};
  for (const int n : {8, 12, 16, 20}) {
    for (const auto& [policy, label] : kPolicies) {
      const model::ModelInput input = workload::MakeMB8(n).ToModelInput();
      TestbedOptions opts;
      opts.warmup_ms = 100'000;
      opts.measure_ms = 1'500'000;
      opts.victim_policy = policy;
      const TestbedResult r = RunTestbed(input, opts);
      std::uint64_t aborts = 0, commits = 0, local = 0;
      for (const NodeResult& node : r.nodes) {
        local += node.local_deadlocks;
        for (const TypeResult& t : node.types) {
          aborts += t.aborts;
          commits += t.commits;
        }
      }
      table.AddRow({std::to_string(n), label,
                    util::TextTable::Num(r.TotalTxnPerSec()),
                    util::TextTable::Num(
                        commits ? static_cast<double>(aborts) / commits : 0.0, 3),
                    std::to_string(local),
                    std::to_string(r.global_deadlocks)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
