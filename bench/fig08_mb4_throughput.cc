// Figure 8 of the paper: MB4 workload, normalized record throughput at both
// nodes versus transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeMB4(n); });
  bench::PrintFigure(
      "Figure 8 - MB4 Workload: Record Throughput",
      "recs/s", points, /*node_index=*/-1,
      [](const NodeResult& n) { return n.records_per_s; },
      [](const model::SiteSolution& s) { return s.records_per_s; });
  return 0;
}
