// Figure 10 of the paper: MB4 workload, disk I/O rate at both nodes versus
// transaction size n, model vs measurement.

#include "repro_common.h"

int main() {
  using namespace carat;
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeMB4(n); });
  bench::PrintFigure(
      "Figure 10 - MB4 Workload: Disk I/O Rate",
      "dio/s", points, /*node_index=*/-1,
      [](const NodeResult& n) { return n.dio_per_s; },
      [](const model::SiteSolution& s) { return s.dio_per_s; });
  return 0;
}
