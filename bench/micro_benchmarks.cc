// google-benchmark microbenchmarks for the library's hot paths: the MVA
// solvers, the full model fixed point, the lock manager, the WAL, Yao's
// formula, and the DES kernel.

#include <benchmark/benchmark.h>

#include "carat/testbed.h"
#include "lock/lock_manager.h"
#include "model/solver.h"
#include "model/transition.h"
#include "model/yao.h"
#include "qn/mva.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "wal/log.h"
#include "workload/spec.h"

namespace {

using namespace carat;

qn::ClosedNetwork MakeNetwork(int chains, int population) {
  qn::ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", qn::CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("disk", qn::CenterKind::kQueueing);
  const std::size_t dly = net.AddCenter("dly", qn::CenterKind::kDelay);
  for (int k = 0; k < chains; ++k) {
    const std::size_t c =
        net.AddChain("k" + std::to_string(k), population, 5.0);
    net.chains[c].demands[cpu] = 1.0 + 0.3 * k;
    net.chains[c].demands[disk] = 2.0 + 0.1 * k;
    net.chains[c].demands[dly] = 4.0;
  }
  return net;
}

void BM_ExactMva(benchmark::State& state) {
  const qn::ClosedNetwork net =
      MakeNetwork(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qn::ExactMva(net));
  }
}
BENCHMARK(BM_ExactMva)->Arg(2)->Arg(4)->Arg(6);

void BM_SchweitzerMva(benchmark::State& state) {
  const qn::ClosedNetwork net =
      MakeNetwork(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qn::SchweitzerMva(net));
  }
}
BENCHMARK(BM_SchweitzerMva)->Arg(4)->Arg(8)->Arg(16);

void BM_ModelSolve(benchmark::State& state) {
  const model::ModelInput input =
      workload::MakeMB8(static_cast<int>(state.range(0))).ToModelInput();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::CaratModel(input).Solve());
  }
}
BENCHMARK(BM_ModelSolve)->Arg(4)->Arg(12)->Arg(20);

void BM_VisitCounts(benchmark::State& state) {
  model::TransitionInputs in;
  in.local_requests = 10;
  in.remote_requests = 5;
  in.io_per_request = 4.0;
  in.pb = 0.05;
  in.pd = 0.01;
  in.pra = 0.01;
  const model::TransitionMatrix p = model::BuildLocalOrCoordinatorMatrix(in);
  model::VisitCounts v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::SolveVisitCounts(p, &v));
  }
}
BENCHMARK(BM_VisitCounts);

void BM_Yao(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::YaoExpectedBlocks(18000, 3000, state.range(0)));
  }
}
BENCHMARK(BM_Yao)->Arg(16)->Arg(80);

sim::Process AcquireRelease(lock::LockManager& lm, lock::TxnId txn,
                            std::size_t granules) {
  for (std::size_t g = 0; g < granules; ++g) {
    co_await lm.Acquire(txn, static_cast<db::GranuleId>(g),
                        lock::LockMode::kExclusive);
  }
  lm.ReleaseAll(txn);
}

void BM_LockAcquireRelease(benchmark::State& state) {
  const std::size_t granules = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    lock::LockManager lm(sim);
    lm.StartTxn(1);
    AcquireRelease(lm, 1, granules);
    sim.RunUntil(1.0);
    lm.EndTxn(1);
    benchmark::DoNotOptimize(lm.requests());
  }
  state.SetItemsProcessed(state.iterations() * granules);
}
BENCHMARK(BM_LockAcquireRelease)->Arg(16)->Arg(128);

void BM_WalJournalAndRollback(benchmark::State& state) {
  const int updates = static_cast<int>(state.range(0));
  db::Database d(3000, 6);
  for (auto _ : state) {
    wal::Log log;
    for (int i = 0; i < updates; ++i) {
      log.LogBeforeImage(1, i, d.ReadGranule(i));
      d.Write(i * 6, 1);
    }
    benchmark::DoNotOptimize(log.Rollback(1, &d));
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_WalJournalAndRollback)->Arg(16)->Arg(64);

void BM_SimKernelEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 10000;
    std::function<void()> tick = [&]() {
      if (--remaining > 0) sim.Schedule(1.0, tick);
    };
    sim.Schedule(0.0, tick);
    sim.RunUntil(1e9);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimKernelEventThroughput);

void BM_TestbedSecondOfSimTime(benchmark::State& state) {
  const model::ModelInput input = workload::MakeMB4(8).ToModelInput();
  for (auto _ : state) {
    TestbedOptions opts;
    opts.warmup_ms = 0;
    opts.measure_ms = 1'000;
    benchmark::DoNotOptimize(RunTestbed(input, opts));
  }
}
BENCHMARK(BM_TestbedSecondOfSimTime);

}  // namespace

BENCHMARK_MAIN();
