// Ablation (paper future work): nonuniform database access. Sweeps hot-spot
// severity - a fraction of the granules receiving most of the accesses -
// and reports the contention blow-up in both model and testbed. The paper's
// validation assumed uniform access; this shows how far that assumption
// carries.

#include <iostream>

#include "model/yao.h"
#include "repro_common.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Ablation - hot-spot access skew (MB8, n=8)\n";
  util::TextTable table;
  table.SetHeader({"hot data", "hot access", "f (model)", "model XPUT",
                   "sim XPUT", "model Pb(LU)", "sim blocks/req",
                   "sim deadlocks/1000s"});
  struct Case {
    double s, a;
  };
  for (const Case& c : {Case{0.0, 0.0}, Case{0.2, 0.5}, Case{0.1, 0.5},
                        Case{0.1, 0.8}, Case{0.05, 0.8}, Case{0.02, 0.8}}) {
    workload::WorkloadSpec wl = workload::MakeMB8(8);
    wl.hot_data_fraction = c.s;
    wl.hot_access_fraction = c.a;
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.warmup_ms = 100'000;
    opts.measure_ms = 1'000'000;
    const TestbedResult s = RunTestbed(input, opts);
    const model::AccessSkew skew{c.s > 0 ? c.s : 1.0, c.a > 0 ? c.a : 1.0};
    std::uint64_t deadlocks = s.global_deadlocks;
    for (const NodeResult& n : s.nodes) deadlocks += n.local_deadlocks;
    table.AddRow(
        {util::TextTable::Num(c.s, 2), util::TextTable::Num(c.a, 2),
         util::TextTable::Num(skew.ContentionFactor(), 1),
         util::TextTable::Num(m.TotalTxnPerSec()),
         util::TextTable::Num(s.TotalTxnPerSec()),
         util::TextTable::Num(m.sites[0].Class(model::TxnType::kLU).pb, 4),
         util::TextTable::Num(
             s.nodes[0].lock_requests
                 ? static_cast<double>(s.nodes[0].lock_blocks) /
                       s.nodes[0].lock_requests
                 : 0.0,
             4),
         std::to_string(deadlocks)});
  }
  table.Print(std::cout);
  return 0;
}
