#include "repro_common.h"

#include <cstdio>
#include <iostream>
#include <optional>

#include "exec/thread_pool.h"
#include "util/table.h"

namespace carat::bench {

std::vector<SweepPoint> RunSweep(
    const std::function<workload::WorkloadSpec(int)>& make,
    const std::vector<int>& sizes, double measure_ms, std::uint64_t seed,
    int jobs) {
  std::vector<SweepPoint> points(sizes.size());
  // Each (workload, n, seed) point is an independent model solve plus an
  // independently seeded testbed run; fan them out over the pool and write
  // results by index so ordering (and every bit of output) matches --jobs 1.
  std::optional<exec::ThreadPool> pool;
  if (jobs != 1) pool.emplace(jobs <= 0 ? 0 : static_cast<std::size_t>(jobs));
  exec::ParallelFor(pool ? &*pool : nullptr, 0, sizes.size(),
                    [&](std::size_t idx) {
                      SweepPoint& point = points[idx];
                      point.n = sizes[idx];
                      const workload::WorkloadSpec wl = make(point.n);
                      const model::ModelInput input = wl.ToModelInput();
                      point.model = model::CaratModel(input).Solve();
                      TestbedOptions opts;
                      opts.seed = seed;
                      opts.warmup_ms = 100'000;
                      opts.measure_ms = measure_ms;
                      point.sim = RunTestbed(input, opts);
                    });
  return points;
}

void PrintFigure(const std::string& title, const std::string& metric_name,
                 const std::vector<SweepPoint>& points, int node_index,
                 const SimMetric& sim_metric, const ModelMetric& model_metric) {
  std::cout << title << "\n";
  util::TextTable table;
  std::vector<std::string> header = {"n"};
  const std::size_t num_nodes =
      points.empty() ? 0 : points.front().sim.nodes.size();
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (node_index >= 0 && static_cast<int>(i) != node_index) continue;
    const std::string node = points.front().sim.nodes[i].name;
    header.push_back(node + " meas " + metric_name);
    header.push_back(node + " model " + metric_name);
  }
  table.SetHeader(header);
  for (const SweepPoint& p : points) {
    std::vector<std::string> row = {std::to_string(p.n)};
    for (std::size_t i = 0; i < num_nodes; ++i) {
      if (node_index >= 0 && static_cast<int>(i) != node_index) continue;
      row.push_back(util::TextTable::Num(sim_metric(p.sim.nodes[i])));
      row.push_back(util::TextTable::Num(model_metric(p.model.sites[i])));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintSummaryTable(const std::string& title,
                       const std::vector<SweepPoint>& points,
                       const std::vector<PaperRow>& paper) {
  std::cout << title << "\n";
  util::TextTable table;
  table.SetHeader({"n", "Node", "XPUT", "CPU", "DIO", "XPUT", "CPU", "DIO",
                   "XPUT", "CPU", "DIO", "XPUT", "CPU", "DIO"});
  table.AddRow({"", "", "-- ours: meas --", "", "", "-- ours: model --", "",
                "", "-- paper: meas --", "", "", "-- paper: model --"});
  table.AddSeparator();
  for (const SweepPoint& p : points) {
    for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(p.n));
      row.push_back(p.sim.nodes[i].name);
      row.push_back(util::TextTable::Num(p.sim.nodes[i].txn_per_s));
      row.push_back(util::TextTable::Num(p.sim.nodes[i].cpu_utilization));
      row.push_back(util::TextTable::Num(p.sim.nodes[i].dio_per_s, 1));
      row.push_back(util::TextTable::Num(p.model.sites[i].txn_per_s));
      row.push_back(util::TextTable::Num(p.model.sites[i].cpu_utilization));
      row.push_back(util::TextTable::Num(p.model.sites[i].dio_per_s, 1));
      for (const PaperRow& pr : paper) {
        if (pr.n == p.n && pr.node == static_cast<int>(i)) {
          row.push_back(util::TextTable::Num(pr.meas_xput));
          row.push_back(util::TextTable::Num(pr.meas_cpu));
          row.push_back(util::TextTable::Num(pr.meas_dio, 1));
          row.push_back(util::TextTable::Num(pr.model_xput));
          row.push_back(util::TextTable::Num(pr.model_cpu));
          row.push_back(util::TextTable::Num(pr.model_dio, 1));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace carat::bench
