#include "repro_common.h"

#include <cstdio>
#include <future>
#include <iostream>
#include <utility>

#include "exec/thread_pool.h"
#include "serve/solver_service.h"
#include "util/table.h"

namespace carat::bench {

std::vector<SweepPoint> RunSweep(
    const std::function<workload::WorkloadSpec(int)>& make,
    const std::vector<int>& sizes, double measure_ms, std::uint64_t seed,
    int jobs) {
  std::vector<SweepPoint> points(sizes.size());
  std::vector<model::ModelInput> inputs;
  inputs.reserve(sizes.size());
  for (const int n : sizes) inputs.push_back(make(n).ToModelInput());

  // Model side: one non-blocking batch submission through the solving
  // service. The sweep's same-shape points solve in lockstep SoA blocks
  // (SubmitBatch groups by shape), which is bit-identical per point to a
  // plain CaratModel::Solve() — warm starting stays off so every solve is
  // cold — while the service still deduplicates repeated sizes via its
  // solution cache and reuses per-shape batch arenas.
  serve::SolverService::Options sopts;
  sopts.threads = jobs <= 0 ? 0 : static_cast<std::size_t>(jobs);
  sopts.warm_start = false;
  serve::SolverService service(std::move(sopts));
  std::vector<std::future<model::ModelSolution>> solves =
      service.SubmitBatch(inputs);

  // Testbed side: each point is an independently seeded run; fan out over
  // the same pool — the model solves submitted above interleave with the
  // testbed replays instead of forming a separate serial phase — and write
  // results by index so ordering (and every bit of output) matches
  // jobs == 1.
  exec::ParallelFor(service.pool(), 0, sizes.size(), [&](std::size_t idx) {
    SweepPoint& point = points[idx];
    point.n = sizes[idx];
    TestbedOptions opts;
    opts.seed = seed;
    opts.warmup_ms = 100'000;
    opts.measure_ms = measure_ms;
    point.sim = RunTestbed(inputs[idx], opts);
  });
  for (std::size_t idx = 0; idx < solves.size(); ++idx) {
    points[idx].model = solves[idx].get();
  }
  return points;
}

void PrintFigure(const std::string& title, const std::string& metric_name,
                 const std::vector<SweepPoint>& points, int node_index,
                 const SimMetric& sim_metric, const ModelMetric& model_metric) {
  std::cout << title << "\n";
  util::TextTable table;
  std::vector<std::string> header = {"n"};
  const std::size_t num_nodes =
      points.empty() ? 0 : points.front().sim.nodes.size();
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (node_index >= 0 && static_cast<int>(i) != node_index) continue;
    const std::string node = points.front().sim.nodes[i].name;
    header.push_back(node + " meas " + metric_name);
    header.push_back(node + " model " + metric_name);
  }
  table.SetHeader(header);
  for (const SweepPoint& p : points) {
    std::vector<std::string> row = {std::to_string(p.n)};
    for (std::size_t i = 0; i < num_nodes; ++i) {
      if (node_index >= 0 && static_cast<int>(i) != node_index) continue;
      row.push_back(util::TextTable::Num(sim_metric(p.sim.nodes[i])));
      row.push_back(util::TextTable::Num(model_metric(p.model.sites[i])));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PrintSummaryTable(const std::string& title,
                       const std::vector<SweepPoint>& points,
                       const std::vector<PaperRow>& paper) {
  std::cout << title << "\n";
  util::TextTable table;
  table.SetHeader({"n", "Node", "XPUT", "CPU", "DIO", "XPUT", "CPU", "DIO",
                   "XPUT", "CPU", "DIO", "XPUT", "CPU", "DIO"});
  table.AddRow({"", "", "-- ours: meas --", "", "", "-- ours: model --", "",
                "", "-- paper: meas --", "", "", "-- paper: model --"});
  table.AddSeparator();
  for (const SweepPoint& p : points) {
    for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(p.n));
      row.push_back(p.sim.nodes[i].name);
      row.push_back(util::TextTable::Num(p.sim.nodes[i].txn_per_s));
      row.push_back(util::TextTable::Num(p.sim.nodes[i].cpu_utilization));
      row.push_back(util::TextTable::Num(p.sim.nodes[i].dio_per_s, 1));
      row.push_back(util::TextTable::Num(p.model.sites[i].txn_per_s));
      row.push_back(util::TextTable::Num(p.model.sites[i].cpu_utilization));
      row.push_back(util::TextTable::Num(p.model.sites[i].dio_per_s, 1));
      for (const PaperRow& pr : paper) {
        if (pr.n == p.n && pr.node == static_cast<int>(i)) {
          row.push_back(util::TextTable::Num(pr.meas_xput));
          row.push_back(util::TextTable::Num(pr.meas_cpu));
          row.push_back(util::TextTable::Num(pr.meas_dio, 1));
          row.push_back(util::TextTable::Num(pr.model_xput));
          row.push_back(util::TextTable::Num(pr.model_cpu));
          row.push_back(util::TextTable::Num(pr.model_dio, 1));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace carat::bench
