// perf_fuzz - establishes the fuzz subsystem's perf trajectory. Measures
//
//   1. generator throughput: scenarios drawn (and validated) per second —
//      generation must stay cheap enough that checking, not drawing,
//      dominates the fuzz loop;
//   2. checking throughput: scenarios per second through the full
//      model-level rule set (the nightly budget in scenario counts follows
//      directly from this number);
//
// and, as a hard gate, requires the measured run to be violation-free: a
// perf PR that breaks a metamorphic relation fails here before it ever
// reaches the nightly fuzzer.
//
// Results land in BENCH_fuzz.json (cwd) so successive PRs can track the
// numbers. Usage: perf_fuzz [--scenarios N] [--out FILE]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz/fuzzer.h"
#include "util/random.h"

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedS(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int scenarios = 150;
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenarios" && i + 1 < argc) {
      scenarios = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_fuzz [--scenarios N] [--out FILE]\n");
      return 2;
    }
  }

  // ---- 1. Generator throughput. --------------------------------------------
  const int kGenDraws = 5000;
  double gen_per_s = 0.0;
  {
    carat::util::Rng rng(99);
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < kGenDraws; ++i) {
      const carat::fuzz::Scenario s = carat::fuzz::GenerateScenario(&rng);
      if (s.input.sites.empty()) {
        std::fprintf(stderr, "FAIL: generator produced an empty scenario\n");
        return 1;
      }
    }
    gen_per_s = kGenDraws / ElapsedS(start);
  }

  // ---- 2. Checking throughput + the zero-violation gate. -------------------
  carat::fuzz::FuzzOptions opts;
  opts.seed = 20260807;
  opts.num_scenarios = scenarios;
  opts.minimize = false;
  const Clock::time_point start = Clock::now();
  const carat::fuzz::FuzzReport report = carat::fuzz::RunFuzz(opts);
  const double check_s = ElapsedS(start);

  for (const carat::fuzz::Violation& v : report.violations) {
    std::fprintf(stderr, "FAIL: %s: %s\n", carat::fuzz::RuleName(v.rule),
                 v.detail.c_str());
  }
  if (!report.violations.empty()) return 1;

  const double scen_per_s =
      check_s > 0 ? report.scenarios / check_s : 0.0;
  std::printf("generator: %.0f scenarios/s\n", gen_per_s);
  std::printf("checker:   %d scenarios, %lld relation checks in %.2f s "
              "(%.1f scenarios/s), 0 violations\n",
              report.scenarios, report.stats.checked, check_s, scen_per_s);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_fuzz\",\n"
               "  \"generator\": {\n"
               "    \"draws\": %d,\n"
               "    \"scenarios_per_s\": %.1f\n"
               "  },\n"
               "  \"checker\": {\n"
               "    \"scenarios\": %d,\n"
               "    \"relation_checks\": %lld,\n"
               "    \"skipped\": %lld,\n"
               "    \"seconds\": %.3f,\n"
               "    \"scenarios_per_s\": %.1f,\n"
               "    \"violations\": %zu\n"
               "  }\n"
               "}\n",
               kGenDraws, gen_per_s, report.scenarios, report.stats.checked,
               report.stats.skipped, check_s, scen_per_s,
               report.violations.size());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
