// Concurrency-control backend perf trajectory: sustained testbed throughput
// of every cc::Backend at the paper's two contention levels.
//
//   paper tier — MB8 (n = 8, 2 nodes) at the paper's 3000 granules/node:
//     lock conflicts are rare, so all four backends should deliver the same
//     committed throughput to within a small tolerance.
//   contended tier — MB8 (n = 8, 4 nodes) squeezed onto 150 granules/node
//     with a 5 ms communication delay: 2PL thrashes on deadlocks while the
//     queue backend, deadlock-free by construction, keeps committing.
//
// Hard gates (a red run is a regression, not noise):
//   * every run completes with a consistent database and > 0 commits,
//   * the queue backend records zero deadlocks, zero aborts and zero probes
//     at both tiers,
//   * under contention the queue backend commits at least as many
//     transactions as 2PL, and 2PL's deadlock detector actually fires
//     (proving the tier exercises the policies, not just the code path).
//
// Results land in BENCH_cc.json (cwd) so successive PRs can track the
// per-backend trajectory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "carat/testbed.h"
#include "cc/cc.h"
#include "workload/spec.h"

namespace {

struct RunStats {
  bool ok = false;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  double txn_per_s = 0.0;  ///< virtual-time committed throughput
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t deadlocks = 0;  ///< local + global
  std::uint64_t probes = 0;
};

RunStats RunOnce(const carat::workload::WorkloadSpec& spec,
                 const carat::TestbedOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  const carat::TestbedResult result =
      carat::RunTestbed(spec.ToModelInput(), opts);
  const auto stop = std::chrono::steady_clock::now();
  RunStats stats;
  if (!result.ok || !result.database_consistent) {
    std::fprintf(stderr, "FAIL: cc=%s: %s\n",
                 std::string(carat::cc::Name(spec.cc_backend)).c_str(),
                 result.ok ? "database inconsistent" : result.error.c_str());
    return stats;
  }
  stats.ok = true;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.events = result.events;
  stats.events_per_s =
      stats.wall_ms > 0.0 ? 1000.0 * result.events / stats.wall_ms : 0.0;
  stats.txn_per_s = result.TotalTxnPerSec();
  stats.deadlocks = result.global_deadlocks;
  stats.probes = result.probes_sent;
  for (const auto& node : result.nodes) {
    stats.deadlocks += node.local_deadlocks;
    for (const auto& type : node.types) {
      stats.commits += type.commits;
      stats.aborts += type.aborts;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;

  std::string out_path = "BENCH_cc.json";
  double paper_measure_ms = 400'000.0;
  double contended_measure_ms = 100'000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--measure-ms") == 0 && i + 1 < argc) {
      paper_measure_ms = std::atof(argv[++i]);
      contended_measure_ms = paper_measure_ms;
    } else {
      std::fprintf(stderr, "usage: perf_cc [--out FILE] [--measure-ms N]\n");
      return 2;
    }
  }

  struct Tier {
    const char* name;
    workload::WorkloadSpec spec;
    TestbedOptions opts;
  };
  Tier tiers[2];

  tiers[0].name = "paper";
  tiers[0].spec = workload::MakeMB8(8, 2);
  tiers[0].opts.seed = 5;
  tiers[0].opts.warmup_ms = 20'000;
  tiers[0].opts.measure_ms = paper_measure_ms;
  tiers[0].opts.shards = 0;  // hardware

  tiers[1].name = "contended";
  tiers[1].spec = workload::MakeMB8(8, 4);
  tiers[1].spec.comm_delay_ms = 5.0;
  tiers[1].spec.num_granules = 150;
  tiers[1].opts.seed = 3;
  tiers[1].opts.warmup_ms = 10'000;
  tiers[1].opts.measure_ms = contended_measure_ms;
  tiers[1].opts.shards = 0;  // hardware

  bool ok = true;
  RunStats stats[2][cc::kNumBackends];
  for (int t = 0; t < 2; ++t) {
    for (const cc::BackendKind kind : cc::kAllBackends) {
      workload::WorkloadSpec spec = tiers[t].spec;
      spec.cc_backend = kind;
      const int b = static_cast<int>(kind);
      stats[t][b] = RunOnce(spec, tiers[t].opts);
      const RunStats& s = stats[t][b];
      if (!s.ok || s.commits == 0) {
        std::fprintf(stderr, "FAIL: tier=%s cc=%s: no committed work\n",
                     tiers[t].name, std::string(cc::Name(kind)).c_str());
        ok = false;
        continue;
      }
      std::printf(
          "%-9s %-7s %6llu commits %6llu aborts %5llu deadlocks "
          "%8.3f txn/s  %.0f events/s wall\n",
          tiers[t].name, std::string(cc::Name(kind)).c_str(),
          static_cast<unsigned long long>(s.commits),
          static_cast<unsigned long long>(s.aborts),
          static_cast<unsigned long long>(s.deadlocks), s.txn_per_s,
          s.events_per_s);
      if (kind == cc::BackendKind::kQueue &&
          (s.deadlocks != 0 || s.aborts != 0 || s.probes != 0)) {
        std::fprintf(stderr,
                     "FAIL: tier=%s: queue backend recorded deadlocks=%llu "
                     "aborts=%llu probes=%llu (must all be zero)\n",
                     tiers[t].name,
                     static_cast<unsigned long long>(s.deadlocks),
                     static_cast<unsigned long long>(s.aborts),
                     static_cast<unsigned long long>(s.probes));
        ok = false;
      }
    }
  }

  const RunStats& c_2pl = stats[1][static_cast<int>(cc::BackendKind::k2PL)];
  const RunStats& c_queue = stats[1][static_cast<int>(cc::BackendKind::kQueue)];
  if (c_2pl.ok && c_queue.ok) {
    if (c_queue.commits < c_2pl.commits) {
      std::fprintf(stderr,
                   "FAIL: contended: queue committed %llu < 2pl's %llu\n",
                   static_cast<unsigned long long>(c_queue.commits),
                   static_cast<unsigned long long>(c_2pl.commits));
      ok = false;
    }
    if (c_2pl.deadlocks == 0) {
      std::fprintf(stderr,
                   "FAIL: contended tier produced no 2pl deadlocks — the "
                   "tier no longer stresses the policies\n");
      ok = false;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_cc\",\n"
               "  \"tiers\": [\n");
  for (int t = 0; t < 2; ++t) {
    std::fprintf(f,
                 "    {\n"
                 "      \"tier\": \"%s\",\n"
                 "      \"workload\": \"mb8 n=8 nodes=%d granules=%d "
                 "alpha=%gms\",\n"
                 "      \"measure_ms\": %.0f,\n"
                 "      \"backends\": [\n",
                 tiers[t].name, static_cast<int>(tiers[t].spec.nodes.size()),
                 tiers[t].spec.num_granules, tiers[t].spec.comm_delay_ms,
                 tiers[t].opts.measure_ms);
    for (const cc::BackendKind kind : cc::kAllBackends) {
      const RunStats& s = stats[t][static_cast<int>(kind)];
      std::fprintf(
          f,
          "        {\"cc\": \"%s\", \"commits\": %llu, \"aborts\": %llu, "
          "\"deadlocks\": %llu, \"probes\": %llu, \"txn_per_s\": %.4f, "
          "\"events\": %llu, \"wall_ms\": %.3f, \"events_per_s\": %.1f}%s\n",
          std::string(cc::Name(kind)).c_str(),
          static_cast<unsigned long long>(s.commits),
          static_cast<unsigned long long>(s.aborts),
          static_cast<unsigned long long>(s.deadlocks),
          static_cast<unsigned long long>(s.probes), s.txn_per_s,
          static_cast<unsigned long long>(s.events), s.wall_ms,
          s.events_per_s, kind == cc::BackendKind::kQueue ? "" : ",");
    }
    std::fprintf(f,
                 "      ]\n"
                 "    }%s\n",
                 t == 0 ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"gates_green\": %s\n"
               "}\n",
               ok ? "true" : "false");
  std::fclose(f);

  std::printf("gates: %s\n", ok ? "green" : "RED");
  return ok ? 0 : 1;
}
