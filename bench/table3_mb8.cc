// Table 3 of the paper: MB8 workload, model vs measurement for TR-XPUT,
// Total-CPU and Total-DIO at both nodes over the n sweep, with the paper's
// published values as reference columns.

#include "repro_common.h"

int main() {
  using namespace carat;
  using bench::PaperRow;
  // Paper Table 3 (MB8): measurement and model triplets per (n, node).
  const std::vector<PaperRow> paper = {
      {4, 0, 0.94, 0.45, 28.9, 1.11, 0.55, 35.1},
      {4, 1, 0.72, 0.36, 21.9, 0.79, 0.42, 25.0},
      {8, 0, 0.45, 0.36, 28.1, 0.54, 0.45, 32.8},
      {8, 1, 0.39, 0.32, 23.2, 0.41, 0.36, 24.6},
      {12, 0, 0.23, 0.31, 26.3, 0.27, 0.33, 27.5},
      {12, 1, 0.21, 0.27, 22.5, 0.23, 0.29, 22.6},
      {16, 0, 0.15, 0.26, 23.4, 0.14, 0.26, 25.6},
      {16, 1, 0.12, 0.25, 23.0, 0.13, 0.23, 21.4},
      {20, 0, 0.09, 0.27, 23.9, 0.09, 0.27, 30.8},
      {20, 1, 0.08, 0.26, 23.8, 0.08, 0.22, 23.6},
  };
  const auto points = bench::RunSweep(
      [](int n) { return workload::MakeMB8(n); });
  bench::PrintSummaryTable(
      "Table 3 - Model vs Measurement Results (MB8)", points, paper);
  return 0;
}
