# Empty compiler generated dependencies file for carat_model.
# This may be replaced when dependencies are built.
