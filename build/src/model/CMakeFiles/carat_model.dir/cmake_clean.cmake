file(REMOVE_RECURSE
  "CMakeFiles/carat_model.dir/demands.cc.o"
  "CMakeFiles/carat_model.dir/demands.cc.o.d"
  "CMakeFiles/carat_model.dir/lock_model.cc.o"
  "CMakeFiles/carat_model.dir/lock_model.cc.o.d"
  "CMakeFiles/carat_model.dir/params.cc.o"
  "CMakeFiles/carat_model.dir/params.cc.o.d"
  "CMakeFiles/carat_model.dir/solver.cc.o"
  "CMakeFiles/carat_model.dir/solver.cc.o.d"
  "CMakeFiles/carat_model.dir/transition.cc.o"
  "CMakeFiles/carat_model.dir/transition.cc.o.d"
  "CMakeFiles/carat_model.dir/yao.cc.o"
  "CMakeFiles/carat_model.dir/yao.cc.o.d"
  "libcarat_model.a"
  "libcarat_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
