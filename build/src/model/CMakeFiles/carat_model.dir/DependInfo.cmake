
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/demands.cc" "src/model/CMakeFiles/carat_model.dir/demands.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/demands.cc.o.d"
  "/root/repo/src/model/lock_model.cc" "src/model/CMakeFiles/carat_model.dir/lock_model.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/lock_model.cc.o.d"
  "/root/repo/src/model/params.cc" "src/model/CMakeFiles/carat_model.dir/params.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/params.cc.o.d"
  "/root/repo/src/model/solver.cc" "src/model/CMakeFiles/carat_model.dir/solver.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/solver.cc.o.d"
  "/root/repo/src/model/transition.cc" "src/model/CMakeFiles/carat_model.dir/transition.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/transition.cc.o.d"
  "/root/repo/src/model/yao.cc" "src/model/CMakeFiles/carat_model.dir/yao.cc.o" "gcc" "src/model/CMakeFiles/carat_model.dir/yao.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qn/CMakeFiles/carat_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/carat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
