file(REMOVE_RECURSE
  "libcarat_model.a"
)
