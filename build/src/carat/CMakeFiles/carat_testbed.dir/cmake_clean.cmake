file(REMOVE_RECURSE
  "CMakeFiles/carat_testbed.dir/testbed.cc.o"
  "CMakeFiles/carat_testbed.dir/testbed.cc.o.d"
  "libcarat_testbed.a"
  "libcarat_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
