file(REMOVE_RECURSE
  "libcarat_testbed.a"
)
