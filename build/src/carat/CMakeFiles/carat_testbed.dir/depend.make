# Empty dependencies file for carat_testbed.
# This may be replaced when dependencies are built.
