file(REMOVE_RECURSE
  "CMakeFiles/carat_sim.dir/resource.cc.o"
  "CMakeFiles/carat_sim.dir/resource.cc.o.d"
  "CMakeFiles/carat_sim.dir/simulation.cc.o"
  "CMakeFiles/carat_sim.dir/simulation.cc.o.d"
  "libcarat_sim.a"
  "libcarat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
