# Empty compiler generated dependencies file for carat_sim.
# This may be replaced when dependencies are built.
