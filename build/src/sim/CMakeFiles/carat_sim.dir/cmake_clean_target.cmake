file(REMOVE_RECURSE
  "libcarat_sim.a"
)
