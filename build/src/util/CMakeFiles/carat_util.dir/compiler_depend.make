# Empty compiler generated dependencies file for carat_util.
# This may be replaced when dependencies are built.
