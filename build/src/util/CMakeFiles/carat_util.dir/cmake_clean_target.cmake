file(REMOVE_RECURSE
  "libcarat_util.a"
)
