file(REMOVE_RECURSE
  "CMakeFiles/carat_util.dir/linear.cc.o"
  "CMakeFiles/carat_util.dir/linear.cc.o.d"
  "CMakeFiles/carat_util.dir/stats.cc.o"
  "CMakeFiles/carat_util.dir/stats.cc.o.d"
  "CMakeFiles/carat_util.dir/table.cc.o"
  "CMakeFiles/carat_util.dir/table.cc.o.d"
  "libcarat_util.a"
  "libcarat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
