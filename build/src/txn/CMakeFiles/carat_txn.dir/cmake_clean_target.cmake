file(REMOVE_RECURSE
  "libcarat_txn.a"
)
