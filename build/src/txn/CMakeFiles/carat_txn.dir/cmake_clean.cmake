file(REMOVE_RECURSE
  "CMakeFiles/carat_txn.dir/node.cc.o"
  "CMakeFiles/carat_txn.dir/node.cc.o.d"
  "CMakeFiles/carat_txn.dir/probes.cc.o"
  "CMakeFiles/carat_txn.dir/probes.cc.o.d"
  "libcarat_txn.a"
  "libcarat_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
