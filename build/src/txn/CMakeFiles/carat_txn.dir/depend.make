# Empty dependencies file for carat_txn.
# This may be replaced when dependencies are built.
