file(REMOVE_RECURSE
  "libcarat_lock.a"
)
