# Empty dependencies file for carat_lock.
# This may be replaced when dependencies are built.
