file(REMOVE_RECURSE
  "CMakeFiles/carat_lock.dir/lock_manager.cc.o"
  "CMakeFiles/carat_lock.dir/lock_manager.cc.o.d"
  "libcarat_lock.a"
  "libcarat_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
