file(REMOVE_RECURSE
  "CMakeFiles/carat_workload.dir/spec.cc.o"
  "CMakeFiles/carat_workload.dir/spec.cc.o.d"
  "libcarat_workload.a"
  "libcarat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
