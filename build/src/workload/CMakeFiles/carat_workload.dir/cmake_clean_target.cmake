file(REMOVE_RECURSE
  "libcarat_workload.a"
)
