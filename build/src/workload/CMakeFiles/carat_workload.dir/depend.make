# Empty dependencies file for carat_workload.
# This may be replaced when dependencies are built.
