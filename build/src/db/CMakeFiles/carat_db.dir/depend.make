# Empty dependencies file for carat_db.
# This may be replaced when dependencies are built.
