file(REMOVE_RECURSE
  "CMakeFiles/carat_db.dir/buffer_pool.cc.o"
  "CMakeFiles/carat_db.dir/buffer_pool.cc.o.d"
  "CMakeFiles/carat_db.dir/database.cc.o"
  "CMakeFiles/carat_db.dir/database.cc.o.d"
  "libcarat_db.a"
  "libcarat_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
