file(REMOVE_RECURSE
  "libcarat_db.a"
)
