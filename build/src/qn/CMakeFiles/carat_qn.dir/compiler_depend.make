# Empty compiler generated dependencies file for carat_qn.
# This may be replaced when dependencies are built.
