
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qn/bounds.cc" "src/qn/CMakeFiles/carat_qn.dir/bounds.cc.o" "gcc" "src/qn/CMakeFiles/carat_qn.dir/bounds.cc.o.d"
  "/root/repo/src/qn/ethernet.cc" "src/qn/CMakeFiles/carat_qn.dir/ethernet.cc.o" "gcc" "src/qn/CMakeFiles/carat_qn.dir/ethernet.cc.o.d"
  "/root/repo/src/qn/mva.cc" "src/qn/CMakeFiles/carat_qn.dir/mva.cc.o" "gcc" "src/qn/CMakeFiles/carat_qn.dir/mva.cc.o.d"
  "/root/repo/src/qn/network.cc" "src/qn/CMakeFiles/carat_qn.dir/network.cc.o" "gcc" "src/qn/CMakeFiles/carat_qn.dir/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/carat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
