file(REMOVE_RECURSE
  "libcarat_qn.a"
)
