file(REMOVE_RECURSE
  "CMakeFiles/carat_qn.dir/bounds.cc.o"
  "CMakeFiles/carat_qn.dir/bounds.cc.o.d"
  "CMakeFiles/carat_qn.dir/ethernet.cc.o"
  "CMakeFiles/carat_qn.dir/ethernet.cc.o.d"
  "CMakeFiles/carat_qn.dir/mva.cc.o"
  "CMakeFiles/carat_qn.dir/mva.cc.o.d"
  "CMakeFiles/carat_qn.dir/network.cc.o"
  "CMakeFiles/carat_qn.dir/network.cc.o.d"
  "libcarat_qn.a"
  "libcarat_qn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_qn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
