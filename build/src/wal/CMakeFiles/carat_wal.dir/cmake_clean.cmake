file(REMOVE_RECURSE
  "CMakeFiles/carat_wal.dir/log.cc.o"
  "CMakeFiles/carat_wal.dir/log.cc.o.d"
  "libcarat_wal.a"
  "libcarat_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
