# Empty dependencies file for carat_wal.
# This may be replaced when dependencies are built.
