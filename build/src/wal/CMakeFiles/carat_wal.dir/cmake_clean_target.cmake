file(REMOVE_RECURSE
  "libcarat_wal.a"
)
