# Empty compiler generated dependencies file for probes_test.
# This may be replaced when dependencies are built.
