file(REMOVE_RECURSE
  "CMakeFiles/probes_test.dir/probes_test.cc.o"
  "CMakeFiles/probes_test.dir/probes_test.cc.o.d"
  "probes_test"
  "probes_test.pdb"
  "probes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
