# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mva_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/probes_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/lock_stress_test[1]_include.cmake")
