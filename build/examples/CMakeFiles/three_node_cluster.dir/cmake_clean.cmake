file(REMOVE_RECURSE
  "CMakeFiles/three_node_cluster.dir/three_node_cluster.cpp.o"
  "CMakeFiles/three_node_cluster.dir/three_node_cluster.cpp.o.d"
  "three_node_cluster"
  "three_node_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_node_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
