# Empty dependencies file for three_node_cluster.
# This may be replaced when dependencies are built.
