# Empty compiler generated dependencies file for deadlock_study.
# This may be replaced when dependencies are built.
