file(REMOVE_RECURSE
  "CMakeFiles/deadlock_study.dir/deadlock_study.cpp.o"
  "CMakeFiles/deadlock_study.dir/deadlock_study.cpp.o.d"
  "deadlock_study"
  "deadlock_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
