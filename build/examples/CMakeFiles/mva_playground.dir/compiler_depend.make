# Empty compiler generated dependencies file for mva_playground.
# This may be replaced when dependencies are built.
