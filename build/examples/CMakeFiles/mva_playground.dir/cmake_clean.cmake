file(REMOVE_RECURSE
  "CMakeFiles/mva_playground.dir/mva_playground.cpp.o"
  "CMakeFiles/mva_playground.dir/mva_playground.cpp.o.d"
  "mva_playground"
  "mva_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mva_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
