# Empty compiler generated dependencies file for carat_sweep.
# This may be replaced when dependencies are built.
