file(REMOVE_RECURSE
  "CMakeFiles/carat_sweep.dir/carat_sweep.cc.o"
  "CMakeFiles/carat_sweep.dir/carat_sweep.cc.o.d"
  "carat_sweep"
  "carat_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
