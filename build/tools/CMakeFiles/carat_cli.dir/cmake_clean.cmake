file(REMOVE_RECURSE
  "CMakeFiles/carat_cli.dir/carat_cli.cc.o"
  "CMakeFiles/carat_cli.dir/carat_cli.cc.o.d"
  "carat_cli"
  "carat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
