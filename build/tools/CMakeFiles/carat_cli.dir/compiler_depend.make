# Empty compiler generated dependencies file for carat_cli.
# This may be replaced when dependencies are built.
