# Empty compiler generated dependencies file for fig10_mb4_dio.
# This may be replaced when dependencies are built.
