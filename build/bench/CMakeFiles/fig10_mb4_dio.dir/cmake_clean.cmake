file(REMOVE_RECURSE
  "CMakeFiles/fig10_mb4_dio.dir/fig10_mb4_dio.cc.o"
  "CMakeFiles/fig10_mb4_dio.dir/fig10_mb4_dio.cc.o.d"
  "fig10_mb4_dio"
  "fig10_mb4_dio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mb4_dio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
