# Empty compiler generated dependencies file for ablation_dm_pool.
# This may be replaced when dependencies are built.
