file(REMOVE_RECURSE
  "CMakeFiles/ablation_dm_pool.dir/ablation_dm_pool.cc.o"
  "CMakeFiles/ablation_dm_pool.dir/ablation_dm_pool.cc.o.d"
  "ablation_dm_pool"
  "ablation_dm_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dm_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
