
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dm_pool.cc" "bench/CMakeFiles/ablation_dm_pool.dir/ablation_dm_pool.cc.o" "gcc" "bench/CMakeFiles/ablation_dm_pool.dir/ablation_dm_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carat/CMakeFiles/carat_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/carat_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/carat_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/carat_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/carat_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/carat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/carat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/carat_model.dir/DependInfo.cmake"
  "/root/repo/build/src/qn/CMakeFiles/carat_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/carat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
