file(REMOVE_RECURSE
  "CMakeFiles/bench_repro_common.dir/repro_common.cc.o"
  "CMakeFiles/bench_repro_common.dir/repro_common.cc.o.d"
  "libbench_repro_common.a"
  "libbench_repro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
