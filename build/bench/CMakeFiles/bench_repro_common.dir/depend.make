# Empty dependencies file for bench_repro_common.
# This may be replaced when dependencies are built.
