file(REMOVE_RECURSE
  "libbench_repro_common.a"
)
