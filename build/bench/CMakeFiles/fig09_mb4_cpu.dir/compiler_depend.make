# Empty compiler generated dependencies file for fig09_mb4_cpu.
# This may be replaced when dependencies are built.
