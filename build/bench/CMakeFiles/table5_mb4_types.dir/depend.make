# Empty dependencies file for table5_mb4_types.
# This may be replaced when dependencies are built.
