# Empty compiler generated dependencies file for ablation_deadlock_policy.
# This may be replaced when dependencies are built.
