file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadlock_policy.dir/ablation_deadlock_policy.cc.o"
  "CMakeFiles/ablation_deadlock_policy.dir/ablation_deadlock_policy.cc.o.d"
  "ablation_deadlock_policy"
  "ablation_deadlock_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadlock_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
