file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cc.o"
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cc.o.d"
  "ablation_buffer"
  "ablation_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
