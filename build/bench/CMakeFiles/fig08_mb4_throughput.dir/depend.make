# Empty dependencies file for fig08_mb4_throughput.
# This may be replaced when dependencies are built.
