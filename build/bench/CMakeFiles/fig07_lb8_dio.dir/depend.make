# Empty dependencies file for fig07_lb8_dio.
# This may be replaced when dependencies are built.
