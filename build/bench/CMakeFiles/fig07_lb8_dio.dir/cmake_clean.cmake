file(REMOVE_RECURSE
  "CMakeFiles/fig07_lb8_dio.dir/fig07_lb8_dio.cc.o"
  "CMakeFiles/fig07_lb8_dio.dir/fig07_lb8_dio.cc.o.d"
  "fig07_lb8_dio"
  "fig07_lb8_dio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lb8_dio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
