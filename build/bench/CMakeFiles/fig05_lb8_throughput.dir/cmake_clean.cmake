file(REMOVE_RECURSE
  "CMakeFiles/fig05_lb8_throughput.dir/fig05_lb8_throughput.cc.o"
  "CMakeFiles/fig05_lb8_throughput.dir/fig05_lb8_throughput.cc.o.d"
  "fig05_lb8_throughput"
  "fig05_lb8_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_lb8_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
