# Empty dependencies file for fig05_lb8_throughput.
# This may be replaced when dependencies are built.
