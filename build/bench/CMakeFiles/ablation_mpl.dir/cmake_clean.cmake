file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpl.dir/ablation_mpl.cc.o"
  "CMakeFiles/ablation_mpl.dir/ablation_mpl.cc.o.d"
  "ablation_mpl"
  "ablation_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
