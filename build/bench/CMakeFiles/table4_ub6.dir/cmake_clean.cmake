file(REMOVE_RECURSE
  "CMakeFiles/table4_ub6.dir/table4_ub6.cc.o"
  "CMakeFiles/table4_ub6.dir/table4_ub6.cc.o.d"
  "table4_ub6"
  "table4_ub6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ub6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
