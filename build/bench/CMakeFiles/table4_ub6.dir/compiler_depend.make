# Empty compiler generated dependencies file for table4_ub6.
# This may be replaced when dependencies are built.
