file(REMOVE_RECURSE
  "CMakeFiles/ablation_comm_delay.dir/ablation_comm_delay.cc.o"
  "CMakeFiles/ablation_comm_delay.dir/ablation_comm_delay.cc.o.d"
  "ablation_comm_delay"
  "ablation_comm_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
