# Empty compiler generated dependencies file for ablation_comm_delay.
# This may be replaced when dependencies are built.
