file(REMOVE_RECURSE
  "CMakeFiles/ablation_mva.dir/ablation_mva.cc.o"
  "CMakeFiles/ablation_mva.dir/ablation_mva.cc.o.d"
  "ablation_mva"
  "ablation_mva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
