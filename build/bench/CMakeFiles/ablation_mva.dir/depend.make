# Empty dependencies file for ablation_mva.
# This may be replaced when dependencies are built.
