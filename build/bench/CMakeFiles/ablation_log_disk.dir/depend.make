# Empty dependencies file for ablation_log_disk.
# This may be replaced when dependencies are built.
