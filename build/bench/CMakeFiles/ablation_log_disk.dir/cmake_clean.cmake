file(REMOVE_RECURSE
  "CMakeFiles/ablation_log_disk.dir/ablation_log_disk.cc.o"
  "CMakeFiles/ablation_log_disk.dir/ablation_log_disk.cc.o.d"
  "ablation_log_disk"
  "ablation_log_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_log_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
