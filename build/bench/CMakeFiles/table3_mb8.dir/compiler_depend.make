# Empty compiler generated dependencies file for table3_mb8.
# This may be replaced when dependencies are built.
