file(REMOVE_RECURSE
  "CMakeFiles/table3_mb8.dir/table3_mb8.cc.o"
  "CMakeFiles/table3_mb8.dir/table3_mb8.cc.o.d"
  "table3_mb8"
  "table3_mb8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mb8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
