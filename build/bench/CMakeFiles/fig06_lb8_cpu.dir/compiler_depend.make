# Empty compiler generated dependencies file for fig06_lb8_cpu.
# This may be replaced when dependencies are built.
