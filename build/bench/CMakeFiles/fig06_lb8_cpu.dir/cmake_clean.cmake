file(REMOVE_RECURSE
  "CMakeFiles/fig06_lb8_cpu.dir/fig06_lb8_cpu.cc.o"
  "CMakeFiles/fig06_lb8_cpu.dir/fig06_lb8_cpu.cc.o.d"
  "fig06_lb8_cpu"
  "fig06_lb8_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_lb8_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
