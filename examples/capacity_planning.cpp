// Capacity planning with the analytical model.
//
// The point of a validated queueing model is cheap what-if analysis: here we
// size a two-node order-processing system. Each added terminal runs a mix of
// local reads and distributed updates; we sweep the terminal count with the
// (instant) analytical model to find where response time degrades, then spot
// check the knee with the full testbed simulation.

#include <iostream>

#include "carat/carat.h"
#include "util/table.h"

namespace {

carat::workload::WorkloadSpec MakeOrderEntry(int terminals_per_node) {
  using namespace carat::workload;
  WorkloadSpec wl = MakeMB4(/*requests_per_txn=*/6);
  wl.name = "order-entry";
  // Per node: 2/3 of terminals run local reads (catalog lookups), 1/3 run
  // distributed updates (cross-site order placement).
  for (NodeMix& node : wl.nodes) {
    node.lro = (2 * terminals_per_node + 2) / 3;
    node.lu = 0;
    node.dro = 0;
    node.du = terminals_per_node - node.lro;
  }
  // Modern-ish disks: 10 ms per block on both nodes.
  wl.block_io_ms = {10.0, 10.0};
  // Think time: operators pause 2 s between orders.
  wl.think_time_ms = 2'000.0;
  return wl;
}

}  // namespace

int main() {
  using namespace carat;
  std::cout << "Capacity planning: order-entry on two nodes "
               "(2/3 local reads, 1/3 distributed updates, 2 s think)\n\n";

  util::TextTable table;
  table.SetHeader({"terminals/node", "txn/s", "LRO resp (ms)", "DU resp (ms)",
                   "disk util", "deadlock prob (DU)"});
  int knee = -1;
  double base_du_resp = 0.0;
  for (int terminals = 3; terminals <= 36; terminals += 3) {
    const workload::WorkloadSpec wl = MakeOrderEntry(terminals);
    const model::ModelSolution sol =
        model::CaratModel(wl.ToModelInput()).Solve();
    if (!sol.ok) {
      std::cerr << "model failed: " << sol.error << "\n";
      return 1;
    }
    const auto& site = sol.sites[0];
    const double du_resp =
        site.Class(model::TxnType::kDUC).response_ms;
    if (terminals == 3) base_du_resp = du_resp;
    if (knee < 0 && du_resp > 2.0 * base_du_resp) knee = terminals;
    table.AddRow({std::to_string(terminals),
                  util::TextTable::Num(sol.TotalTxnPerSec(), 1),
                  util::TextTable::Num(
                      site.Class(model::TxnType::kLRO).response_ms, 0),
                  util::TextTable::Num(du_resp, 0),
                  util::TextTable::Num(site.db_disk_utilization),
                  util::TextTable::Num(site.Class(model::TxnType::kDUC).pa, 3)});
  }
  table.Print(std::cout);

  if (knee < 0) knee = 36;
  std::cout << "\nModel knee (distributed-update response doubled): "
            << knee << " terminals/node.\nSpot-checking with the testbed...\n";

  const workload::WorkloadSpec wl = MakeOrderEntry(knee);
  TestbedOptions opts;
  opts.measure_ms = 2'000'000;
  const TestbedResult sim = RunTestbed(wl.ToModelInput(), opts);
  const model::ModelSolution sol = model::CaratModel(wl.ToModelInput()).Solve();
  std::cout << "  at " << knee << " terminals/node: model "
            << util::TextTable::Num(sol.TotalTxnPerSec(), 1)
            << " txn/s vs testbed "
            << util::TextTable::Num(sim.TotalTxnPerSec(), 1) << " txn/s, DU resp "
            << util::TextTable::Num(
                   sol.sites[0].Class(model::TxnType::kDUC).response_ms, 0)
            << " ms vs "
            << util::TextTable::Num(
                   sim.nodes[0].Type(model::TxnType::kDUC).response_ms, 0)
            << " ms\n";
  return 0;
}
