// Using the queueing-network layer standalone.
//
// The qn:: library under the CARAT model is a general exact-MVA solver for
// closed multi-chain networks - usable for any capacity question, not just
// the paper's. This example models a tiny web service (CPU + two disks +
// client think time), compares exact MVA, the Schweitzer approximation and
// the asymptotic bounds, and finds the knee of the response-time curve.

#include <iostream>

#include "qn/bounds.h"
#include "qn/mva.h"
#include "util/table.h"

int main() {
  using namespace carat;

  std::cout << "A web service: CPU 4 ms, fast disk 6 ms, slow disk 9 ms per\n"
               "request; clients think 200 ms between requests.\n\n";

  util::TextTable table;
  table.SetHeader({"clients", "X exact (1/ms)", "X schweitzer", "X bound",
                   "R exact (ms)", "R lower bound"});
  double prev_r = 0.0;
  int knee = -1;
  for (int clients = 1; clients <= 64; clients *= 2) {
    qn::ClosedNetwork net;
    const std::size_t cpu = net.AddCenter("cpu", qn::CenterKind::kQueueing);
    const std::size_t d1 = net.AddCenter("disk1", qn::CenterKind::kQueueing);
    const std::size_t d2 = net.AddCenter("disk2", qn::CenterKind::kQueueing);
    const std::size_t k = net.AddChain("clients", clients, 200.0);
    net.chains[k].demands[cpu] = 4.0;
    net.chains[k].demands[d1] = 6.0;
    net.chains[k].demands[d2] = 9.0;

    const qn::MvaResult exact = qn::ExactMva(net);
    const qn::MvaResult approx = qn::SchweitzerMva(net);
    const auto bounds = qn::AsymptoticBounds(net);
    if (!exact.ok || !approx.ok) {
      std::cerr << "solver failed\n";
      return 1;
    }
    const double r = exact.solution.response_time[k];
    if (knee < 0 && prev_r > 0.0 && r > 2.0 * 19.0) knee = clients;
    prev_r = r;
    table.AddRow({std::to_string(clients),
                  util::TextTable::Num(exact.solution.throughput[k], 4),
                  util::TextTable::Num(approx.solution.throughput[k], 4),
                  util::TextTable::Num(bounds[k].max_throughput, 4),
                  util::TextTable::Num(r, 1),
                  util::TextTable::Num(bounds[k].min_response, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nThe slow disk (9 ms) caps throughput at 1/9 ms^-1 = 0.111;\n"
               "past the knee every doubling of clients roughly doubles the\n"
               "response time, exactly as the asymptotic bound predicts.\n";
  if (knee > 0) {
    std::cout << "Response first exceeded twice the no-queueing minimum at "
              << knee << " clients.\n";
  }
  return 0;
}
