// Deadlock study: how data contention grows with transaction size.
//
// Reproduces the paper's central qualitative finding - that normalized
// throughput collapses beyond n ~ 8 because the deadlock probability grows
// rapidly with transaction size - and inspects the lock submodel quantities
// (Pb, Pd, P_a, blocking ratio) against testbed counters.

#include <iostream>

#include "carat/carat.h"
#include "model/lock_model.h"
#include "util/table.h"

int main() {
  using namespace carat;
  std::cout << "Deadlock study: MB8 workload, transaction size sweep\n\n";

  util::TextTable table;
  table.SetHeader({"n", "model Pb(LU)", "model Pd(LU)", "model Pa(LU)",
                   "sim Pa(LU)", "sim blocks/req", "local dl/s", "global dl/s",
                   "recs/s model", "recs/s sim"});
  for (const int n : {4, 8, 12, 16, 20}) {
    const workload::WorkloadSpec wl = workload::MakeMB8(n);
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.measure_ms = 2'000'000;
    const TestbedResult s = RunTestbed(input, opts);
    if (!m.ok || !s.ok) {
      std::cerr << "failed\n";
      return 1;
    }
    const auto& site = m.sites[0];
    const auto& node = s.nodes[0];
    const double window_s = s.measured_ms / 1000.0;
    std::uint64_t local_dl = 0;
    for (const auto& nr : s.nodes) local_dl += nr.local_deadlocks;
    table.AddRow(
        {std::to_string(n),
         util::TextTable::Num(site.Class(model::TxnType::kLU).pb, 4),
         util::TextTable::Num(site.Class(model::TxnType::kLU).pd, 4),
         util::TextTable::Num(site.Class(model::TxnType::kLU).pa, 3),
         util::TextTable::Num(node.Type(model::TxnType::kLU).abort_prob, 3),
         util::TextTable::Num(
             node.lock_requests
                 ? static_cast<double>(node.lock_blocks) / node.lock_requests
                 : 0.0,
             4),
         util::TextTable::Num(local_dl / window_s, 3),
         util::TextTable::Num(s.global_deadlocks / window_s, 3),
         util::TextTable::Num(m.TotalRecordsPerSec(), 1),
         util::TextTable::Num(s.TotalRecordsPerSec(), 1)});
  }
  table.Print(std::cout);

  std::cout << "\nBlocking ratio BR(t) = (2 N_lk + 1) / (6 N_lk) "
               "(paper: ~1/3, measured 0.23-0.41):\n";
  for (const int n : {4, 20}) {
    const double nlk = 4.0 * n;  // ~4 locks per request
    std::cout << "  n = " << n
              << ": BR = " << util::TextTable::Num(model::BlockingRatio(nlk), 3)
              << "\n";
  }
  std::cout << "\nNote the paper's conclusion: normalized throughput peaks "
               "near n = 8,\nthen falls as deadlock-induced rollback work "
               "grows superlinearly.\n";
  return 0;
}
