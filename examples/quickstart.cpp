// Quickstart: predict a distributed transaction workload analytically, then
// validate the prediction on the simulated CARAT testbed.
//
//   $ ./quickstart
//
// Builds the paper's MB4 workload (one LRO, LU, DRO and DU user per node),
// solves the queueing network model, runs the testbed, and prints both.

#include <iostream>

#include "carat/carat.h"
#include "util/table.h"

int main() {
  using namespace carat;

  // 1. Describe the workload: the paper's MB4 mix with 8 requests/txn.
  const workload::WorkloadSpec wl = workload::MakeMB4(/*requests_per_txn=*/8);
  const model::ModelInput input = wl.ToModelInput();

  // 2. Analytical prediction: the two-level queueing network model.
  const model::ModelSolution prediction = model::CaratModel(input).Solve();
  if (!prediction.ok) {
    std::cerr << "model failed: " << prediction.error << "\n";
    return 1;
  }

  // 3. "Measurement": run the same workload on the simulated testbed.
  TestbedOptions opts;
  opts.seed = 42;
  opts.measure_ms = 1'000'000;  // 1000 seconds of simulated time
  const TestbedResult measurement = RunTestbed(input, opts);
  if (!measurement.ok) {
    std::cerr << "testbed failed: " << measurement.error << "\n";
    return 1;
  }

  // 4. Compare.
  std::cout << "MB4 workload, n = 8 requests/transaction\n\n";
  util::TextTable table;
  table.SetHeader({"Node", "metric", "model", "testbed"});
  for (std::size_t i = 0; i < input.sites.size(); ++i) {
    const auto& m = prediction.sites[i];
    const auto& s = measurement.nodes[i];
    table.AddRow({m.name, "throughput (txn/s)", util::TextTable::Num(m.txn_per_s),
                  util::TextTable::Num(s.txn_per_s)});
    table.AddRow({m.name, "records/s", util::TextTable::Num(m.records_per_s, 1),
                  util::TextTable::Num(s.records_per_s, 1)});
    table.AddRow({m.name, "CPU utilization",
                  util::TextTable::Num(m.cpu_utilization),
                  util::TextTable::Num(s.cpu_utilization)});
    table.AddRow({m.name, "disk I/O per s", util::TextTable::Num(m.dio_per_s, 1),
                  util::TextTable::Num(s.dio_per_s, 1)});
    table.AddSeparator();
  }
  table.Print(std::cout);

  std::cout << "\nTestbed protocol counters: " << measurement.network_messages
            << " messages, " << measurement.global_deadlocks
            << " global deadlocks, database consistent: "
            << (measurement.database_consistent ? "yes" : "NO") << "\n";
  return 0;
}
