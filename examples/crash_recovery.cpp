// Crash recovery with before-image journaling.
//
// The paper's recovery protocol journals the before image of every block a
// transaction updates, so that "the effects of the transactions can be
// correctly recovered from system failures in which the volatile memory is
// lost". This example drives the WAL substrate directly through a bank
// scenario: some transfers commit, one aborts, one is cut off by a crash -
// recovery must keep exactly the committed transfers and conserve money.

#include <iostream>

#include "db/database.h"
#include "wal/log.h"

namespace {

using carat::db::Database;
using carat::db::GranuleId;
using carat::db::RecordId;
using carat::wal::Log;
using carat::wal::TxnId;

// Moves `amount` from one account record to another under txn `txn`,
// journaling each touched granule first (the write-ahead rule).
void Transfer(Database& db, Log& log, TxnId txn, RecordId from, RecordId to,
              long long amount) {
  const GranuleId gfrom = db.GranuleOf(from);
  const GranuleId gto = db.GranuleOf(to);
  log.LogBeforeImage(txn, gfrom, db.ReadGranule(gfrom));
  db.Write(from, db.Read(from) - amount);
  log.LogBeforeImage(txn, gto, db.ReadGranule(gto));
  db.Write(to, db.Read(to) + amount);
}

long long TotalMoney(const Database& db) {
  long long total = 0;
  for (RecordId r = 0; r < db.num_records(); ++r) total += db.Read(r);
  return total;
}

}  // namespace

int main() {
  Database db(/*num_granules=*/50, /*records_per_granule=*/6);
  Log log;

  // Open 300 accounts with 100 units each.
  for (RecordId r = 0; r < db.num_records(); ++r) db.Write(r, 100);
  const long long initial_money = TotalMoney(db);
  std::cout << "bank opened: " << db.num_records() << " accounts, "
            << initial_money << " units total\n";

  // Txn 1 commits: 0 -> 7, 30 units.
  Transfer(db, log, 1, 0, 7, 30);
  log.LogCommit(1);

  // Txn 2 aborts at run time (e.g. deadlock victim): rolled back on the
  // spot by restoring its before images.
  Transfer(db, log, 2, 10, 20, 55);
  log.Rollback(2, &db);

  // Txn 3 is in flight when the system crashes.
  Transfer(db, log, 3, 40, 50, 99);

  std::cout << "before crash: acct0=" << db.Read(0) << " acct7=" << db.Read(7)
            << " acct10=" << db.Read(10) << " acct40=" << db.Read(40)
            << " acct50=" << db.Read(50) << "\n";

  // --- crash: volatile state is lost; the journal survives ------------------
  log.Recover(&db);

  std::cout << "after recovery:\n";
  std::cout << "  txn1 (committed): acct0=" << db.Read(0)
            << " acct7=" << db.Read(7) << "   (expected 70 / 130)\n";
  std::cout << "  txn2 (aborted):   acct10=" << db.Read(10)
            << " acct20=" << db.Read(20) << " (expected 100 / 100)\n";
  std::cout << "  txn3 (in-flight): acct40=" << db.Read(40)
            << " acct50=" << db.Read(50) << " (expected 100 / 100)\n";

  const long long final_money = TotalMoney(db);
  std::cout << "money conserved: " << final_money << " / " << initial_money
            << (final_money == initial_money ? "  OK" : "  LOST!") << "\n";

  const bool ok = db.Read(0) == 70 && db.Read(7) == 130 &&
                  db.Read(10) == 100 && db.Read(20) == 100 &&
                  db.Read(40) == 100 && db.Read(50) == 100 &&
                  final_money == initial_money;
  std::cout << (ok ? "recovery correct\n" : "RECOVERY BROKEN\n");
  return ok ? 0 : 1;
}
