// Beyond the paper: a three-node cluster.
//
// The paper validates the model on two VAXen but the framework generalizes
// to any number of interacting Site Processing Models. This example builds a
// heterogeneous three-node system (one fast node, two slow ones), runs both
// the model and the testbed, and shows the coordinator/slave decomposition
// working across more than one slave site.

#include <iostream>

#include "carat/carat.h"
#include "util/table.h"

int main() {
  using namespace carat;

  workload::WorkloadSpec wl = workload::MakeMB4(/*requests_per_txn=*/8,
                                                /*num_nodes=*/3);
  wl.name = "3-node MB4";
  // Node A fast (15 ms/block), nodes B and C slower (30, 40 ms/block).
  wl.block_io_ms = {15.0, 30.0, 40.0};

  const model::ModelInput input = wl.ToModelInput();
  const model::ModelSolution m = model::CaratModel(input).Solve();
  if (!m.ok) {
    std::cerr << "model failed: " << m.error << "\n";
    return 1;
  }
  TestbedOptions opts;
  opts.measure_ms = 1'500'000;
  const TestbedResult s = RunTestbed(input, opts);
  if (!s.ok) {
    std::cerr << "testbed failed: " << s.error << "\n";
    return 1;
  }

  std::cout << "Three-node cluster, MB4-style mix per node, n = 8\n"
               "(distributed transactions spread remote requests over both "
               "other nodes)\n\n";
  util::TextTable table;
  table.SetHeader({"Node", "disk ms", "model txn/s", "sim txn/s", "model CPU",
                   "sim CPU", "model DIO/s", "sim DIO/s"});
  for (std::size_t i = 0; i < input.sites.size(); ++i) {
    table.AddRow({input.sites[i].name,
                  util::TextTable::Num(input.sites[i].block_io_ms, 0),
                  util::TextTable::Num(m.sites[i].txn_per_s),
                  util::TextTable::Num(s.nodes[i].txn_per_s),
                  util::TextTable::Num(m.sites[i].cpu_utilization),
                  util::TextTable::Num(s.nodes[i].cpu_utilization),
                  util::TextTable::Num(m.sites[i].dio_per_s, 1),
                  util::TextTable::Num(s.nodes[i].dio_per_s, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nglobal deadlocks: " << s.global_deadlocks
            << ", messages: " << s.network_messages
            << ", database consistent: "
            << (s.database_consistent ? "yes" : "NO") << "\n";
  return 0;
}
