// carat_cli - run the analytical model and/or the simulated testbed on a
// configurable workload from the command line.
//
//   carat_cli --workload mb8 --n 12 --mode both
//   carat_cli --workload lb8 --n 8 --buffer 1500 --measure-s 2000
//   carat_cli --workload mb4 --nodes 3 --hot-data 0.1 --hot-access 0.8
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "carat/carat.h"
#include "util/table.h"

namespace {

struct Flags {
  std::string workload = "mb4";
  int n = 8;
  int nodes = 2;
  std::string mode = "both";  // model | sim | both
  std::uint64_t seed = 1;
  double measure_s = 1000.0;
  double warmup_s = 100.0;
  double think_ms = 0.0;
  double alpha_ms = 0.0;
  double hot_data = 0.0;
  double hot_access = 0.0;
  int buffer = 0;
  int dm_pool = 0;
  int testbed_shards = 1;
  bool log_disk = false;
  std::string victim = "requester";
  std::string cc = "2pl";
  bool verbose = false;
};

void PrintHelp() {
  std::cout <<
      "carat_cli - CARAT queueing network model & testbed driver\n\n"
      "  --workload <lb8|mb4|mb8|ub6>  standard workload (default mb4)\n"
      "  --n <int>                     requests per transaction (default 8)\n"
      "  --nodes <int>                 number of nodes (default 2)\n"
      "  --mode <model|sim|both>       what to run (default both)\n"
      "  --seed <int>                  testbed RNG seed (default 1)\n"
      "  --measure-s <sec>             simulated measurement window\n"
      "  --warmup-s <sec>              simulated warm-up\n"
      "  --think-ms <ms>               user think time R_UT\n"
      "  --alpha-ms <ms>               one-way message delay\n"
      "  --hot-data <frac>             hot-set size (0 = uniform)\n"
      "  --hot-access <frac>           hot-set access share\n"
      "  --buffer <blocks>             LRU buffer per node (0 = none)\n"
      "  --dm-pool <int>               DM servers per node (0 = unlimited)\n"
      "  --testbed-shards <int>        event shards for the testbed kernel\n"
      "                                (1 = serial, 0 = hardware; results are\n"
      "                                byte-identical at any value)\n"
      "  --log-disk                    separate log disk per node\n"
      "  --victim <requester|youngest|oldest>  deadlock victim policy\n"
      "  --cc <2pl|nowait|waitdie|queue>  concurrency-control backend\n"
      "  --verbose                     per-type details\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    auto next_str = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    double v = 0;
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else if (arg == "--workload") {
      if (!next_str(&flags->workload)) return false;
    } else if (arg == "--n") {
      if (!next(&v)) return false;
      flags->n = static_cast<int>(v);
    } else if (arg == "--nodes") {
      if (!next(&v)) return false;
      flags->nodes = static_cast<int>(v);
    } else if (arg == "--mode") {
      if (!next_str(&flags->mode)) return false;
    } else if (arg == "--seed") {
      if (!next(&v)) return false;
      flags->seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--measure-s") {
      if (!next(&flags->measure_s)) return false;
    } else if (arg == "--warmup-s") {
      if (!next(&flags->warmup_s)) return false;
    } else if (arg == "--think-ms") {
      if (!next(&flags->think_ms)) return false;
    } else if (arg == "--alpha-ms") {
      if (!next(&flags->alpha_ms)) return false;
    } else if (arg == "--hot-data") {
      if (!next(&flags->hot_data)) return false;
    } else if (arg == "--hot-access") {
      if (!next(&flags->hot_access)) return false;
    } else if (arg == "--buffer") {
      if (!next(&v)) return false;
      flags->buffer = static_cast<int>(v);
    } else if (arg == "--dm-pool") {
      if (!next(&v)) return false;
      flags->dm_pool = static_cast<int>(v);
    } else if (arg == "--testbed-shards") {
      if (!next(&v)) return false;
      flags->testbed_shards = static_cast<int>(v);
    } else if (arg == "--log-disk") {
      flags->log_disk = true;
    } else if (arg == "--victim") {
      if (!next_str(&flags->victim)) return false;
    } else if (arg == "--cc") {
      if (!next_str(&flags->cc)) return false;
    } else if (arg == "--verbose") {
      flags->verbose = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintHelp();
    return 2;
  }

  workload::WorkloadSpec wl;
  if (flags.workload == "lb8") {
    wl = workload::MakeLB8(flags.n, flags.nodes);
  } else if (flags.workload == "mb4") {
    wl = workload::MakeMB4(flags.n, flags.nodes);
  } else if (flags.workload == "mb8") {
    wl = workload::MakeMB8(flags.n, flags.nodes);
  } else if (flags.workload == "ub6") {
    wl = workload::MakeUB6(flags.n, flags.nodes);
  } else {
    std::cerr << "unknown workload: " << flags.workload << "\n";
    return 2;
  }
  wl.think_time_ms = flags.think_ms;
  wl.comm_delay_ms = flags.alpha_ms;
  wl.hot_data_fraction = flags.hot_data;
  wl.hot_access_fraction = flags.hot_access;
  wl.buffer_blocks = flags.buffer;
  wl.dm_pool_size = flags.dm_pool;
  wl.separate_log_disk = flags.log_disk;
  if (!cc::ParseBackend(flags.cc, &wl.cc_backend)) {
    std::cerr << "unknown cc backend: " << flags.cc
              << " (want 2pl|nowait|waitdie|queue)\n";
    return 2;
  }

  const model::ModelInput input = wl.ToModelInput();
  const bool run_model = flags.mode == "model" || flags.mode == "both";
  const bool run_sim = flags.mode == "sim" || flags.mode == "both";

  model::ModelSolution m;
  TestbedResult s;
  if (run_model) {
    m = model::CaratModel(input).Solve();
    if (!m.ok) {
      std::cerr << "model: " << m.error << "\n";
      return 1;
    }
  }
  if (run_sim) {
    TestbedOptions opts;
    opts.seed = flags.seed;
    opts.warmup_ms = flags.warmup_s * 1000.0;
    opts.measure_ms = flags.measure_s * 1000.0;
    opts.shards = flags.testbed_shards;
    if (flags.victim == "youngest") {
      opts.victim_policy = lock::VictimPolicy::kYoungest;
    } else if (flags.victim == "oldest") {
      opts.victim_policy = lock::VictimPolicy::kOldest;
    }
    s = RunTestbed(input, opts);
    if (!s.ok) {
      std::cerr << "testbed: " << s.error << "\n";
      return 1;
    }
  }

  std::cout << wl.name << ", n = " << flags.n << ", " << flags.nodes
            << " node(s), cc = " << cc::Name(wl.cc_backend) << "\n\n";
  util::TextTable table;
  std::vector<std::string> header = {"Node", "metric"};
  if (run_model) header.push_back("model");
  if (run_sim) header.push_back("testbed");
  table.SetHeader(header);
  for (std::size_t i = 0; i < input.sites.size(); ++i) {
    auto row = [&](const std::string& name, double model_v, double sim_v,
                   int precision = 2) {
      std::vector<std::string> cells = {input.sites[i].name, name};
      if (run_model) cells.push_back(util::TextTable::Num(model_v, precision));
      if (run_sim) cells.push_back(util::TextTable::Num(sim_v, precision));
      table.AddRow(std::move(cells));
    };
    row("TR-XPUT (txn/s)", run_model ? m.sites[i].txn_per_s : 0,
        run_sim ? s.nodes[i].txn_per_s : 0);
    row("records/s", run_model ? m.sites[i].records_per_s : 0,
        run_sim ? s.nodes[i].records_per_s : 0, 1);
    row("CPU util", run_model ? m.sites[i].cpu_utilization : 0,
        run_sim ? s.nodes[i].cpu_utilization : 0);
    row("DIO/s", run_model ? m.sites[i].dio_per_s : 0,
        run_sim ? s.nodes[i].dio_per_s : 0, 1);
    table.AddSeparator();
  }
  table.Print(std::cout);

  if (flags.verbose) {
    std::cout << "\nPer-type throughput (txn/s):\n";
    util::TextTable t2;
    t2.SetHeader({"Node", "type", "model", "testbed", "model Pa", "sim Pa",
                  "D_LW m/s", "D_RW m/s", "D_CW m/s"});
    for (std::size_t i = 0; i < input.sites.size(); ++i) {
      for (const model::TxnType t :
           {model::TxnType::kLRO, model::TxnType::kLU, model::TxnType::kDROC,
            model::TxnType::kDUC}) {
        if (input.sites[i].Class(t).population == 0) continue;
        t2.AddRow({input.sites[i].name, std::string(Name(t)),
                   run_model
                       ? util::TextTable::Num(m.sites[i].Class(t).throughput_per_s)
                       : "-",
                   run_sim
                       ? util::TextTable::Num(s.nodes[i].Type(t).throughput_per_s)
                       : "-",
                   run_model ? util::TextTable::Num(m.sites[i].Class(t).pa, 3)
                             : "-",
                   run_sim ? util::TextTable::Num(s.nodes[i].Type(t).abort_prob, 3)
                           : "-",
                   (run_model && run_sim)
                       ? util::TextTable::Num(m.sites[i].Class(t).d_lw_ms, 0) +
                             "/" +
                             util::TextTable::Num(
                                 s.nodes[i].Type(t).lock_wait_ms, 0)
                       : "-",
                   (run_model && run_sim)
                       ? util::TextTable::Num(m.sites[i].Class(t).d_rw_ms, 0) +
                             "/" +
                             util::TextTable::Num(
                                 s.nodes[i].Type(t).remote_wait_ms, 0)
                       : "-",
                   (run_model && run_sim)
                       ? util::TextTable::Num(m.sites[i].Class(t).d_cw_ms, 0) +
                             "/" +
                             util::TextTable::Num(
                                 s.nodes[i].Type(t).commit_wait_ms, 0)
                       : "-"});
      }
    }
    t2.Print(std::cout);
  }

  if (run_sim) {
    std::cout << "\ntestbed: " << s.events << " events, "
              << s.network_messages << " messages, " << s.probes_sent
              << " probes, " << s.global_deadlocks
              << " global deadlocks, database consistent: "
              << (s.database_consistent ? "yes" : "NO") << "\n";
    if (!s.database_consistent) return 1;
  }
  return 0;
}
