// carat_fuzz - metamorphic + differential scenario fuzzer driver.
//
//   carat_fuzz --run --scenarios 2000 --seed 7 --testbed-every 40
//              --findings-dir docs/findings
//   carat_fuzz --run --time-budget-s 3600 --seed $(date +%s)
//   carat_fuzz --generate 10 --seed 3 --out-dir tests/corpus
//   carat_fuzz --replay docs/findings/shard-identity-s7-12.scn --testbed
//   carat_fuzz --minimize repro.scn --rule shard-identity --testbed
//
// Exit status: 0 = clean, 1 = violations found, 2 = usage / I/O error.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace {

using namespace carat;

void PrintHelp() {
  std::cout <<
      "carat_fuzz - metamorphic + differential scenario fuzzer\n\n"
      "modes (exactly one):\n"
      "  --run                      generate + check scenarios (default)\n"
      "  --generate <count>         write generated scenarios as .scn files\n"
      "  --replay <file.scn>        re-check one scenario, print violations\n"
      "  --minimize <file.scn>      shrink a violating scenario in place\n\n"
      "options:\n"
      "  --scenarios <count>        scenarios for --run (default 1000)\n"
      "  --seed <u64>               generator seed (default 1)\n"
      "  --testbed-every <N>        run testbed rules every Nth scenario\n"
      "                             (default 0 = never; --replay/--minimize\n"
      "                             use --testbed instead)\n"
      "  --testbed                  enable testbed rules in replay/minimize\n"
      "  --time-budget-s <sec>      stop --run after this wall-clock budget\n"
      "  --findings-dir <dir>       write minimized repro files here\n"
      "  --out-dir <dir>            destination for --generate (default .)\n"
      "  --rule <name>              rule for --minimize (default: first\n"
      "                             violated rule found)\n"
      "  --no-minimize              record raw violations without shrinking\n"
      "  --help                     this text\n";
}

bool ParseRule(const std::string& name, fuzz::Rule* out) {
  for (fuzz::Rule r : fuzz::kAllRules) {
    if (name == fuzz::RuleName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

int PrintViolations(const std::vector<fuzz::Violation>& violations) {
  for (const fuzz::Violation& v : violations) {
    std::cout << "VIOLATION " << fuzz::RuleName(v.rule) << ": " << v.detail
              << "\n";
  }
  if (violations.empty()) {
    std::cout << "clean\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kRun, kGenerate, kReplay, kMinimize } mode = Mode::kRun;
  int generate_count = 0;
  std::string file, out_dir = ".", rule_name;
  bool with_testbed = false, minimize = true;
  fuzz::FuzzOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") { PrintHelp(); return 0; }
    else if (arg == "--run") mode = Mode::kRun;
    else if (arg == "--generate") {
      mode = Mode::kGenerate;
      generate_count = std::atoi(next("--generate").c_str());
    }
    else if (arg == "--replay") { mode = Mode::kReplay; file = next("--replay"); }
    else if (arg == "--minimize") { mode = Mode::kMinimize; file = next("--minimize"); }
    else if (arg == "--scenarios") opts.num_scenarios = std::atoi(next("--scenarios").c_str());
    else if (arg == "--seed") opts.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    else if (arg == "--testbed-every") opts.testbed_every = std::atoi(next("--testbed-every").c_str());
    else if (arg == "--testbed") with_testbed = true;
    else if (arg == "--time-budget-s") opts.time_budget_s = std::atof(next("--time-budget-s").c_str());
    else if (arg == "--findings-dir") opts.findings_dir = next("--findings-dir");
    else if (arg == "--out-dir") out_dir = next("--out-dir");
    else if (arg == "--rule") rule_name = next("--rule");
    else if (arg == "--no-minimize") minimize = false;
    else {
      std::cerr << "unknown flag " << arg << " (try --help)\n";
      return 2;
    }
  }
  opts.minimize = minimize;

  switch (mode) {
    case Mode::kRun: {
      fuzz::FuzzReport report = fuzz::RunFuzz(opts, &std::cout);
      std::cout << report.scenarios << " scenarios ("
                << report.testbed_scenarios << " with testbed), "
                << report.stats.checked << " relation checks, "
                << report.stats.skipped << " skipped, "
                << report.violations.size() << " violations\n";
      for (fuzz::Rule r : fuzz::kAllRules) {
        const int idx = static_cast<int>(r);
        if (report.stats.per_rule_checked[idx] == 0) continue;
        std::cout << "  " << fuzz::RuleName(r) << ": "
                  << report.stats.per_rule_checked[idx] << " checks, "
                  << report.stats.per_rule_violations[idx] << " violations\n";
      }
      return report.violations.empty() ? 0 : 1;
    }
    case Mode::kGenerate: {
      util::Rng rng(opts.seed);
      for (int i = 0; i < generate_count; ++i) {
        fuzz::Scenario s = fuzz::GenerateScenario(&rng, opts.gen);
        s.name = "s" + std::to_string(opts.seed) + "-" + std::to_string(i);
        const std::string path = out_dir + "/" + s.name + ".scn";
        if (!fuzz::WriteScenarioFile(path, s)) {
          std::cerr << "cannot write " << path << "\n";
          return 2;
        }
        std::cout << path << "\n";
      }
      return 0;
    }
    case Mode::kReplay: {
      fuzz::Scenario s;
      std::string error;
      if (!fuzz::LoadScenarioFile(file, &s, &error)) {
        std::cerr << error << "\n";
        return 2;
      }
      fuzz::CheckOptions copts = opts.check;
      copts.with_testbed = with_testbed;
      return PrintViolations(fuzz::ReplayScenario(s, copts));
    }
    case Mode::kMinimize: {
      fuzz::Scenario s;
      std::string error;
      if (!fuzz::LoadScenarioFile(file, &s, &error)) {
        std::cerr << error << "\n";
        return 2;
      }
      fuzz::CheckOptions copts = opts.check;
      copts.with_testbed = with_testbed;
      fuzz::Rule rule;
      if (!rule_name.empty()) {
        if (!ParseRule(rule_name, &rule)) {
          std::cerr << "unknown rule " << rule_name << "\n";
          return 2;
        }
        std::string detail;
        if (fuzz::CheckRule(s, rule, copts, &detail)) {
          std::cerr << "scenario does not violate " << rule_name << "\n";
          return 2;
        }
      } else {
        const std::vector<fuzz::Violation> violations =
            fuzz::ReplayScenario(s, copts);
        if (violations.empty()) {
          std::cerr << "scenario violates no rule; nothing to minimize\n";
          return 2;
        }
        rule = violations.front().rule;
      }
      int evals = 0;
      const fuzz::Scenario shrunk =
          fuzz::MinimizeScenario(s, rule, copts, opts.min, &evals);
      std::string detail;
      fuzz::CheckRule(shrunk, rule, copts, &detail);
      if (!fuzz::WriteScenarioFile(
              file, shrunk,
              "minimized by carat_fuzz --minimize (" + std::to_string(evals) +
                  " evals)\nrule: " + fuzz::RuleName(rule) +
                  "\ndetail: " + detail)) {
        std::cerr << "cannot rewrite " << file << "\n";
        return 2;
      }
      std::cout << "minimized " << file << " (" << evals << " evals) to "
                << shrunk.input.sites.size() << " site(s)\n";
      return 1;
    }
  }
  return 2;
}
