// carat_sweep - emit CSV for the paper's figures (or any custom sweep) so
// the curves can be plotted directly:
//
//   carat_sweep --workload lb8 > lb8.csv
//   carat_sweep --workload mb4 --sizes 2,4,6,8,10,12 --seed 7 > mb4.csv
//   carat_sweep --workload mb8 --jobs 8 > mb8.csv   # parallel sweep points
//   carat_sweep --workload mb8 --cc queue > mb8_queue.csv
//
// The first output line is a `# cc=<backend>` comment naming the
// concurrency-control backend the sweep ran under, so a CSV is
// self-describing; then:
//
// Columns: workload,n,node,source,xput_tps,records_ps,cpu_util,dio_ps,
//          pa_lu,lockwait_ms,remotewait_ms,commitwait_ms
// with source in {model, testbed}.
//
// The model side of the sweep runs as one batch through serve::SolverService
// (arena reuse across the same-shape sweep points, duplicate sizes answered
// from the solution cache); the testbed side fans out over the same worker
// pool. --jobs N uses N workers (omitted: one per hardware thread; N must be
// >= 1). Every point is independently seeded and rows are emitted in sweep
// order, so the CSV is byte-identical for any N.
//
// --warm additionally seeds each model solve from the nearest already-solved
// sweep point (serve warm-start index). That reduces fixed-point iterations
// but makes the low-order bits of the model rows depend on solve completion
// order, so it is off by default where reproducibility is the point.
//
// --batch solves the sweep's same-shape model points in lockstep SoA blocks
// (serve batch lanes over the SIMD batch MVA kernels). Per-point results are
// bit-identical to the scalar path, so this is purely a throughput knob; it
// is opt-in here so the default tool behaviour stays byte-for-byte what it
// was before batching existed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "carat/carat.h"
#include "exec/thread_pool.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: carat_sweep [--workload lb8|mb4|mb8|ub6] "
               "[--sizes 4,8,...] [--seed N] [--measure-s S] [--jobs N] "
               "[--warm] [--batch] [--nodes N] [--site-classes K] [--flat] "
               "[--cc 2pl|nowait|waitdie|queue]\n"
               "  --cc <backend>    concurrency-control backend for every "
               "sweep point (default 2pl);\n"
               "                    named in the CSV's leading '# cc=' "
               "comment line\n"
               "  --nodes N         sites per sweep point (default 2, the "
               "paper's testbed)\n"
               "  --site-classes K  distinct disk-speed classes cycled over "
               "the nodes (default 2);\n"
               "                    the solver collapses each class to one "
               "representative site\n"
               "  --flat            solve without class collapse "
               "(bit-identical, O(sites)/iteration)\n");
  return 2;
}

std::string FormatRow(const char* workload, int n, const char* node,
                      const char* source, double xput, double records,
                      double cpu, double dio, double pa, double lw, double rw,
                      double cw) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s,%d,%s,%s,%.4f,%.2f,%.4f,%.2f,%.4f,%.1f,%.1f,%.1f\n",
                workload, n, node, source, xput, records, cpu, dio, pa, lw, rw,
                cw);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;
  std::string workload = "lb8";
  std::vector<int> sizes = {4, 8, 12, 16, 20};
  std::uint64_t seed = 1;
  double measure_s = 2000.0;
  int jobs = 0;  // 0: --jobs omitted, one worker per hardware thread
  bool warm = false;
  bool batch = false;
  int nodes = 2;         // the paper's two-site testbed
  int site_classes = 2;  // distinct disk-speed classes among the nodes
  bool flat = false;     // --flat: disable hierarchical class collapse
  cc::BackendKind cc_backend = cc::BackendKind::k2PL;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--sizes" && i + 1 < argc) {
      std::string bad;
      if (!util::ParseSizes(argv[++i], &sizes, &bad)) {
        std::fprintf(stderr, "--sizes: invalid transaction size '%s'\n",
                     bad.c_str());
        return Usage();
      }
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--measure-s" && i + 1 < argc) {
      measure_s = std::atof(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr,
                     "--jobs: expected a positive integer, got '%s' "
                     "(omit --jobs for one worker per hardware thread)\n",
                     argv[i]);
        return Usage();
      }
    } else if (arg == "--warm") {
      warm = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
      if (nodes < 1) {
        std::fprintf(stderr, "--nodes: expected a positive integer\n");
        return Usage();
      }
    } else if (arg == "--site-classes" && i + 1 < argc) {
      site_classes = std::atoi(argv[++i]);
      if (site_classes < 1) {
        std::fprintf(stderr, "--site-classes: expected a positive integer\n");
        return Usage();
      }
    } else if (arg == "--flat") {
      flat = true;
    } else if (arg == "--cc" && i + 1 < argc) {
      if (!cc::ParseBackend(argv[++i], &cc_backend)) {
        std::fprintf(stderr, "--cc: unknown backend '%s'\n", argv[i]);
        return Usage();
      }
    } else if (arg.rfind("--cc=", 0) == 0) {
      if (!cc::ParseBackend(arg.substr(5), &cc_backend)) {
        std::fprintf(stderr, "--cc: unknown backend '%s'\n",
                     arg.substr(5).c_str());
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (site_classes > nodes) site_classes = nodes;

  workload::WorkloadSpec (*make)(int, int) = nullptr;
  if (workload == "lb8") {
    make = [](int n, int k) { return workload::MakeLB8(n, k); };
  } else if (workload == "mb4") {
    make = [](int n, int k) { return workload::MakeMB4(n, k); };
  } else if (workload == "mb8") {
    make = [](int n, int k) { return workload::MakeMB8(n, k); };
  } else if (workload == "ub6") {
    make = [](int n, int k) { return workload::MakeUB6(n, k); };
  } else {
    std::fprintf(stderr, "unknown workload %s\n", workload.c_str());
    return 2;
  }

  std::vector<workload::WorkloadSpec> specs;
  std::vector<model::ModelInput> inputs;
  specs.reserve(sizes.size());
  inputs.reserve(sizes.size());
  for (const int n : sizes) {
    specs.push_back(make(n, nodes));
    if (site_classes != 2) {
      // One disk speed per class, cycled over the nodes (the default two
      // alternating speeds are what every spec ships with).
      specs.back().block_io_ms.clear();
      for (int c = 0; c < site_classes; ++c) {
        specs.back().block_io_ms.push_back(28.0 + 12.0 * (c % 2) +
                                           3.0 * (c / 2));
      }
    }
    specs.back().cc_backend = cc_backend;
    inputs.push_back(specs.back().ToModelInput());
  }

  serve::SolverService::Options sopts;
  sopts.threads = static_cast<std::size_t>(jobs);  // 0 = hardware threads
  sopts.warm_start = warm;
  sopts.solver.collapse_site_classes = !flat;
  if (!batch) sopts.batch_lane_width = 0;  // --batch opts into lockstep lanes
  serve::SolverService service(std::move(sopts));

  // Model side: one batch through the service (inputs are copied; the
  // originals drive the testbed and row assembly below).
  const std::vector<model::ModelSolution> solutions =
      service.SolveBatch(inputs);

  // Testbed side: independently seeded points fan out over the same pool;
  // rows are buffered per point and emitted in sweep order, keeping the CSV
  // deterministic.
  std::vector<std::string> rows(sizes.size());
  std::vector<std::string> errors(sizes.size());
  exec::ParallelFor(service.pool(), 0, sizes.size(), [&](std::size_t idx) {
    const int n = sizes[idx];
    const workload::WorkloadSpec& wl = specs[idx];
    const model::ModelInput& input = inputs[idx];
    const model::ModelSolution& m = solutions[idx];
    TestbedOptions opts;
    opts.seed = seed;
    opts.warmup_ms = 100'000;
    opts.measure_ms = measure_s * 1000.0;
    const TestbedResult s = RunTestbed(input, opts);
    if (!m.ok || !s.ok) {
      errors[idx] = m.error + s.error;
      return;
    }
    for (std::size_t i = 0; i < input.sites.size(); ++i) {
      const auto& ms = m.sites[i];
      const auto& lu = ms.Class(model::TxnType::kLRO).present
                           ? ms.Class(model::TxnType::kLU)
                           : ms.Class(model::TxnType::kDUC);
      rows[idx] += FormatRow(wl.name.c_str(), n, input.sites[i].name.c_str(),
                             "model", ms.txn_per_s, ms.records_per_s,
                             ms.cpu_utilization, ms.dio_per_s, lu.pa,
                             lu.d_lw_ms, lu.d_rw_ms, lu.d_cw_ms);
      const auto& ns = s.nodes[i];
      const auto& slu = ns.Type(model::TxnType::kLU).present
                            ? ns.Type(model::TxnType::kLU)
                            : ns.Type(model::TxnType::kDUC);
      rows[idx] += FormatRow(wl.name.c_str(), n, input.sites[i].name.c_str(),
                             "testbed", ns.txn_per_s, ns.records_per_s,
                             ns.cpu_utilization, ns.dio_per_s, slu.abort_prob,
                             slu.lock_wait_ms, slu.remote_wait_ms,
                             slu.commit_wait_ms);
    }
  });

  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    if (!errors[idx].empty()) {
      std::fprintf(stderr, "solve failed at n=%d: %s\n", sizes[idx],
                   errors[idx].c_str());
      return 1;
    }
  }
  const std::string cc_name(cc::Name(cc_backend));
  std::printf("# cc=%s\n", cc_name.c_str());
  std::printf(
      "workload,n,node,source,xput_tps,records_ps,cpu_util,dio_ps,"
      "pa_lu,lockwait_ms,remotewait_ms,commitwait_ms\n");
  for (const std::string& row : rows) std::fputs(row.c_str(), stdout);
  return 0;
}
