// carat_sweep - emit CSV for the paper's figures (or any custom sweep) so
// the curves can be plotted directly:
//
//   carat_sweep --workload lb8 > lb8.csv
//   carat_sweep --workload mb4 --sizes 2,4,6,8,10,12 --seed 7 > mb4.csv
//
// Columns: workload,n,node,source,xput_tps,records_ps,cpu_util,dio_ps,
//          pa_lu,lockwait_ms,remotewait_ms,commitwait_ms
// with source in {model, testbed}.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "carat/carat.h"

namespace {

std::vector<int> ParseSizes(const char* arg) {
  std::vector<int> sizes;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) sizes.push_back(std::atoi(token.c_str()));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;
  std::string workload = "lb8";
  std::vector<int> sizes = {4, 8, 12, 16, 20};
  std::uint64_t seed = 1;
  double measure_s = 2000.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--sizes" && i + 1 < argc) {
      sizes = ParseSizes(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--measure-s" && i + 1 < argc) {
      measure_s = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: carat_sweep [--workload lb8|mb4|mb8|ub6] "
                   "[--sizes 4,8,...] [--seed N] [--measure-s S]\n");
      return 2;
    }
  }

  std::printf(
      "workload,n,node,source,xput_tps,records_ps,cpu_util,dio_ps,"
      "pa_lu,lockwait_ms,remotewait_ms,commitwait_ms\n");

  for (const int n : sizes) {
    workload::WorkloadSpec wl;
    if (workload == "lb8") {
      wl = workload::MakeLB8(n);
    } else if (workload == "mb4") {
      wl = workload::MakeMB4(n);
    } else if (workload == "mb8") {
      wl = workload::MakeMB8(n);
    } else if (workload == "ub6") {
      wl = workload::MakeUB6(n);
    } else {
      std::fprintf(stderr, "unknown workload %s\n", workload.c_str());
      return 2;
    }
    const model::ModelInput input = wl.ToModelInput();
    const model::ModelSolution m = model::CaratModel(input).Solve();
    TestbedOptions opts;
    opts.seed = seed;
    opts.warmup_ms = 100'000;
    opts.measure_ms = measure_s * 1000.0;
    const TestbedResult s = RunTestbed(input, opts);
    if (!m.ok || !s.ok) {
      std::fprintf(stderr, "solve failed at n=%d: %s%s\n", n,
                   m.error.c_str(), s.error.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < input.sites.size(); ++i) {
      const auto& ms = m.sites[i];
      const auto& lu = ms.Class(model::TxnType::kLRO).present
                           ? ms.Class(model::TxnType::kLU)
                           : ms.Class(model::TxnType::kDUC);
      std::printf("%s,%d,%s,model,%.4f,%.2f,%.4f,%.2f,%.4f,%.1f,%.1f,%.1f\n",
                  wl.name.c_str(), n, input.sites[i].name.c_str(),
                  ms.txn_per_s, ms.records_per_s, ms.cpu_utilization,
                  ms.dio_per_s, lu.pa, lu.d_lw_ms, lu.d_rw_ms, lu.d_cw_ms);
      const auto& ns = s.nodes[i];
      const auto& slu = ns.Type(model::TxnType::kLU).present
                            ? ns.Type(model::TxnType::kLU)
                            : ns.Type(model::TxnType::kDUC);
      std::printf(
          "%s,%d,%s,testbed,%.4f,%.2f,%.4f,%.2f,%.4f,%.1f,%.1f,%.1f\n",
          wl.name.c_str(), n, input.sites[i].name.c_str(), ns.txn_per_s,
          ns.records_per_s, ns.cpu_utilization, ns.dio_per_s, slu.abort_prob,
          slu.lock_wait_ms, slu.remote_wait_ms, slu.commit_wait_ms);
    }
  }
  return 0;
}
