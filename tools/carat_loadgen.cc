// carat_loadgen - open-loop load generator for carat_sited mesh ports.
//
// Fires TXN frames at a fixed arrival schedule and reports
// coordinated-omission-free latency percentiles: every operation's latency
// is measured from its *scheduled* arrival time, so back-pressure shows up
// in the tail instead of silently stretching the schedule (see
// src/dist/loadgen.h).
//
//   $ carat_loadgen --connect 127.0.0.1:40001 --connect 127.0.0.1:40002 \
//       --rate 200 --duration-s 3 --type mix --ops-per-txn 8
//   scheduled=600 completed=600 committed=600 retries=4 errors=0
//   rate: asked 200.0/s achieved 199.3/s over 3.01s
//   latency (CO-free): p50 41.2 ms  p95 87.6 ms  p99 120.4 ms  mean 47.1 ms
//
// Flags:
//   --connect HOST:PORT  a site's mesh endpoint; repeatable (required)
//   --connections N      client connections, round-robin over targets (2)
//   --ops-in-flight W    per-connection in-flight window (8)
//   --ops-per-txn N      requests per transaction (8)
//   --type T             lro | lu | dro | du | mix (mix)
//   --rate R             aggregate arrivals per second (200)
//   --duration-s D       schedule length in seconds (2)
//   --total-ops N        exact schedule size, overrides rate*duration

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/loadgen.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: carat_loadgen --connect HOST:PORT [--connect ...]\n"
      "                     [--connections N] [--ops-in-flight W]\n"
      "                     [--ops-per-txn N] [--type lro|lu|dro|du|mix]\n"
      "                     [--rate R] [--duration-s D] [--total-ops N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;

  dist::LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      std::string host;
      int port = 0;
      if (!util::ParseHostPort(argv[++i], &host, &port,
                               util::PortZeroPolicy::kReject)) {
        std::fprintf(stderr, "--connect: expected HOST:PORT (port > 0), got "
                             "'%s'\n",
                     argv[i]);
        return Usage();
      }
      options.targets.emplace_back(argv[i]);
    } else if (arg == "--connections" && i + 1 < argc) {
      if (!util::ParseJobs(argv[++i], &options.connections)) {
        std::fprintf(stderr, "--connections: expected a positive integer\n");
        return Usage();
      }
    } else if (arg == "--ops-in-flight" && i + 1 < argc) {
      if (!util::ParseJobs(argv[++i], &options.ops_in_flight)) {
        std::fprintf(stderr, "--ops-in-flight: expected a positive integer\n");
        return Usage();
      }
    } else if (arg == "--ops-per-txn" && i + 1 < argc) {
      if (!util::ParseJobs(argv[++i], &options.ops_per_txn)) {
        std::fprintf(stderr, "--ops-per-txn: expected a positive integer\n");
        return Usage();
      }
    } else if (arg == "--type" && i + 1 < argc) {
      options.type = argv[++i];
      if (options.type != "lro" && options.type != "lu" &&
          options.type != "dro" && options.type != "du" &&
          options.type != "mix") {
        std::fprintf(stderr, "--type: expected lro|lu|dro|du|mix\n");
        return Usage();
      }
    } else if (arg == "--rate" && i + 1 < argc) {
      char* end = nullptr;
      options.rate_per_s = std::strtod(argv[++i], &end);
      if (*argv[i] == '\0' || *end != '\0' || options.rate_per_s <= 0.0) {
        std::fprintf(stderr, "--rate: expected a positive rate\n");
        return Usage();
      }
    } else if (arg == "--duration-s" && i + 1 < argc) {
      char* end = nullptr;
      options.duration_s = std::strtod(argv[++i], &end);
      if (*argv[i] == '\0' || *end != '\0' || options.duration_s <= 0.0) {
        std::fprintf(stderr, "--duration-s: expected a positive duration\n");
        return Usage();
      }
    } else if (arg == "--total-ops" && i + 1 < argc) {
      char* end = nullptr;
      options.total_ops = std::strtoull(argv[++i], &end, 10);
      if (*argv[i] == '\0' || *end != '\0') {
        std::fprintf(stderr, "--total-ops: expected an integer\n");
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (options.targets.empty()) {
    std::fprintf(stderr, "carat_loadgen: at least one --connect is required\n");
    return Usage();
  }

  std::signal(SIGPIPE, SIG_IGN);
  const dist::LoadgenResult result = dist::RunLoadgen(options);
  std::printf("scheduled=%llu completed=%llu committed=%llu retries=%llu "
              "errors=%llu\n",
              static_cast<unsigned long long>(result.scheduled),
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.committed),
              static_cast<unsigned long long>(result.retries),
              static_cast<unsigned long long>(result.errors));
  std::printf("rate: asked %.1f/s achieved %.1f/s over %.2fs\n",
              options.rate_per_s, result.achieved_per_s, result.elapsed_s);
  std::printf("latency (CO-free): p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  "
              "mean %.1f ms\n",
              result.p50_ms, result.p95_ms, result.p99_ms, result.mean_ms);
  if (!result.ok) {
    std::fprintf(stderr, "carat_loadgen: %s\n", result.error.c_str());
    return 1;
  }
  return 0;
}
