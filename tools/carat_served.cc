// carat_served - the network serving front-end: rpc::TcpServer over a
// serve::SolverService, with graceful drain on SIGINT/SIGTERM.
//
//   $ carat_served --listen 127.0.0.1:7411 --jobs 4 --max-inflight 256 &
//   $ printf 'q1 mb4 8\nq2 STATS\n' | nc 127.0.0.1 7411
//   q1 mb4,8,ok,converged,24,cold,63.0561,504.45
//   q2 STATS accepted=1 active=1 submitted=1 completed=1 ...
//
// See src/rpc/tcp_server.h for the wire protocol (per-request ids,
// deadline_ms, BUSY admission rejects, STATS counters) and README
// "Network serving" for examples.
//
// Flags:
//   --listen HOST:PORT   numeric IPv4 bind address (default 127.0.0.1:7411;
//                        port 0 binds an ephemeral port, printed on stderr)
//   --jobs N             solver/dispatch workers (omitted: one per hardware
//                        thread)
//   --reactors N         event-loop threads, sharded over the listen port
//                        via SO_REUSEPORT (default 1)
//   --max-inflight M     admission bound; further requests answer BUSY
//                        (default 256)
//   --idle-timeout-ms T  close connections idle longer than T (default
//                        60000; 0 disables)
//   --framing MODE       "text" refuses the 0x00 binary-framing negotiation
//                        byte; "binary" (the default) accepts it — text
//                        connections work either way
//   --no-cache / --no-warm   as in carat_serve
//
// On SIGINT/SIGTERM the server stops accepting, finishes every admitted
// request, flushes all responses, and exits 0.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include <unistd.h>

#include "exec/thread_pool.h"
#include "rpc/tcp_server.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: carat_served [--listen HOST:PORT] [--jobs N] "
               "[--reactors N]\n"
               "                    [--max-inflight M] [--idle-timeout-ms T] "
               "[--framing text|binary]\n"
               "                    [--no-cache] [--no-warm]\n");
  return 2;
}

// Signal handling via the self-pipe trick: the handler only writes a byte;
// the main thread blocks on the pipe and runs the graceful drain.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int /*signo*/) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;

  std::string host = "127.0.0.1";
  int port = 7411;
  int jobs = 0;
  serve::SolverService::Options sopts;
  rpc::TcpServer::Options ropts;
  ropts.idle_timeout_ms = 60'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      if (!util::ParseHostPort(argv[++i], &host, &port)) {
        std::fprintf(stderr, "--listen: expected HOST:PORT, got '%s'\n",
                     argv[i]);
        return Usage();
      }
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr,
                     "--jobs: expected a positive integer, got '%s' "
                     "(omit --jobs for one worker per hardware thread)\n",
                     argv[i]);
        return Usage();
      }
    } else if (arg == "--reactors" && i + 1 < argc) {
      int reactors = 0;
      if (!util::ParseJobs(argv[++i], &reactors)) {
        std::fprintf(stderr,
                     "--reactors: expected a positive integer, got '%s'\n",
                     argv[i]);
        return Usage();
      }
      ropts.reactors = static_cast<std::size_t>(reactors);
    } else if (arg == "--framing" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "text") {
        ropts.enable_binary_framing = false;
      } else if (mode == "binary") {
        ropts.enable_binary_framing = true;
      } else {
        std::fprintf(stderr, "--framing: expected 'text' or 'binary', got "
                             "'%s'\n",
                     mode.c_str());
        return Usage();
      }
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      int inflight = 0;
      if (!util::ParseJobs(argv[++i], &inflight)) {
        std::fprintf(stderr,
                     "--max-inflight: expected a positive integer, got "
                     "'%s'\n",
                     argv[i]);
        return Usage();
      }
      ropts.max_inflight = static_cast<std::size_t>(inflight);
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      char* end = nullptr;
      const long t = std::strtol(argv[++i], &end, 10);
      if (*argv[i] == '\0' || *end != '\0' || t < 0 || t > 86'400'000) {
        std::fprintf(stderr,
                     "--idle-timeout-ms: expected an integer in "
                     "[0, 86400000], got '%s'\n",
                     argv[i]);
        return Usage();
      }
      ropts.idle_timeout_ms = static_cast<int>(t);
    } else if (arg == "--no-cache") {
      sopts.use_cache = false;
    } else if (arg == "--no-warm") {
      sopts.warm_start = false;
    } else {
      return Usage();
    }
  }

  exec::ThreadPool pool(jobs <= 0 ? 0 : static_cast<std::size_t>(jobs));
  sopts.pool = &pool;  // SolveSync runs on the server's dispatch workers
  serve::SolverService service(std::move(sopts));

  ropts.host = host;
  ropts.port = static_cast<std::uint16_t>(port);
  ropts.service = &service;
  ropts.pool = &pool;
  rpc::TcpServer server(std::move(ropts));

  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "carat_served: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "carat_served: listening on %s:%u (%zu workers, %zu "
               "reactor%s%s)\n",
               host.c_str(), static_cast<unsigned>(server.port()), pool.size(),
               server.options().reactors,
               server.options().reactors == 1 ? "" : "s",
               server.single_acceptor() && server.options().reactors > 1
                   ? ", single-acceptor fallback"
                   : "");

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "carat_served: pipe failed\n");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "carat_served: draining (%llu in flight)...\n",
               static_cast<unsigned long long>(
                   server.stats().requests_submitted -
                   server.stats().requests_completed -
                   server.stats().requests_timed_out));
  server.Shutdown();

  const rpc::ServerStats stats = server.stats();
  std::fprintf(
      stderr,
      "carat_served: done. accepted=%llu submitted=%llu completed=%llu "
      "rejected=%llu timed_out=%llu p50_ms=%.3f p99_ms=%.3f\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_submitted),
      static_cast<unsigned long long>(stats.requests_completed),
      static_cast<unsigned long long>(stats.requests_rejected),
      static_cast<unsigned long long>(stats.requests_timed_out),
      server.LatencyPercentileMs(50.0), server.LatencyPercentileMs(99.0));
  return 0;
}
