// carat_serve - interactive/batch what-if query server over stdin.
//
// Reads newline-delimited query specs, schedules each on a
// serve::SolverService as it is read, and streams one result line per query
// in input order:
//
//   $ printf 'mb4 4\nmb4 8\nmb4 8\n' | carat_serve --stats
//   mb4,4,ok,converged,18,cold,38.1934,305.55
//   mb4,8,ok,converged,24,cold,63.0561,504.45
//   mb4,8,ok,converged,24,cold,63.0561,504.45     <- served from cache
//
// The query grammar and the result line are serve::ParseQuery /
// serve::FormatResult (src/serve/query.h) — shared with the TCP front-end
// (tools/carat_served), which therefore answers byte-identically.
//
// Flags:
//   --jobs N     worker threads (omitted: one per hardware thread; N >= 1)
//   --no-cache   disable the solution cache (every query solves)
//   --no-warm    disable nearest-neighbor warm starting (all solves cold)
//   --strict     abort on the first malformed line instead of skipping it
//   --stats      print service counters to stderr at EOF
//
// Exit status: 0 only when every input line parsed; a malformed line exits
// 1 (immediately under --strict, after the remaining queries otherwise).
//
// Lines are answered in order but solved concurrently: a slow query does not
// block the workers, only the output position.

#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <utility>

#include "serve/query.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: carat_serve [--jobs N] [--no-cache] [--no-warm] "
               "[--strict] [--stats]\n"
               "stdin:  <workload> <n> [think=MS] [comm=MS] [mva=exact|approx]"
               "   per line\n");
  return 2;
}

void PrintResult(const carat::serve::Query& query,
                 const carat::model::ModelSolution& m) {
  const std::string line = carat::serve::FormatResult(query, m);
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;
  serve::SolverService::Options sopts;
  bool print_stats = false;
  bool strict = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      int jobs = 0;
      if (!util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr,
                     "--jobs: expected a positive integer, got '%s' "
                     "(omit --jobs for one worker per hardware thread)\n",
                     argv[i]);
        return Usage();
      }
      sopts.threads = static_cast<std::size_t>(jobs);
    } else if (arg == "--no-cache") {
      sopts.use_cache = false;
    } else if (arg == "--no-warm") {
      sopts.warm_start = false;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      return Usage();
    }
  }

  const model::SolverOptions solver_base = sopts.solver;
  serve::SolverService service(std::move(sopts));

  // Pending results, in input order. After each new submission, drain every
  // already-finished future at the front so output streams while later
  // queries are still being read or solved.
  std::deque<std::pair<serve::Query, std::future<model::ModelSolution>>>
      pending;
  const auto drain_ready = [&pending](bool block) {
    while (!pending.empty()) {
      std::future<model::ModelSolution>& f = pending.front().second;
      if (!block &&
          f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        return;
      }
      PrintResult(pending.front().first, f.get());
      pending.pop_front();
    }
  };

  std::string line;
  std::size_t line_no = 0;
  bool input_error = false;
  while (std::getline(std::cin, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    serve::Query query;
    model::ModelInput input;
    std::string error;
    if (!serve::ParseQuery(line, &query, &input, &error)) {
      std::fprintf(stderr, "line %zu: %s\n", line_no, error.c_str());
      input_error = true;
      if (strict) break;
      continue;
    }
    if (query.use_exact_mva.has_value()) {
      model::SolverOptions solver = solver_base;
      solver.use_exact_mva = *query.use_exact_mva;
      pending.emplace_back(std::move(query),
                           service.Submit(std::move(input), solver));
    } else {
      pending.emplace_back(std::move(query),
                           service.Submit(std::move(input)));
    }
    drain_ready(/*block=*/false);
  }
  drain_ready(/*block=*/true);

  if (print_stats) {
    const serve::ServiceStats stats = service.stats();
    std::fprintf(
        stderr,
        "submitted=%llu cache_hits=%llu coalesced=%llu solved=%llu "
        "warm_started=%llu total_iterations=%llu cache_evictions=%llu "
        "cache_expirations=%llu batched=%llu batch_blocks=%llu "
        "batch_lanes_filled=%llu batch_scalar_tail=%llu\n",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.solved),
        static_cast<unsigned long long>(stats.warm_started),
        static_cast<unsigned long long>(stats.total_iterations),
        static_cast<unsigned long long>(stats.cache_evictions),
        static_cast<unsigned long long>(stats.cache_expirations),
        static_cast<unsigned long long>(stats.batched),
        static_cast<unsigned long long>(stats.batch_blocks),
        static_cast<unsigned long long>(stats.batch_lanes_filled),
        static_cast<unsigned long long>(stats.batch_scalar_tail));
  }
  return input_error ? 1 : 0;
}
