// carat_serve - interactive/batch what-if query server over stdin.
//
// Reads newline-delimited query specs, schedules each on a
// serve::SolverService as it is read, and streams one result line per query
// in input order:
//
//   $ printf 'mb4 4\nmb4 8\nmb4 8\n' | carat_serve --stats
//   mb4,4,ok,converged,18,cold,38.1934,305.55
//   mb4,8,ok,converged,24,cold,63.0561,504.45
//   mb4,8,ok,converged,24,cold,63.0561,504.45     <- served from cache
//
// Query spec:  <workload> <n> [key=value ...]
//   workload   lb8 | mb4 | mb8 | ub6 (the paper's benchmark families)
//   n          transaction size / MPL knob passed to the workload factory
//   think=MS   override every site's think time (what-if: more/less load)
//   comm=MS    override the inter-site communication delay
//
// Result line: workload,n,ok|error,converged|maxiter,iterations,warm|cold,
//              total_tps,total_records_ps
//
// Flags:
//   --jobs N     worker threads (omitted: one per hardware thread; N >= 1)
//   --no-cache   disable the solution cache (every query solves)
//   --no-warm    disable nearest-neighbor warm starting (all solves cold)
//   --stats      print service counters to stderr at EOF
//
// Lines are answered in order but solved concurrently: a slow query does not
// block the workers, only the output position.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "carat/carat.h"
#include "serve/solver_service.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: carat_serve [--jobs N] [--no-cache] [--no-warm] "
               "[--stats]\n"
               "stdin:  <workload> <n> [think=MS] [comm=MS]   per line\n");
  return 2;
}

struct Query {
  std::string workload;
  int n = 0;
};

/// Parses one stdin line into a ModelInput. Returns false with a message on
/// any malformed token; blank lines and '#' comments are skipped by the
/// caller.
bool ParseQuery(const std::string& line, Query* query,
                carat::model::ModelInput* input, std::string* error) {
  std::istringstream in(line);
  std::string workload;
  long long n = 0;
  if (!(in >> workload >> n) || n <= 0 || n > 1'000'000) {
    *error = "expected '<workload> <n>' with n >= 1";
    return false;
  }
  carat::workload::WorkloadSpec (*make)(int) = nullptr;
  if (workload == "lb8") {
    make = [](int v) { return carat::workload::MakeLB8(v); };
  } else if (workload == "mb4") {
    make = [](int v) { return carat::workload::MakeMB4(v); };
  } else if (workload == "mb8") {
    make = [](int v) { return carat::workload::MakeMB8(v); };
  } else if (workload == "ub6") {
    make = [](int v) { return carat::workload::MakeUB6(v); };
  } else {
    *error = "unknown workload '" + workload + "'";
    return false;
  }
  *input = make(static_cast<int>(n)).ToModelInput();

  std::string kv;
  while (in >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + kv + "'";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(kv.c_str() + eq + 1, &end);
    if (*end != '\0' || value < 0) {
      *error = "bad value in '" + kv + "'";
      return false;
    }
    if (key == "think") {
      for (carat::model::SiteParams& site : input->sites) {
        site.think_time_ms = value;
      }
    } else if (key == "comm") {
      input->comm_delay_ms = value;
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  query->workload = workload;
  query->n = static_cast<int>(n);
  return true;
}

void PrintResult(const Query& query, const carat::model::ModelSolution& m) {
  if (!m.ok) {
    std::printf("%s,%d,error,,,,,%s\n", query.workload.c_str(), query.n,
                m.error.c_str());
  } else {
    std::printf("%s,%d,ok,%s,%d,%s,%.4f,%.2f\n", query.workload.c_str(),
                query.n, m.converged ? "converged" : "maxiter", m.iterations,
                m.warm_started ? "warm" : "cold", m.TotalTxnPerSec(),
                m.TotalRecordsPerSec());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;
  serve::SolverService::Options sopts;
  bool print_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      int jobs = 0;
      if (!util::ParseJobs(argv[++i], &jobs)) {
        std::fprintf(stderr,
                     "--jobs: expected a positive integer, got '%s' "
                     "(omit --jobs for one worker per hardware thread)\n",
                     argv[i]);
        return Usage();
      }
      sopts.threads = static_cast<std::size_t>(jobs);
    } else if (arg == "--no-cache") {
      sopts.use_cache = false;
    } else if (arg == "--no-warm") {
      sopts.warm_start = false;
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      return Usage();
    }
  }

  serve::SolverService service(std::move(sopts));

  // Pending results, in input order. After each new submission, drain every
  // already-finished future at the front so output streams while later
  // queries are still being read or solved.
  std::deque<std::pair<Query, std::future<model::ModelSolution>>> pending;
  const auto drain_ready = [&pending](bool block) {
    while (!pending.empty()) {
      std::future<model::ModelSolution>& f = pending.front().second;
      if (!block &&
          f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        return;
      }
      PrintResult(pending.front().first, f.get());
      pending.pop_front();
    }
  };

  std::string line;
  std::size_t line_no = 0;
  bool input_error = false;
  while (std::getline(std::cin, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Query query;
    model::ModelInput input;
    std::string error;
    if (!ParseQuery(line, &query, &input, &error)) {
      std::fprintf(stderr, "line %zu: %s\n", line_no, error.c_str());
      input_error = true;
      continue;
    }
    pending.emplace_back(std::move(query), service.Submit(std::move(input)));
    drain_ready(/*block=*/false);
  }
  drain_ready(/*block=*/true);

  if (print_stats) {
    const serve::ServiceStats stats = service.stats();
    std::fprintf(stderr,
                 "submitted=%llu cache_hits=%llu coalesced=%llu solved=%llu "
                 "warm_started=%llu total_iterations=%llu\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.cache_hits),
                 static_cast<unsigned long long>(stats.coalesced),
                 static_cast<unsigned long long>(stats.solved),
                 static_cast<unsigned long long>(stats.warm_started),
                 static_cast<unsigned long long>(stats.total_iterations));
  }
  return input_error ? 1 : 0;
}
