// carat_sited - one CARAT site as an OS process.
//
// Spawned by the carat_dist coordinator (or a test harness); not normally
// run by hand. The daemon binds an ephemeral mesh port, dials the
// coordinator, and reports the port in its HELLO — so the parent never
// parses ports out of pipes and there are no bind races. Everything else
// (workload, scale, windows) arrives over the control link; see
// src/dist/wire.h for the protocol and src/dist/site_daemon.h for the
// lifecycle.
//
// Flags:
//   --coordinator HOST:PORT  control endpoint to dial (required)
//   --site N                 this process's site index (required)
//   --cc BACKEND             concurrency-control backend this site runs
//                            (2pl | nowait | waitdie | queue; default 2pl).
//                            Reported in HELLO; the coordinator rejects a
//                            mesh whose sites disagree on the backend.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cc/cc.h"
#include "dist/site_daemon.h"
#include "util/cli.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: carat_sited --coordinator HOST:PORT --site N "
               "[--cc 2pl|nowait|waitdie|queue]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;

  dist::SiteDaemonOptions options;
  options.site = -1;
  bool have_coordinator = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--coordinator" && i + 1 < argc) {
      if (!util::ParseHostPort(argv[++i], &options.coordinator_host,
                               &options.coordinator_port,
                               util::PortZeroPolicy::kReject)) {
        std::fprintf(stderr, "--coordinator: expected HOST:PORT, got '%s'\n",
                     argv[i]);
        return Usage();
      }
      have_coordinator = true;
    } else if (arg == "--site" && i + 1 < argc) {
      char* end = nullptr;
      const long site = std::strtol(argv[++i], &end, 10);
      if (*argv[i] == '\0' || *end != '\0' || site < 0 || site > 1024) {
        std::fprintf(stderr, "--site: expected an index in [0, 1024], got "
                             "'%s'\n",
                     argv[i]);
        return Usage();
      }
      options.site = static_cast<int>(site);
    } else if (arg == "--cc" && i + 1 < argc) {
      cc::BackendKind kind;
      if (!cc::ParseBackend(argv[++i], &kind)) {
        std::fprintf(stderr, "--cc: unknown backend '%s'\n", argv[i]);
        return Usage();
      }
      options.cc = argv[i];
    } else {
      return Usage();
    }
  }
  if (!have_coordinator || options.site < 0) return Usage();

  // A peer or load generator dropping its connection must not kill the site.
  std::signal(SIGPIPE, SIG_IGN);
  return dist::RunSiteDaemon(options);
}
