// carat_dist - run the CARAT testbed as a real distributed system.
//
// Spawns one carat_sited process per site, wires them into a full mesh over
// TCP, runs the paper workload for a real-time measurement window, and
// cross-checks the aggregate throughput / response time / restart
// probability against the in-process discrete-event reference (RunTestbed)
// fed with the *measured* inter-site delay alpha.
//
//   $ carat_dist --sites 2 --workload mb8 --n 8
//   sites=2 workload=mb8 n=8 scale=0.10 alpha=0.023ms (virtual 0.23ms)
//   dist: 42.31 txn/s  response 282.1 ms  restart 0.031  (3812 commits, ...)
//   ref:  44.05 txn/s  response 270.9 ms  restart 0.028
//   check: PASS (xput 3.9% <= 35.0%, resp 4.1% <= 45.0%, restart 0.003 <= 0.100)
//
// Flags:
//   --sites N          site processes (default 2)
//   --workload W       lb8 | mb4 | mb8 | ub6 (default mb8)
//   --n N              requests per transaction (default 8)
//   --granules G       granules per site (default 3000)
//   --scale S          real ms per virtual ms (default 0.1)
//   --warmup-ms W      real warm-up window (default 1500)
//   --measure-ms M     real measurement window (default 6000)
//   --seed S           workload seed (default 1)
//   --cc B             concurrency-control backend (default 2pl; only 2pl
//                      runs distributed today — others are rejected up
//                      front, and the coordinator refuses mixed meshes)
//   --no-check         skip the in-process reference cross-check
//   --json             machine-readable result on stdout
//   --sited-bin PATH   carat_sited binary (default: auto-resolve)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cc/cc.h"
#include "dist/coordinator.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: carat_dist [--sites N] [--workload lb8|mb4|mb8|ub6] [--n N]\n"
      "                  [--granules G] [--scale S] [--warmup-ms W]\n"
      "                  [--measure-ms M] [--seed S] [--cc B] [--no-check]\n"
      "                  [--json] [--sited-bin PATH]\n");
  return 2;
}

bool ParsePositiveInt(const char* arg, long lo, long hi, int* out) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (*arg == '\0' || *end != '\0' || v < lo || v > hi) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParsePositiveDouble(const char* arg, double* out) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (*arg == '\0' || *end != '\0' || v <= 0.0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carat;

  dist::DistRunOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sites" && i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], 1, 64, &options.config.sites)) {
        std::fprintf(stderr, "--sites: expected 1..64, got '%s'\n", argv[i]);
        return Usage();
      }
    } else if (arg == "--workload" && i + 1 < argc) {
      options.config.workload = argv[++i];
      if (options.config.workload != "lb8" &&
          options.config.workload != "mb4" &&
          options.config.workload != "mb8" &&
          options.config.workload != "ub6") {
        std::fprintf(stderr, "--workload: expected lb8|mb4|mb8|ub6\n");
        return Usage();
      }
    } else if (arg == "--n" && i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], 1, 64,
                            &options.config.requests_per_txn)) {
        std::fprintf(stderr, "--n: expected 1..64, got '%s'\n", argv[i]);
        return Usage();
      }
    } else if (arg == "--granules" && i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], 1, 1'000'000,
                            &options.config.num_granules)) {
        std::fprintf(stderr, "--granules: expected a positive count\n");
        return Usage();
      }
    } else if (arg == "--scale" && i + 1 < argc) {
      if (!ParsePositiveDouble(argv[++i], &options.config.scale)) {
        std::fprintf(stderr, "--scale: expected a positive factor\n");
        return Usage();
      }
    } else if (arg == "--warmup-ms" && i + 1 < argc) {
      if (!ParsePositiveDouble(argv[++i], &options.warmup_real_ms)) {
        std::fprintf(stderr, "--warmup-ms: expected a positive duration\n");
        return Usage();
      }
    } else if (arg == "--measure-ms" && i + 1 < argc) {
      if (!ParsePositiveDouble(argv[++i], &options.measure_real_ms)) {
        std::fprintf(stderr, "--measure-ms: expected a positive duration\n");
        return Usage();
      }
    } else if (arg == "--seed" && i + 1 < argc) {
      char* end = nullptr;
      options.config.seed = std::strtoull(argv[++i], &end, 10);
      if (*argv[i] == '\0' || *end != '\0') {
        std::fprintf(stderr, "--seed: expected an integer\n");
        return Usage();
      }
    } else if (arg == "--cc" && i + 1 < argc) {
      cc::BackendKind kind;
      if (!cc::ParseBackend(argv[++i], &kind)) {
        std::fprintf(stderr, "--cc: unknown backend '%s'\n", argv[i]);
        return Usage();
      }
      options.config.cc = argv[i];
    } else if (arg == "--no-check") {
      options.check = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sited-bin" && i + 1 < argc) {
      options.sited_bin = argv[++i];
    } else {
      return Usage();
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  const dist::DistRunResult result = dist::RunDistributed(options);
  if (!result.ok) {
    std::fprintf(stderr, "carat_dist: %s\n", result.error.c_str());
    return 1;
  }

  if (json) {
    std::printf(
        "{\"sites\":%d,\"workload\":\"%s\",\"n\":%d,\"cc\":\"%s\",\"scale\":%g,"
        "\"alpha_rtt_real_ms\":%.6f,\"alpha_virtual_ms\":%.6f,"
        "\"measured_vms\":%.3f,\"commits\":%llu,\"submissions\":%llu,"
        "\"aborts\":%llu,\"global_deadlocks\":%llu,\"messages\":%llu,"
        "\"dist_txn_per_s\":%.4f,\"dist_response_ms\":%.4f,"
        "\"dist_restart_prob\":%.6f,\"all_drained\":%s,\"all_audits_ok\":%s,"
        "\"checked\":%s,\"ref_txn_per_s\":%.4f,\"ref_response_ms\":%.4f,"
        "\"ref_restart_prob\":%.6f,\"throughput_rel_err\":%.6f,"
        "\"response_rel_err\":%.6f,\"restart_abs_err\":%.6f,"
        "\"within_tolerance\":%s}\n",
        options.config.sites, options.config.workload.c_str(),
        options.config.requests_per_txn, options.config.cc.c_str(),
        options.config.scale, result.alpha_rtt_real_ms, result.alpha_virtual_ms,
        result.measured_vms,
        static_cast<unsigned long long>(result.commits),
        static_cast<unsigned long long>(result.submissions),
        static_cast<unsigned long long>(result.aborts),
        static_cast<unsigned long long>(result.global_deadlocks),
        static_cast<unsigned long long>(result.messages_sent),
        result.dist_txn_per_s, result.dist_response_ms,
        result.dist_restart_prob, result.all_drained ? "true" : "false",
        result.all_audits_ok ? "true" : "false",
        result.checked ? "true" : "false", result.ref_txn_per_s,
        result.ref_response_ms, result.ref_restart_prob,
        result.throughput_rel_err, result.response_rel_err,
        result.restart_abs_err, result.within_tolerance ? "true" : "false");
  } else {
    std::printf(
        "sites=%d workload=%s n=%d cc=%s scale=%.2f alpha=%.3fms (virtual "
        "%.3fms)\n",
        options.config.sites, options.config.workload.c_str(),
        options.config.requests_per_txn, options.config.cc.c_str(),
        options.config.scale, result.alpha_rtt_real_ms / 2.0,
        result.alpha_virtual_ms);
    std::printf(
        "dist: %.2f txn/s  response %.1f ms  restart %.3f  (%llu commits, "
        "%llu msgs, %llu global deadlocks, drained=%s, audit=%s)\n",
        result.dist_txn_per_s, result.dist_response_ms,
        result.dist_restart_prob,
        static_cast<unsigned long long>(result.commits),
        static_cast<unsigned long long>(result.messages_sent),
        static_cast<unsigned long long>(result.global_deadlocks),
        result.all_drained ? "yes" : "NO", result.all_audits_ok ? "ok" : "BAD");
    if (result.checked) {
      std::printf("ref:  %.2f txn/s  response %.1f ms  restart %.3f\n",
                  result.ref_txn_per_s, result.ref_response_ms,
                  result.ref_restart_prob);
      std::printf(
          "check: %s (xput %.1f%% <= %.1f%%, resp %.1f%% <= %.1f%%, restart "
          "%.3f <= %.3f)\n",
          result.within_tolerance ? "PASS" : "FAIL",
          result.throughput_rel_err * 100.0,
          options.tol_throughput_rel * 100.0, result.response_rel_err * 100.0,
          options.tol_response_rel * 100.0, result.restart_abs_err,
          options.tol_restart_abs);
    }
  }

  const bool pass = result.all_drained && result.all_audits_ok &&
                    (!result.checked || result.within_tolerance);
  return pass ? 0 : 1;
}
