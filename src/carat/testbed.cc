#include "carat/testbed.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "cc/cc.h"
#include "lock/lock_manager_set.h"
#include "net/network.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "txn/node.h"
#include "txn/registry.h"
#include "util/random.h"
#include "util/stats.h"

namespace carat {

namespace {

using model::ClassParams;
using model::TxnType;
using txn::GlobalTxnId;
using txn::Node;
using txn::RequestSpec;

// One simulated user TR process and its measurement counters. The driver is
// pinned to its home site's shard: every field is only touched from home-site
// events (remote legs carry no accounting).
struct UserDriver {
  int home = 0;
  TxnType type = TxnType::kLRO;
  sim::SitePort port;  // home-site timeline
  util::Rng rng{0};
  // Round-robin cursor over the other nodes for remote requests. Persists
  // across submissions: restarting at 0 every plan sent every remote
  // request in the system to the lowest-numbered other nodes, invisible at
  // the paper's 2 nodes (there is only one) but badly skewed at 16.
  int remote_rr = 0;

  std::uint64_t commits = 0;
  std::uint64_t submissions = 0;
  std::uint64_t aborts = 0;
  util::StatAccumulator response_ms;
  // Per-commit-cycle synchronization times, mirroring the model's LW/RW/CW
  // delay-center demands.
  util::StatAccumulator lock_wait_ms;
  util::StatAccumulator remote_wait_ms;
  util::StatAccumulator commit_wait_ms;
  std::uint64_t records_committed = 0;

  void ResetStats() {
    commits = submissions = aborts = records_committed = 0;
    response_ms.Reset();
    lock_wait_ms.Reset();
    remote_wait_ms.Reset();
    commit_wait_ms.Reset();
  }
};

// Detached 2PC leg: run the task, then signal the join gate. The leg's last
// step is a home-site await, so the gate fires in home-site context.
sim::Process RunLeg(sim::Task<void> task, sim::Gate* gate) {
  co_await task;
  gate->Signal();
}

// True when some class actually ships requests to other sites; only then can
// any event cross a site boundary (REMDO/2PC/abort messages and the global
// probes that chase distributed wait chains).
bool IsDistributed(const model::ModelInput& input) {
  for (const model::SiteParams& site : input.sites) {
    for (TxnType t :
         {TxnType::kLRO, TxnType::kLU, TxnType::kDROC, TxnType::kDUC}) {
      const ClassParams& c = site.Class(t);
      if (c.population > 0 && c.remote_requests > 0) return true;
    }
  }
  return false;
}

// Shard count actually used for the run. A distributed workload with zero
// communication delay admits zero-delay cross-site messages, for which no
// conservative lookahead window exists: such runs are forced serial.
int PlannedShards(const model::ModelInput& input, int requested) {
  if (IsDistributed(input) && input.comm_delay_ms <= 0.0) return 1;
  int shards = requested;
  if (shards <= 0) {
    shards = static_cast<int>(std::thread::hardware_concurrency());
    if (shards <= 0) shards = 1;
  }
  return std::clamp(shards, 1, static_cast<int>(input.sites.size()));
}

// Conservative lookahead: the communication delay for distributed
// workloads (every cross-site message pays at least one hop), unbounded for
// purely local ones (no cross-site message ever exists; the kernel asserts
// that).
double PlannedLookahead(const model::ModelInput& input) {
  if (!IsDistributed(input)) return sim::ShardedKernel::kNoLookahead;
  return input.comm_delay_ms > 0.0 ? input.comm_delay_ms : 0.0;
}

class Testbed {
 public:
  Testbed(const model::ModelInput& input, const TestbedOptions& options)
      : input_(input),
        options_(options),
        kernel_(static_cast<int>(input.sites.size()),
                PlannedShards(input, options.shards), PlannedLookahead(input)),
        network_(kernel_, input.comm_delay_ms),
        registry_(static_cast<int>(input.sites.size())),
        locks_(kernel_),
        root_rng_(options.seed) {
    locks_.set_victim_policy(options.victim_policy);
    switch (input.cc_backend) {
      case cc::BackendKind::kNoWait:
        locks_.set_conflict_policy(lock::ConflictPolicy::kAbortRequester);
        break;
      case cc::BackendKind::kWaitDie:
        locks_.set_conflict_policy(lock::ConflictPolicy::kWaitDie);
        break;
      case cc::BackendKind::k2PL:
      case cc::BackendKind::kQueue:
        break;  // ConflictPolicy::kWait: FIFO queues, the 2PL default
    }
    for (std::size_t i = 0; i < input.sites.size(); ++i) {
      const int index = static_cast<int>(i);
      nodes_.push_back(std::make_unique<Node>(sim::SitePort{&kernel_, index},
                                              index, input.sites[i],
                                              &locks_.at(index)));
    }
    // Committed-update audit counters, sliced by the crediting coordinator's
    // home site so CreditCommit stays a home-site write at any shard count.
    shadow_.resize(nodes_.size());
    for (auto& slice : shadow_) {
      for (const auto& node : nodes_) {
        slice.emplace_back(node->database().num_records(), 0);
      }
    }
    std::vector<Node*> node_ptrs;
    for (auto& n : nodes_) node_ptrs.push_back(n.get());
    detector_ = std::make_unique<txn::GlobalDeadlockDetector>(
        kernel_, network_, registry_, node_ptrs, options.probe_options);

    // Only 2PL can form wait-for cycles; the other backends are deadlock-free
    // by construction, so their waits never feed the global probe machinery.
    if (input.cc_backend == cc::BackendKind::k2PL) {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const int index = static_cast<int>(i);
        locks_.at(index).on_block =
            [this, index](GlobalTxnId waiter,
                          const std::vector<GlobalTxnId>& holders) {
              detector_->OnBlock(index, waiter, holders);
            };
      }
    }
  }

  TestbedResult Run() {
    SpawnUsers();
    if (input_.cc_backend == cc::BackendKind::k2PL) {
      detector_->StartWatchdogs();
    }
    kernel_.RunUntil(options_.warmup_ms);
    ResetStats();
    kernel_.RunUntil(options_.warmup_ms + options_.measure_ms);
    return Collect();
  }

 private:
  // ---- workload -----------------------------------------------------------

  void SpawnUsers() {
    for (std::size_t i = 0; i < input_.sites.size(); ++i) {
      const model::SiteParams& site = input_.sites[i];
      for (TxnType t : {TxnType::kLRO, TxnType::kLU, TxnType::kDROC,
                        TxnType::kDUC}) {
        for (int u = 0; u < site.Class(t).population; ++u) {
          auto driver = std::make_unique<UserDriver>();
          driver->home = static_cast<int>(i);
          driver->type = t;
          driver->port = sim::SitePort{&kernel_, driver->home};
          driver->rng = root_rng_.Fork();
          UserProcess(driver.get());
          drivers_.push_back(std::move(driver));
        }
      }
    }
  }

  // Cost parameters governing execution of `u`'s requests at `node`: the
  // user's own class at home, the matching slave class elsewhere.
  const ClassParams& ExecCosts(const UserDriver& u, int node) const {
    if (node == u.home) return input_.sites[node].Class(u.type);
    return input_.sites[node].Class(model::SlaveOf(u.type));
  }

  // The sequence of requests for one submission: l local and r remote
  // requests, interleaved, each reading (or updating) fresh uniform random
  // records at its executing node. Runs in home-site context; PickRecords
  // only reads the remote node's immutable sizing parameters.
  std::vector<RequestSpec> BuildPlan(UserDriver* u) {
    const ClassParams& costs = input_.sites[u->home].Class(u->type);
    const bool update = model::IsUpdate(u->type);

    // Remote target nodes, round-robin over the other nodes.
    std::vector<int> remote_nodes;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (static_cast<int>(j) != u->home) remote_nodes.push_back(j);
    }

    std::vector<RequestSpec> plan;
    int local_left = costs.local_requests;
    int remote_left = costs.remote_requests;

    while (local_left > 0 || remote_left > 0) {
      RequestSpec req;
      if (local_left >= remote_left) {
        req.node = u->home;
        --local_left;
      } else {
        req.node = remote_nodes[static_cast<std::size_t>(u->remote_rr++) %
                                remote_nodes.size()];
        --remote_left;
      }
      req.update = update;
      req.records = nodes_[req.node]->PickRecords(costs.records_per_request,
                                                  &u->rng);
      plan.push_back(std::move(req));
    }
    return plan;
  }

  // ---- transaction lifecycle ----------------------------------------------

  sim::Process UserProcess(UserDriver* u) {
    const double think = input_.sites[u->home].think_time_ms;
    const int records_per_commit =
        input_.sites[u->home].Class(u->type).records_accessed();
    for (;;) {
      const double cycle_start = u->port.now();
      bool committed = false;
      Node::PhaseAccounting acct;  // accumulated across retries
      while (!committed) {
        if (think > 0) co_await sim::Delay{u->port, think};
        ++u->submissions;
        committed = co_await RunOnce(u, &acct);
        if (!committed) {
          ++u->aborts;
          if (cc::IsRestartOriented(input_.cc_backend)) {
            // Restart backoff, uniform in [0.5, 1.5) x the mean, drawn from
            // this user's own stream so nobody else's record picks shift.
            // Credited as lock wait: it is the restart backends' substitute
            // for queueing at the lock.
            const double backoff =
                input_.restart_backoff_ms * (0.5 + u->rng.NextDouble());
            acct.lock_wait_ms += backoff;
            co_await sim::Delay{u->port, backoff};
          }
        }
      }
      ++u->commits;
      u->records_committed += records_per_commit;
      u->response_ms.Add(u->port.now() - cycle_start);
      u->lock_wait_ms.Add(acct.lock_wait_ms);
      u->remote_wait_ms.Add(acct.remote_wait_ms);
      u->commit_wait_ms.Add(acct.commit_wait_ms);
    }
  }

  // One execution attempt; true on commit, false if aborted by deadlock.
  // The coroutine changes site only through network hops; everything touched
  // between hops belongs to the site it is currently at.
  sim::Task<bool> RunOnce(UserDriver* u, Node::PhaseAccounting* acct) {
    Node& home = *nodes_[u->home];
    const ClassParams& costs = input_.sites[u->home].Class(u->type);
    txn::SiteRegistry& reg = registry_.at(u->home);
    const GlobalTxnId gid = reg.NewTxn(u->type);

    std::vector<bool> touched(nodes_.size(), false);
    touched[u->home] = true;
    // A DM server is allocated to the transaction for its lifetime at each
    // node it touches (CARAT's fixed startup pool).
    if (home.dm_pool() != nullptr) co_await home.dm_pool()->Acquire();
    home.locks().StartTxn(gid);

    std::vector<RequestSpec> plan = BuildPlan(u);

    // Queue-oriented backend: run the plan in ascending node order and take
    // all granule locks a node needs, ascending, on first arrival there.
    // Every transaction then acquires along the same global (node, granule)
    // order, so no wait-for cycle can ever form and no abort ever happens.
    const bool queued = input_.cc_backend == cc::BackendKind::kQueue;
    std::vector<std::vector<db::GranuleId>> upfront;
    std::vector<bool> upfront_done;
    if (queued) {
      std::stable_sort(plan.begin(), plan.end(),
                       [](const RequestSpec& a, const RequestSpec& b) {
                         return a.node < b.node;
                       });
      upfront.resize(nodes_.size());
      upfront_done.assign(nodes_.size(), false);
      for (const RequestSpec& req : plan) {
        const auto n = static_cast<std::size_t>(req.node);
        for (const db::RecordId r : req.records) {
          upfront[n].push_back(nodes_[n]->database().GranuleOf(r));
        }
      }
      for (auto& granules : upfront) {
        std::sort(granules.begin(), granules.end());
        granules.erase(std::unique(granules.begin(), granules.end()),
                       granules.end());
      }
    }

    // INIT phase: TBEGIN and DBOPEN handling by the home TM plus DM-server
    // allocation. (Remote DM allocation folds into the first REMDO, like the
    // testbed's lazy slave assignment.)
    co_await home.TmHandle(costs.tm_cpu_ms);
    co_await home.TmHandle(costs.tm_cpu_ms);
    co_await home.UseCpu(costs.dm_cpu_ms);

    bool aborted = false;
    int victim_node = -1;
    for (const RequestSpec& req : plan) {
      Node& exec = *nodes_[req.node];
      const ClassParams& exec_costs = ExecCosts(*u, req.node);

      // U phase: the user process prepares the request.
      co_await home.UseCpu(costs.u_cpu_ms);
      // Home TM routes the TDO.
      co_await home.TmHandle(costs.tm_cpu_ms);

      bool ok = true;
      if (req.node == u->home) {
        if (queued && !upfront_done[static_cast<std::size_t>(req.node)]) {
          upfront_done[static_cast<std::size_t>(req.node)] = true;
          ok = co_await exec.AcquireGranules(
              gid, upfront[static_cast<std::size_t>(req.node)], req.update,
              acct);
        }
        if (ok) {
          ok = co_await exec.ExecuteRequest(gid, exec_costs, req, acct,
                                            /*acquire_locks=*/!queued);
        }
        co_await home.TmHandle(costs.tm_cpu_ms);  // DOSTEP_K routing
      } else {
        // RW span: from shipping the REMDO until its response is back home.
        // Like the model's Eq. 21, the slave's lock waits stay *inside* the
        // coordinator's remote wait (so the slave exec gets no accounting;
        // the driver's LW covers home-site waits only).
        const double rw_start = u->port.now();
        reg.SetCurrentNode(gid, req.node);  // probe routing: txn moves there
        co_await network_.Hop(req.node);               // REMDO
        if (!touched[req.node]) {
          // First touch: lazy slave DM assignment, at the slave itself.
          touched[req.node] = true;
          if (exec.dm_pool() != nullptr) co_await exec.dm_pool()->Acquire();
          exec.locks().StartTxn(gid);
        }
        co_await exec.TmHandle(exec_costs.tm_cpu_ms);  // slave TM, inbound
        if (queued && !upfront_done[static_cast<std::size_t>(req.node)]) {
          upfront_done[static_cast<std::size_t>(req.node)] = true;
          // The slave's upfront waits stay inside the coordinator's remote
          // wait, like Eq. 21 treats slave lock waits.
          ok = co_await exec.AcquireGranules(
              gid, upfront[static_cast<std::size_t>(req.node)], req.update,
              nullptr);
        }
        if (ok) {
          ok = co_await exec.ExecuteRequest(gid, exec_costs, req, nullptr,
                                            /*acquire_locks=*/!queued);
        }
        if (!ok) {
          // Deadlock victim at the slave: its DM rolls back and vacates the
          // node before the failure response ships home (T_ABORT, local
          // part). The coordinator then aborts the surviving nodes.
          co_await exec.RollbackAt(gid, exec_costs);
          exec.locks().EndTxn(gid);
          if (exec.dm_pool() != nullptr) exec.dm_pool()->Release();
          touched[req.node] = false;
        }
        co_await exec.TmHandle(exec_costs.tm_cpu_ms);  // slave TM, REMDO_K
        co_await network_.Hop(u->home);                // response
        reg.SetCurrentNode(gid, u->home);
        if (acct != nullptr) acct->remote_wait_ms += u->port.now() - rw_start;
        co_await home.TmHandle(costs.tm_cpu_ms);       // home TM, REMDO_K
      }
      if (!ok) {
        aborted = true;
        victim_node = req.node;
        break;
      }
    }

    if (aborted) {
      co_await GlobalAbort(u, gid, victim_node, touched);
    } else {
      co_await home.TmHandle(costs.tm_cpu_ms);  // TEND
      co_await Commit(u, gid, touched, plan, acct);
    }

    // Slaves were vacated inside their commit/abort legs; only the home
    // residue remains.
    home.locks().EndTxn(gid);
    if (home.dm_pool() != nullptr) home.dm_pool()->Release();
    reg.EndTxn(gid);
    co_return !aborted;
  }

  // Rollback everywhere after `gid` was chosen as a deadlock victim at
  // `victim_node` (T_ABORT message flow). A remote victim node already
  // rolled back inside its request leg; the home site and the surviving
  // slaves are handled here, from home-site context.
  sim::Task<void> GlobalAbort(UserDriver* u, GlobalTxnId gid, int victim_node,
                              const std::vector<bool>& touched) {
    const ClassParams& costs = input_.sites[u->home].Class(u->type);
    // The victim site rolls back first (its DM got the abort outcome).
    if (victim_node == u->home) {
      co_await nodes_[u->home]->RollbackAt(gid, costs);
    }
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      const int node = static_cast<int>(j);
      if (!touched[j] || node == victim_node) continue;
      if (node == u->home) {
        co_await nodes_[j]->RollbackAt(gid, costs);
        continue;
      }
      co_await AbortLeg(u, gid, node);
    }
  }

  // T_ABORT to one surviving slave: roll back there, vacate the node, and
  // acknowledge home (ABORT_K).
  sim::Task<void> AbortLeg(UserDriver* u, GlobalTxnId gid, int j) {
    Node& slave = *nodes_[j];
    const ClassParams& scosts = ExecCosts(*u, j);
    const ClassParams& hcosts = input_.sites[u->home].Class(u->type);
    co_await network_.Hop(j);  // T_ABORT
    co_await slave.TmHandle(scosts.tm_cpu_ms);
    co_await slave.RollbackAt(gid, scosts);
    slave.locks().EndTxn(gid);
    if (slave.dm_pool() != nullptr) slave.dm_pool()->Release();
    co_await network_.Hop(u->home);  // ABORT_K
    co_await nodes_[u->home]->TmHandle(hcosts.tm_cpu_ms);
  }

  // Credits committed updates to the audit counters. Must run exactly when
  // the coordinator's commit record is logged (the 2PC decision point): the
  // end-of-run audit treats the coordinator's commit record as the global
  // truth for in-doubt participants. Writes only this coordinator's
  // home-site shadow slice.
  void CreditCommit(const UserDriver& u, const std::vector<RequestSpec>& plan) {
    if (!model::IsUpdate(u.type)) return;
    for (const RequestSpec& req : plan) {
      for (const db::RecordId r : req.records) ++shadow_[u.home][req.node][r];
    }
  }

  // Commit: direct for local transactions, centralized 2PC for distributed.
  sim::Task<void> Commit(UserDriver* u, GlobalTxnId gid,
                         const std::vector<bool>& touched,
                         const std::vector<RequestSpec>& plan,
                         Node::PhaseAccounting* acct = nullptr) {
    Node& home = *nodes_[u->home];
    const ClassParams& costs = input_.sites[u->home].Class(u->type);

    std::vector<int> slaves;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (touched[j] && static_cast<int>(j) != u->home) slaves.push_back(j);
    }

    if (slaves.empty()) {
      // TC + TCIO: commit processing and the forced commit log record.
      co_await home.UseCpu(costs.tc_cpu_ms);
      home.log().LogCommit(gid);
      CreditCommit(*u, plan);
      co_await home.LogIo(1);
      co_await home.ReleaseLocksAt(gid, costs);
      home.log().Forget(gid);
      co_return;
    }

    // --- phase 1: PREPARE (parallel legs) -----------------------------------
    const double prepare_start = u->port.now();
    sim::Gate prepared(static_cast<int>(slaves.size()));
    for (const int j : slaves) {
      RunLeg(PrepareLeg(u, gid, j), &prepared);
    }
    co_await prepared.Wait();
    if (acct != nullptr) acct->commit_wait_ms += u->port.now() - prepare_start;

    // Decision: force-write the commit record at the coordinator.
    co_await home.UseCpu(costs.tc_cpu_ms);
    home.log().LogCommit(gid);
    CreditCommit(*u, plan);
    co_await home.LogIo(1);

    // --- phase 2: COMMIT (parallel legs) ------------------------------------
    const double commit_start = u->port.now();
    sim::Gate committed(static_cast<int>(slaves.size()));
    for (const int j : slaves) {
      RunLeg(CommitLeg(u, gid, j), &committed);
    }
    co_await committed.Wait();
    if (acct != nullptr) acct->commit_wait_ms += u->port.now() - commit_start;

    co_await home.ReleaseLocksAt(gid, costs);
    home.log().Forget(gid);
  }

  sim::Task<void> PrepareLeg(UserDriver* u, GlobalTxnId gid, int j) {
    Node& slave = *nodes_[j];
    Node& home = *nodes_[u->home];
    const ClassParams& scosts = ExecCosts(*u, j);
    const ClassParams& hcosts = input_.sites[u->home].Class(u->type);
    co_await network_.Hop(j);               // PREPARE
    co_await slave.TmHandle(scosts.tm_cpu_ms);
    slave.log().LogPrepare(gid);
    co_await slave.LogIo(1);                // forced prepare record
    co_await network_.Hop(u->home);         // YES vote
    co_await home.TmHandle(hcosts.tm_cpu_ms);
  }

  sim::Task<void> CommitLeg(UserDriver* u, GlobalTxnId gid, int j) {
    Node& slave = *nodes_[j];
    Node& home = *nodes_[u->home];
    const ClassParams& scosts = ExecCosts(*u, j);
    const ClassParams& hcosts = input_.sites[u->home].Class(u->type);
    co_await network_.Hop(j);               // COMMIT
    co_await slave.TmHandle(scosts.tm_cpu_ms);
    slave.log().LogCommit(gid);
    co_await slave.LogIo(1);                // commit record
    co_await slave.ReleaseLocksAt(gid, scosts);
    slave.log().Forget(gid);
    slave.locks().EndTxn(gid);  // the slave's part of the txn is over
    if (slave.dm_pool() != nullptr) slave.dm_pool()->Release();
    co_await network_.Hop(u->home);         // COMMIT_K
    co_await home.TmHandle(hcosts.tm_cpu_ms);
  }

  // ---- measurement ---------------------------------------------------------

  void ResetStats() {
    for (auto& node : nodes_) node->ResetStats();
    for (auto& driver : drivers_) driver->ResetStats();
    network_.ResetStats();
    detector_->ResetStats();
    events_at_reset_ = kernel_.events_executed();
  }

  bool AuditDatabase() const {
    // Global commit truth: a transaction is committed iff some node (in
    // practice its coordinator) holds its commit record - the answer a real
    // 2PC recovery would get for an in-doubt prepared transaction.
    const auto committed_anywhere = [this](wal::TxnId t) {
      for (const auto& node : nodes_) {
        if (node->log().IsCommitted(t)) return true;
      }
      return false;
    };
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      // Undo in-flight transactions on a copy, then compare with the audit
      // counters: exactly the committed increments must remain. The audit
      // count for a record sums every coordinator's home-site slice.
      db::Database copy = nodes_[i]->database();
      nodes_[i]->log().Recover(&copy, committed_anywhere);
      for (db::RecordId r = 0; r < copy.num_records(); ++r) {
        std::uint64_t expected = 0;
        for (std::size_t h = 0; h < shadow_.size(); ++h) {
          expected += shadow_[h][i][r];
        }
        if (copy.Read(r) != static_cast<db::RecordValue>(expected)) {
          return false;
        }
      }
    }
    return true;
  }

  TestbedResult Collect() {
    TestbedResult result;
    result.ok = true;
    result.measured_ms = options_.measure_ms;
    result.events = kernel_.events_executed() - events_at_reset_;
    result.network_messages = network_.messages();
    result.global_deadlocks = detector_->global_deadlocks();
    result.probes_sent = detector_->probes_sent();
    result.database_consistent = AuditDatabase();

    const double window_s = options_.measure_ms / 1000.0;
    result.nodes.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = *nodes_[i];
      NodeResult& nr = result.nodes[i];
      nr.name = node.params().name;
      nr.cpu_utilization = node.cpu().BusyMs() / options_.measure_ms;
      nr.db_disk_utilization = node.db_disk().BusyMs() / options_.measure_ms;
      std::uint64_t ios = node.db_disk().completions();
      if (node.has_separate_log_disk()) {
        nr.log_disk_utilization =
            node.log_disk().BusyMs() / options_.measure_ms;
        ios += node.log_disk().completions();
      }
      nr.dio_per_s = static_cast<double>(ios) / window_s;
      nr.lock_requests = node.locks().requests();
      nr.lock_blocks = node.locks().blocks();
      nr.local_deadlocks = node.locks().local_deadlocks();
      nr.buffer_hit_ratio =
          node.buffer() != nullptr ? node.buffer()->HitRatio() : 0.0;
      nr.dm_pool_waits =
          node.dm_pool() != nullptr ? node.dm_pool()->waits() : 0;
    }

    for (const auto& driver : drivers_) {
      NodeResult& nr = result.nodes[driver->home];
      TypeResult& tr = nr.types[Index(driver->type)];
      tr.present = true;
      tr.commits += driver->commits;
      tr.submissions += driver->submissions;
      tr.aborts += driver->aborts;
      // Aggregate per-cycle times as commit-weighted means.
      tr.response_ms += driver->response_ms.Mean() * driver->commits;
      tr.lock_wait_ms += driver->lock_wait_ms.Mean() * driver->commits;
      tr.remote_wait_ms += driver->remote_wait_ms.Mean() * driver->commits;
      tr.commit_wait_ms += driver->commit_wait_ms.Mean() * driver->commits;
      nr.records_per_s += driver->records_committed / window_s;
    }
    for (NodeResult& nr : result.nodes) {
      for (TypeResult& tr : nr.types) {
        if (!tr.present) continue;
        tr.throughput_per_s = tr.commits / window_s;
        tr.abort_prob = tr.submissions > 0
                            ? static_cast<double>(tr.aborts) / tr.submissions
                            : 0.0;
        if (tr.commits > 0) {
          tr.response_ms /= tr.commits;
          tr.lock_wait_ms /= tr.commits;
          tr.remote_wait_ms /= tr.commits;
          tr.commit_wait_ms /= tr.commits;
        } else {
          tr.response_ms = tr.lock_wait_ms = tr.remote_wait_ms =
              tr.commit_wait_ms = 0.0;
        }
        nr.txn_per_s += tr.throughput_per_s;
      }
    }
    return result;
  }

  const model::ModelInput& input_;
  TestbedOptions options_;
  sim::ShardedKernel kernel_;
  net::Network network_;
  txn::TxnRegistrySet registry_;
  lock::LockManagerSet locks_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Committed update counts: [coordinator home][node][record].
  std::vector<std::vector<std::vector<std::uint32_t>>> shadow_;
  std::unique_ptr<txn::GlobalDeadlockDetector> detector_;
  std::vector<std::unique_ptr<UserDriver>> drivers_;
  util::Rng root_rng_;
  std::uint64_t events_at_reset_ = 0;
};

void AppendHexU64(std::string* out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  *out += buf;
  *out += ' ';
}

void AppendBitsF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendHexU64(out, bits);
}

}  // namespace

double TestbedResult::TotalTxnPerSec() const {
  double total = 0.0;
  for (const NodeResult& n : nodes) total += n.txn_per_s;
  return total;
}

double TestbedResult::TotalRecordsPerSec() const {
  double total = 0.0;
  for (const NodeResult& n : nodes) total += n.records_per_s;
  return total;
}

std::string TestbedResultFingerprint(const TestbedResult& result) {
  std::string out;
  out += result.ok ? "ok " : "fail ";
  out += result.error;
  out += '\n';
  AppendBitsF64(&out, result.measured_ms);
  AppendHexU64(&out, result.events);
  AppendHexU64(&out, result.network_messages);
  AppendHexU64(&out, result.global_deadlocks);
  AppendHexU64(&out, result.probes_sent);
  out += result.database_consistent ? "consistent" : "INCONSISTENT";
  out += '\n';
  for (const NodeResult& nr : result.nodes) {
    out += nr.name;
    out += ' ';
    AppendBitsF64(&out, nr.cpu_utilization);
    AppendBitsF64(&out, nr.db_disk_utilization);
    AppendBitsF64(&out, nr.log_disk_utilization);
    AppendBitsF64(&out, nr.dio_per_s);
    AppendBitsF64(&out, nr.txn_per_s);
    AppendBitsF64(&out, nr.records_per_s);
    AppendHexU64(&out, nr.lock_requests);
    AppendHexU64(&out, nr.lock_blocks);
    AppendHexU64(&out, nr.local_deadlocks);
    AppendBitsF64(&out, nr.buffer_hit_ratio);
    AppendHexU64(&out, nr.dm_pool_waits);
    for (const TypeResult& tr : nr.types) {
      out += tr.present ? "+" : "-";
      AppendHexU64(&out, tr.commits);
      AppendHexU64(&out, tr.submissions);
      AppendHexU64(&out, tr.aborts);
      AppendBitsF64(&out, tr.throughput_per_s);
      AppendBitsF64(&out, tr.abort_prob);
      AppendBitsF64(&out, tr.response_ms);
      AppendBitsF64(&out, tr.lock_wait_ms);
      AppendBitsF64(&out, tr.remote_wait_ms);
      AppendBitsF64(&out, tr.commit_wait_ms);
    }
    out += '\n';
  }
  return out;
}

TestbedResult RunTestbed(const model::ModelInput& input,
                         const TestbedOptions& options) {
  TestbedResult failure;
  if (!input.Validate(&failure.error)) return failure;
  Testbed testbed(input, options);
  return testbed.Run();
}

}  // namespace carat
