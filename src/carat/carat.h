// Umbrella header: the public API of the CARAT queueing-network-model
// reproduction. Typical use:
//
//   carat::workload::WorkloadSpec wl = carat::workload::MakeMB4(/*n=*/8);
//   carat::model::ModelInput input = wl.ToModelInput();
//
//   // Analytical prediction (the paper's contribution):
//   carat::model::ModelSolution pred = carat::model::CaratModel(input).Solve();
//
//   // "Measurement" on the simulated testbed:
//   carat::TestbedResult meas = carat::RunTestbed(input, {.seed = 1});
//
//   pred.sites[0].records_per_s;   // model
//   meas.nodes[0].records_per_s;   // testbed

#ifndef CARAT_CARAT_CARAT_H_
#define CARAT_CARAT_CARAT_H_

#include "carat/testbed.h"     // IWYU pragma: export
#include "model/solver.h"      // IWYU pragma: export
#include "qn/ethernet.h"       // IWYU pragma: export
#include "qn/mva.h"            // IWYU pragma: export
#include "workload/spec.h"     // IWYU pragma: export

#endif  // CARAT_CARAT_CARAT_H_
