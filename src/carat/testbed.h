// The CARAT distributed database testbed, reproduced as a discrete-event
// simulation (the paper's "measurement" substrate; see DESIGN.md for the
// hardware substitution rationale).
//
// RunTestbed executes the same workload specification the analytical model
// consumes (model::ModelInput) on a full protocol stack: user TR processes,
// serialized TM servers, DM request execution, two-phase locking with local
// wait-for-graph deadlock detection and probe-based global detection,
// before-image journaling with real rollback, and centralized two-phase
// commit with forced log writes. The result carries the measurements the
// paper reports (TR-XPUT, Total-CPU, Total-DIO, per-type throughput) plus
// protocol-level counters and an end-of-run atomicity audit.

#ifndef CARAT_CARAT_TESTBED_H_
#define CARAT_CARAT_TESTBED_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lock/lock_manager.h"
#include "model/params.h"
#include "txn/probes.h"

namespace carat {

struct TestbedOptions {
  std::uint64_t seed = 1;

  /// Simulated warm-up discarded from the measurements (ms).
  double warmup_ms = 100'000;

  /// Simulated measurement window (ms).
  double measure_ms = 1'000'000;

  /// Event shards (threads) for the sharded kernel: 1 = serial (default),
  /// 0 = hardware concurrency. Clamped to the site count. Results are
  /// byte-identical at any value for the same seed; when the workload is
  /// distributed with zero communication delay there is no conservative
  /// lookahead and the run is forced serial.
  int shards = 1;

  lock::VictimPolicy victim_policy = lock::VictimPolicy::kRequester;
  txn::GlobalDeadlockDetector::Options probe_options;
};

/// Measurements for one transaction type at its home node.
struct TypeResult {
  bool present = false;
  std::uint64_t commits = 0;
  std::uint64_t submissions = 0;  ///< executions including aborted ones
  std::uint64_t aborts = 0;
  double throughput_per_s = 0.0;  ///< commits per second
  double abort_prob = 0.0;        ///< aborts / submissions (estimates P_a)
  double response_ms = 0.0;       ///< mean commit-cycle time (incl. retries)
  // Mean synchronization time per commit cycle, the measured counterparts
  // of the model's delay-center demands D_LW / D_RW / D_CW.
  double lock_wait_ms = 0.0;
  double remote_wait_ms = 0.0;
  double commit_wait_ms = 0.0;
};

struct NodeResult {
  std::string name;
  double cpu_utilization = 0.0;
  double db_disk_utilization = 0.0;
  double log_disk_utilization = 0.0;
  double dio_per_s = 0.0;    ///< block I/Os per second across both disks
  double txn_per_s = 0.0;    ///< TR-XPUT: commits/s of locally-homed txns
  double records_per_s = 0.0;///< normalized record throughput
  std::uint64_t lock_requests = 0;
  std::uint64_t lock_blocks = 0;
  std::uint64_t local_deadlocks = 0;
  double buffer_hit_ratio = 0.0;  ///< 0 when the node has no buffer
  std::uint64_t dm_pool_waits = 0;  ///< times a txn waited for a DM server
  /// Per-user-type results (LRO / LU / DROC / DUC slots are used).
  std::array<TypeResult, model::kNumTxnTypes> types;

  const TypeResult& Type(model::TxnType t) const { return types[Index(t)]; }
};

struct TestbedResult {
  bool ok = false;
  std::string error;
  std::vector<NodeResult> nodes;
  double measured_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t global_deadlocks = 0;
  std::uint64_t probes_sent = 0;

  /// End-of-run audit: after undoing in-flight transactions, every record
  /// must equal the number of committed updates applied to it (atomicity +
  /// write serialization).
  bool database_consistent = false;

  double TotalTxnPerSec() const;
  double TotalRecordsPerSec() const;
};

/// Runs the testbed on `input` (the same structure the analytical model
/// consumes; see workload::WorkloadSpec::ToModelInput). Populations of the
/// LRO/LU/DROC/DUC classes define the user processes; slave-class cost
/// parameters are used when remote requests execute at a node.
TestbedResult RunTestbed(const model::ModelInput& input,
                         const TestbedOptions& options = {});

/// Bit-exact textual digest of every field of `result` (doubles rendered as
/// hex bit patterns). Two results are byte-identical iff their fingerprints
/// compare equal; used to enforce the shards=1 vs shards=N invariant.
std::string TestbedResultFingerprint(const TestbedResult& result);

}  // namespace carat

#endif  // CARAT_CARAT_TESTBED_H_
