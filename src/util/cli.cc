#include "util/cli.h"

#include <cstdlib>

namespace carat::util {

bool ParseSizes(const char* arg, std::vector<int>* sizes,
                std::string* bad_token) {
  sizes->clear();
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        char* end = nullptr;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (*end != '\0' || value <= 0 || value > 1'000'000) {
          *bad_token = token;
          return false;
        }
        sizes->push_back(static_cast<int>(value));
      }
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  if (sizes->empty()) {
    *bad_token = arg;
    return false;
  }
  return true;
}

bool ParseJobs(const char* arg, int* jobs) {
  if (arg == nullptr || *arg == '\0') return false;
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (*end != '\0' || value < 1 || value > 1'000'000) return false;
  *jobs = static_cast<int>(value);
  return true;
}

}  // namespace carat::util
