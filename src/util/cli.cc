#include "util/cli.h"

#include <cstdlib>

namespace carat::util {

bool ParseSizes(const char* arg, std::vector<int>* sizes,
                std::string* bad_token) {
  sizes->clear();
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        char* end = nullptr;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (*end != '\0' || value <= 0 || value > 1'000'000) {
          *bad_token = token;
          return false;
        }
        sizes->push_back(static_cast<int>(value));
      }
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  if (sizes->empty()) {
    *bad_token = arg;
    return false;
  }
  return true;
}

bool ParseJobs(const char* arg, int* jobs) {
  if (arg == nullptr || *arg == '\0') return false;
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (*end != '\0' || value < 1 || value > 1'000'000) return false;
  *jobs = static_cast<int>(value);
  return true;
}

bool ParseHostPort(const char* arg, std::string* host, int* port,
                   PortZeroPolicy port_zero) {
  if (arg == nullptr || *arg == '\0') return false;
  const std::string text = arg;
  std::string parsed_host;
  std::size_t colon;  // index of the colon separating host from port
  if (text[0] == '[') {
    // Bracketed form for hosts that themselves contain colons: "[::1]:8080".
    const std::size_t close = text.find(']');
    if (close == std::string::npos || close == 1) return false;
    if (close + 1 >= text.size() || text[close + 1] != ':') return false;
    parsed_host = text.substr(1, close - 1);
    colon = close + 1;
  } else {
    // Unbracketed hosts may contain no colon of their own: splitting
    // "::1:8080" on any colon silently mis-attributes part of the address,
    // so a multi-colon host without brackets is rejected outright.
    colon = text.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    if (text.find(':', colon + 1) != std::string::npos) return false;
    parsed_host = text.substr(0, colon);
  }
  if (colon + 1 >= text.size()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || value < 0 || value > 65535) return false;
  if (value == 0 && port_zero == PortZeroPolicy::kReject) return false;
  *host = std::move(parsed_host);
  *port = static_cast<int>(value);
  return true;
}

}  // namespace carat::util
