#include "util/cli.h"

#include <cstdlib>

namespace carat::util {

bool ParseSizes(const char* arg, std::vector<int>* sizes,
                std::string* bad_token) {
  sizes->clear();
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        char* end = nullptr;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (*end != '\0' || value <= 0 || value > 1'000'000) {
          *bad_token = token;
          return false;
        }
        sizes->push_back(static_cast<int>(value));
      }
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  if (sizes->empty()) {
    *bad_token = arg;
    return false;
  }
  return true;
}

bool ParseJobs(const char* arg, int* jobs) {
  if (arg == nullptr || *arg == '\0') return false;
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (*end != '\0' || value < 1 || value > 1'000'000) return false;
  *jobs = static_cast<int>(value);
  return true;
}

bool ParseHostPort(const char* arg, std::string* host, int* port) {
  if (arg == nullptr || *arg == '\0') return false;
  const std::string text = arg;
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const long value = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || value < 0 || value > 65535) return false;
  *host = text.substr(0, colon);
  *port = static_cast<int>(value);
  return true;
}

}  // namespace carat::util
