// Small shared command-line parsing helpers for the tools/ binaries.
// Strict by design: every helper rejects trailing garbage and out-of-range
// values instead of atoi-style silent truncation, so a typo surfaces as a
// usage error rather than a nonsense run.

#ifndef CARAT_UTIL_CLI_H_
#define CARAT_UTIL_CLI_H_

#include <string>
#include <vector>

namespace carat::util {

/// Parses a comma-separated list of positive integers (transaction sizes /
/// MPLs). Returns false and names the offending token on empty input, a
/// non-numeric token, a value <= 0 or a value > 1'000'000 — silent zeros
/// would otherwise flow into the workload factories as an MPL of 0.
bool ParseSizes(const char* arg, std::vector<int>* sizes,
                std::string* bad_token);

/// Parses a worker count for --jobs. Accepts only integers >= 1 with no
/// trailing garbage; "0", "-2", "4x" and "" all return false. (Omitting
/// --jobs entirely is how callers ask for one worker per hardware thread —
/// an explicit zero is far more likely a scripting bug than a request.)
bool ParseJobs(const char* arg, int* jobs);

/// Whether ParseHostPort accepts port 0. Listen endpoints want it (0 asks
/// the kernel for an ephemeral port, surfaced by the server after bind);
/// connect endpoints never do — a client dialing port 0 is always a
/// scripting bug, so strict callers reject it at parse time.
enum class PortZeroPolicy {
  kAllow,   ///< listen endpoints: 0 = kernel-assigned ephemeral port
  kReject,  ///< connect endpoints: 0 is a usage error
};

/// Parses a "HOST:PORT" or "[HOST]:PORT" listen/connect endpoint. HOST must
/// be nonempty (validation of the address bytes is left to the socket
/// layer) and PORT an integer in [0, 65535] — 0 is a kernel-assigned
/// ephemeral port, accepted only under PortZeroPolicy::kAllow. Hosts
/// containing colons (IPv6 literals like "::1") must be bracketed:
/// "[::1]:8080" yields host "::1"; an unbracketed multi-colon input is
/// ambiguous and rejected rather than silently mis-split. Trailing garbage,
/// an empty host and a missing colon/port all return false.
bool ParseHostPort(const char* arg, std::string* host, int* port,
                   PortZeroPolicy port_zero = PortZeroPolicy::kAllow);

}  // namespace carat::util

#endif  // CARAT_UTIL_CLI_H_
