#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace carat::util {

void StatAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double StatAccumulator::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::StdDev() const { return std::sqrt(Variance()); }

double StatAccumulator::ConfidenceHalfWidth(double z) const {
  if (count_ < 2) return 0.0;
  return z * StdDev() / std::sqrt(static_cast<double>(count_));
}

void StatAccumulator::Merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::Reset() { *this = StatAccumulator(); }

void TimeWeightedStat::Update(double now, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = now;
    last_time_ = now;
    value_ = value;
    return;
  }
  weighted_sum_ += value_ * (now - last_time_);
  last_time_ = now;
  value_ = value;
}

double TimeWeightedStat::MeanAt(double now) const {
  if (!started_ || now <= start_time_) return 0.0;
  const double total = weighted_sum_ + value_ * (now - last_time_);
  return total / (now - start_time_);
}

}  // namespace carat::util
