// Plain-text table printer used by the reproduction benches to emit rows in
// the style of the paper's tables and figures.

#ifndef CARAT_UTIL_TABLE_H_
#define CARAT_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace carat::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> cells);

  /// Appends a data row. Rows may be ragged; missing cells print empty.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table to `os` with two-space column gaps.
  void Print(std::ostream& os) const;

  /// Formats a double with the given precision (paper tables use 2).
  static std::string Num(double v, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace carat::util

#endif  // CARAT_UTIL_TABLE_H_
