#include "util/linear.h"

#include <cmath>
#include <cstdlib>

namespace carat::util {

bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>* x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) return false;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  x->assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * (*x)[c];
    (*x)[i] = acc / a(i, i);
  }
  return true;
}

}  // namespace carat::util
