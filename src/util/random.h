// Deterministic random-number utilities for the discrete-event testbed.
// A seeded SplitMix64/xoshiro256** generator keeps runs reproducible across
// platforms (std::mt19937_64 distributions are not portable across library
// implementations, the raw engine below is).

#ifndef CARAT_UTIL_RANDOM_H_
#define CARAT_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace carat::util {

/// SplitMix64: the minimal 64-bit generator used to expand seeds (and as a
/// tiny standalone stream where a full xoshiro state is overkill). Pure
/// integer arithmetic, so its output sequence is identical on every platform
/// (pinned by util_test).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG, seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound), bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi], both bounds inclusive; requires lo <= hi.
  std::int64_t NextIntIn(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Log-uniformly distributed double in [lo, hi): the exponent is uniform,
  /// so each decade gets equal probability mass. Requires 0 < lo <= hi; the
  /// natural distribution for scale parameters (service times, granule
  /// counts) whose interesting range spans orders of magnitude.
  double NextLogUniform(double lo, double hi) {
    if (lo >= hi) return lo;
    const double llo = std::log(lo);
    return std::exp(llo + NextDouble() * (std::log(hi) - llo));
  }

  /// Exponentially distributed sample with the given mean.
  double NextExponential(double mean) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Forks an independent stream (for per-process generators).
  Rng Fork() { return Rng((*this)() ^ 0xA3C59AC2F1D0E9B4ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace carat::util

#endif  // CARAT_UTIL_RANDOM_H_
