#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace carat::util {

void TextTable::SetHeader(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::AddSeparator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const Row& r : rows_) widen(r.cells);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << c << std::string(widths[i] - c.size() + 2, ' ');
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_cells(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      os << std::string(total, '-') << '\n';
    } else {
      print_cells(r.cells);
    }
  }
}

}  // namespace carat::util
