// Statistics accumulators used by both the analytical solver (convergence
// tracking) and the discrete-event testbed (measurement collection).
//
// All times in the library are expressed in milliseconds unless a name says
// otherwise.

#ifndef CARAT_UTIL_STATS_H_
#define CARAT_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>

namespace carat::util {

/// Online mean/variance accumulator (Welford's algorithm).
class StatAccumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 if no observations.
  double Mean() const;

  /// Unbiased sample variance; 0 if fewer than two observations.
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Half-width of a normal-approximation confidence interval at the given
  /// z value (1.96 for 95%). 0 if fewer than two observations.
  double ConfidenceHalfWidth(double z = 1.96) const;

  /// Sum of all observations.
  double Sum() const { return sum_; }

  double Min() const { return min_; }
  double Max() const { return max_; }

  /// Merges another accumulator into this one.
  void Merge(const StatAccumulator& other);

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy servers or held locks over simulated time.
class TimeWeightedStat {
 public:
  /// Records that the signal changed to `value` at time `now`. The previous
  /// value is credited for the elapsed interval.
  void Update(double now, double value);

  /// Time-weighted mean over [start, last update]; `now` extends the final
  /// segment.
  double MeanAt(double now) const;

  double last_value() const { return value_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
};

}  // namespace carat::util

#endif  // CARAT_UTIL_STATS_H_
