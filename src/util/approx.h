// Floating-point comparison helpers with explicit tolerance semantics.
//
// Every comparison in the tree that is not bit-exact should say which of the
// two regimes it means:
//
//   ApproxAbs(a, b, abs_tol)   |a - b| <= abs_tol. For quantities with a
//                              natural scale (probabilities, utilizations).
//   ApproxRel(a, b, rel_tol)   |a - b| <= rel_tol * max(|a|, |b|). Symmetric
//                              in a and b (no privileged "expected" value),
//                              so it composes with metamorphic checks where
//                              neither side is the reference.
//
// ApproxRelAbs combines them (relative with an absolute floor) for values
// that legitimately pass through zero. Equal values — including equal
// infinities and signed zeros — always compare true; NaN never does.

#ifndef CARAT_UTIL_APPROX_H_
#define CARAT_UTIL_APPROX_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace carat::util {

/// Symmetric relative difference |a - b| / max(|a|, |b|); 0 when a == b
/// (including both zero). Infinite when exactly one side is infinite.
inline double RelDiff(double a, double b) {
  if (a == b) return 0.0;
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<double>::infinity();  // not NaN from inf/inf
  }
  const double m = std::max(std::fabs(a), std::fabs(b));
  return m > 0.0 ? std::fabs(a - b) / m : 0.0;
}

/// True iff |a - b| <= abs_tol (or a == b). NaN compares false.
inline bool ApproxAbs(double a, double b, double abs_tol) {
  if (a == b) return true;
  return std::fabs(a - b) <= abs_tol;  // false for NaN / mixed infinities
}

/// True iff |a - b| <= rel_tol * max(|a|, |b|) (or a == b). NaN and mixed
/// infinities compare false.
inline bool ApproxRel(double a, double b, double rel_tol) {
  if (a == b) return true;
  if (std::isinf(a) || std::isinf(b)) return false;
  return std::fabs(a - b) <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// Relative comparison with an absolute floor, for values that pass through
/// zero: |a - b| <= max(rel_tol * max(|a|, |b|), abs_floor).
inline bool ApproxRelAbs(double a, double b, double rel_tol,
                         double abs_floor) {
  return ApproxAbs(a, b, abs_floor) || ApproxRel(a, b, rel_tol);
}

}  // namespace carat::util

#endif  // CARAT_UTIL_APPROX_H_
