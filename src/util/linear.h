// Small dense linear-algebra helpers. The model's visit-count computation
// (Eq. 1 of the paper) reduces to solving a 15x15 linear system, so a simple
// partially-pivoted LU is all we need.

#ifndef CARAT_UTIL_LINEAR_H_
#define CARAT_UTIL_LINEAR_H_

#include <cstddef>
#include <vector>

namespace carat::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns false if the matrix is (numerically) singular.
bool SolveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>* x);

}  // namespace carat::util

#endif  // CARAT_UTIL_LINEAR_H_
