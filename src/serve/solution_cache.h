// Keyed LRU cache of completed solutions. Identical what-if queries are a
// dominant pattern at a serving layer (dashboards re-request the same grid),
// and a model solve is pure, so a solution can be replayed for free.
//
// Retention is bounded three ways, all optional: entry count (`capacity`),
// approximate resident bytes (`max_bytes`, keys + solution payloads), and
// age (`ttl`; expired entries answer as misses). Time is passed in by the
// caller so tests can drive expiry deterministically.
//
// Not internally synchronized: SolverService guards it with the service
// mutex (lookups and inserts are O(1) pointer work, never a solve).

#ifndef CARAT_SERVE_SOLUTION_CACHE_H_
#define CARAT_SERVE_SOLUTION_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "model/solver.h"

namespace carat::serve {

/// Approximate resident footprint of one cached solution (payload vectors
/// and strings; used for the byte bound, not an exact heap measurement).
std::size_t SolutionFootprintBytes(const model::ModelSolution& solution);

class SolutionCache {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    /// Maximum retained solutions; 0 disables the cache entirely (Get
    /// always misses, Put is a no-op).
    std::size_t capacity = 0;
    /// Maximum approximate resident bytes (keys + payloads); 0 = unbounded.
    /// The bound is strict: an entry that alone exceeds it is not retained.
    std::size_t max_bytes = 0;
    /// Entries older than this answer as misses and are dropped; zero means
    /// entries never expire.
    std::chrono::milliseconds ttl{0};
  };

  explicit SolutionCache(Config config) : config_(config) {}
  /// Entry-count-only bound, unbounded bytes, no expiry.
  explicit SolutionCache(std::size_t capacity)
      : SolutionCache(Config{capacity, 0, std::chrono::milliseconds{0}}) {}

  /// Returns the cached solution for `key` (and marks it most recently
  /// used), or nullptr on a miss or an expired entry (which is dropped and
  /// counted). The pointer is valid until the next Put or Clear.
  const model::ModelSolution* Get(const std::string& key,
                                  Clock::time_point now = Clock::now());

  /// Inserts (or refreshes) `key`, then evicts least-recently-used entries
  /// until both the entry and byte bounds hold.
  void Put(const std::string& key, const model::ModelSolution& solution,
           Clock::time_point now = Clock::now());

  void Clear();

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return config_.capacity; }
  /// Approximate resident bytes across all retained entries.
  std::size_t bytes() const { return bytes_; }
  /// Entries dropped to satisfy the entry or byte bound.
  std::uint64_t evictions() const { return evictions_; }
  /// Entries dropped because they outlived the ttl.
  std::uint64_t expirations() const { return expirations_; }

 private:
  struct Entry {
    std::string key;
    model::ModelSolution solution;
    Clock::time_point inserted;
    std::size_t bytes = 0;
  };

  bool Expired(const Entry& entry, Clock::time_point now) const {
    return config_.ttl.count() > 0 && now - entry.inserted >= config_.ttl;
  }
  void EraseBack(bool expired);
  void EnforceBounds(Clock::time_point now);

  Config config_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  /// Front = most recently used. The index views key storage owned by the
  /// list nodes (stable under splice and erase of other nodes).
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
};

}  // namespace carat::serve

#endif  // CARAT_SERVE_SOLUTION_CACHE_H_
