// Keyed LRU cache of completed solutions. Identical what-if queries are a
// dominant pattern at a serving layer (dashboards re-request the same grid),
// and a model solve is pure, so a solution can be replayed for free.
//
// Not internally synchronized: SolverService guards it with the service
// mutex (lookups and inserts are O(1) pointer work, never a solve).

#ifndef CARAT_SERVE_SOLUTION_CACHE_H_
#define CARAT_SERVE_SOLUTION_CACHE_H_

#include <cstddef>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "model/solver.h"

namespace carat::serve {

class SolutionCache {
 public:
  /// `capacity` is the maximum number of retained solutions; 0 disables the
  /// cache entirely (Get always misses, Put is a no-op).
  explicit SolutionCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached solution for `key` (and marks it most recently
  /// used), or nullptr. The pointer is valid until the next Put or Clear.
  const model::ModelSolution* Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when full.
  void Put(const std::string& key, const model::ModelSolution& solution);

  void Clear();

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, model::ModelSolution>;

  std::size_t capacity_;
  /// Front = most recently used. The index views key storage owned by the
  /// list nodes (stable under splice and erase of other nodes).
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
};

}  // namespace carat::serve

#endif  // CARAT_SERVE_SOLUTION_CACHE_H_
