// The serving layer's query grammar and result format, shared by every
// front-end (the stdin streamer tools/carat_serve and the TCP server in
// src/rpc). One line describes one what-if query:
//
//   <workload> <n> [key=value ...]
//     workload   lb8 | mb4 | mb8 | ub6 (the paper's benchmark families)
//     n          transaction size / MPL knob passed to the workload factory
//     think=MS   override every site's think time (what-if: more/less load)
//     comm=MS    override the inter-site communication delay
//     mva=exact|approx  per-query solver override (exact vs Schweitzer-Bard
//                MVA); distinct settings never alias in the solution cache
//
// and one line reports one result:
//
//   workload,n,ok|error,converged|maxiter,iterations,warm|cold,
//   total_tps,total_records_ps
//
// FormatResult is the single source of the result bytes so that different
// front-ends answering the same query are byte-identical.

#ifndef CARAT_SERVE_QUERY_H_
#define CARAT_SERVE_QUERY_H_

#include <optional>
#include <string>

#include "model/params.h"
#include "model/solver.h"

namespace carat::serve {

struct Query {
  std::string workload;
  int n = 0;
  /// Set when the query carries `mva=exact` or `mva=approx`: a per-query
  /// SolverOptions override the front-end folds into its submission.
  std::optional<bool> use_exact_mva;
};

/// Parses one query line into a ModelInput. Returns false with a message on
/// any malformed token; callers skip blank lines and '#' comments before
/// calling.
bool ParseQuery(const std::string& line, Query* query,
                model::ModelInput* input, std::string* error);

/// The canonical result line for `query`'s solution (no trailing newline).
std::string FormatResult(const Query& query, const model::ModelSolution& m);

}  // namespace carat::serve

#endif  // CARAT_SERVE_QUERY_H_
