#include "serve/solution_cache.h"

namespace carat::serve {

const model::ModelSolution* SolutionCache::Get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

void SolutionCache::Put(const std::string& key,
                        const model::ModelSolution& solution) {
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = solution;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    // Erase the index entry before the node that owns its key bytes.
    index_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
  }
  lru_.emplace_front(key, solution);
  index_.emplace(std::string_view(lru_.front().first), lru_.begin());
}

void SolutionCache::Clear() {
  index_.clear();
  lru_.clear();
}

}  // namespace carat::serve
