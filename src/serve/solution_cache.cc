#include "serve/solution_cache.h"

namespace carat::serve {

std::size_t SolutionFootprintBytes(const model::ModelSolution& solution) {
  std::size_t bytes = sizeof(model::ModelSolution);
  bytes += solution.sites.capacity() * sizeof(model::SiteSolution);
  for (const model::SiteSolution& site : solution.sites) {
    bytes += site.name.capacity();
  }
  bytes += solution.error.capacity();
  return bytes;
}

const model::ModelSolution* SolutionCache::Get(const std::string& key,
                                               Clock::time_point now) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  if (Expired(*it->second, now)) {
    bytes_ -= it->second->bytes;
    ++expirations_;
    lru_.erase(it->second);
    index_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->solution;
}

void SolutionCache::Put(const std::string& key,
                        const model::ModelSolution& solution,
                        Clock::time_point now) {
  if (config_.capacity == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *it->second;
    bytes_ -= entry.bytes;
    entry.solution = solution;
    entry.inserted = now;
    entry.bytes = entry.key.size() + SolutionFootprintBytes(entry.solution);
    bytes_ += entry.bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    EnforceBounds(now);
    return;
  }
  lru_.emplace_front();
  Entry& entry = lru_.front();
  entry.key = key;
  entry.solution = solution;
  entry.inserted = now;
  entry.bytes = entry.key.size() + SolutionFootprintBytes(entry.solution);
  bytes_ += entry.bytes;
  index_.emplace(std::string_view(entry.key), lru_.begin());
  EnforceBounds(now);
}

void SolutionCache::EraseBack(bool expired) {
  bytes_ -= lru_.back().bytes;
  if (expired) {
    ++expirations_;
  } else {
    ++evictions_;
  }
  // Erase the index entry before the node that owns its key bytes.
  index_.erase(std::string_view(lru_.back().key));
  lru_.pop_back();
}

void SolutionCache::EnforceBounds(Clock::time_point now) {
  while (!lru_.empty() &&
         (index_.size() > config_.capacity ||
          (config_.max_bytes > 0 && bytes_ > config_.max_bytes))) {
    // Charge the drop to expiry when the LRU victim had already aged out.
    EraseBack(Expired(lru_.back(), now));
  }
}

void SolutionCache::Clear() {
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace carat::serve
