// Batch what-if solving service.
//
// A SolverService accepts ModelInputs — one at a time (Submit) or in batches
// (SolveBatch) — and schedules solves on a shared exec::ThreadPool. On top of
// the bare solver it layers the three things a serving workload wants:
//
//   1. a keyed LRU solution cache (serve::CanonicalKey): repeated identical
//      queries replay the stored solution without solving, and identical
//      queries in flight at the same time are coalesced into one solve;
//   2. per-shape SolveArena pools: repeated same-shape queries reuse the MVA
//      networks/workspaces, so the warm steady state allocates nothing in
//      the solver hot path;
//   3. a nearest-neighbor warm-start index (serve::WarmStartIndex): each new
//      solve is seeded from the converged state of the cached neighbor with
//      the closest parameters, cutting the fixed-point iteration count on
//      sweep-shaped query streams.
//
// Thread safety: every public method may be called concurrently. One mutex
// guards the cache, warm index, arena pools, pending (coalescing) map and
// stats; solves themselves run unlocked on checked-out arena slots. See
// DESIGN.md §8 for the invariants.

#ifndef CARAT_SERVE_SOLVER_SERVICE_H_
#define CARAT_SERVE_SOLVER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "model/params.h"
#include "model/solver.h"
#include "serve/solution_cache.h"
#include "serve/warm_index.h"

namespace carat::serve {

/// Monotonic counters; a snapshot is returned by SolverService::stats().
struct ServiceStats {
  std::uint64_t submitted = 0;         ///< queries accepted (Submit calls)
  std::uint64_t cache_hits = 0;        ///< answered from the solution cache
  std::uint64_t coalesced = 0;         ///< attached to an in-flight solve
  std::uint64_t solved = 0;            ///< solves actually executed
  std::uint64_t warm_started = 0;      ///< solves seeded from a neighbor
  std::uint64_t total_iterations = 0;  ///< fixed-point iterations, summed
  std::uint64_t cache_evictions = 0;   ///< dropped for the entry/byte bound
  std::uint64_t cache_expirations = 0; ///< dropped past the cache ttl
  std::uint64_t batched = 0;           ///< queries solved in lockstep blocks
  std::uint64_t batch_blocks = 0;      ///< lockstep batch blocks executed
  /// Lanes occupied across all blocks. Blocks are always cut at exactly
  /// batch_lane_width, so this equals `batched` today; it is tracked
  /// separately so a future ragged-block policy stays observable.
  std::uint64_t batch_lanes_filled = 0;
  /// Queries that missed the cache but fell to the scalar solve path because
  /// their shape group's remainder was smaller than a full lane block.
  std::uint64_t batch_scalar_tail = 0;
};

class SolverService {
 public:
  struct Options {
    /// Worker pool for solves. Borrowed, must outlive the service; when
    /// null the service owns a pool of `threads` workers.
    exec::ThreadPool* pool = nullptr;
    /// Owned-pool size when `pool` is null; 0 = hardware_concurrency.
    std::size_t threads = 0;
    /// Solution cache capacity (entries); 0 disables caching and coalescing
    /// still applies only to literally concurrent identical queries.
    std::size_t cache_capacity = 1024;
    /// Approximate byte bound on cached keys + solutions; 0 = unbounded.
    std::size_t cache_max_bytes = 0;
    /// Cached solutions older than this answer as misses; 0 = never expire.
    std::chrono::milliseconds cache_ttl{0};
    /// Warm-start seeds retained per shape family; 0 disables warm starts.
    std::size_t warm_index_capacity = 64;
    bool use_cache = true;
    /// Seed solves from the nearest converged neighbor. Off, every solve is
    /// cold and therefore bit-identical to CaratModel::Solve().
    bool warm_start = true;
    /// Lane width for lockstep batch solving (SubmitBatch/SolveBatch): fresh
    /// same-shape queries are grouped into blocks of exactly this many lanes
    /// and solved together through CaratModel::SolveBatchInto; the ragged
    /// remainder of each shape group takes the scalar path. 0 or 1 disables
    /// batching. Per-lane results are bit-identical either way, so this is
    /// purely a throughput knob.
    std::size_t batch_lane_width = 4;
    /// Solver options applied to every query (also folded into cache keys).
    model::SolverOptions solver;
  };

  SolverService();
  explicit SolverService(Options options);

  /// Waits for all in-flight solves, then releases the owned pool (if any).
  /// Outstanding futures are always fulfilled before destruction returns.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Schedules one query. The future is fulfilled with the solution (cached,
  /// coalesced or freshly solved); solver-level failures are reported inside
  /// ModelSolution (ok = false), not as exceptions.
  std::future<model::ModelSolution> Submit(model::ModelInput input);

  /// Per-query override of Options::solver. The override is folded into the
  /// cache key, so identical inputs solved under different options never
  /// alias in the cache or coalesce onto each other.
  std::future<model::ModelSolution> Submit(model::ModelInput input,
                                           const model::SolverOptions& solver);

  /// Solves on the calling thread instead of the worker pool, with the same
  /// cache / coalescing / warm-start treatment as Submit. Built for serving
  /// front-ends whose own workers execute requests (src/rpc): the caller's
  /// thread is the solver thread, so no pool hop and no future. A null
  /// `solver` uses Options::solver. Blocks if an identical query is already
  /// solving elsewhere (coalesces onto it).
  model::ModelSolution SolveSync(model::ModelInput input,
                                 const model::SolverOptions* solver = nullptr);

  /// Schedules a batch of queries, returning one future per input in input
  /// order. Each query still gets the full cache / coalescing / warm-start
  /// treatment; the fresh (cache-missing, non-coalesced) queries are grouped
  /// by solve shape and solved in lockstep blocks of
  /// Options::batch_lane_width lanes through the SoA batch kernels. Shapes
  /// never mix within a block; ragged group remainders solve scalar.
  std::vector<std::future<model::ModelSolution>> SubmitBatch(
      std::vector<model::ModelInput> inputs);
  std::vector<std::future<model::ModelSolution>> SubmitBatch(
      std::vector<model::ModelInput> inputs,
      const model::SolverOptions& solver);

  /// Solves a batch, returning solutions in input order. Blocks until every
  /// query in the batch has an answer; queries are scheduled concurrently
  /// (via SubmitBatch, so same-shape queries solve in lockstep).
  std::vector<model::ModelSolution> SolveBatch(
      std::vector<model::ModelInput> inputs);

  /// Blocks until no solve is in flight (queued or running).
  void Drain();

  /// Forgets all cached solutions and warm-start seeds (arena pools are
  /// kept; they hold no query-dependent state).
  void ClearCache();

  ServiceStats stats() const;

  /// The configuration this service was built with (front-ends use
  /// options().solver as the base for per-query overrides).
  const Options& options() const { return options_; }

  /// The pool solves run on (owned or borrowed) — callers may schedule
  /// adjacent work (e.g. testbed replays) on the same workers.
  exec::ThreadPool* pool() { return pool_; }

 private:
  /// An arena plus reusable output/seed buffers, checked out per solve so
  /// the warm steady state allocates nothing. Pooled per shape key.
  struct Slot {
    model::SolveArena arena;
    model::ModelSolution out;
    model::WarmStart seed;
    model::WarmStart warm_out;
  };

  /// A batch arena plus reusable per-lane buffers, checked out per lockstep
  /// block. Pooled per shape key like Slot.
  struct BatchSlot {
    model::BatchSolveArena arena;
    std::vector<model::ModelSolution> outs;
    std::vector<model::WarmStart> seeds;
    std::vector<model::WarmStart> warm_outs;
    std::vector<double> features;
    std::vector<unsigned char> seeded;
    std::vector<const model::ModelInput*> in_ptrs;
    std::vector<const model::WarmStart*> seed_ptrs;
    std::vector<model::ModelSolution*> out_ptrs;
    std::vector<model::WarmStart*> warm_ptrs;
  };

  std::future<model::ModelSolution> SubmitWith(
      model::ModelInput input, const model::SolverOptions& solver);

  /// Solves `input` on the calling thread and fulfills every waiter filed
  /// under `key` (including the submitting promise on the pool path).
  /// Returns the solution for synchronous callers; rethrows after waiter
  /// delivery if the solve itself threw.
  model::ModelSolution RunSolve(const std::string& key,
                                model::ModelInput input,
                                const model::SolverOptions& solver);

  /// Solves one lockstep block of same-shape fresh queries on the calling
  /// thread and fulfills every waiter of every lane's key.
  void RunBatchSolve(const std::string& shape, std::vector<std::string> keys,
                     std::vector<model::ModelInput> inputs,
                     const model::SolverOptions& solver);

  std::unique_ptr<Slot> CheckOutSlot(const std::string& shape);
  void ReturnSlot(const std::string& shape, std::unique_ptr<Slot> slot);
  std::unique_ptr<BatchSlot> CheckOutBatchSlot(const std::string& shape);
  void ReturnBatchSlot(const std::string& shape,
                       std::unique_ptr<BatchSlot> slot);

  Options options_;
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  exec::ThreadPool* pool_;  ///< owned_pool_.get() or options_.pool

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  SolutionCache cache_;
  WarmStartIndex warm_index_;
  /// Shape key -> free slots. Checked-out slots are owned by the running
  /// task; a slot is never shared between concurrent solves.
  std::unordered_map<std::string, std::vector<std::unique_ptr<Slot>>> slots_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<BatchSlot>>>
      batch_slots_;
  /// Canonical key -> waiters for the solve currently computing that key.
  std::unordered_map<std::string,
                     std::vector<std::promise<model::ModelSolution>>>
      pending_;
  ServiceStats stats_;
};

}  // namespace carat::serve

#endif  // CARAT_SERVE_SOLVER_SERVICE_H_
