#include "serve/query.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "cc/cc.h"
#include "workload/spec.h"

namespace carat::serve {

bool ParseQuery(const std::string& line, Query* query,
                model::ModelInput* input, std::string* error) {
  std::istringstream in(line);
  std::string workload;
  long long n = 0;
  if (!(in >> workload >> n) || n <= 0 || n > 1'000'000) {
    *error = "expected '<workload> <n>' with n >= 1";
    return false;
  }
  carat::workload::WorkloadSpec (*make)(int) = nullptr;
  if (workload == "lb8") {
    make = [](int v) { return carat::workload::MakeLB8(v); };
  } else if (workload == "mb4") {
    make = [](int v) { return carat::workload::MakeMB4(v); };
  } else if (workload == "mb8") {
    make = [](int v) { return carat::workload::MakeMB8(v); };
  } else if (workload == "ub6") {
    make = [](int v) { return carat::workload::MakeUB6(v); };
  } else {
    *error = "unknown workload '" + workload + "'";
    return false;
  }
  *input = make(static_cast<int>(n)).ToModelInput();
  query->use_exact_mva.reset();

  std::string kv;
  while (in >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + kv + "'";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "mva") {
      if (value == "exact") {
        query->use_exact_mva = true;
      } else if (value == "approx") {
        query->use_exact_mva = false;
      } else {
        *error = "mva= expects 'exact' or 'approx', got '" + value + "'";
        return false;
      }
      continue;
    }
    if (key == "cc") {
      cc::BackendKind kind;
      if (!cc::ParseBackend(value, &kind)) {
        *error = "cc= expects 2pl|nowait|waitdie|queue, got '" + value + "'";
        return false;
      }
      input->cc_backend = kind;
      continue;
    }
    char* end = nullptr;
    const double numeric = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0' || numeric < 0) {
      *error = "bad value in '" + kv + "'";
      return false;
    }
    if (key == "think") {
      for (model::SiteParams& site : input->sites) {
        site.think_time_ms = numeric;
      }
    } else if (key == "comm") {
      input->comm_delay_ms = numeric;
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  query->workload = std::move(workload);
  query->n = static_cast<int>(n);
  return true;
}

std::string FormatResult(const Query& query, const model::ModelSolution& m) {
  if (!m.ok) {
    std::string out = query.workload;
    out += ',';
    out += std::to_string(query.n);
    out += ",error,,,,,";
    out += m.error;
    return out;
  }
  char buf[192];
  const int len =
      std::snprintf(buf, sizeof(buf), "%s,%d,ok,%s,%d,%s,%.4f,%.2f",
                    query.workload.c_str(), query.n,
                    m.converged ? "converged" : "maxiter", m.iterations,
                    m.warm_started ? "warm" : "cold", m.TotalTxnPerSec(),
                    m.TotalRecordsPerSec());
  if (len < 0) return {};
  return std::string(
      buf, std::min(static_cast<std::size_t>(len), sizeof(buf) - 1));
}

}  // namespace carat::serve
