#include "serve/solver_service.h"

#include <exception>
#include <utility>

#include "serve/key.h"

namespace carat::serve {

SolverService::SolverService() : SolverService(Options()) {}

SolverService::SolverService(Options options)
    : options_(std::move(options)),
      cache_(SolutionCache::Config{
          options_.use_cache ? options_.cache_capacity : 0,
          options_.cache_max_bytes, options_.cache_ttl}),
      warm_index_(options_.warm_start ? options_.warm_index_capacity : 0) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<exec::ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
}

SolverService::~SolverService() {
  // ThreadPool discards still-queued tasks at destruction, which would leave
  // broken promises behind; every accepted solve must finish first. Borrowed
  // pools get the same treatment so futures never outlive their answers.
  Drain();
}

std::future<model::ModelSolution> SolverService::Submit(
    model::ModelInput input) {
  return SubmitWith(std::move(input), options_.solver);
}

std::future<model::ModelSolution> SolverService::Submit(
    model::ModelInput input, const model::SolverOptions& solver) {
  return SubmitWith(std::move(input), solver);
}

std::future<model::ModelSolution> SolverService::SubmitWith(
    model::ModelInput input, const model::SolverOptions& solver) {
  std::string key = CanonicalKey(input, solver);
  std::promise<model::ModelSolution> promise;
  std::future<model::ModelSolution> future = promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (const model::ModelSolution* hit = cache_.Get(key)) {
      ++stats_.cache_hits;
      promise.set_value(*hit);
      return future;
    }
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      ++stats_.coalesced;
      it->second.push_back(std::move(promise));
      return future;
    }
    pending_[key].push_back(std::move(promise));
    ++in_flight_;
  }

  pool_->Submit([this, key = std::move(key), input = std::move(input),
                 solver]() mutable {
    try {
      RunSolve(key, std::move(input), solver);
    } catch (...) {
      // Waiters (including the submitting promise) already received the
      // exception inside RunSolve; nothing may escape into the bare pool.
    }
  });
  return future;
}

model::ModelSolution SolverService::SolveSync(
    model::ModelInput input, const model::SolverOptions* solver) {
  const model::SolverOptions& effective =
      solver != nullptr ? *solver : options_.solver;
  std::string key = CanonicalKey(input, effective);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (const model::ModelSolution* hit = cache_.Get(key)) {
      ++stats_.cache_hits;
      return *hit;
    }
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      // An identical query is already solving on some other thread: wait for
      // its answer instead of solving twice.
      ++stats_.coalesced;
      std::promise<model::ModelSolution> promise;
      std::future<model::ModelSolution> future = promise.get_future();
      it->second.push_back(std::move(promise));
      lock.unlock();
      return future.get();
    }
    pending_[key];
    ++in_flight_;
  }
  return RunSolve(key, std::move(input), effective);
}

std::vector<model::ModelSolution> SolverService::SolveBatch(
    std::vector<model::ModelInput> inputs) {
  std::vector<std::future<model::ModelSolution>> futures;
  futures.reserve(inputs.size());
  for (model::ModelInput& input : inputs) {
    futures.push_back(Submit(std::move(input)));
  }
  std::vector<model::ModelSolution> solutions;
  solutions.reserve(futures.size());
  for (std::future<model::ModelSolution>& f : futures) {
    solutions.push_back(f.get());
  }
  return solutions;
}

void SolverService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void SolverService::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
  warm_index_.Clear();
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.cache_evictions = cache_.evictions();
  snapshot.cache_expirations = cache_.expirations();
  return snapshot;
}

std::unique_ptr<SolverService::Slot> SolverService::CheckOutSlot(
    const std::string& shape) {
  std::vector<std::unique_ptr<Slot>>& free = slots_[shape];
  if (free.empty()) return std::make_unique<Slot>();
  std::unique_ptr<Slot> slot = std::move(free.back());
  free.pop_back();
  return slot;
}

void SolverService::ReturnSlot(const std::string& shape,
                               std::unique_ptr<Slot> slot) {
  slots_[shape].push_back(std::move(slot));
}

model::ModelSolution SolverService::RunSolve(
    const std::string& key, model::ModelInput input,
    const model::SolverOptions& solver) {
  std::vector<std::promise<model::ModelSolution>> waiters;
  try {
    const std::string shape = model::SolveShapeKey(input);
    const double feature = WarmFeature(input);

    std::unique_ptr<Slot> slot;
    bool seeded = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot = CheckOutSlot(shape);
      seeded = warm_index_.Nearest(shape, feature, &slot->seed);
    }

    const model::CaratModel model(std::move(input));
    model.SolveInto(solver, &slot->arena, seeded ? &slot->seed : nullptr,
                    &slot->out, &slot->warm_out);

    model::ModelSolution result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (slot->out.ok) {
        cache_.Put(key, slot->out);
        if (slot->out.converged) {
          warm_index_.Insert(shape, feature, slot->warm_out);
        }
      }
      ++stats_.solved;
      if (slot->out.warm_started) ++stats_.warm_started;
      stats_.total_iterations +=
          static_cast<std::uint64_t>(slot->out.iterations);

      const auto it = pending_.find(key);
      waiters = std::move(it->second);
      pending_.erase(it);
      for (std::promise<model::ModelSolution>& w : waiters) {
        w.set_value(slot->out);
      }
      result = slot->out;
      ReturnSlot(shape, std::move(slot));
      // Last touch of shared state: once in_flight_ hits zero the destructor
      // may run, so nothing below this point may use `this`.
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    return result;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        waiters = std::move(it->second);
        pending_.erase(it);
      }
      for (std::promise<model::ModelSolution>& w : waiters) {
        w.set_exception(error);
      }
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    throw;
  }
}

}  // namespace carat::serve
