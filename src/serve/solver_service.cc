#include "serve/solver_service.h"

#include <exception>
#include <utility>

#include "serve/key.h"

namespace carat::serve {

SolverService::SolverService() : SolverService(Options()) {}

SolverService::SolverService(Options options)
    : options_(std::move(options)),
      cache_(SolutionCache::Config{
          options_.use_cache ? options_.cache_capacity : 0,
          options_.cache_max_bytes, options_.cache_ttl}),
      warm_index_(options_.warm_start ? options_.warm_index_capacity : 0) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<exec::ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
}

SolverService::~SolverService() {
  // ThreadPool discards still-queued tasks at destruction, which would leave
  // broken promises behind; every accepted solve must finish first. Borrowed
  // pools get the same treatment so futures never outlive their answers.
  Drain();
}

std::future<model::ModelSolution> SolverService::Submit(
    model::ModelInput input) {
  return SubmitWith(std::move(input), options_.solver);
}

std::future<model::ModelSolution> SolverService::Submit(
    model::ModelInput input, const model::SolverOptions& solver) {
  return SubmitWith(std::move(input), solver);
}

std::future<model::ModelSolution> SolverService::SubmitWith(
    model::ModelInput input, const model::SolverOptions& solver) {
  std::string key = CanonicalKey(input, solver);
  std::promise<model::ModelSolution> promise;
  std::future<model::ModelSolution> future = promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (const model::ModelSolution* hit = cache_.Get(key)) {
      ++stats_.cache_hits;
      promise.set_value(*hit);
      return future;
    }
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      ++stats_.coalesced;
      it->second.push_back(std::move(promise));
      return future;
    }
    pending_[key].push_back(std::move(promise));
    ++in_flight_;
  }

  pool_->Submit([this, key = std::move(key), input = std::move(input),
                 solver]() mutable {
    try {
      RunSolve(key, std::move(input), solver);
    } catch (...) {
      // Waiters (including the submitting promise) already received the
      // exception inside RunSolve; nothing may escape into the bare pool.
    }
  });
  return future;
}

model::ModelSolution SolverService::SolveSync(
    model::ModelInput input, const model::SolverOptions* solver) {
  const model::SolverOptions& effective =
      solver != nullptr ? *solver : options_.solver;
  std::string key = CanonicalKey(input, effective);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (const model::ModelSolution* hit = cache_.Get(key)) {
      ++stats_.cache_hits;
      return *hit;
    }
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      // An identical query is already solving on some other thread: wait for
      // its answer instead of solving twice.
      ++stats_.coalesced;
      std::promise<model::ModelSolution> promise;
      std::future<model::ModelSolution> future = promise.get_future();
      it->second.push_back(std::move(promise));
      lock.unlock();
      return future.get();
    }
    pending_[key];
    ++in_flight_;
  }
  return RunSolve(key, std::move(input), effective);
}

std::vector<std::future<model::ModelSolution>> SolverService::SubmitBatch(
    std::vector<model::ModelInput> inputs) {
  return SubmitBatch(std::move(inputs), options_.solver);
}

std::vector<std::future<model::ModelSolution>> SolverService::SubmitBatch(
    std::vector<model::ModelInput> inputs,
    const model::SolverOptions& solver) {
  const std::size_t n = inputs.size();
  std::vector<std::future<model::ModelSolution>> futures;
  futures.reserve(n);

  // Fresh queries (cache miss, not coalesced) grouped by solve shape,
  // preserving submission order within each group.
  struct Fresh {
    std::string key;
    model::ModelInput input;
  };
  std::unordered_map<std::string, std::vector<Fresh>> groups;
  std::vector<const std::string*> group_order;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (model::ModelInput& input : inputs) {
      std::string key = CanonicalKey(input, solver);
      std::promise<model::ModelSolution> promise;
      futures.push_back(promise.get_future());
      ++stats_.submitted;
      if (const model::ModelSolution* hit = cache_.Get(key)) {
        ++stats_.cache_hits;
        promise.set_value(*hit);
        continue;
      }
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        // Coalesces onto the in-flight solve — including onto an earlier
        // identical query of this very batch.
        ++stats_.coalesced;
        it->second.push_back(std::move(promise));
        continue;
      }
      pending_[key].push_back(std::move(promise));
      ++in_flight_;
      std::string shape = model::SolveShapeKey(input);
      std::vector<Fresh>& group = groups[shape];
      if (group.empty()) group_order.push_back(&groups.find(shape)->first);
      group.push_back(Fresh{std::move(key), std::move(input)});
    }

    const std::size_t width = options_.batch_lane_width;
    for (const std::string* shape : group_order) {
      const std::vector<Fresh>& group = groups[*shape];
      if (width >= 2) {
        const std::size_t blocks = group.size() / width;
        stats_.batch_scalar_tail += group.size() - blocks * width;
      }
    }
  }

  // Cut each shape group into full lane blocks; the ragged remainder takes
  // the scalar path. Scheduling happens outside the lock.
  const std::size_t width = options_.batch_lane_width;
  for (const std::string* shape : group_order) {
    std::vector<Fresh>& group = groups[*shape];
    std::size_t pos = 0;
    if (width >= 2) {
      while (group.size() - pos >= width) {
        std::vector<std::string> keys;
        std::vector<model::ModelInput> block;
        keys.reserve(width);
        block.reserve(width);
        for (std::size_t w = 0; w < width; ++w, ++pos) {
          keys.push_back(std::move(group[pos].key));
          block.push_back(std::move(group[pos].input));
        }
        pool_->Submit([this, shape = *shape, keys = std::move(keys),
                       block = std::move(block), solver]() mutable {
          RunBatchSolve(shape, std::move(keys), std::move(block), solver);
        });
      }
    }
    for (; pos < group.size(); ++pos) {
      pool_->Submit([this, key = std::move(group[pos].key),
                     input = std::move(group[pos].input), solver]() mutable {
        try {
          RunSolve(key, std::move(input), solver);
        } catch (...) {
          // Waiters already received the exception inside RunSolve.
        }
      });
    }
  }
  return futures;
}

std::vector<model::ModelSolution> SolverService::SolveBatch(
    std::vector<model::ModelInput> inputs) {
  std::vector<std::future<model::ModelSolution>> futures =
      SubmitBatch(std::move(inputs));
  std::vector<model::ModelSolution> solutions;
  solutions.reserve(futures.size());
  for (std::future<model::ModelSolution>& f : futures) {
    solutions.push_back(f.get());
  }
  return solutions;
}

void SolverService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void SolverService::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
  warm_index_.Clear();
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.cache_evictions = cache_.evictions();
  snapshot.cache_expirations = cache_.expirations();
  return snapshot;
}

std::unique_ptr<SolverService::Slot> SolverService::CheckOutSlot(
    const std::string& shape) {
  std::vector<std::unique_ptr<Slot>>& free = slots_[shape];
  if (free.empty()) return std::make_unique<Slot>();
  std::unique_ptr<Slot> slot = std::move(free.back());
  free.pop_back();
  return slot;
}

void SolverService::ReturnSlot(const std::string& shape,
                               std::unique_ptr<Slot> slot) {
  slots_[shape].push_back(std::move(slot));
}

std::unique_ptr<SolverService::BatchSlot> SolverService::CheckOutBatchSlot(
    const std::string& shape) {
  std::vector<std::unique_ptr<BatchSlot>>& free = batch_slots_[shape];
  if (free.empty()) return std::make_unique<BatchSlot>();
  std::unique_ptr<BatchSlot> slot = std::move(free.back());
  free.pop_back();
  return slot;
}

void SolverService::ReturnBatchSlot(const std::string& shape,
                                    std::unique_ptr<BatchSlot> slot) {
  batch_slots_[shape].push_back(std::move(slot));
}

void SolverService::RunBatchSolve(const std::string& shape,
                                  std::vector<std::string> keys,
                                  std::vector<model::ModelInput> inputs,
                                  const model::SolverOptions& solver) {
  const std::size_t lanes = keys.size();
  std::vector<std::promise<model::ModelSolution>> waiters;
  try {
    std::unique_ptr<BatchSlot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot = CheckOutBatchSlot(shape);
      slot->outs.resize(lanes);
      slot->seeds.resize(lanes);
      slot->warm_outs.resize(lanes);
      slot->features.resize(lanes);
      slot->seeded.resize(lanes);
      slot->in_ptrs.resize(lanes);
      slot->seed_ptrs.resize(lanes);
      slot->out_ptrs.resize(lanes);
      slot->warm_ptrs.resize(lanes);
      for (std::size_t w = 0; w < lanes; ++w) {
        slot->features[w] = WarmFeature(inputs[w]);
        slot->seeded[w] =
            warm_index_.Nearest(shape, slot->features[w], &slot->seeds[w])
                ? 1
                : 0;
      }
    }
    for (std::size_t w = 0; w < lanes; ++w) {
      slot->in_ptrs[w] = &inputs[w];
      slot->seed_ptrs[w] = slot->seeded[w] != 0 ? &slot->seeds[w] : nullptr;
      slot->out_ptrs[w] = &slot->outs[w];
      slot->warm_ptrs[w] = &slot->warm_outs[w];
    }

    model::CaratModel::SolveBatchInto(slot->in_ptrs.data(), lanes, solver,
                                      &slot->arena, slot->seed_ptrs.data(),
                                      slot->out_ptrs.data(),
                                      slot->warm_ptrs.data());

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batch_blocks;
    stats_.batched += lanes;
    stats_.batch_lanes_filled += lanes;
    for (std::size_t w = 0; w < lanes; ++w) {
      const model::ModelSolution& out = slot->outs[w];
      if (out.ok) {
        cache_.Put(keys[w], out);
        if (out.converged) {
          warm_index_.Insert(shape, slot->features[w], slot->warm_outs[w]);
        }
      }
      ++stats_.solved;
      if (out.warm_started) ++stats_.warm_started;
      stats_.total_iterations += static_cast<std::uint64_t>(out.iterations);

      const auto it = pending_.find(keys[w]);
      waiters = std::move(it->second);
      pending_.erase(it);
      for (std::promise<model::ModelSolution>& p : waiters) {
        p.set_value(out);
      }
      waiters.clear();
    }
    ReturnBatchSlot(shape, std::move(slot));
    // Last touch of shared state (see RunSolve): the destructor may run as
    // soon as in_flight_ reaches zero.
    in_flight_ -= lanes;
    if (in_flight_ == 0) idle_cv_.notify_all();
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : keys) {
      const auto it = pending_.find(key);
      if (it == pending_.end()) continue;
      waiters = std::move(it->second);
      pending_.erase(it);
      for (std::promise<model::ModelSolution>& p : waiters) {
        p.set_exception(error);
      }
      waiters.clear();
    }
    in_flight_ -= lanes;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
}

model::ModelSolution SolverService::RunSolve(
    const std::string& key, model::ModelInput input,
    const model::SolverOptions& solver) {
  std::vector<std::promise<model::ModelSolution>> waiters;
  try {
    const std::string shape = model::SolveShapeKey(input);
    const double feature = WarmFeature(input);

    std::unique_ptr<Slot> slot;
    bool seeded = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot = CheckOutSlot(shape);
      seeded = warm_index_.Nearest(shape, feature, &slot->seed);
    }

    const model::CaratModel model(std::move(input));
    model.SolveInto(solver, &slot->arena, seeded ? &slot->seed : nullptr,
                    &slot->out, &slot->warm_out);

    model::ModelSolution result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (slot->out.ok) {
        cache_.Put(key, slot->out);
        if (slot->out.converged) {
          warm_index_.Insert(shape, feature, slot->warm_out);
        }
      }
      ++stats_.solved;
      if (slot->out.warm_started) ++stats_.warm_started;
      stats_.total_iterations +=
          static_cast<std::uint64_t>(slot->out.iterations);

      const auto it = pending_.find(key);
      waiters = std::move(it->second);
      pending_.erase(it);
      for (std::promise<model::ModelSolution>& w : waiters) {
        w.set_value(slot->out);
      }
      result = slot->out;
      ReturnSlot(shape, std::move(slot));
      // Last touch of shared state: once in_flight_ hits zero the destructor
      // may run, so nothing below this point may use `this`.
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    return result;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        waiters = std::move(it->second);
        pending_.erase(it);
      }
      for (std::promise<model::ModelSolution>& w : waiters) {
        w.set_exception(error);
      }
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    throw;
  }
}

}  // namespace carat::serve
