#include "serve/key.h"

#include <cstdint>
#include <cstring>

namespace carat::serve {

namespace {

void AppendU64(std::uint64_t value, std::string* out) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void AppendI64(long long value, std::string* out) {
  AppendU64(static_cast<std::uint64_t>(value), out);
}

// Doubles are keyed by bit pattern: the solver is deterministic, so inputs
// that differ in any bit may produce different solutions (0.0 and -0.0
// therefore key differently, which is merely a harmless extra miss).
void AppendF64(double value, std::string* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(bits, out);
}

void AppendBool(bool value, std::string* out) {
  out->push_back(value ? '\1' : '\0');
}

void AppendString(const std::string& value, std::string* out) {
  AppendU64(value.size(), out);
  out->append(value);
}

void AppendClass(const model::ClassParams& c, std::string* out) {
  AppendI64(c.population, out);
  AppendI64(c.local_requests, out);
  AppendI64(c.remote_requests, out);
  AppendI64(c.records_per_request, out);
  AppendF64(c.u_cpu_ms, out);
  AppendF64(c.tm_cpu_ms, out);
  AppendF64(c.dm_cpu_ms, out);
  AppendF64(c.lr_cpu_ms, out);
  AppendF64(c.dmio_cpu_ms, out);
  AppendF64(c.dmio_disk_ms, out);
  AppendF64(c.dmio_read_ios, out);
  AppendF64(c.dmio_write_ios, out);
  AppendF64(c.init_cpu_ms, out);
  AppendF64(c.tc_cpu_ms, out);
  AppendF64(c.tcio_force_writes, out);
  AppendF64(c.ta_fixed_cpu_ms, out);
  AppendF64(c.ta_cpu_per_granule_ms, out);
  AppendF64(c.taio_ios_per_granule, out);
  AppendF64(c.unlock_cpu_per_lock_ms, out);
}

void AppendSite(const model::SiteParams& site, std::string* out) {
  AppendString(site.name, out);
  AppendI64(site.num_granules, out);
  AppendI64(site.records_per_granule, out);
  AppendF64(site.block_io_ms, out);
  AppendBool(site.separate_log_disk, out);
  AppendF64(site.think_time_ms, out);
  AppendF64(site.hot_data_fraction, out);
  AppendF64(site.hot_access_fraction, out);
  AppendI64(site.buffer_blocks, out);
  AppendI64(site.dm_pool_size, out);
  for (const model::ClassParams& c : site.classes) AppendClass(c, out);
}

}  // namespace

std::string CanonicalKey(const model::ModelInput& input,
                         const model::SolverOptions& options) {
  std::string key;
  // A two-site paper input serializes to ~1.4 KB; reserve once.
  key.reserve(64 + input.sites.size() * 700);
  AppendU64(input.sites.size(), &key);
  for (const model::SiteParams& site : input.sites) AppendSite(site, &key);
  AppendF64(input.comm_delay_ms, &key);
  // CC backend: same sites + costs under different backends solve different
  // fixed points and must never coalesce in the solution cache.
  AppendI64(static_cast<int>(input.cc_backend), &key);
  AppendF64(input.restart_backoff_ms, &key);

  AppendI64(options.max_iterations, &key);
  AppendF64(options.tolerance, &key);
  AppendF64(options.damping, &key);
  AppendF64(options.max_abort_prob, &key);
  AppendBool(options.use_exact_mva, &key);
  AppendF64(options.blocker_wait_fraction, &key);
  AppendBool(options.ethernet.has_value(), &key);
  if (options.ethernet.has_value()) {
    AppendF64(options.ethernet->bandwidth_bits_per_ms, &key);
    AppendF64(options.ethernet->slot_time_ms, &key);
    AppendF64(options.ethernet->propagation_ms, &key);
  }
  AppendF64(options.message_bits, &key);
  // Hierarchical solving: the collapse toggle and an explicit class
  // partition select different solve paths (bit-identical only for
  // symmetric inputs), so they are part of the key.
  AppendBool(options.collapse_site_classes, &key);
  AppendBool(options.site_classes != nullptr, &key);
  if (options.site_classes != nullptr) {
    AppendU64(options.site_classes->class_of_site.size(), &key);
    for (std::size_t cls : options.site_classes->class_of_site) {
      AppendU64(cls, &key);
    }
  }
  return key;
}

double WarmFeature(const model::ModelInput& input) {
  double feature = 0.0;
  for (const model::SiteParams& site : input.sites) {
    for (const model::ClassParams& c : site.classes) {
      if (c.population <= 0) continue;
      feature += static_cast<double>(c.population) *
                 (c.total_requests() * c.records_per_request);
      feature += c.population;
    }
  }
  return feature;
}

}  // namespace carat::serve
