// Canonical keys for the what-if solving service.
//
// The solution cache must treat two ModelInputs as the same query exactly
// when every solve-relevant parameter matches, so the key is a full binary
// serialization (doubles bit-cast, strings length-prefixed) rather than a
// lossy hash: key equality implies input equality, and collisions are
// impossible by construction. Solver options that change the answer
// (tolerance, damping, the Ethernet model, ...) are folded into the same
// key so one service can be re-tuned without serving stale solutions.

#ifndef CARAT_SERVE_KEY_H_
#define CARAT_SERVE_KEY_H_

#include <string>

#include "model/params.h"
#include "model/solver.h"

namespace carat::serve {

/// Byte-exact canonical serialization of (input, solver options). Equal keys
/// imply equal queries; unequal queries produce unequal keys.
std::string CanonicalKey(const model::ModelInput& input,
                         const model::SolverOptions& options);

/// Scalar locating an input inside its shape family for nearest-neighbor
/// warm-start selection: total offered work (populations weighted by records
/// accessed per execution) plus the total multiprogramming level. Both MPL
/// sweeps and transaction-size sweeps move this monotonically, so "nearest
/// feature" is "nearest sweep point".
double WarmFeature(const model::ModelInput& input);

}  // namespace carat::serve

#endif  // CARAT_SERVE_KEY_H_
