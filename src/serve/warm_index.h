// Nearest-neighbor warm-start index. Converged fixed-point states are filed
// under their input's shape key; a new solve of the same shape is seeded
// from the entry whose scalar feature (serve::WarmFeature — effectively the
// sweep position) is closest. Sweep-shaped query streams thus pay the full
// iteration count only for the first point of each workload family.
//
// Not internally synchronized: SolverService guards it with the service
// mutex (Nearest copies the chosen seed out under the lock; the solve runs
// unlocked).

#ifndef CARAT_SERVE_WARM_INDEX_H_
#define CARAT_SERVE_WARM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/solver.h"

namespace carat::serve {

class WarmStartIndex {
 public:
  /// `per_shape_capacity` bounds the retained seeds per shape family; 0
  /// disables the index.
  explicit WarmStartIndex(std::size_t per_shape_capacity)
      : capacity_(per_shape_capacity) {}

  /// Copies the seed nearest to `feature` within `shape` into `*out`.
  /// Returns false when the family is empty. Distance ties break
  /// deterministically toward the smaller feature value, independent of
  /// insertion or eviction order.
  bool Nearest(const std::string& shape, double feature,
               model::WarmStart* out) const;

  /// Files `warm` under (shape, feature). An existing entry at the exact
  /// feature is refreshed — and becomes the most recently written, so a
  /// refresh is never the next eviction victim. Once a family is at
  /// capacity the least recently written seed is evicted (sweeps revisit
  /// recent neighborhoods, so recency is the right retention policy).
  void Insert(const std::string& shape, double feature,
              const model::WarmStart& warm);

  void Clear();

  std::size_t size() const;

 private:
  struct Entry {
    double feature = 0.0;
    model::WarmStart warm;
    std::uint64_t seq = 0;  ///< last-write sequence; the minimum is evicted
  };
  struct Family {
    std::vector<Entry> entries;
    std::uint64_t next_seq = 0;
  };

  std::size_t capacity_;
  std::unordered_map<std::string, Family> families_;
};

}  // namespace carat::serve

#endif  // CARAT_SERVE_WARM_INDEX_H_
