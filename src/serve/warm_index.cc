#include "serve/warm_index.h"

#include <cmath>

namespace carat::serve {

bool WarmStartIndex::Nearest(const std::string& shape, double feature,
                             model::WarmStart* out) const {
  const auto it = families_.find(shape);
  if (it == families_.end() || it->second.entries.empty()) return false;
  const std::vector<Entry>& entries = it->second.entries;
  std::size_t best = 0;
  double best_dist = std::abs(entries[0].feature - feature);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const double dist = std::abs(entries[i].feature - feature);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  *out = entries[best].warm;
  return true;
}

void WarmStartIndex::Insert(const std::string& shape, double feature,
                            const model::WarmStart& warm) {
  if (capacity_ == 0) return;
  Family& family = families_[shape];
  for (Entry& entry : family.entries) {
    if (entry.feature == feature) {
      entry.warm = warm;
      return;
    }
  }
  if (family.entries.size() < capacity_) {
    family.entries.push_back(Entry{feature, warm});
    return;
  }
  family.entries[family.next] = Entry{feature, warm};
  family.next = (family.next + 1) % capacity_;
}

void WarmStartIndex::Clear() { families_.clear(); }

std::size_t WarmStartIndex::size() const {
  std::size_t total = 0;
  for (const auto& [shape, family] : families_) total += family.entries.size();
  return total;
}

}  // namespace carat::serve
