#include "serve/warm_index.h"

#include <cmath>

namespace carat::serve {

bool WarmStartIndex::Nearest(const std::string& shape, double feature,
                             model::WarmStart* out) const {
  const auto it = families_.find(shape);
  if (it == families_.end() || it->second.entries.empty()) return false;
  const std::vector<Entry>& entries = it->second.entries;
  // Ties break toward the smaller feature value so the winner is a function
  // of the stored features alone, not of insertion/eviction order (slot
  // order is an eviction artifact once a family has wrapped).
  std::size_t best = 0;
  double best_dist = std::abs(entries[0].feature - feature);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const double dist = std::abs(entries[i].feature - feature);
    if (dist < best_dist ||
        (dist == best_dist && entries[i].feature < entries[best].feature)) {
      best_dist = dist;
      best = i;
    }
  }
  *out = entries[best].warm;
  return true;
}

void WarmStartIndex::Insert(const std::string& shape, double feature,
                            const model::WarmStart& warm) {
  if (capacity_ == 0) return;
  Family& family = families_[shape];
  for (Entry& entry : family.entries) {
    if (entry.feature == feature) {
      // Refresh counts as a write: the entry becomes the newest, so it is
      // never the next eviction victim (a ring cursor left pointing at a
      // refreshed slot would evict the seed that was just filed).
      entry.warm = warm;
      entry.seq = family.next_seq++;
      return;
    }
  }
  if (family.entries.size() < capacity_) {
    family.entries.push_back(Entry{feature, warm, family.next_seq++});
    return;
  }
  // At capacity: overwrite the least recently written seed.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < family.entries.size(); ++i) {
    if (family.entries[i].seq < family.entries[victim].seq) victim = i;
  }
  family.entries[victim] = Entry{feature, warm, family.next_seq++};
}

void WarmStartIndex::Clear() { families_.clear(); }

std::size_t WarmStartIndex::size() const {
  std::size_t total = 0;
  for (const auto& [shape, family] : families_) total += family.entries.size();
  return total;
}

}  // namespace carat::serve
