// Inter-node message network for the testbed.
//
// The two-node experiments ran on a lightly loaded 10 Mb/s Ethernet, so the
// paper treats the per-message delay alpha as a small constant (and in fact
// neglects it). The network here charges a fixed one-way delay per message
// hop and counts traffic; qn/ethernet.h can supply a contention-aware alpha
// for sensitivity studies.
//
// A hop is also the only way a process changes site: the awaiter always
// suspends and re-schedules the coroutine on the destination site's
// timeline, so the resumed code runs on (and may touch the state of) the
// destination shard. Message counts are kept per sending site so sharded
// runs never contend on a shared counter.

#ifndef CARAT_NET_NETWORK_H_
#define CARAT_NET_NETWORK_H_

#include <coroutine>
#include <cstdint>
#include <memory>

#include "sim/simulation.h"

namespace carat::net {

/// Message-hop accounting and delay.
class Network {
 public:
  Network(sim::ShardedKernel& kernel, double one_way_delay_ms)
      : kernel_(kernel),
        delay_ms_(one_way_delay_ms),
        sent_(std::make_unique<Counter[]>(
            static_cast<std::size_t>(kernel.num_sites()))) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  struct HopAwaiter {
    Network& net;
    int dest_site;

    bool await_ready() const noexcept { return false; }  // always switch site
    void await_suspend(std::coroutine_handle<> h) const {
      net.kernel_.Schedule(dest_site, net.delay_ms_, h);
    }
    void await_resume() const noexcept {}
  };

  /// One message hop to `dest_site`: counts the message against the sending
  /// site, delays the caller by alpha, and resumes it on the destination
  /// site's timeline. Usage: co_await net.Hop(dest);
  HopAwaiter Hop(int dest_site) {
    const int from = kernel_.current_site();
    ++sent_[from >= 0 ? from : dest_site].value;
    return HopAwaiter{*this, dest_site};
  }

  double one_way_delay_ms() const { return delay_ms_; }

  /// Total messages sent, summed over sites. Not safe during RunUntil.
  std::uint64_t messages() const {
    std::uint64_t total = 0;
    for (int s = 0; s < kernel_.num_sites(); ++s) total += sent_[s].value;
    return total;
  }
  void ResetStats() {
    for (int s = 0; s < kernel_.num_sites(); ++s) sent_[s].value = 0;
  }

 private:
  struct alignas(64) Counter {
    std::uint64_t value = 0;
  };

  sim::ShardedKernel& kernel_;
  double delay_ms_;
  std::unique_ptr<Counter[]> sent_;
};

}  // namespace carat::net

#endif  // CARAT_NET_NETWORK_H_
