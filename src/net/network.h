// Inter-node message network for the testbed.
//
// The two-node experiments ran on a lightly loaded 10 Mb/s Ethernet, so the
// paper treats the per-message delay alpha as a small constant (and in fact
// neglects it). The network here charges a fixed one-way delay per message
// hop and counts traffic; qn/ethernet.h can supply a contention-aware alpha
// for sensitivity studies.

#ifndef CARAT_NET_NETWORK_H_
#define CARAT_NET_NETWORK_H_

#include <cstdint>

#include "sim/simulation.h"

namespace carat::net {

/// Message-hop accounting and delay.
class Network {
 public:
  Network(sim::Simulation& sim, double one_way_delay_ms)
      : sim_(sim), delay_ms_(one_way_delay_ms) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// One message hop between two nodes: counts the message and delays the
  /// caller by alpha. Usage: co_await net.Hop();
  sim::Delay Hop() {
    ++messages_;
    return sim::Delay{sim_, delay_ms_};
  }

  /// Round trip (request + reply), counting two messages.
  sim::Delay RoundTrip() {
    messages_ += 2;
    return sim::Delay{sim_, 2.0 * delay_ms_};
  }

  double one_way_delay_ms() const { return delay_ms_; }
  std::uint64_t messages() const { return messages_; }
  void ResetStats() { messages_ = 0; }

 private:
  sim::Simulation& sim_;
  double delay_ms_;
  std::uint64_t messages_ = 0;
};

}  // namespace carat::net

#endif  // CARAT_NET_NETWORK_H_
