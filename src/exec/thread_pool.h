// Fixed-size worker pool for CPU-bound fan-out (per-site MVA solves, sweep
// points). Deliberately simple: one shared FIFO task queue guarded by a
// mutex, no work stealing. The units of work this repo schedules (an MVA
// solve, a full model+testbed sweep point) are orders of magnitude larger
// than queue contention, so a single queue is the robust choice.
//
// Exceptions thrown by a task are captured and rethrown from the waiting
// side (TaskGroup::Wait / ParallelFor), never swallowed on a worker thread.

#ifndef CARAT_EXEC_THREAD_POOL_H_
#define CARAT_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace carat::exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: tasks still queued at destruction are discarded; tasks
  /// already running are joined. Use TaskGroup/ParallelFor to wait for
  /// completion before the pool dies.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. `fn` must not throw out of
  /// the pool's control flow unless scheduled through a TaskGroup (which
  /// captures the exception); bare Submit tasks that throw terminate.
  void Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Tracks a batch of tasks submitted to a pool; Wait() blocks until all have
/// finished and rethrows the first captured exception.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Runs `fn` on the pool (or inline when the group was built with a null
  /// pool), capturing the first exception thrown by any task.
  void Run(std::function<void()> fn);

  /// Blocks until every Run() task has finished, then rethrows the first
  /// captured exception (if any). May be called at most once per batch.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// Calls fn(i) for every i in [begin, end), distributing indices over the
/// pool's workers in contiguous chunks. Blocks until all iterations finish;
/// rethrows the first exception any iteration threw. A null pool, a
/// single-worker pool, or a range of fewer than two elements runs inline on
/// the calling thread. fn must be safe to invoke concurrently for distinct
/// indices.
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace carat::exec

#endif  // CARAT_EXEC_THREAD_POOL_H_
