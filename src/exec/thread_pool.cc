#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace carat::exec {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;  // racing a destructor: drop, the batch owner waits
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->size() == 0) {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (pool == nullptr || pool->size() <= 1 || count < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Contiguous chunks, a few per worker so uneven iteration costs balance
  // without per-index scheduling overhead.
  const std::size_t max_chunks = std::min(count, pool->size() * 4);
  const std::size_t chunk = (count + max_chunks - 1) / max_chunks;
  TaskGroup group(pool);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    group.Run([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

}  // namespace carat::exec
