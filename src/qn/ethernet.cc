#include "qn/ethernet.h"

#include <algorithm>
#include <cmath>

namespace carat::qn {

double EthernetMeanDelayMs(const EthernetParams& params, double frame_bits,
                           double frames_per_ms) {
  const double transmit = frame_bits / params.bandwidth_bits_per_ms;
  const double rho_raw = frames_per_ms * transmit;

  // Expected contention overhead per successful channel acquisition: with
  // many stations the probability a contention slot resolves is 1/e, so the
  // mean number of wasted slots is (e - 1); scale by the raw load so an idle
  // channel pays nothing.
  constexpr double kE = 2.718281828459045;
  const double contention =
      (kE - 1.0) * params.slot_time_ms * std::min(rho_raw, 1.0);

  const double service = transmit + contention;
  const double rho = std::min(frames_per_ms * service, 0.999);

  // M/D/1 waiting time (P-K with Cv^2 = 0): W = rho * s / (2 (1 - rho)).
  const double wait = rho * service / (2.0 * (1.0 - rho));
  return service + wait + params.propagation_ms;
}

}  // namespace carat::qn
