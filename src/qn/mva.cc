#include "qn/mva.h"

#include <cmath>
#include <utility>

namespace carat::qn {

namespace {

void SetError(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

namespace internal {

// Reuses `sol`'s storage; allocation-free once warm.
void FinishSolution(const ClosedNetwork& net, const std::vector<double>& x,
                    const std::vector<double>& residence, Solution* sol) {
  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();
  sol->throughput.assign(x.begin(), x.end());
  sol->residence.resize(num_chains);
  sol->response_time.assign(num_chains, 0.0);
  for (std::size_t k = 0; k < num_chains; ++k) {
    const double* row = residence.data() + k * num_centers;
    sol->residence[k].assign(row, row + num_centers);
    double total = 0.0;
    for (std::size_t m = 0; m < num_centers; ++m) total += row[m];
    sol->response_time[k] = total;
  }
  sol->queue_length.assign(num_centers, 0.0);
  sol->utilization.assign(num_centers, 0.0);
  for (std::size_t m = 0; m < num_centers; ++m) {
    for (std::size_t k = 0; k < num_chains; ++k) {
      sol->queue_length[m] += x[k] * residence[k * num_centers + m];
      sol->utilization[m] += x[k] * net.chains[k].demands[m];
    }
  }
}

}  // namespace internal

namespace {

using internal::FillQueueingMask;
using internal::FinishSolution;

}  // namespace

bool JointLatticeStates(const ClosedNetwork& net, std::size_t limit,
                        std::size_t* states) {
  std::size_t count = 1;
  for (const Chain& chain : net.chains) {
    const std::size_t d = static_cast<std::size_t>(chain.population) + 1;
    if (d != 0 && count > limit / d) return false;
    count *= d;
  }
  if (states != nullptr) *states = count;
  return true;
}

bool ExactMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                     std::size_t max_states, std::string* error) {
  if (!net.Validate(error)) return false;

  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();

  std::size_t num_states = 0;
  if (!JointLatticeStates(net, max_states, &num_states)) {
    SetError(error, "joint population lattice exceeds max_states");
    return false;
  }

  // Mixed-radix layout of the joint population lattice.
  ws->dims.resize(num_chains);
  ws->strides.resize(num_chains);
  {
    std::size_t stride = 1;
    for (std::size_t k = 0; k < num_chains; ++k) {
      ws->dims[k] = static_cast<std::size_t>(net.chains[k].population) + 1;
      ws->strides[k] = stride;
      stride *= ws->dims[k];
    }
  }
  FillQueueingMask(net, &ws->qmul);
  const double* qmul = ws->qmul.data();

  // q[state * num_centers + m] = mean queue length at center m for the
  // population vector encoded by `state`. Lexicographic enumeration visits
  // n - e_k before n, so one pass suffices.
  ws->q.assign(num_states * num_centers, 0.0);
  ws->n.assign(num_chains, 0);
  ws->x.assign(num_chains, 0.0);
  ws->residence.assign(num_chains * num_centers, 0.0);
  double* q = ws->q.data();
  double* x = ws->x.data();
  double* residence = ws->residence.data();
  std::size_t* n = ws->n.data();

  for (std::size_t state = 1; state < num_states; ++state) {
    // Increment the mixed-radix counter.
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (++n[k] < ws->dims[k]) break;
      n[k] = 0;
    }

    for (std::size_t k = 0; k < num_chains; ++k) x[k] = 0.0;

    for (std::size_t k = 0; k < num_chains; ++k) {
      if (n[k] == 0) continue;
      const Chain& chain = net.chains[k];
      const double* demands = chain.demands.data();
      const double* qprev = q + (state - ws->strides[k]) * num_centers;
      double* res = residence + k * num_centers;
      // The residence computation vectorizes; the total is summed in a
      // separate *sequential* loop so the accumulation order is pinned
      // (lowest center first). The batch kernels (mva_batch.cc) replay the
      // same order per lane, which is what makes batch solves bit-identical
      // to this scalar path.
#pragma omp simd
      for (std::size_t m = 0; m < num_centers; ++m) {
        res[m] = demands[m] * (1.0 + qmul[m] * qprev[m]);
      }
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) total += res[m];
      const double denom = chain.think_time + total;
      // Chains with zero total demand and zero think contribute nothing.
      x[k] = denom > 0.0 ? static_cast<double>(n[k]) / denom : 0.0;
    }

    // Accumulate chain by chain (unit-stride axpy) rather than center by
    // center (strided gather) so the loop vectorizes.
    double* qhere = q + state * num_centers;
#pragma omp simd
    for (std::size_t m = 0; m < num_centers; ++m) qhere[m] = 0.0;
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (n[k] == 0) continue;
      const double xk = x[k];
      const double* res = residence + k * num_centers;
#pragma omp simd
      for (std::size_t m = 0; m < num_centers; ++m) qhere[m] += xk * res[m];
    }
  }

  // Recompute residence at the full population (the loop leaves residence[k]
  // from the last state visited, which is the full population when
  // num_states > 1; handle the trivial empty network explicitly).
  if (num_states == 1) {
    for (std::size_t k = 0; k < num_chains; ++k) {
      x[k] = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m)
        residence[k * num_centers + m] = 0.0;
    }
  } else {
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = net.chains[k];
      double* res = residence + k * num_centers;
      if (chain.population == 0) {
        x[k] = 0.0;
        for (std::size_t m = 0; m < num_centers; ++m) res[m] = 0.0;
        continue;
      }
      const std::size_t full = num_states - 1;
      const double* qprev = q + (full - ws->strides[k]) * num_centers;
      const double* demands = chain.demands.data();
#pragma omp simd
      for (std::size_t m = 0; m < num_centers; ++m) {
        res[m] = demands[m] * (1.0 + qmul[m] * qprev[m]);
      }
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) total += res[m];
      const double denom = chain.think_time + total;
      x[k] = denom > 0.0 ? chain.population / denom : 0.0;
    }
  }

  FinishSolution(net, ws->x, ws->residence, &ws->solution);
  ws->iterations = 0;
  return true;
}

bool SchweitzerMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                          double tolerance, int max_iterations,
                          bool warm_start, std::string* error) {
  if (!net.Validate(error)) return false;

  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();
  const std::size_t km = num_chains * num_centers;

  FillQueueingMask(net, &ws->qmul);
  const double* qmul = ws->qmul.data();

  // Per-chain queue length at each center. A warm start resumes from the
  // retained `qkm` of the previous solve (the model's fixed point moves the
  // demands only slightly between iterations, so this converges in a few
  // rounds); otherwise each chain's population is spread evenly over the
  // queueing centers it visits.
  if (!(warm_start && ws->qkm.size() == km)) {
    ws->qkm.assign(km, 0.0);
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = net.chains[k];
      std::size_t visited = 0;
      for (std::size_t m = 0; m < num_centers; ++m)
        if (chain.demands[m] > 0.0) ++visited;
      if (visited == 0) continue;
      for (std::size_t m = 0; m < num_centers; ++m)
        if (chain.demands[m] > 0.0)
          ws->qkm[k * num_centers + m] =
              static_cast<double>(chain.population) / visited;
    }
  }
  double* qkm = ws->qkm.data();

  ws->x.assign(num_chains, 0.0);
  ws->residence.assign(km, 0.0);
  ws->qsum.resize(num_centers);
  double* x = ws->x.data();
  double* residence = ws->residence.data();
  double* qsum = ws->qsum.data();

  ws->iterations = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    ++ws->iterations;
    // Per-center totals, hoisting the O(chains) "queue seen on arrival" sum
    // out of the per-chain loop: chain k sees qsum[m] - qkm[k][m] / n_k.
#pragma omp simd
    for (std::size_t m = 0; m < num_centers; ++m) qsum[m] = 0.0;
    for (std::size_t k = 0; k < num_chains; ++k) {
      const double* qrow = qkm + k * num_centers;
#pragma omp simd
      for (std::size_t m = 0; m < num_centers; ++m) qsum[m] += qrow[m];
    }

    double max_delta = 0.0;
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = net.chains[k];
      if (chain.population == 0) {
        x[k] = 0.0;
        continue;
      }
      const double nk = chain.population;
      const double inv_nk = 1.0 / nk;
      const double* demands = chain.demands.data();
      const double* qrow = qkm + k * num_centers;
      double* res = residence + k * num_centers;
      // Elementwise part vectorizes; the total is summed sequentially so the
      // accumulation order is pinned and the batch kernel can replay it per
      // lane (see the bit-identity note in ExactMvaInPlace).
#pragma omp simd
      for (std::size_t m = 0; m < num_centers; ++m) {
        // Schweitzer estimate of the queue seen on arrival by chain k.
        const double seen = qsum[m] - qrow[m] * inv_nk;
        res[m] = demands[m] * (1.0 + qmul[m] * seen);
      }
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) total += res[m];
      const double denom = chain.think_time + total;
      x[k] = denom > 0.0 ? nk / denom : 0.0;
    }
    for (std::size_t k = 0; k < num_chains; ++k) {
      const double xk = x[k];
      const double* res = residence + k * num_centers;
      double* qrow = qkm + k * num_centers;
#pragma omp simd reduction(max : max_delta)
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double next = xk * res[m];
        max_delta = std::max(max_delta, std::fabs(next - qrow[m]));
        qrow[m] = next;
      }
    }
    if (max_delta < tolerance) break;
  }

  FinishSolution(net, ws->x, ws->residence, &ws->solution);
  return true;
}

bool SolveMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                     std::size_t exact_state_limit, bool warm_start,
                     std::string* error) {
  if (JointLatticeStates(net, exact_state_limit))
    return ExactMvaInPlace(net, ws, exact_state_limit, error);
  return SchweitzerMvaInPlace(net, ws, /*tolerance=*/1e-9,
                              /*max_iterations=*/10000, warm_start, error);
}

MvaResult ExactMva(const ClosedNetwork& net, std::size_t max_states) {
  MvaResult result;
  MvaWorkspace ws;
  result.ok = ExactMvaInPlace(net, &ws, max_states, &result.error);
  if (result.ok) {
    result.solution = std::move(ws.solution);
    result.iterations = ws.iterations;
  }
  return result;
}

MvaResult SchweitzerMva(const ClosedNetwork& net, double tolerance,
                        int max_iterations,
                        const std::vector<double>* initial_qkm) {
  MvaResult result;
  MvaWorkspace ws;
  bool warm = false;
  if (initial_qkm != nullptr &&
      initial_qkm->size() == net.chains.size() * net.centers.size()) {
    ws.qkm = *initial_qkm;
    warm = true;
  }
  result.ok = SchweitzerMvaInPlace(net, &ws, tolerance, max_iterations, warm,
                                   &result.error);
  if (result.ok) {
    result.solution = std::move(ws.solution);
    result.iterations = ws.iterations;
  }
  return result;
}

MvaResult SolveMva(const ClosedNetwork& net, std::size_t exact_state_limit) {
  if (JointLatticeStates(net, exact_state_limit))
    return ExactMva(net, exact_state_limit);
  return SchweitzerMva(net);
}

}  // namespace carat::qn
