#include "qn/mva.h"

#include <cmath>
#include <numeric>
#include <vector>

namespace carat::qn {

namespace {

// Fills the non-queue-length parts of `sol` from per-chain throughputs and
// residence times at the full population.
void FinishSolution(const ClosedNetwork& net, const std::vector<double>& x,
                    const std::vector<std::vector<double>>& residence,
                    Solution* sol) {
  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();
  sol->throughput = x;
  sol->residence = residence;
  sol->response_time.assign(num_chains, 0.0);
  for (std::size_t k = 0; k < num_chains; ++k) {
    sol->response_time[k] =
        std::accumulate(residence[k].begin(), residence[k].end(), 0.0);
  }
  sol->queue_length.assign(num_centers, 0.0);
  sol->utilization.assign(num_centers, 0.0);
  for (std::size_t m = 0; m < num_centers; ++m) {
    for (std::size_t k = 0; k < num_chains; ++k) {
      sol->queue_length[m] += x[k] * residence[k][m];
      sol->utilization[m] += x[k] * net.chains[k].demands[m];
    }
  }
}

}  // namespace

MvaResult ExactMva(const ClosedNetwork& net, std::size_t max_states) {
  MvaResult result;
  if (!net.Validate(&result.error)) return result;

  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();

  // Mixed-radix layout of the joint population lattice.
  std::vector<std::size_t> dims(num_chains), strides(num_chains);
  std::size_t num_states = 1;
  for (std::size_t k = 0; k < num_chains; ++k) {
    dims[k] = static_cast<std::size_t>(net.chains[k].population) + 1;
    strides[k] = num_states;
    if (dims[k] != 0 && num_states > max_states / dims[k]) {
      result.error = "joint population lattice exceeds max_states";
      return result;
    }
    num_states *= dims[k];
  }

  // Q[state * num_centers + m] = mean queue length at center m for the
  // population vector encoded by `state`. Lexicographic enumeration visits
  // n - e_k before n, so one pass suffices.
  std::vector<double> q(num_states * num_centers, 0.0);
  std::vector<std::size_t> n(num_chains, 0);
  std::vector<double> x(num_chains, 0.0);
  std::vector<std::vector<double>> residence(num_chains,
                                             std::vector<double>(num_centers, 0.0));

  for (std::size_t state = 1; state < num_states; ++state) {
    // Increment the mixed-radix counter.
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (++n[k] < dims[k]) break;
      n[k] = 0;
    }

    for (std::size_t k = 0; k < num_chains; ++k) x[k] = 0.0;

    for (std::size_t k = 0; k < num_chains; ++k) {
      if (n[k] == 0) continue;
      const Chain& chain = net.chains[k];
      const std::size_t prev = state - strides[k];
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double d = chain.demands[m];
        double r = d;
        if (net.centers[m].kind == CenterKind::kQueueing) {
          r = d * (1.0 + q[prev * num_centers + m]);
        }
        residence[k][m] = r;
        total += r;
      }
      const double denom = chain.think_time + total;
      x[k] = denom > 0.0 ? static_cast<double>(n[k]) / denom : 0.0;
      // Chains with zero total demand and zero think contribute nothing.
      if (denom <= 0.0) x[k] = 0.0;
    }

    for (std::size_t m = 0; m < num_centers; ++m) {
      double qm = 0.0;
      for (std::size_t k = 0; k < num_chains; ++k) {
        if (n[k] == 0) continue;
        qm += x[k] * residence[k][m];
      }
      q[state * num_centers + m] = qm;
    }
  }

  // Recompute residence at the full population (the loop leaves residence[k]
  // from the last state visited, which is the full population when
  // num_states > 1; handle the trivial empty network explicitly).
  if (num_states == 1) {
    for (std::size_t k = 0; k < num_chains; ++k) {
      x[k] = 0.0;
      residence[k].assign(num_centers, 0.0);
    }
  } else {
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = net.chains[k];
      if (chain.population == 0) {
        x[k] = 0.0;
        residence[k].assign(num_centers, 0.0);
        continue;
      }
      const std::size_t full = num_states - 1;
      const std::size_t prev = full - strides[k];
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double d = chain.demands[m];
        double r = d;
        if (net.centers[m].kind == CenterKind::kQueueing) {
          r = d * (1.0 + q[prev * num_centers + m]);
        }
        residence[k][m] = r;
        total += r;
      }
      const double denom = chain.think_time + total;
      x[k] = denom > 0.0 ? chain.population / denom : 0.0;
    }
  }

  FinishSolution(net, x, residence, &result.solution);
  result.ok = true;
  return result;
}

MvaResult SchweitzerMva(const ClosedNetwork& net, double tolerance,
                        int max_iterations) {
  MvaResult result;
  if (!net.Validate(&result.error)) return result;

  const std::size_t num_chains = net.chains.size();
  const std::size_t num_centers = net.centers.size();

  // Per-chain queue length at each center, initialized to an even spread of
  // each chain's population over the queueing centers it visits.
  std::vector<std::vector<double>> qkm(num_chains,
                                       std::vector<double>(num_centers, 0.0));
  for (std::size_t k = 0; k < num_chains; ++k) {
    const Chain& chain = net.chains[k];
    std::size_t visited = 0;
    for (std::size_t m = 0; m < num_centers; ++m)
      if (chain.demands[m] > 0.0) ++visited;
    if (visited == 0) continue;
    for (std::size_t m = 0; m < num_centers; ++m)
      if (chain.demands[m] > 0.0)
        qkm[k][m] = static_cast<double>(chain.population) / visited;
  }

  std::vector<double> x(num_chains, 0.0);
  std::vector<std::vector<double>> residence(num_chains,
                                             std::vector<double>(num_centers, 0.0));

  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_delta = 0.0;
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = net.chains[k];
      if (chain.population == 0) {
        x[k] = 0.0;
        continue;
      }
      const double nk = chain.population;
      double total = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double d = chain.demands[m];
        double r = d;
        if (net.centers[m].kind == CenterKind::kQueueing) {
          // Schweitzer estimate of the queue seen on arrival by chain k.
          double seen = 0.0;
          for (std::size_t j = 0; j < num_chains; ++j)
            seen += (j == k) ? qkm[j][m] * (nk - 1.0) / nk : qkm[j][m];
          r = d * (1.0 + seen);
        }
        residence[k][m] = r;
        total += r;
      }
      const double denom = chain.think_time + total;
      x[k] = denom > 0.0 ? nk / denom : 0.0;
    }
    for (std::size_t k = 0; k < num_chains; ++k) {
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double next = x[k] * residence[k][m];
        max_delta = std::max(max_delta, std::fabs(next - qkm[k][m]));
        qkm[k][m] = next;
      }
    }
    if (max_delta < tolerance) break;
  }

  FinishSolution(net, x, residence, &result.solution);
  result.ok = true;
  return result;
}

MvaResult SolveMva(const ClosedNetwork& net, std::size_t exact_state_limit) {
  std::size_t states = 1;
  bool overflow = false;
  for (const Chain& chain : net.chains) {
    const std::size_t d = static_cast<std::size_t>(chain.population) + 1;
    if (states > exact_state_limit / d) {
      overflow = true;
      break;
    }
    states *= d;
  }
  if (!overflow) return ExactMva(net, exact_state_limit);
  return SchweitzerMva(net);
}

}  // namespace carat::qn
