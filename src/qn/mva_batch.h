// Lockstep structure-of-arrays batch MVA solving: one SIMD lane per scenario.
//
// The validation workflow is batch-shaped — every figure/table sweep and the
// serving layer solve dozens of *same-shape* network variants (same centers,
// same center kinds, same chain count; different demands, think times and
// populations). The scalar kernels in mva.h vectorize only *within* one
// solve, across the handful of centers; these kernels instead lay W networks
// out structure-of-arrays (`param[chain][center][lane]`) and advance all W
// through the recursion in lockstep, so the innermost loop is always a
// unit-stride pass over lanes and the SIMD width is filled regardless of how
// small one network is. The speedup is data-parallel, not thread-parallel:
// it does not depend on core count.
//
// Bit-identity contract: lane w of a batch solve produces *bit-identical*
// results to a scalar solve of the same network. Three properties pin this:
//   1. each lane executes exactly the scalar op sequence — the scalar
//      kernels sum residence times sequentially over centers (mva.cc), and
//      the lane-inner batch loops preserve that per-lane order because
//      vectorizing *across* lanes never reassociates *within* a lane;
//   2. converged lanes retire behind a select mask (`x = active ? new : x`),
//      never a blended arithmetic update, so frozen state is preserved
//      exactly while the remaining lanes keep iterating without divergent
//      control flow;
//   3. the carat_qn target is compiled with -ffp-contract=off (see
//      src/qn/CMakeLists.txt), so no fused-multiply-add contraction can
//      differ between the scalar and batch translation units.
// The derived Solution fields are produced by the *same* compiled
// internal::FinishSolution call per lane.

#ifndef CARAT_QN_MVA_BATCH_H_
#define CARAT_QN_MVA_BATCH_H_

#include <cstddef>
#include <new>
#include <string>
#include <vector>

#include "qn/mva.h"
#include "qn/network.h"

namespace carat::qn {

/// Minimal cache-line-aligning allocator for the lockstep SoA buffers. At
/// the preferred lane width a lane row is exactly one cache line (8 doubles
/// = 64 bytes), so whether a row straddles two lines is decided entirely by
/// the allocation's base address. The default allocator only guarantees 16
/// bytes; after enough heap churn the rows land mid-line and every SIMD
/// load/store in the sweep becomes a line-split access, which measurably
/// halves batch throughput. Pinning the base to 64 bytes makes row accesses
/// single-line deterministically, independent of allocation history.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }
  friend bool operator==(const CacheAlignedAllocator&,
                         const CacheAlignedAllocator&) {
    return true;
  }
};

/// SoA lane buffer: all hot per-lane arrays use this so lane rows start on
/// cache-line boundaries (see CacheAlignedAllocator).
using LaneVector = std::vector<double, CacheAlignedAllocator<double>>;

/// Preferred number of scenarios per lockstep block. Eight doubles fill an
/// AVX-512 register once and narrower ISAs several times over; the extra
/// unroll also hides the FP add latency of the per-lane accumulators. Any
/// width >= 1 works; callers blocking work (serve::SolverService) default to
/// a lane width derived from this.
inline constexpr std::size_t kMvaBatchLaneWidth = 8;

/// Number of double lanes the kernels were *compiled* for (from the target
/// ISA: AVX-512 -> 8, AVX -> 4, SSE2/NEON -> 2, else 1). Reported by the
/// benches so BENCH_solver.json records the effective vector width.
std::size_t MvaCompiledSimdDoubleLanes();

/// Reusable buffers for the batch solvers. All vectors grow to the largest
/// (shape, lane count) seen and are then reused; repeated batch solves of
/// the same shape allocate nothing once warm.
struct BatchMvaWorkspace {
  /// Per-lane outputs of the most recent successful batch solve.
  std::vector<Solution> solutions;
  /// Per-lane Schweitzer-Bard iteration counts (0 after an exact solve).
  std::vector<int> iterations;

  /// Retained per-lane Schweitzer queue lengths, structure-of-arrays:
  /// qkm[(chain * centers + center) * lanes + lane]. With `warm_start` the
  /// fixed point resumes per lane from these, exactly like the scalar
  /// MvaWorkspace::qkm.
  LaneVector qkm;
  /// Lane count `qkm` was written for (a warm start requires a match).
  std::size_t warm_lanes = 0;
  /// Per-lane validity of the retained `qkm` column. InvalidateWarm() clears
  /// one lane (that lane re-inits from the even-spread guess, i.e. a cold
  /// start) without disturbing its neighbors.
  std::vector<unsigned char> qkm_valid;

  void InvalidateWarm(std::size_t lane);

  // Scratch (all structure-of-arrays over lanes): demands/residence are
  // (chain, center)-major, x/think/nk/invn are chain-major, qsum is
  // center-major; total/delta/active are per-lane; q is the shared exact-MVA
  // joint-population lattice (state, center)-major; lane_x/lane_res are the
  // per-lane gather buffers handed to internal::FinishSolution (plain
  // vectors — they are touched once per solve, not per sweep).
  LaneVector demands, residence, x, think, nk, invn, qsum;
  LaneVector total, delta, qmul, q;
  std::vector<double> lane_x, lane_res;
  std::vector<unsigned char> active;
  std::vector<std::size_t> dims, strides, n;
  /// Per-lane scalar workspaces for the mixed-path fallback of
  /// SolveMvaBatchInPlace (lanes that must solve exact at different lattice
  /// shapes run the scalar kernel, staying bit-identical by construction).
  std::vector<MvaWorkspace> scalar_ws;
};

/// True when `a` and `b` can share a lockstep batch: same center count and
/// kinds, same chain count. Populations, think times and demands may differ.
bool SameMvaShape(const ClosedNetwork& a, const ClosedNetwork& b);

/// Schweitzer-Bard fixed point over W same-shape networks in lockstep, one
/// lane per network, into `ws->solutions[w]` / `ws->iterations[w]`. Lanes
/// whose fixed point converges retire behind the active-lane mask and keep
/// their converged state bit-exactly while the rest continue. With
/// `warm_start`, lanes whose retained `qkm` column is valid resume from it.
/// Returns false (error set) on a shape mismatch between lanes or a
/// validation failure of any lane's network.
bool SchweitzerMvaBatchInPlace(const ClosedNetwork* const* nets,
                               std::size_t lanes, BatchMvaWorkspace* ws,
                               double tolerance = 1e-9,
                               int max_iterations = 10000,
                               bool warm_start = false,
                               std::string* error = nullptr);

/// Lane-blocked exact MVA: requires the lanes to share the joint population
/// lattice (same per-chain populations) in addition to the shape, so one
/// mixed-radix walk serves all lanes. Demands and think times may differ.
/// Returns false when the lattice exceeds `max_states`, on a lattice-shape
/// mismatch, or on validation failure.
bool ExactMvaBatchInPlace(const ClosedNetwork* const* nets, std::size_t lanes,
                          BatchMvaWorkspace* ws,
                          std::size_t max_states = 1u << 22,
                          std::string* error = nullptr);

/// Batch counterpart of SolveMvaInPlace: each lane takes the exact path iff
/// its own lattice fits in `exact_state_limit` (the same per-network rule as
/// the scalar solver, so lane w's result is bit-identical to
/// SolveMvaInPlace on lane w's network). All-Schweitzer batches and
/// all-exact batches with a shared lattice run lockstep; mixed batches (or
/// exact lanes with differing lattices) fall back to the scalar kernels per
/// lane, preserving the results while losing only the speedup.
bool SolveMvaBatchInPlace(const ClosedNetwork* const* nets, std::size_t lanes,
                          BatchMvaWorkspace* ws,
                          std::size_t exact_state_limit = 1u << 20,
                          bool warm_start = false,
                          std::string* error = nullptr);

}  // namespace carat::qn

#endif  // CARAT_QN_MVA_BATCH_H_
