#include "qn/mva_batch.h"

#include <cmath>
#include <cstring>

namespace carat::qn {

namespace {

void SetError(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

// Shape/validation preamble shared by the two lockstep kernels. On success
// the lanes agree on center count, center kinds and chain count and every
// lane's network passed Validate().
bool CheckBatch(const ClosedNetwork* const* nets, std::size_t lanes,
                std::string* error) {
  if (lanes == 0) {
    SetError(error, "batch solve needs at least one lane");
    return false;
  }
  const ClosedNetwork& n0 = *nets[0];
  for (std::size_t w = 1; w < lanes; ++w) {
    if (!SameMvaShape(n0, *nets[w])) {
      SetError(error, "batch lanes differ in network shape");
      return false;
    }
  }
  for (std::size_t w = 0; w < lanes; ++w) {
    if (!nets[w]->Validate(error)) return false;
  }
  return true;
}

// Loads the per-lane chain parameters into the workspace's SoA buffers:
// demands[(k*M + m)*W + w], think/nk/invn[k*W + w]. invn is 0 for empty
// chains so the Schweitzer "seen" term stays finite without a branch.
void LoadChainSoA(const ClosedNetwork* const* nets, std::size_t lanes,
                  std::size_t num_chains, std::size_t num_centers,
                  BatchMvaWorkspace* ws) {
  ws->demands.resize(num_chains * num_centers * lanes);
  ws->think.resize(num_chains * lanes);
  ws->nk.resize(num_chains * lanes);
  ws->invn.resize(num_chains * lanes);
  for (std::size_t k = 0; k < num_chains; ++k) {
    for (std::size_t w = 0; w < lanes; ++w) {
      const Chain& chain = nets[w]->chains[k];
      const double pop = chain.population;
      ws->think[k * lanes + w] = chain.think_time;
      ws->nk[k * lanes + w] = pop;
      ws->invn[k * lanes + w] = pop > 0.0 ? 1.0 / pop : 0.0;
      const double* demands = chain.demands.data();
      for (std::size_t m = 0; m < num_centers; ++m) {
        ws->demands[(k * num_centers + m) * lanes + w] = demands[m];
      }
    }
  }
}

// Gathers lane w's SoA throughputs/residence into contiguous per-lane
// buffers and finishes the Solution with the same compiled code the scalar
// path uses (bit-identical derived fields).
void FinishLane(const ClosedNetwork& net, std::size_t lanes, std::size_t w,
                std::size_t num_chains, std::size_t num_centers,
                BatchMvaWorkspace* ws) {
  ws->lane_x.resize(num_chains);
  ws->lane_res.resize(num_chains * num_centers);
  for (std::size_t k = 0; k < num_chains; ++k) {
    ws->lane_x[k] = ws->x[k * lanes + w];
    for (std::size_t m = 0; m < num_centers; ++m) {
      ws->lane_res[k * num_centers + m] =
          ws->residence[(k * num_centers + m) * lanes + w];
    }
  }
  internal::FinishSolution(net, ws->lane_x, ws->lane_res, &ws->solutions[w]);
}

// Pointer bundle for the Schweitzer lockstep sweep (SoA layouts documented
// on BatchMvaWorkspace).
struct SchweitzerArgs {
  std::size_t num_chains = 0;
  std::size_t num_centers = 0;
  std::size_t lanes = 0;
  double* qkm = nullptr;
  double* x = nullptr;
  double* res = nullptr;
  double* qsum = nullptr;
  double* total = nullptr;
  double* delta = nullptr;
  const double* dem = nullptr;
  const double* think = nullptr;
  const double* nk = nullptr;
  const double* invn = nullptr;
  const double* qmul = nullptr;
  const unsigned char* active = nullptr;
};

// One Schweitzer-Bard sweep over all lanes. kW = 0 compiles the generic
// runtime-width version; kW > 0 pins the lane count at compile time so every
// inner loop has a constant trip count — the vectorizer emits straight-line
// SIMD with no remainder handling, which is where the batch speedup lives.
// kMasked = false is the all-active fast path: until the first lane
// converges every `active[w]` select would pick the new value anyway, so the
// maskless specialization is bit-identical and runs for the bulk of the
// iterations.
template <std::size_t kW, bool kMasked>
void SchweitzerSweep(const SchweitzerArgs& a) {
  const std::size_t lanes = kW != 0 ? kW : a.lanes;
  const std::size_t num_chains = a.num_chains;
  const std::size_t num_centers = a.num_centers;
  double* __restrict qkm = a.qkm;
  double* __restrict x = a.x;
  double* __restrict res = a.res;
  double* __restrict qsum = a.qsum;
  double* __restrict total = a.total;
  double* __restrict delta = a.delta;
  const double* __restrict dem = a.dem;
  const double* __restrict think = a.think;
  const double* __restrict nk = a.nk;
  const double* __restrict invn = a.invn;
  const double* __restrict qmul = a.qmul;
  const unsigned char* __restrict active = a.active;

  // Per-center totals over chains (k ascending, matching the scalar hoisted
  // qsum), lanes innermost.
#pragma omp simd
  for (std::size_t s = 0; s < num_centers * lanes; ++s) qsum[s] = 0.0;
  for (std::size_t k = 0; k < num_chains; ++k) {
    for (std::size_t m = 0; m < num_centers; ++m) {
      const double* __restrict qrow = qkm + (k * num_centers + m) * lanes;
      double* __restrict srow = qsum + m * lanes;
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) srow[w] += qrow[w];
    }
  }

#pragma omp simd
  for (std::size_t w = 0; w < lanes; ++w) delta[w] = 0.0;

  for (std::size_t k = 0; k < num_chains; ++k) {
    const double* __restrict nrow = nk + k * lanes;
    const double* __restrict irow = invn + k * lanes;
    const double* __restrict zrow = think + k * lanes;
#pragma omp simd
    for (std::size_t w = 0; w < lanes; ++w) total[w] = 0.0;
    // Centers ascending, so each lane's `total` accumulates in exactly the
    // scalar kernel's (sequential) order. The residence write is a select:
    // retired lanes and empty chains keep their previous (converged / zero)
    // values bit-exactly.
    for (std::size_t m = 0; m < num_centers; ++m) {
      const std::size_t e = (k * num_centers + m) * lanes;
      const double* __restrict drow = dem + e;
      const double* __restrict qrow = qkm + e;
      const double* __restrict srow = qsum + m * lanes;
      double* __restrict rrow = res + e;
      const double qm = qmul[m];
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) {
        const double seen = srow[w] - qrow[w] * irow[w];
        const double r = drow[w] * (1.0 + qm * seen);
        total[w] += r;
        const bool upd = (!kMasked || active[w] != 0) && nrow[w] > 0.0;
        rrow[w] = upd ? r : rrow[w];
      }
    }
    double* __restrict xrow = x + k * lanes;
#pragma omp simd
    for (std::size_t w = 0; w < lanes; ++w) {
      const double denom = zrow[w] + total[w];
      const double xn = (nrow[w] > 0.0 && denom > 0.0) ? nrow[w] / denom : 0.0;
      xrow[w] = (!kMasked || active[w] != 0) ? xn : xrow[w];
    }
  }

  // Fixed-point update and per-lane convergence deltas, same (k, m) order as
  // the scalar update loop (max is order-insensitive, the select is exact).
  for (std::size_t k = 0; k < num_chains; ++k) {
    const double* __restrict xrow = x + k * lanes;
    for (std::size_t m = 0; m < num_centers; ++m) {
      const std::size_t e = (k * num_centers + m) * lanes;
      const double* __restrict rrow = res + e;
      double* __restrict qrow = qkm + e;
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) {
        const double next = xrow[w] * rrow[w];
        const double d = std::fabs(next - qrow[w]);
        const bool on = !kMasked || active[w] != 0;
        delta[w] = (on && d > delta[w]) ? d : delta[w];
        qrow[w] = on ? next : qrow[w];
      }
    }
  }
}

template <std::size_t kW>
void SchweitzerIterate(const SchweitzerArgs& a, double tolerance,
                       int max_iterations, unsigned char* active,
                       int* iterations) {
  const std::size_t lanes = a.lanes;
  std::size_t remaining = lanes;
  for (int iter = 0; iter < max_iterations && remaining > 0; ++iter) {
    if (remaining == lanes) {
      SchweitzerSweep<kW, /*kMasked=*/false>(a);
    } else {
      SchweitzerSweep<kW, /*kMasked=*/true>(a);
    }
    for (std::size_t w = 0; w < lanes; ++w) {
      if (active[w] == 0) continue;
      ++iterations[w];
      if (a.delta[w] < tolerance) {
        active[w] = 0;
        --remaining;
      }
    }
  }
}

}  // namespace

void BatchMvaWorkspace::InvalidateWarm(std::size_t lane) {
  if (lane < qkm_valid.size()) qkm_valid[lane] = 0;
  if (lane < scalar_ws.size()) scalar_ws[lane].qkm.clear();
}

bool SameMvaShape(const ClosedNetwork& a, const ClosedNetwork& b) {
  if (a.centers.size() != b.centers.size()) return false;
  if (a.chains.size() != b.chains.size()) return false;
  for (std::size_t m = 0; m < a.centers.size(); ++m) {
    if (a.centers[m].kind != b.centers[m].kind) return false;
  }
  return true;
}

std::size_t MvaCompiledSimdDoubleLanes() {
#if defined(__AVX512F__)
  return 8;
#elif defined(__AVX__)
  return 4;
#elif defined(__SSE2__) || defined(__x86_64__) || defined(__aarch64__) || \
    defined(__ARM_NEON)
  return 2;
#else
  return 1;
#endif
}

bool SchweitzerMvaBatchInPlace(const ClosedNetwork* const* nets,
                               std::size_t lanes, BatchMvaWorkspace* ws,
                               double tolerance, int max_iterations,
                               bool warm_start, std::string* error) {
  if (!CheckBatch(nets, lanes, error)) return false;
  const std::size_t num_chains = nets[0]->chains.size();
  const std::size_t num_centers = nets[0]->centers.size();
  const std::size_t kmw = num_chains * num_centers * lanes;

  internal::FillQueueingMask(*nets[0], &ws->qmul);
  LoadChainSoA(nets, lanes, num_chains, num_centers, ws);

  // Retained queue lengths: a lane resumes from its own qkm column exactly
  // when the caller asked for a warm start, the buffer still matches this
  // (shape, lane count), and the lane was not invalidated; otherwise that
  // lane re-inits to the scalar kernel's even-spread guess.
  const bool reusable =
      warm_start && ws->qkm.size() == kmw && ws->warm_lanes == lanes;
  if (!reusable) ws->qkm.assign(kmw, 0.0);
  ws->qkm_valid.resize(lanes, 0);
  for (std::size_t w = 0; w < lanes; ++w) {
    if (reusable && ws->qkm_valid[w]) continue;
    for (std::size_t k = 0; k < num_chains; ++k) {
      const Chain& chain = nets[w]->chains[k];
      std::size_t visited = 0;
      for (std::size_t m = 0; m < num_centers; ++m)
        if (chain.demands[m] > 0.0) ++visited;
      for (std::size_t m = 0; m < num_centers; ++m) {
        ws->qkm[(k * num_centers + m) * lanes + w] =
            (visited != 0 && chain.demands[m] > 0.0)
                ? static_cast<double>(chain.population) / visited
                : 0.0;
      }
    }
  }
  ws->warm_lanes = lanes;
  ws->qkm_valid.assign(lanes, 1);

  ws->x.assign(num_chains * lanes, 0.0);
  ws->residence.assign(kmw, 0.0);
  ws->qsum.resize(num_centers * lanes);
  ws->total.resize(lanes);
  ws->delta.resize(lanes);
  ws->active.assign(lanes, 1);
  ws->iterations.assign(lanes, 0);

  SchweitzerArgs a;
  a.num_chains = num_chains;
  a.num_centers = num_centers;
  a.lanes = lanes;
  a.qkm = ws->qkm.data();
  a.x = ws->x.data();
  a.res = ws->residence.data();
  a.qsum = ws->qsum.data();
  a.total = ws->total.data();
  a.delta = ws->delta.data();
  a.dem = ws->demands.data();
  a.think = ws->think.data();
  a.nk = ws->nk.data();
  a.invn = ws->invn.data();
  a.qmul = ws->qmul.data();
  a.active = ws->active.data();

  // Fixed-width instantiations for the lane counts the callers actually use
  // (the serving layer blocks to kMvaBatchLaneWidth); everything else runs
  // the runtime-width code. All instantiations are bit-identical — the width
  // only pins trip counts for the vectorizer.
  switch (lanes) {
    case kMvaBatchLaneWidth:
      SchweitzerIterate<kMvaBatchLaneWidth>(a, tolerance, max_iterations,
                                            ws->active.data(),
                                            ws->iterations.data());
      break;
    case 4:
      SchweitzerIterate<4>(a, tolerance, max_iterations, ws->active.data(),
                           ws->iterations.data());
      break;
    case 2:
      SchweitzerIterate<2>(a, tolerance, max_iterations, ws->active.data(),
                           ws->iterations.data());
      break;
    default:
      SchweitzerIterate<0>(a, tolerance, max_iterations, ws->active.data(),
                           ws->iterations.data());
      break;
  }

  ws->solutions.resize(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    FinishLane(*nets[w], lanes, w, num_chains, num_centers, ws);
  }
  return true;
}

bool ExactMvaBatchInPlace(const ClosedNetwork* const* nets, std::size_t lanes,
                          BatchMvaWorkspace* ws, std::size_t max_states,
                          std::string* error) {
  if (!CheckBatch(nets, lanes, error)) return false;
  const std::size_t num_chains = nets[0]->chains.size();
  const std::size_t num_centers = nets[0]->centers.size();
  for (std::size_t w = 1; w < lanes; ++w) {
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (nets[w]->chains[k].population != nets[0]->chains[k].population) {
        SetError(error, "exact batch lanes differ in chain populations");
        return false;
      }
    }
  }
  std::size_t num_states = 0;
  if (!JointLatticeStates(*nets[0], max_states, &num_states)) {
    SetError(error, "joint population lattice exceeds max_states");
    return false;
  }

  // Mixed-radix layout of the (shared) joint population lattice.
  ws->dims.resize(num_chains);
  ws->strides.resize(num_chains);
  {
    std::size_t stride = 1;
    for (std::size_t k = 0; k < num_chains; ++k) {
      ws->dims[k] =
          static_cast<std::size_t>(nets[0]->chains[k].population) + 1;
      ws->strides[k] = stride;
      stride *= ws->dims[k];
    }
  }
  internal::FillQueueingMask(*nets[0], &ws->qmul);
  LoadChainSoA(nets, lanes, num_chains, num_centers, ws);

  const std::size_t mw = num_centers * lanes;
  ws->q.assign(num_states * mw, 0.0);
  ws->n.assign(num_chains, 0);
  ws->x.assign(num_chains * lanes, 0.0);
  ws->residence.assign(num_chains * num_centers * lanes, 0.0);
  ws->total.resize(lanes);

  double* __restrict q = ws->q.data();
  double* __restrict x = ws->x.data();
  double* __restrict res = ws->residence.data();
  double* __restrict total = ws->total.data();
  const double* __restrict dem = ws->demands.data();
  const double* __restrict think = ws->think.data();
  const double* __restrict qmul = ws->qmul.data();
  std::size_t* __restrict n = ws->n.data();

  for (std::size_t state = 1; state < num_states; ++state) {
    // Increment the mixed-radix counter.
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (++n[k] < ws->dims[k]) break;
      n[k] = 0;
    }

#pragma omp simd
    for (std::size_t c = 0; c < num_chains * lanes; ++c) x[c] = 0.0;

    for (std::size_t k = 0; k < num_chains; ++k) {
      if (n[k] == 0) continue;
      const double* __restrict qprev = q + (state - ws->strides[k]) * mw;
      const double* __restrict zrow = think + k * lanes;
      const double pop = static_cast<double>(n[k]);
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) total[w] = 0.0;
      // Centers ascending, accumulating each lane's total sequentially in
      // the scalar kernel's order.
      for (std::size_t m = 0; m < num_centers; ++m) {
        const std::size_t e = (k * num_centers + m) * lanes;
        const double* __restrict drow = dem + e;
        const double* __restrict prow = qprev + m * lanes;
        double* __restrict rrow = res + e;
        const double qm = qmul[m];
#pragma omp simd
        for (std::size_t w = 0; w < lanes; ++w) {
          const double r = drow[w] * (1.0 + qm * prow[w]);
          rrow[w] = r;
          total[w] += r;
        }
      }
      double* __restrict xrow = x + k * lanes;
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) {
        const double denom = zrow[w] + total[w];
        // Chains with zero total demand and zero think contribute nothing.
        xrow[w] = denom > 0.0 ? pop / denom : 0.0;
      }
    }

    // Accumulate chain by chain (unit-stride over lanes) exactly like the
    // scalar kernel's chain-by-chain axpy.
    double* __restrict qhere = q + state * mw;
#pragma omp simd
    for (std::size_t s = 0; s < mw; ++s) qhere[s] = 0.0;
    for (std::size_t k = 0; k < num_chains; ++k) {
      if (n[k] == 0) continue;
      const double* __restrict xrow = x + k * lanes;
      for (std::size_t m = 0; m < num_centers; ++m) {
        const double* __restrict rrow = res + (k * num_centers + m) * lanes;
        double* __restrict hrow = qhere + m * lanes;
#pragma omp simd
        for (std::size_t w = 0; w < lanes; ++w) hrow[w] += xrow[w] * rrow[w];
      }
    }
  }

  // Recompute residence at the full population (mirrors the scalar kernel,
  // including the trivial empty-lattice case).
  if (num_states == 1) {
    for (std::size_t c = 0; c < num_chains * lanes; ++c) x[c] = 0.0;
    for (std::size_t e = 0; e < num_chains * num_centers * lanes; ++e)
      res[e] = 0.0;
  } else {
    const std::size_t full = num_states - 1;
    for (std::size_t k = 0; k < num_chains; ++k) {
      const int population = nets[0]->chains[k].population;
      double* __restrict xrow = x + k * lanes;
      if (population == 0) {
        for (std::size_t w = 0; w < lanes; ++w) xrow[w] = 0.0;
        for (std::size_t m = 0; m < num_centers; ++m) {
          double* __restrict rrow = res + (k * num_centers + m) * lanes;
          for (std::size_t w = 0; w < lanes; ++w) rrow[w] = 0.0;
        }
        continue;
      }
      const double* __restrict qprev = q + (full - ws->strides[k]) * mw;
      const double* __restrict zrow = think + k * lanes;
      const double pop = population;
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) total[w] = 0.0;
      for (std::size_t m = 0; m < num_centers; ++m) {
        const std::size_t e = (k * num_centers + m) * lanes;
        const double* __restrict drow = dem + e;
        const double* __restrict prow = qprev + m * lanes;
        double* __restrict rrow = res + e;
        const double qm = qmul[m];
#pragma omp simd
        for (std::size_t w = 0; w < lanes; ++w) {
          const double r = drow[w] * (1.0 + qm * prow[w]);
          rrow[w] = r;
          total[w] += r;
        }
      }
#pragma omp simd
      for (std::size_t w = 0; w < lanes; ++w) {
        const double denom = zrow[w] + total[w];
        xrow[w] = denom > 0.0 ? pop / denom : 0.0;
      }
    }
  }

  ws->solutions.resize(lanes);
  ws->iterations.assign(lanes, 0);
  for (std::size_t w = 0; w < lanes; ++w) {
    FinishLane(*nets[w], lanes, w, num_chains, num_centers, ws);
  }
  return true;
}

bool SolveMvaBatchInPlace(const ClosedNetwork* const* nets, std::size_t lanes,
                          BatchMvaWorkspace* ws,
                          std::size_t exact_state_limit, bool warm_start,
                          std::string* error) {
  if (lanes == 0) {
    SetError(error, "batch solve needs at least one lane");
    return false;
  }
  // Per-lane exact/Schweitzer decision, identical to SolveMvaInPlace's rule
  // so lane w's result matches a scalar solve of lane w's network bit for
  // bit regardless of which implementation runs below.
  bool all_exact = true, any_exact = false;
  for (std::size_t w = 0; w < lanes; ++w) {
    const bool exact = JointLatticeStates(*nets[w], exact_state_limit);
    all_exact = all_exact && exact;
    any_exact = any_exact || exact;
  }
  if (!any_exact) {
    return SchweitzerMvaBatchInPlace(nets, lanes, ws, /*tolerance=*/1e-9,
                                     /*max_iterations=*/10000, warm_start,
                                     error);
  }
  if (all_exact) {
    bool shared_lattice = true;
    for (std::size_t w = 1; w < lanes && shared_lattice; ++w) {
      if (nets[w]->chains.size() != nets[0]->chains.size()) {
        shared_lattice = false;
        break;
      }
      for (std::size_t k = 0; k < nets[0]->chains.size(); ++k) {
        if (nets[w]->chains[k].population != nets[0]->chains[k].population) {
          shared_lattice = false;
          break;
        }
      }
    }
    // The SoA lattice costs `states * centers * lanes` doubles; past this
    // cap the scalar walk per lane is the better trade (and keeps the batch
    // memory footprint bounded).
    constexpr std::size_t kExactBatchSoaDoubles = std::size_t{1} << 23;
    std::size_t states = 0;
    if (shared_lattice &&
        JointLatticeStates(*nets[0], exact_state_limit, &states) &&
        states * nets[0]->centers.size() <= kExactBatchSoaDoubles / lanes) {
      return ExactMvaBatchInPlace(nets, lanes, ws, exact_state_limit, error);
    }
  }
  // Mixed batch (or exact lanes without a shared lattice): scalar kernels
  // per lane. Bit-identity is free here; only the lockstep speedup is lost.
  // Warm Schweitzer state for this path lives in scalar_ws[w].qkm (cleared
  // by InvalidateWarm), matching the scalar solver's retained-workspace
  // semantics.
  if (ws->scalar_ws.size() < lanes) ws->scalar_ws.resize(lanes);
  ws->solutions.resize(lanes);
  ws->iterations.resize(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    if (!SolveMvaInPlace(*nets[w], &ws->scalar_ws[w], exact_state_limit,
                         warm_start, error)) {
      return false;
    }
    ws->solutions[w] = ws->scalar_ws[w].solution;
    ws->iterations[w] = ws->scalar_ws[w].iterations;
  }
  return true;
}

}  // namespace carat::qn
