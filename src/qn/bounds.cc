#include "qn/bounds.h"

#include <algorithm>

namespace carat::qn {

std::vector<ChainBounds> AsymptoticBounds(const ClosedNetwork& net) {
  std::vector<ChainBounds> bounds;
  bounds.reserve(net.chains.size());
  for (const Chain& chain : net.chains) {
    ChainBounds b;
    for (std::size_t m = 0; m < net.centers.size(); ++m) {
      const double d = chain.demands[m];
      b.total_demand += d;
      if (net.centers[m].kind == CenterKind::kQueueing) {
        b.bottleneck_demand = std::max(b.bottleneck_demand, d);
      }
    }
    const double n = chain.population;
    const double dz = b.total_demand + chain.think_time;
    if (n <= 0.0) {
      bounds.push_back(b);
      continue;
    }
    b.max_throughput = dz > 0.0 ? n / dz : 0.0;
    if (b.bottleneck_demand > 0.0) {
      b.max_throughput = std::min(b.max_throughput, 1.0 / b.bottleneck_demand);
    }
    b.min_response = std::max(b.total_demand,
                              n * b.bottleneck_demand - chain.think_time);
    bounds.push_back(b);
  }
  return bounds;
}

}  // namespace carat::qn
