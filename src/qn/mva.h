// Mean Value Analysis solvers for closed multi-chain product-form networks.
//
// ExactMva implements the multi-chain exact MVA recursion over the full joint
// population lattice (Reiser & Lavenberg). Its cost is
// O(M * prod_k (N_k + 1)); the CARAT site models have at most six chains with
// populations <= 4, so this is tiny. SchweitzerMva implements the
// Schweitzer-Bard fixed-point approximation for larger populations; the model
// solver falls back to it automatically above a state-count threshold.
//
// Two call styles are provided:
//  - the MvaResult-returning functions allocate a fresh Solution per call
//    (convenient for one-shot use and tests);
//  - the *InPlace functions write into a caller-owned MvaWorkspace and
//    perform zero heap allocation once the workspace has warmed up to the
//    network's shape. The model solver calls them ~500 times per fixed
//    point, so the hot path reuses one workspace per site.

#ifndef CARAT_QN_MVA_H_
#define CARAT_QN_MVA_H_

#include <cstddef>

#include "qn/network.h"

namespace carat::qn {

/// Result wrapper: `ok` is false when the network failed validation or the
/// solver could not proceed (e.g. state space too large for exact MVA).
struct MvaResult {
  bool ok = false;
  std::string error;
  Solution solution;
  /// Schweitzer-Bard fixed-point iterations performed (0 for exact MVA);
  /// exposes how much a warm start saved.
  int iterations = 0;
};

/// Reusable buffers for the in-place solvers. All vectors grow to the
/// largest network shape seen and are then reused; repeated solves of
/// same-shaped (or smaller) networks allocate nothing.
struct MvaWorkspace {
  /// Output of the most recent successful *InPlace solve.
  Solution solution;

  /// Schweitzer-Bard iterations of the most recent *InPlace solve (0 after
  /// an exact solve).
  int iterations = 0;

  /// Per-(chain, center) mean queue lengths from the last Schweitzer solve,
  /// flattened as `chain * num_centers + center`. Retained across calls so
  /// `warm_start = true` resumes the fixed point from the previous solution
  /// instead of the even-spread initial guess.
  std::vector<double> qkm;

  // Scratch: exact-MVA joint-population lattice, per-chain throughputs,
  // flattened per-(chain, center) residence times, the per-center queueing
  // multiplier mask (1.0 for queueing centers, 0.0 for delay centers, which
  // hoists the CenterKind branch out of the inner loops), per-center queue
  // totals, and the mixed-radix counters of the exact recursion.
  std::vector<double> q, x, residence, qmul, qsum;
  std::vector<std::size_t> dims, strides, n;
};

/// Number of points in the joint population lattice, prod_k (N_k + 1).
/// Returns false when the count would exceed `limit` (the product is never
/// materialized, so there is no overflow); on success stores the count in
/// `*states` when non-null. Shared by ExactMva and SolveMva.
bool JointLatticeStates(const ClosedNetwork& net, std::size_t limit,
                        std::size_t* states = nullptr);

/// Exact multi-chain MVA into `ws->solution`. Zero heap allocation when `ws`
/// is warm. Returns false (with `*error` set when non-null) on validation
/// failure or when the lattice exceeds `max_states`.
bool ExactMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                     std::size_t max_states = 1u << 22,
                     std::string* error = nullptr);

/// Schweitzer-Bard approximate MVA into `ws->solution`. With
/// `warm_start = true` and a `ws->qkm` of matching size, iteration starts
/// from the retained queue lengths (fast convergence across nearby parameter
/// points); otherwise from the even-spread guess.
bool SchweitzerMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                          double tolerance = 1e-9, int max_iterations = 10000,
                          bool warm_start = false, std::string* error = nullptr);

/// Exact if the lattice fits in `exact_state_limit` states, Schweitzer-Bard
/// (optionally warm-started) otherwise.
bool SolveMvaInPlace(const ClosedNetwork& net, MvaWorkspace* ws,
                     std::size_t exact_state_limit = 1u << 20,
                     bool warm_start = false, std::string* error = nullptr);

/// Exact multi-chain MVA.
/// `max_states` bounds the joint population lattice size; exceeding it fails
/// (callers may then use SchweitzerMva).
MvaResult ExactMva(const ClosedNetwork& net, std::size_t max_states = 1u << 22);

/// Schweitzer-Bard approximate MVA (fixed point on per-chain queue lengths).
/// `initial_qkm`, when non-null, seeds the iteration with per-(chain, center)
/// queue lengths flattened as `chain * num_centers + center` (size must be
/// chains x centers; mismatched sizes fall back to the default guess).
MvaResult SchweitzerMva(const ClosedNetwork& net, double tolerance = 1e-9,
                        int max_iterations = 10000,
                        const std::vector<double>* initial_qkm = nullptr);

/// Convenience: exact if the lattice fits in `exact_state_limit` states,
/// Schweitzer-Bard otherwise.
MvaResult SolveMva(const ClosedNetwork& net,
                   std::size_t exact_state_limit = 1u << 20);

namespace internal {

/// Precomputes the per-center queueing multiplier mask (1.0 at queueing
/// centers, 0.0 at delay centers) so the inner loops stay branch-free.
/// Shared by the scalar and batch (mva_batch.cc) kernels; templated on the
/// vector type because the batch workspace stores it in a cache-line-aligned
/// vector.
template <typename QmulVector>
void FillQueueingMask(const ClosedNetwork& net, QmulVector* qmul) {
  qmul->resize(net.centers.size());
  for (std::size_t m = 0; m < net.centers.size(); ++m) {
    (*qmul)[m] = net.centers[m].kind == CenterKind::kQueueing ? 1.0 : 0.0;
  }
}

/// Fills the non-queue-length parts of `sol` from per-chain throughputs and
/// flattened residence times (chain * num_centers + center) at the full
/// population. Shared by the scalar and batch kernels: running the *same*
/// compiled function per lane is what makes the derived Solution fields of a
/// batch solve bit-identical to the scalar path.
void FinishSolution(const ClosedNetwork& net, const std::vector<double>& x,
                    const std::vector<double>& residence, Solution* sol);

}  // namespace internal

}  // namespace carat::qn

#endif  // CARAT_QN_MVA_H_
