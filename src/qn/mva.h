// Mean Value Analysis solvers for closed multi-chain product-form networks.
//
// ExactMva implements the multi-chain exact MVA recursion over the full joint
// population lattice (Reiser & Lavenberg). Its cost is
// O(M * prod_k (N_k + 1)); the CARAT site models have at most six chains with
// populations <= 4, so this is tiny. SchweitzerMva implements the
// Schweitzer-Bard fixed-point approximation for larger populations; the model
// solver falls back to it automatically above a state-count threshold.

#ifndef CARAT_QN_MVA_H_
#define CARAT_QN_MVA_H_

#include <cstddef>

#include "qn/network.h"

namespace carat::qn {

/// Result wrapper: `ok` is false when the network failed validation or the
/// solver could not proceed (e.g. state space too large for exact MVA).
struct MvaResult {
  bool ok = false;
  std::string error;
  Solution solution;
};

/// Exact multi-chain MVA.
/// `max_states` bounds the joint population lattice size; exceeding it fails
/// (callers may then use SchweitzerMva).
MvaResult ExactMva(const ClosedNetwork& net, std::size_t max_states = 1u << 22);

/// Schweitzer-Bard approximate MVA (fixed point on per-chain queue lengths).
MvaResult SchweitzerMva(const ClosedNetwork& net, double tolerance = 1e-9,
                        int max_iterations = 10000);

/// Convenience: exact if the lattice fits in `exact_state_limit` states,
/// Schweitzer-Bard otherwise.
MvaResult SolveMva(const ClosedNetwork& net,
                   std::size_t exact_state_limit = 1u << 20);

}  // namespace carat::qn

#endif  // CARAT_QN_MVA_H_
