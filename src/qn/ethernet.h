// Communication Network Model: mean inter-site message delay.
//
// The paper's low-level model supplies the mean communication delay alpha to
// the site models; for an Ethernet under contention it cites the
// Almes-Lazowska model [ALME79]. For the two-node experiments the measured
// alpha was "relatively small and therefore could be neglected", so the CARAT
// solver defaults to alpha = 0, but the model below is provided for
// sensitivity studies and larger configurations.
//
// We use an M/G/1-style approximation in the Almes-Lazowska spirit: the
// effective service time of a frame is its transmission time plus the
// expected collision-resolution overhead (about (e - 1) slot times per
// successful acquisition under load), and queueing delay follows from the
// Pollaczek-Khinchine formula for deterministic service.

#ifndef CARAT_QN_ETHERNET_H_
#define CARAT_QN_ETHERNET_H_

namespace carat::qn {

/// Parameters of a CSMA/CD (Ethernet-like) channel.
struct EthernetParams {
  double bandwidth_bits_per_ms = 10e6 / 1000.0;  ///< 10 Mb/s in bits per ms
  double slot_time_ms = 0.0512;                  ///< 51.2 us contention slot
  double propagation_ms = 0.01;                  ///< end-to-end propagation
};

/// Mean delay (ms) experienced by a frame of `frame_bits` when the channel
/// carries `frames_per_ms` frames per millisecond in aggregate. Returns a
/// large-but-finite penalty when the channel saturates.
double EthernetMeanDelayMs(const EthernetParams& params, double frame_bits,
                           double frames_per_ms);

}  // namespace carat::qn

#endif  // CARAT_QN_ETHERNET_H_
