// Asymptotic (operational) bounds for closed queueing networks.
//
// The classic companion to MVA: without solving the network, each chain's
// throughput is bounded by its bottleneck demand and by the no-queueing
// optimum,
//     X_k(N) <= min( 1 / D_k,max , N_k / (D_k + Z_k) ),
// and its response time by R_k >= max(D_k, N_k * D_k,max - Z_k).
// The solver's exact results must respect these bounds (checked in tests),
// and capacity planning can use them for instant feasibility screens.

#ifndef CARAT_QN_BOUNDS_H_
#define CARAT_QN_BOUNDS_H_

#include <vector>

#include "qn/network.h"

namespace carat::qn {

/// Per-chain asymptotic bounds.
struct ChainBounds {
  double max_throughput = 0.0;   ///< min(1/D_max, N/(D+Z))
  double min_response = 0.0;     ///< max(D, N * D_max - Z)
  double bottleneck_demand = 0.0;///< D_max at queueing centers
  double total_demand = 0.0;     ///< D (all centers)
};

/// Computes bounds for every chain. Queueing centers bound the service
/// rate; delay centers only add to the total demand. The single-chain bound
/// is applied per chain with the other chains absent, so it is an upper
/// bound on each chain's throughput in the multi-chain network too.
std::vector<ChainBounds> AsymptoticBounds(const ClosedNetwork& net);

}  // namespace carat::qn

#endif  // CARAT_QN_BOUNDS_H_
