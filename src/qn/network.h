// Closed multi-chain queueing-network specification.
//
// The paper's Site Processing Model (Fig. 2) is a closed product-form (BCMP)
// network: two load-independent queueing centers (CPU, DISK) plus several
// infinite-server delay centers (LW, RW, CW, UT). Each transaction type at a
// site is a closed routing chain with a finite population. MVA needs only the
// per-chain total service demand at each center, so the spec below carries
// demands rather than visit counts and per-visit service times.

#ifndef CARAT_QN_NETWORK_H_
#define CARAT_QN_NETWORK_H_

#include <cstddef>
#include <string>
#include <vector>

namespace carat::qn {

/// Service discipline of a center, as far as MVA is concerned.
enum class CenterKind {
  kQueueing,  ///< load-independent queueing center (PS / FCFS-exponential)
  kDelay,     ///< infinite-server (pure delay) center
};

/// One service center in the network.
struct Center {
  std::string name;
  CenterKind kind = CenterKind::kQueueing;
};

/// One closed routing chain (customer class with fixed population).
struct Chain {
  std::string name;
  int population = 0;
  /// Think time spent outside the network between passes (the MVA "Z" term).
  double think_time = 0.0;
  /// Total service demand (visit count x per-visit service time) at each
  /// center, indexed like ClosedNetwork::centers.
  std::vector<double> demands;
};

/// A closed multi-chain queueing network.
struct ClosedNetwork {
  std::vector<Center> centers;
  std::vector<Chain> chains;

  /// Adds a center, returning its index.
  std::size_t AddCenter(std::string name, CenterKind kind);

  /// Adds a chain with all-zero demands, returning its index.
  std::size_t AddChain(std::string name, int population, double think_time = 0.0);

  /// Validates shape: every chain has one demand per center, demands are
  /// non-negative, populations are non-negative.
  bool Validate(std::string* error = nullptr) const;
};

/// Per-chain and per-center solution of a closed network.
struct Solution {
  /// Chain throughput (customers per unit time), indexed by chain.
  std::vector<double> throughput;
  /// Mean residence time per pass through the network (excludes think time),
  /// indexed by chain.
  std::vector<double> response_time;
  /// Mean total queue length (including in service) per center.
  std::vector<double> queue_length;
  /// Utilization per center: for queueing centers, fraction busy; for delay
  /// centers, mean number of customers present.
  std::vector<double> utilization;
  /// Per-chain, per-center residence time: residence[k][m].
  std::vector<std::vector<double>> residence;
};

}  // namespace carat::qn

#endif  // CARAT_QN_NETWORK_H_
