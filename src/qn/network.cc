#include "qn/network.h"

namespace carat::qn {

std::size_t ClosedNetwork::AddCenter(std::string name, CenterKind kind) {
  centers.push_back(Center{std::move(name), kind});
  for (Chain& chain : chains) chain.demands.resize(centers.size(), 0.0);
  return centers.size() - 1;
}

std::size_t ClosedNetwork::AddChain(std::string name, int population,
                                    double think_time) {
  Chain chain;
  chain.name = std::move(name);
  chain.population = population;
  chain.think_time = think_time;
  chain.demands.assign(centers.size(), 0.0);
  chains.push_back(std::move(chain));
  return chains.size() - 1;
}

bool ClosedNetwork::Validate(std::string* error) const {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  for (const Chain& chain : chains) {
    if (chain.population < 0) return fail("negative population");
    if (chain.think_time < 0) return fail("negative think time");
    if (chain.demands.size() != centers.size())
      return fail("demand vector size mismatch");
    for (double d : chain.demands)
      if (d < 0) return fail("negative demand");
  }
  return true;
}

}  // namespace carat::qn
