// Per-site lock managers behind one facade.
//
// CARAT keeps a lock table per site; the sharded kernel makes that structural:
// each site's LockManager lives on that site's timeline and is only touched by
// events executing there, so sharded runs never contend on lock state. Global
// deadlocks (cycles spanning sites) are the distributed detector's job
// (txn::ProbeDetector), whose probes travel between sites as cross-shard
// messages.

#ifndef CARAT_LOCK_LOCK_MANAGER_SET_H_
#define CARAT_LOCK_LOCK_MANAGER_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lock/lock_manager.h"
#include "sim/simulation.h"

namespace carat::lock {

class LockManagerSet {
 public:
  /// One LockManager per site of `kernel`, each on its own site's timeline.
  explicit LockManagerSet(sim::ShardedKernel& kernel);
  LockManagerSet(const LockManagerSet&) = delete;
  LockManagerSet& operator=(const LockManagerSet&) = delete;

  int num_sites() const { return static_cast<int>(sites_.size()); }
  LockManager& at(int site) { return *sites_[static_cast<std::size_t>(site)]; }
  const LockManager& at(int site) const {
    return *sites_[static_cast<std::size_t>(site)];
  }

  void set_victim_policy(VictimPolicy policy);
  void set_conflict_policy(ConflictPolicy policy);

  // --- aggregate statistics (sums over sites; not safe during RunUntil) ----
  std::uint64_t requests() const;
  std::uint64_t blocks() const;
  std::uint64_t local_deadlocks() const;
  std::uint64_t cancelled_waits() const;
  std::uint64_t conflict_aborts() const;
  std::size_t TotalHeld() const;
  void ResetStats();

 private:
  std::vector<std::unique_ptr<LockManager>> sites_;
};

}  // namespace carat::lock

#endif  // CARAT_LOCK_LOCK_MANAGER_SET_H_
