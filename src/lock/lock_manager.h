// Two-phase-locking lock manager with local deadlock detection.
//
// Matches the testbed: shared/exclusive locks at database-block (granule)
// granularity, FIFO wait queues, and local deadlock detection by cycle
// search over the transaction-wait-for graph, run when a request blocks.
// Waits are cancellable so that a transaction chosen as a (local or global)
// deadlock victim while queued resumes with LockOutcome::kAborted.
//
// Lock-table operations are pure bookkeeping (the testbed keeps the lock
// table in main memory); the LR-phase CPU cost is charged by the caller.

#ifndef CARAT_LOCK_LOCK_MANAGER_H_
#define CARAT_LOCK_LOCK_MANAGER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "sim/simulation.h"

namespace carat::lock {

using TxnId = std::uint64_t;

enum class LockMode { kShared, kExclusive };

enum class LockOutcome {
  kGranted,
  kAborted,  ///< chosen as deadlock victim (or cancelled by a global abort)
};

/// Which transaction dies when a local wait-for cycle is found.
enum class VictimPolicy {
  kRequester,  ///< the blocking requester (the testbed's behaviour)
  kYoungest,   ///< cycle member with the latest start time
  kOldest,     ///< cycle member with the earliest start time
};

/// What a request does when it cannot be granted immediately. kWait is the
/// 2PL behaviour (FIFO wait + local cycle detection); the other two resolve
/// the conflict on the spot, so no wait-for cycle can ever form and the
/// deadlock machinery (FindCycle, probes, watchdogs) never runs.
enum class ConflictPolicy {
  kWait,            ///< FIFO wait, local deadlock check (2PL)
  kAbortRequester,  ///< no-waiting: every conflict aborts the requester
  /// Wait-die: the requester waits only if it is older (smaller transaction
  /// id — ids are a globally consistent total order, unlike per-site birth
  /// times) than every transaction it would wait for; otherwise it dies.
  /// Every wait-for edge then points at a strictly younger transaction, so
  /// the global wait graph is acyclic by construction.
  kWaitDie,
};

class LockManager {
 public:
  explicit LockManager(sim::SitePort sim) : sim_(sim) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Registers a transaction (start time feeds age-based victim policies).
  void StartTxn(TxnId txn);

  /// Forgets a finished transaction. Its locks must already be released.
  void EndTxn(TxnId txn);

  struct AcquireAwaiter;

  /// co_await Acquire(...) returns a LockOutcome. kGranted means the lock is
  /// held until ReleaseAll; kAborted means the requester was chosen as a
  /// deadlock victim (no lock acquired) and must roll back.
  AcquireAwaiter Acquire(TxnId txn, db::GranuleId granule, LockMode mode);

  /// Releases every lock held by `txn` and grants eligible waiters.
  void ReleaseAll(TxnId txn);

  /// Cancels `txn`'s pending lock wait, resuming it with kAborted. Returns
  /// false if the transaction was not waiting.
  bool CancelWait(TxnId txn);

  /// True if `txn` is queued for some lock.
  bool IsWaiting(TxnId txn) const { return waiting_on_.contains(txn); }

  /// Transactions currently queued for some lock, in ascending id order so
  /// watchdog sweeps are deterministic regardless of hash-map layout.
  std::vector<TxnId> WaitingTxns() const;

  /// Transactions that `txn` currently waits for: conflicting holders plus
  /// conflicting earlier waiters on the same granule. Empty if not waiting.
  std::vector<TxnId> WaitingFor(TxnId txn) const;

  /// True if `txn` holds `granule` with at least `mode` strength.
  bool Holds(TxnId txn, db::GranuleId granule, LockMode mode) const;

  /// Number of locks held by `txn`.
  std::size_t HeldCount(TxnId txn) const;

  /// Total locks held across all transactions.
  std::size_t TotalHeld() const { return total_held_; }

  VictimPolicy victim_policy() const { return victim_policy_; }
  void set_victim_policy(VictimPolicy policy) { victim_policy_ = policy; }

  ConflictPolicy conflict_policy() const { return conflict_policy_; }
  void set_conflict_policy(ConflictPolicy policy) { conflict_policy_ = policy; }

  /// Invoked whenever a request blocks, after the local deadlock check ruled
  /// out a local cycle; used to launch global deadlock probes.
  std::function<void(TxnId waiter, const std::vector<TxnId>& holders)> on_block;

  /// Invoked when a blocked request leaves the wait queue (granted or
  /// cancelled); used to keep the distributed wait registry current.
  std::function<void(TxnId waiter)> on_unblock;

  // --- statistics -----------------------------------------------------------
  std::uint64_t requests() const { return requests_; }
  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t local_deadlocks() const { return local_deadlocks_; }
  std::uint64_t cancelled_waits() const { return cancelled_waits_; }
  /// Requests aborted by a restart-oriented conflict policy (no-waiting or
  /// wait-die); always 0 under ConflictPolicy::kWait.
  std::uint64_t conflict_aborts() const { return conflict_aborts_; }
  void ResetStats();

  struct AcquireAwaiter {
    LockManager& lm;
    TxnId txn;
    db::GranuleId granule;
    LockMode mode;
    LockOutcome outcome = LockOutcome::kGranted;

    bool await_ready();
    bool await_suspend(std::coroutine_handle<> h);
    LockOutcome await_resume() const { return outcome; }
  };

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    std::coroutine_handle<> handle;
    LockOutcome* outcome;
  };
  struct GranuleLock {
    std::vector<Holder> holders;
    std::deque<Waiter> queue;
  };

  // True if `txn` may be granted `mode` right now (ignoring queue fairness).
  bool CompatibleWithHolders(const GranuleLock& gl, TxnId txn,
                             LockMode mode) const;
  // Immediate-grant check including FIFO fairness and re-entrant holds.
  // Mutates the table on success.
  bool TryGrantNow(TxnId txn, db::GranuleId granule, LockMode mode);
  // Grants queued waiters that have become eligible (strict FIFO).
  void ProcessQueue(db::GranuleId granule);
  // Conflicting predecessors of a hypothetical/queued request.
  std::vector<TxnId> ConflictsOf(const GranuleLock& gl, TxnId txn,
                                 LockMode mode, std::size_t queue_limit) const;
  // DFS over the wait-for graph; returns the cycle through `start` (empty if
  // none), where `start` is about to wait for `first_hops`.
  std::vector<TxnId> FindCycle(TxnId start,
                               const std::vector<TxnId>& first_hops) const;
  TxnId ChooseVictim(TxnId requester, const std::vector<TxnId>& cycle) const;

  sim::SitePort sim_;
  VictimPolicy victim_policy_ = VictimPolicy::kRequester;
  ConflictPolicy conflict_policy_ = ConflictPolicy::kWait;
  std::unordered_map<db::GranuleId, GranuleLock> table_;
  std::unordered_map<TxnId, std::unordered_map<db::GranuleId, LockMode>> held_;
  std::unordered_map<TxnId, db::GranuleId> waiting_on_;
  std::unordered_map<TxnId, double> birth_;
  std::size_t total_held_ = 0;

  std::uint64_t requests_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t local_deadlocks_ = 0;
  std::uint64_t cancelled_waits_ = 0;
  std::uint64_t conflict_aborts_ = 0;
};

}  // namespace carat::lock

#endif  // CARAT_LOCK_LOCK_MANAGER_H_
