#include "lock/lock_manager_set.h"

namespace carat::lock {

LockManagerSet::LockManagerSet(sim::ShardedKernel& kernel) {
  sites_.reserve(static_cast<std::size_t>(kernel.num_sites()));
  for (int s = 0; s < kernel.num_sites(); ++s) {
    sites_.push_back(
        std::make_unique<LockManager>(sim::SitePort{&kernel, s}));
  }
}

void LockManagerSet::set_victim_policy(VictimPolicy policy) {
  for (auto& lm : sites_) lm->set_victim_policy(policy);
}

void LockManagerSet::set_conflict_policy(ConflictPolicy policy) {
  for (auto& lm : sites_) lm->set_conflict_policy(policy);
}

std::uint64_t LockManagerSet::requests() const {
  std::uint64_t total = 0;
  for (const auto& lm : sites_) total += lm->requests();
  return total;
}

std::uint64_t LockManagerSet::blocks() const {
  std::uint64_t total = 0;
  for (const auto& lm : sites_) total += lm->blocks();
  return total;
}

std::uint64_t LockManagerSet::local_deadlocks() const {
  std::uint64_t total = 0;
  for (const auto& lm : sites_) total += lm->local_deadlocks();
  return total;
}

std::uint64_t LockManagerSet::cancelled_waits() const {
  std::uint64_t total = 0;
  for (const auto& lm : sites_) total += lm->cancelled_waits();
  return total;
}

std::uint64_t LockManagerSet::conflict_aborts() const {
  std::uint64_t total = 0;
  for (const auto& lm : sites_) total += lm->conflict_aborts();
  return total;
}

std::size_t LockManagerSet::TotalHeld() const {
  std::size_t total = 0;
  for (const auto& lm : sites_) total += lm->TotalHeld();
  return total;
}

void LockManagerSet::ResetStats() {
  for (auto& lm : sites_) lm->ResetStats();
}

}  // namespace carat::lock
