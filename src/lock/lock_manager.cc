#include "lock/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace carat::lock {

namespace {

bool Conflicts(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

}  // namespace

void LockManager::StartTxn(TxnId txn) { birth_.emplace(txn, sim_.now()); }

void LockManager::EndTxn(TxnId txn) {
  assert(!held_.contains(txn) || held_.at(txn).empty());
  assert(!waiting_on_.contains(txn));
  held_.erase(txn);
  birth_.erase(txn);
}

bool LockManager::CompatibleWithHolders(const GranuleLock& gl, TxnId txn,
                                        LockMode mode) const {
  for (const Holder& h : gl.holders) {
    if (h.txn == txn) continue;  // own locks never conflict
    if (Conflicts(h.mode, mode)) return false;
  }
  return true;
}

bool LockManager::TryGrantNow(TxnId txn, db::GranuleId granule, LockMode mode) {
  GranuleLock& gl = table_[granule];
  const auto held_it = held_.find(txn);
  const bool already_holds =
      held_it != held_.end() && held_it->second.contains(granule);
  if (already_holds) {
    const LockMode held_mode = held_it->second.at(granule);
    if (held_mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return true;  // re-entrant, strong enough
    }
    // Upgrade S -> X: allowed immediately only as the sole holder.
    if (gl.holders.size() == 1 && CompatibleWithHolders(gl, txn, mode)) {
      for (Holder& h : gl.holders)
        if (h.txn == txn) h.mode = LockMode::kExclusive;
      held_[txn][granule] = LockMode::kExclusive;
      return true;
    }
    return false;
  }
  // FIFO fairness: new requests queue behind existing waiters.
  if (!gl.queue.empty()) return false;
  if (!CompatibleWithHolders(gl, txn, mode)) return false;
  gl.holders.push_back(Holder{txn, mode});
  held_[txn][granule] = mode;
  ++total_held_;
  return true;
}

std::vector<TxnId> LockManager::ConflictsOf(const GranuleLock& gl, TxnId txn,
                                            LockMode mode,
                                            std::size_t queue_limit) const {
  std::vector<TxnId> out;
  for (const Holder& h : gl.holders) {
    if (h.txn != txn && Conflicts(h.mode, mode)) out.push_back(h.txn);
  }
  for (std::size_t i = 0; i < queue_limit && i < gl.queue.size(); ++i) {
    const Waiter& w = gl.queue[i];
    if (w.txn != txn && Conflicts(w.mode, mode)) out.push_back(w.txn);
  }
  return out;
}

std::vector<TxnId> LockManager::WaitingFor(TxnId txn) const {
  const auto it = waiting_on_.find(txn);
  if (it == waiting_on_.end()) return {};
  const auto gl_it = table_.find(it->second);
  if (gl_it == table_.end()) return {};
  const GranuleLock& gl = gl_it->second;
  // Position of txn in the queue: it waits for holders and earlier waiters.
  std::size_t pos = 0;
  while (pos < gl.queue.size() && gl.queue[pos].txn != txn) ++pos;
  const LockMode mode =
      pos < gl.queue.size() ? gl.queue[pos].mode : LockMode::kExclusive;
  return ConflictsOf(gl, txn, mode, pos);
}

std::vector<TxnId> LockManager::FindCycle(
    TxnId start, const std::vector<TxnId>& first_hops) const {
  // Iterative DFS following wait-for edges; a path back to `start` is a
  // deadlock cycle. The graph is tiny (bounded by the multiprogramming
  // level), so no optimization is needed.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;

  struct Frame {
    std::vector<TxnId> targets;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{first_hops, 0});
  path.push_back(start);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.targets.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    const TxnId next = frame.targets[frame.next++];
    if (next == start) {
      return path;  // cycle: start -> ... -> back to start
    }
    if (!visited.insert(next).second) continue;
    path.push_back(next);
    stack.push_back(Frame{WaitingFor(next), 0});
  }
  return {};
}

TxnId LockManager::ChooseVictim(TxnId requester,
                                const std::vector<TxnId>& cycle) const {
  if (victim_policy_ == VictimPolicy::kRequester) return requester;
  // Age-based policies may only pick members that are actually waiting (the
  // requester counts: it is about to wait).
  TxnId victim = requester;
  double victim_birth = birth_.contains(requester) ? birth_.at(requester) : 0;
  for (TxnId t : cycle) {
    if (t != requester && !waiting_on_.contains(t)) continue;
    const double b = birth_.contains(t) ? birth_.at(t) : 0;
    const bool better = victim_policy_ == VictimPolicy::kYoungest
                            ? b > victim_birth
                            : b < victim_birth;
    if (better) {
      victim = t;
      victim_birth = b;
    }
  }
  return victim;
}

LockManager::AcquireAwaiter LockManager::Acquire(TxnId txn,
                                                 db::GranuleId granule,
                                                 LockMode mode) {
  return AcquireAwaiter{*this, txn, granule, mode};
}

bool LockManager::AcquireAwaiter::await_ready() {
  ++lm.requests_;
  return lm.TryGrantNow(txn, granule, mode);
}

bool LockManager::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) {
  LockManager& m = lm;
  ++m.blocks_;
  GranuleLock& gl = m.table_[granule];

  if (m.conflict_policy_ == ConflictPolicy::kAbortRequester) {
    // No-waiting: a conflict aborts the requester on the spot. Nothing is
    // ever enqueued, so the wait-for graph stays empty.
    ++m.conflict_aborts_;
    outcome = LockOutcome::kAborted;
    return false;
  }
  if (m.conflict_policy_ == ConflictPolicy::kWaitDie) {
    // Wait-die: wait only when older (smaller id) than every conflicting
    // holder and queued predecessor; otherwise die. The set a waiter
    // depends on never grows while it is queued (new requests join behind
    // it), so this enqueue-time check covers the wait's whole lifetime.
    for (const TxnId other :
         m.ConflictsOf(gl, txn, mode, gl.queue.size())) {
      if (other < txn) {
        ++m.conflict_aborts_;
        outcome = LockOutcome::kAborted;
        return false;
      }
    }
    gl.queue.push_back(Waiter{txn, mode, h, &outcome});
    m.waiting_on_[txn] = granule;
    m.ProcessQueue(granule);
    return true;
  }

  // Local deadlock check before enqueuing: would this wait close a cycle?
  const std::vector<TxnId> hops = m.ConflictsOf(gl, txn, mode, gl.queue.size());
  const std::vector<TxnId> cycle = m.FindCycle(txn, hops);
  if (!cycle.empty()) {
    ++m.local_deadlocks_;
    const TxnId victim = m.ChooseVictim(txn, cycle);
    if (victim == txn) {
      outcome = LockOutcome::kAborted;
      return false;  // resume immediately, aborted
    }
    // Kill another waiting cycle member, then wait normally below.
    m.CancelWait(victim);
  }

  gl.queue.push_back(Waiter{txn, mode, h, &outcome});
  m.waiting_on_[txn] = granule;
  if (m.on_block) m.on_block(txn, m.WaitingFor(txn));
  // The cancelled victim (if any) may already have unblocked this granule.
  m.ProcessQueue(granule);
  return true;
}

void LockManager::ProcessQueue(db::GranuleId granule) {
  auto it = table_.find(granule);
  if (it == table_.end()) return;
  GranuleLock& gl = it->second;
  // Strict FIFO: grant from the front while the head is compatible.
  while (!gl.queue.empty()) {
    Waiter& w = gl.queue.front();
    if (!CompatibleWithHolders(gl, w.txn, w.mode)) break;
    // Upgrade case: already a holder of this granule.
    auto& held = held_[w.txn];
    const auto held_it = held.find(granule);
    if (held_it != held.end()) {
      held_it->second = LockMode::kExclusive;
      for (Holder& h : gl.holders)
        if (h.txn == w.txn) h.mode = LockMode::kExclusive;
    } else {
      gl.holders.push_back(Holder{w.txn, w.mode});
      held[granule] = w.mode;
      ++total_held_;
    }
    *w.outcome = LockOutcome::kGranted;
    const TxnId granted = w.txn;
    waiting_on_.erase(granted);
    sim_.Schedule(0.0, w.handle);
    gl.queue.pop_front();
    if (on_unblock) on_unblock(granted);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  assert(!waiting_on_.contains(txn) && "release while waiting");
  const auto it = held_.find(txn);
  if (it == held_.end()) return;
  std::vector<db::GranuleId> granules;
  granules.reserve(it->second.size());
  for (const auto& [granule, mode] : it->second) granules.push_back(granule);
  it->second.clear();
  for (db::GranuleId granule : granules) {
    GranuleLock& gl = table_[granule];
    for (auto h = gl.holders.begin(); h != gl.holders.end(); ++h) {
      if (h->txn == txn) {
        gl.holders.erase(h);
        --total_held_;
        break;
      }
    }
    ProcessQueue(granule);
    if (gl.holders.empty() && gl.queue.empty()) table_.erase(granule);
  }
}

bool LockManager::CancelWait(TxnId txn) {
  const auto it = waiting_on_.find(txn);
  if (it == waiting_on_.end()) return false;
  const db::GranuleId granule = it->second;
  GranuleLock& gl = table_[granule];
  for (auto w = gl.queue.begin(); w != gl.queue.end(); ++w) {
    if (w->txn != txn) continue;
    *w->outcome = LockOutcome::kAborted;
    const std::coroutine_handle<> handle = w->handle;
    gl.queue.erase(w);
    waiting_on_.erase(txn);
    ++cancelled_waits_;
    sim_.Schedule(0.0, handle);
    if (on_unblock) on_unblock(txn);
    // Removing a queued conflict may unblock the remaining head.
    ProcessQueue(granule);
    return true;
  }
  assert(false && "waiting_on_ out of sync with queue");
  return false;
}

std::vector<TxnId> LockManager::WaitingTxns() const {
  std::vector<TxnId> out;
  out.reserve(waiting_on_.size());
  for (const auto& [txn, granule] : waiting_on_) out.push_back(txn);
  std::sort(out.begin(), out.end());
  return out;
}

bool LockManager::Holds(TxnId txn, db::GranuleId granule, LockMode mode) const {
  const auto it = held_.find(txn);
  if (it == held_.end()) return false;
  const auto g = it->second.find(granule);
  if (g == it->second.end()) return false;
  return mode == LockMode::kShared || g->second == LockMode::kExclusive;
}

std::size_t LockManager::HeldCount(TxnId txn) const {
  const auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

void LockManager::ResetStats() {
  requests_ = 0;
  blocks_ = 0;
  local_deadlocks_ = 0;
  cancelled_waits_ = 0;
  conflict_aborts_ = 0;
}

}  // namespace carat::lock
