// The fuzz loop: generate -> check -> (minimize, record) and the repro-file
// plumbing shared by tools/carat_fuzz, the ctest fuzz tier and the nightly
// workflow.

#ifndef CARAT_FUZZ_FUZZER_H_
#define CARAT_FUZZ_FUZZER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/relations.h"
#include "fuzz/scenario.h"

namespace carat::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int num_scenarios = 1000;
  /// Every Nth scenario also runs the testbed-backed rules (shard identity,
  /// model-vs-testbed, the testbed half of granule invariance). 0 = never.
  int testbed_every = 0;
  /// Stop generating after this many wall-clock seconds (0 = no budget).
  /// Scenarios already started always finish, so runs stay replayable: a
  /// finding's scenario is fully determined by (seed, index).
  double time_budget_s = 0.0;
  /// Directory for minimized repro files ("" = keep findings in memory
  /// only). Created by the caller; files are named
  /// <rule>-<scenario-name>.scn.
  std::string findings_dir;
  bool minimize = true;
  GeneratorOptions gen;
  CheckOptions check;
  MinimizeOptions min;
};

struct FuzzReport {
  int scenarios = 0;
  int testbed_scenarios = 0;
  CheckStats stats;
  /// Violations with minimized scenarios (when minimize is on).
  std::vector<Violation> violations;
  /// Repro files written (parallel to `violations` when findings_dir set).
  std::vector<std::string> finding_files;
};

/// Runs the loop. `log`, when non-null, receives one progress line roughly
/// every 500 scenarios and one line per violation.
FuzzReport RunFuzz(const FuzzOptions& opts, std::ostream* log = nullptr);

/// Re-runs every rule on one scenario (the --replay mode): testbed rules
/// included iff copts.with_testbed.
std::vector<Violation> ReplayScenario(const Scenario& s,
                                      const CheckOptions& copts,
                                      CheckStats* stats = nullptr);

/// Scenario file I/O (the canonical serialization plus a comment header for
/// findings).
bool LoadScenarioFile(const std::string& path, Scenario* out,
                      std::string* error);
bool WriteScenarioFile(const std::string& path, const Scenario& s,
                       const std::string& comment_header = "");

/// Writes one minimized finding under `dir`; returns the path ("" on I/O
/// failure).
std::string WriteFinding(const std::string& dir, const Violation& v);

}  // namespace carat::fuzz

#endif  // CARAT_FUZZ_FUZZER_H_
