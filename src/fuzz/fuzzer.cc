#include "fuzz/fuzzer.h"

#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/random.h"

namespace carat::fuzz {

namespace {

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? "scenario" : out;
}

}  // namespace

FuzzReport RunFuzz(const FuzzOptions& opts, std::ostream* log) {
  FuzzReport report;
  util::Rng rng(opts.seed);
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  for (int index = 0; index < opts.num_scenarios; ++index) {
    if (opts.time_budget_s > 0 && elapsed_s() > opts.time_budget_s) {
      if (log != nullptr)
        *log << "time budget exhausted after " << report.scenarios
             << " scenarios\n";
      break;
    }
    Scenario s = GenerateScenario(&rng, opts.gen);
    s.name = "s" + std::to_string(opts.seed) + "-" + std::to_string(index);

    CheckOptions check = opts.check;
    check.with_testbed =
        opts.testbed_every > 0 && index % opts.testbed_every == 0;
    if (check.with_testbed) ++report.testbed_scenarios;
    ++report.scenarios;

    std::vector<Violation> violations =
        CheckScenario(s, check, &report.stats);
    for (Violation& v : violations) {
      if (log != nullptr)
        *log << "VIOLATION " << RuleName(v.rule) << " on " << s.name << ": "
             << v.detail << "\n";
      if (opts.minimize) {
        v.scenario = MinimizeScenario(v.scenario, v.rule, check, opts.min);
        // Re-derive the detail for the minimized form (it may differ).
        std::string detail;
        if (!CheckRule(v.scenario, v.rule, check, &detail)) v.detail = detail;
        if (log != nullptr)
          *log << "  minimized to " << v.scenario.input.sites.size()
               << " site(s): " << v.detail << "\n";
      }
      if (!opts.findings_dir.empty()) {
        const std::string path = WriteFinding(opts.findings_dir, v);
        if (!path.empty()) report.finding_files.push_back(path);
        if (log != nullptr) *log << "  wrote " << path << "\n";
      }
      report.violations.push_back(std::move(v));
    }
    if (log != nullptr && (index + 1) % 500 == 0) {
      *log << (index + 1) << " scenarios, " << report.stats.checked
           << " checks, " << report.violations.size() << " violations\n";
    }
  }
  return report;
}

std::vector<Violation> ReplayScenario(const Scenario& s,
                                      const CheckOptions& copts,
                                      CheckStats* stats) {
  return CheckScenario(s, copts, stats);
}

bool LoadScenarioFile(const std::string& path, Scenario* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!Parse(buf.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool WriteScenarioFile(const std::string& path, const Scenario& s,
                       const std::string& comment_header) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  if (!comment_header.empty()) {
    std::istringstream lines(comment_header);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << "\n";
  }
  out << Serialize(s);
  return static_cast<bool>(out);
}

std::string WriteFinding(const std::string& dir, const Violation& v) {
  const std::string path = dir + "/" + RuleName(v.rule) + "-" +
                           SanitizeForFilename(v.scenario.name) + ".scn";
  std::ostringstream header;
  header << "carat_fuzz finding\n"
         << "rule: " << RuleName(v.rule) << "\n"
         << "detail: " << v.detail << "\n"
         << "replay: carat_fuzz --replay <this file> --testbed\n";
  if (!WriteScenarioFile(path, v.scenario, header.str())) return "";
  return path;
}

}  // namespace carat::fuzz
