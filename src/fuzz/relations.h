// The metamorphic relation catalogue and differential oracles.
//
// Each rule takes a scenario, derives a transformed variant (or an alternate
// execution path), and asserts a provable relation between the outputs.
// DESIGN.md §13 carries the proof sketches; the tolerance each rule uses is
// stated next to its enum value and falls into four policy classes:
//
//   A  bit-exact        alternate code paths contracted to byte identity
//                       (batch lanes, shards, serving, pow-of-two scaling)
//   B  analytic FP      same math, different rounding order (permutation,
//                       chain split); tight relative tolerances
//   C  approximation    exact MVA vs Schweitzer-Bard; wide documented bound
//   D  statistical      model vs simulation; tolerance widened by the run's
//                       confidence interval
//
// All rules are deterministic: a scenario either passes or fails a rule
// identically on every run and platform (modulo libm for class B).

#ifndef CARAT_FUZZ_RELATIONS_H_
#define CARAT_FUZZ_RELATIONS_H_

#include <array>
#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "model/solver.h"

namespace carat::fuzz {

enum class Rule : int {
  /// B: rotating the site labels permutes the solution (rel 1e-7).
  kSitePermutation = 0,
  /// B: splitting a qn chain into two identical half-population chains
  /// preserves aggregate throughput and all per-center measures (rel 1e-9,
  /// exact MVA on the scenario's site networks).
  kChainSplit,
  /// A: scaling a qn network's demands and think times by a power of two
  /// scales throughputs by its inverse, bit-exactly (exact + Schweitzer).
  kQnDemandScaling,
  /// B: scaling every time-dimension model input by k=2 maps the solution
  /// (X/2, R*2, probabilities unchanged); rel 1e-12.
  kModelDemandScaling,
  /// A: scaling num_granules and locks_held jointly by a power of two leaves
  /// every lock-submodel output bit-identical (Pb depends only on the
  /// mass-to-granule ratio).
  kLockMassScaling,
  /// B (+A on the testbed): for read-only, uniform-access workloads with
  /// records_per_granule = 1 and no buffer, the granule count is inert:
  /// Pb = 0 exactly and the solution is invariant; the testbed run is
  /// bit-identical with zero lock blocks. (Skew is excluded because the hot
  /// region is a granule-count-dependent number of blocks.)
  kGranuleInvariance,
  /// A: SolveBatchInto lane w is byte-identical to a scalar solve of lane
  /// w's input.
  kBatchLaneIdentity,
  /// A: the sharded testbed kernel is byte-identical to serial at any shard
  /// count.
  kShardIdentity,
  /// A: SolverService with cache and warm starts off returns byte-identical
  /// solutions to bare CaratModel::Solve, through Submit and SubmitBatch.
  kServeIdentity,
  /// C: exact MVA and Schweitzer-Bard agree on throughputs within the
  /// documented approximation bound.
  kExactVsSchweitzer,
  /// D: the analytical model tracks the testbed within tolerance + CI.
  kModelVsTestbed,
  /// A: replicating one site class K times yields bit-identical per-site
  /// solutions within the class, the original sites' solutions unchanged up
  /// to the coupling multiplicities, and the collapsed (hierarchical) solve
  /// bit-identical to the flat solve of the replicated input.
  kClassReplication,
  /// A: on read-only scenarios (Pb = 0 exactly) every cc backend's solve is
  /// bit-identical in throughput, response and abort chain — the backends
  /// differ only in what a conflict costs, and there are none.
  kBackendAgreement,
  /// A (+ count comparison): the queue backend's testbed run records zero
  /// aborts and zero deadlock victims on any scenario, and commits at least
  /// as many transactions as 2PL when 2PL is thrashing (more deadlock
  /// victims than commits).
  kBackendDominance,
  /// A: the sharded testbed kernel is byte-identical to serial for a
  /// non-2PL backend variant of the scenario (the backend is drawn from the
  /// testbed seed; kShardIdentity covers the scenario's own backend).
  kBackendShardIdentity,
};

inline constexpr int kNumRules = 15;
inline constexpr std::array<Rule, kNumRules> kAllRules = {
    Rule::kSitePermutation, Rule::kChainSplit,       Rule::kQnDemandScaling,
    Rule::kModelDemandScaling, Rule::kLockMassScaling, Rule::kGranuleInvariance,
    Rule::kBatchLaneIdentity, Rule::kShardIdentity,  Rule::kServeIdentity,
    Rule::kExactVsSchweitzer, Rule::kModelVsTestbed, Rule::kClassReplication,
    Rule::kBackendAgreement, Rule::kBackendDominance,
    Rule::kBackendShardIdentity,
};

const char* RuleName(Rule r);

/// True for rules that run the discrete-event testbed (seconds per scenario
/// instead of milliseconds; the fuzz loop samples them).
bool RuleNeedsTestbed(Rule r);

struct CheckOptions {
  /// Evaluate the testbed-backed rules (kShardIdentity, kModelVsTestbed and
  /// the testbed half of kGranuleInvariance).
  bool with_testbed = false;
  /// Evaluate kServeIdentity (spins up a SolverService with worker threads).
  bool with_serve = true;
  /// Solver options shared by every model-level oracle. Defaults: exact MVA,
  /// serial (pool = nullptr), tolerance 1e-9.
  model::SolverOptions solver;

  // Tolerances (policy classes B/C/D; class A rules take none).
  double permutation_rel = 1e-7;
  double chain_split_rel = 1e-9;
  double model_scaling_rel = 1e-12;
  /// With one record per granule nlk == accesses in real arithmetic, but the
  /// solver computes it through the lgamma-based Yao formula, whose rounding
  /// depends on the granule count (~1e-12 relative). The lock/MVA fixed
  /// point amplifies that, and its 1e-9 stopping criterion means two
  /// nearby-input solutions only agree to ~tol/contraction-gap: observed up
  /// to ~3e-6 on slowly-converging scenarios.
  double granule_rel = 1e-5;
  double schweitzer_rel = 0.3;      ///< exact vs Schweitzer throughput
  double testbed_rel = 0.35;        ///< model vs testbed, before CI widening
  /// z-score for the testbed CI widening: tolerance + z / sqrt(commits).
  double testbed_ci_z = 3.0;
  /// Sites with fewer measured commits than this are too noisy to judge.
  std::uint64_t testbed_min_commits = 50;
};

/// One relation violation: the rule, the base scenario that triggers it and
/// a human-readable account of the mismatch.
struct Violation {
  Rule rule;
  std::string detail;
  Scenario scenario;
};

/// Per-run accounting: how many rule instances ran and how many were skipped
/// as inapplicable (relation's precondition unmet) or unconverged.
struct CheckStats {
  long long checked = 0;
  long long skipped = 0;
  std::array<long long, kNumRules> per_rule_checked{};
  std::array<long long, kNumRules> per_rule_violations{};

  void Merge(const CheckStats& other);
};

/// Evaluates one rule. Returns true when the relation HOLDS or is
/// inapplicable; false on violation, with *detail set. `applicable`, when
/// non-null, reports whether the rule actually ran.
bool CheckRule(const Scenario& s, Rule rule, const CheckOptions& opts,
               std::string* detail = nullptr, bool* applicable = nullptr);

/// Runs every applicable rule (testbed rules only when opts.with_testbed)
/// and returns the violations.
std::vector<Violation> CheckScenario(const Scenario& s,
                                     const CheckOptions& opts,
                                     CheckStats* stats = nullptr);

}  // namespace carat::fuzz

#endif  // CARAT_FUZZ_RELATIONS_H_
