// Delta-debugging shrinker for relation violations.
//
// Given a scenario that violates a rule, MinimizeScenario greedily applies
// structure-shrinking moves (drop a site, drop a class, halve populations
// and request counts, zero optional features, round costs) and keeps each
// move only if the shrunk scenario still violates the same rule. Every
// candidate is revalidated (ModelInput::Validate) before evaluation, with
// slave/coordinator consistency repaired after site and class removals, so
// the minimizer never leaves the valid-scenario space the generator draws
// from. The result is the scenario written to docs/findings/.

#ifndef CARAT_FUZZ_MINIMIZE_H_
#define CARAT_FUZZ_MINIMIZE_H_

#include "fuzz/relations.h"
#include "fuzz/scenario.h"

namespace carat::fuzz {

struct MinimizeOptions {
  /// Upper bound on rule evaluations (each one or two model solves, plus
  /// testbed runs for testbed-backed rules).
  int max_evals = 300;
};

/// Shrinks `start` (which must violate `rule` under `opts`) while the
/// violation persists. Returns the smallest violating scenario found;
/// `evals_used`, when non-null, reports how many rule evaluations ran.
Scenario MinimizeScenario(const Scenario& start, Rule rule,
                          const CheckOptions& opts,
                          const MinimizeOptions& mopts = {},
                          int* evals_used = nullptr);

}  // namespace carat::fuzz

#endif  // CARAT_FUZZ_MINIMIZE_H_
