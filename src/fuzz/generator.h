// Seeded random scenario generation.
//
// GenerateScenario draws one valid CARAT configuration from a util::Rng. The
// distribution is tuned for oracle coverage, not realism: contention tiers
// span lock-thrashing to contention-free, populations stay small enough that
// every site solves by exact MVA (so the exact-vs-Schweitzer differential is
// always available), and special regimes the metamorphic rules need
// (read-only workloads, records_per_granule = 1, single-site, think time,
// skew, buffer) each get fixed probability mass. Everything is derived from
// the Rng stream alone — same seed, same scenario, on every platform.

#ifndef CARAT_FUZZ_GENERATOR_H_
#define CARAT_FUZZ_GENERATOR_H_

#include "fuzz/scenario.h"
#include "util/random.h"

namespace carat::fuzz {

struct GeneratorOptions {
  int min_sites = 1;
  int max_sites = 3;
  /// Per-class user population bound. Slave-chain populations are derived
  /// from the other sites' distributed users and capped at
  /// 2 * max_population, so per-site load stays bounded as the site count
  /// grows (the cap is exactly the legacy maximum at the default
  /// max_sites = 3, so default-option draws are unchanged).
  int max_population = 3;
  /// When > 0, large-N class mode: the drawn sites are grouped into at most
  /// this many distinct site classes (templates) and each class is
  /// replicated to fill the drawn site count — members are identical except
  /// for their name, so the solver's class detection recovers the partition.
  /// 0 keeps the legacy behaviour (every site drawn independently).
  int site_classes = 0;
  int max_requests_per_txn = 12;
  bool allow_distributed = true;
  bool allow_update = true;   ///< false forces read-only workloads
  bool allow_skew = true;
  bool allow_buffer = true;
  bool allow_think = true;
  bool allow_comm_delay = true;
  /// Half the draws keep the default 2PL backend; the rest sample the other
  /// cc backends uniformly. The backend is the final Rng draw, so disabling
  /// it reproduces the pre-backend stream exactly.
  bool allow_cc_backends = true;
};

/// Draws one scenario. The result always passes ModelInput::Validate and has
/// at least one user class with population > 0.
Scenario GenerateScenario(util::Rng* rng, const GeneratorOptions& opts = {});

}  // namespace carat::fuzz

#endif  // CARAT_FUZZ_GENERATOR_H_
