// A fuzz scenario: one complete CARAT configuration (model::ModelInput plus
// the testbed run parameters) with a canonical text serialization.
//
// The serialization is the repro-file format under docs/findings/ and the
// corpus format under tests/corpus/: line-oriented key/value pairs, doubles
// rendered as C hex-float literals (lossless round trip, no decimal rounding)
// with a human-readable decimal comment appended. Serialize(Parse(text))
// reproduces `text` byte for byte for any file Serialize emitted, and the
// parsed scenario solves bit-identically to the original (only classes with
// population > 0 are emitted; the solver and testbed never read the others).

#ifndef CARAT_FUZZ_SCENARIO_H_
#define CARAT_FUZZ_SCENARIO_H_

#include <cstdint>
#include <string>

#include "model/params.h"
#include "model/solver.h"

namespace carat::fuzz {

struct Scenario {
  /// Identifier carried through findings ("s<seed>-<index>" for generated
  /// scenarios, the file stem for corpus entries). No whitespace.
  std::string name = "scenario";

  /// Testbed run parameters. The windows are deliberately shorter than the
  /// validation suite's: the fuzzer trades per-scenario precision for
  /// scenario count, and the model-vs-testbed oracle widens its tolerance
  /// by the resulting confidence interval.
  std::uint64_t testbed_seed = 1;
  double warmup_ms = 20'000;
  double measure_ms = 200'000;

  model::ModelInput input;
};

/// Lossless double formatting: C hex-float literal (strtod round-trips the
/// exact bits; "nan"/"inf" never appear because inputs are validated finite).
std::string FormatHexDouble(double v);

/// Parses a double from FormatHexDouble output (also accepts plain decimal
/// literals, for hand-written corpus files). Returns false on garbage.
bool ParseHexDouble(const std::string& token, double* out);

/// Canonical text form. Starts with "carat-scenario v1", ends with "end".
std::string Serialize(const Scenario& s);

/// Parses Serialize output (or a hand-edited variant: blank lines and
/// '#'-comments are ignored, keys may appear in any order within their
/// section). On failure returns false and sets *error to "line N: why".
bool Parse(const std::string& text, Scenario* out, std::string* error = nullptr);

/// Bit-exact digest of a ModelSolution (doubles as hex bit patterns), the
/// solver-side counterpart of carat::TestbedResultFingerprint. Equal
/// fingerprints iff byte-identical solutions; the batch-lane and serving
/// identity oracles compare these.
std::string ModelSolutionFingerprint(const model::ModelSolution& s);

}  // namespace carat::fuzz

#endif  // CARAT_FUZZ_SCENARIO_H_
