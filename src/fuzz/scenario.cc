#include "fuzz/scenario.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "cc/cc.h"

namespace carat::fuzz {

namespace {

using model::ClassParams;
using model::SiteParams;
using model::TxnType;

bool ParseTxnType(const std::string& name, TxnType* out) {
  for (TxnType t : model::kAllTxnTypes) {
    if (name == model::Name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

void AppendDouble(std::string* out, const char* key, double v) {
  char buf[96];
  // Hex-float for the parser, shortest decimal as a comment for the human.
  std::snprintf(buf, sizeof(buf), "%s %a # %.12g\n", key, v, v);
  *out += buf;
}

void AppendInt(std::string* out, const char* key, long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %lld\n", key, v);
  *out += buf;
}

void AppendU64(std::string* out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", key, v);
  *out += buf;
}

// --- fingerprint helpers (same rendering as TestbedResultFingerprint) ------

void AppendBitsF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 " ", bits);
  *out += buf;
}

void AppendHexU64(std::string* out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 " ", v);
  *out += buf;
}

}  // namespace

std::string FormatHexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool ParseHexDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

std::string Serialize(const Scenario& s) {
  std::string out;
  out += "carat-scenario v1\n";
  out += "name " + s.name + "\n";
  AppendU64(&out, "testbed_seed", s.testbed_seed);
  AppendDouble(&out, "warmup_ms", s.warmup_ms);
  AppendDouble(&out, "measure_ms", s.measure_ms);
  AppendDouble(&out, "comm_delay_ms", s.input.comm_delay_ms);
  // Only non-default backends are emitted, so pre-backend corpus files
  // still round-trip byte for byte.
  if (s.input.cc_backend != cc::BackendKind::k2PL) {
    out += "cc ";
    out += cc::Name(s.input.cc_backend);
    out += '\n';
  }
  if (s.input.restart_backoff_ms != cc::kRestartBackoffMeanMs)
    AppendDouble(&out, "restart_backoff_ms", s.input.restart_backoff_ms);
  AppendInt(&out, "sites", static_cast<long long>(s.input.sites.size()));
  for (std::size_t i = 0; i < s.input.sites.size(); ++i) {
    const SiteParams& site = s.input.sites[i];
    out += "site " + std::to_string(i) + " " + site.name + "\n";
    AppendInt(&out, "num_granules", site.num_granules);
    AppendInt(&out, "records_per_granule", site.records_per_granule);
    AppendDouble(&out, "block_io_ms", site.block_io_ms);
    AppendInt(&out, "separate_log_disk", site.separate_log_disk ? 1 : 0);
    AppendDouble(&out, "think_time_ms", site.think_time_ms);
    AppendDouble(&out, "hot_data_fraction", site.hot_data_fraction);
    AppendDouble(&out, "hot_access_fraction", site.hot_access_fraction);
    AppendInt(&out, "buffer_blocks", site.buffer_blocks);
    AppendInt(&out, "dm_pool_size", site.dm_pool_size);
    for (TxnType t : model::kAllTxnTypes) {
      const ClassParams& c = site.Class(t);
      if (c.population == 0) continue;  // never read by solver or testbed
      out += "class ";
      out += model::Name(t);
      out += '\n';
      AppendInt(&out, "population", c.population);
      AppendInt(&out, "local_requests", c.local_requests);
      AppendInt(&out, "remote_requests", c.remote_requests);
      AppendInt(&out, "records_per_request", c.records_per_request);
      AppendDouble(&out, "u_cpu_ms", c.u_cpu_ms);
      AppendDouble(&out, "tm_cpu_ms", c.tm_cpu_ms);
      AppendDouble(&out, "dm_cpu_ms", c.dm_cpu_ms);
      AppendDouble(&out, "lr_cpu_ms", c.lr_cpu_ms);
      AppendDouble(&out, "dmio_cpu_ms", c.dmio_cpu_ms);
      AppendDouble(&out, "dmio_disk_ms", c.dmio_disk_ms);
      AppendDouble(&out, "dmio_read_ios", c.dmio_read_ios);
      AppendDouble(&out, "dmio_write_ios", c.dmio_write_ios);
      AppendDouble(&out, "init_cpu_ms", c.init_cpu_ms);
      AppendDouble(&out, "tc_cpu_ms", c.tc_cpu_ms);
      AppendDouble(&out, "tcio_force_writes", c.tcio_force_writes);
      AppendDouble(&out, "ta_fixed_cpu_ms", c.ta_fixed_cpu_ms);
      AppendDouble(&out, "ta_cpu_per_granule_ms", c.ta_cpu_per_granule_ms);
      AppendDouble(&out, "taio_ios_per_granule", c.taio_ios_per_granule);
      AppendDouble(&out, "unlock_cpu_per_lock_ms", c.unlock_cpu_per_lock_ms);
    }
  }
  out += "end\n";
  return out;
}

namespace {

// Splits a line into "key" and "rest", dropping '#' comments and surrounding
// whitespace. Returns false for blank / comment-only lines.
bool SplitLine(const std::string& line, std::string* key, std::string* rest) {
  std::string body = line;
  if (const auto hash = body.find('#'); hash != std::string::npos)
    body.resize(hash);
  std::istringstream in(body);
  if (!(in >> *key)) return false;
  std::string tail;
  std::getline(in, tail);
  const auto start = tail.find_first_not_of(" \t");
  const auto stop = tail.find_last_not_of(" \t\r");
  *rest = start == std::string::npos
              ? std::string()
              : tail.substr(start, stop - start + 1);
  return true;
}

bool ParseI64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool Parse(const std::string& text, Scenario* out, std::string* error) {
  Scenario s;
  std::istringstream in(text);
  std::string line, key, rest;
  int line_no = 0;
  bool saw_header = false, saw_end = false;
  SiteParams* site = nullptr;    // current `site` section
  ClassParams* cls = nullptr;    // current `class` section within the site
  long long declared_sites = -1;

  auto fail = [&](const std::string& why) {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!SplitLine(line, &key, &rest)) continue;
    if (saw_end) return fail("content after end");
    if (!saw_header) {
      if (key != "carat-scenario" || rest != "v1")
        return fail("expected 'carat-scenario v1' header");
      saw_header = true;
      continue;
    }
    if (key == "end") {
      saw_end = true;
      continue;
    }

    // Section openers.
    if (key == "site") {
      std::istringstream f(rest);
      long long idx = -1;
      std::string site_name;
      if (!(f >> idx) || idx != static_cast<long long>(s.input.sites.size()))
        return fail("site sections must appear in order 0..n-1");
      f >> site_name;  // optional; defaults below
      if (declared_sites >= 0 && idx >= declared_sites)
        return fail("more site sections than declared by 'sites'");
      s.input.sites.emplace_back();
      site = &s.input.sites.back();
      site->name = site_name.empty()
                       ? "Site-" + std::to_string(idx)
                       : site_name;
      cls = nullptr;
      continue;
    }
    if (key == "class") {
      if (site == nullptr) return fail("class outside a site section");
      TxnType t;
      if (!ParseTxnType(rest, &t)) return fail("unknown class '" + rest + "'");
      cls = &site->Class(t);
      continue;
    }

    // Scalar keys, dispatched by section.
    auto want_i64 = [&](long long* dst) {
      long long v;
      if (!ParseI64(rest, &v)) return fail("bad integer '" + rest + "'");
      *dst = v;
      return true;
    };
    auto want_int = [&](int* dst) {
      long long v;
      if (!ParseI64(rest, &v)) return fail("bad integer '" + rest + "'");
      *dst = static_cast<int>(v);
      return true;
    };
    auto want_f64 = [&](double* dst) {
      double v;
      if (!ParseHexDouble(rest, &v)) return fail("bad number '" + rest + "'");
      *dst = v;
      return true;
    };

    if (cls != nullptr) {
      if (key == "population") { if (!want_int(&cls->population)) return false; }
      else if (key == "local_requests") { if (!want_int(&cls->local_requests)) return false; }
      else if (key == "remote_requests") { if (!want_int(&cls->remote_requests)) return false; }
      else if (key == "records_per_request") { if (!want_int(&cls->records_per_request)) return false; }
      else if (key == "u_cpu_ms") { if (!want_f64(&cls->u_cpu_ms)) return false; }
      else if (key == "tm_cpu_ms") { if (!want_f64(&cls->tm_cpu_ms)) return false; }
      else if (key == "dm_cpu_ms") { if (!want_f64(&cls->dm_cpu_ms)) return false; }
      else if (key == "lr_cpu_ms") { if (!want_f64(&cls->lr_cpu_ms)) return false; }
      else if (key == "dmio_cpu_ms") { if (!want_f64(&cls->dmio_cpu_ms)) return false; }
      else if (key == "dmio_disk_ms") { if (!want_f64(&cls->dmio_disk_ms)) return false; }
      else if (key == "dmio_read_ios") { if (!want_f64(&cls->dmio_read_ios)) return false; }
      else if (key == "dmio_write_ios") { if (!want_f64(&cls->dmio_write_ios)) return false; }
      else if (key == "init_cpu_ms") { if (!want_f64(&cls->init_cpu_ms)) return false; }
      else if (key == "tc_cpu_ms") { if (!want_f64(&cls->tc_cpu_ms)) return false; }
      else if (key == "tcio_force_writes") { if (!want_f64(&cls->tcio_force_writes)) return false; }
      else if (key == "ta_fixed_cpu_ms") { if (!want_f64(&cls->ta_fixed_cpu_ms)) return false; }
      else if (key == "ta_cpu_per_granule_ms") { if (!want_f64(&cls->ta_cpu_per_granule_ms)) return false; }
      else if (key == "taio_ios_per_granule") { if (!want_f64(&cls->taio_ios_per_granule)) return false; }
      else if (key == "unlock_cpu_per_lock_ms") { if (!want_f64(&cls->unlock_cpu_per_lock_ms)) return false; }
      else return fail("unknown class key '" + key + "'");
      continue;
    }
    if (site != nullptr) {
      if (key == "num_granules") { if (!want_int(&site->num_granules)) return false; }
      else if (key == "records_per_granule") { if (!want_int(&site->records_per_granule)) return false; }
      else if (key == "block_io_ms") { if (!want_f64(&site->block_io_ms)) return false; }
      else if (key == "separate_log_disk") {
        long long v;
        if (!want_i64(&v)) return false;
        site->separate_log_disk = v != 0;
      }
      else if (key == "think_time_ms") { if (!want_f64(&site->think_time_ms)) return false; }
      else if (key == "hot_data_fraction") { if (!want_f64(&site->hot_data_fraction)) return false; }
      else if (key == "hot_access_fraction") { if (!want_f64(&site->hot_access_fraction)) return false; }
      else if (key == "buffer_blocks") { if (!want_int(&site->buffer_blocks)) return false; }
      else if (key == "dm_pool_size") { if (!want_int(&site->dm_pool_size)) return false; }
      else return fail("unknown site key '" + key + "'");
      continue;
    }

    // Header section.
    if (key == "name") {
      if (rest.empty()) return fail("empty name");
      s.name = rest;
    }
    else if (key == "testbed_seed") { if (!ParseU64(rest, &s.testbed_seed)) return fail("bad seed"); }
    else if (key == "warmup_ms") { if (!want_f64(&s.warmup_ms)) return false; }
    else if (key == "measure_ms") { if (!want_f64(&s.measure_ms)) return false; }
    else if (key == "comm_delay_ms") { if (!want_f64(&s.input.comm_delay_ms)) return false; }
    else if (key == "cc") {
      if (!cc::ParseBackend(rest, &s.input.cc_backend))
        return fail("unknown cc backend '" + rest + "'");
    }
    else if (key == "restart_backoff_ms") { if (!want_f64(&s.input.restart_backoff_ms)) return false; }
    else if (key == "sites") { if (!want_i64(&declared_sites)) return false; }
    else return fail("unknown key '" + key + "'");
  }

  if (!saw_header) return fail("missing 'carat-scenario v1' header");
  if (!saw_end) return fail("missing 'end' terminator");
  if (declared_sites >= 0 &&
      declared_sites != static_cast<long long>(s.input.sites.size()))
    return fail("declared " + std::to_string(declared_sites) + " sites, found " +
                std::to_string(s.input.sites.size()));
  std::string verror;
  if (!s.input.Validate(&verror)) return fail("invalid input: " + verror);
  *out = std::move(s);
  return true;
}

std::string ModelSolutionFingerprint(const model::ModelSolution& s) {
  std::string out;
  out += s.ok ? "ok " : "fail ";
  out += s.error;
  out += '\n';
  out += s.converged ? "converged " : "UNCONVERGED ";
  AppendHexU64(&out, static_cast<std::uint64_t>(s.iterations));
  out += s.warm_started ? "warm " : "cold ";
  AppendBitsF64(&out, s.comm_delay_ms);
  out += '\n';
  for (const model::SiteSolution& site : s.sites) {
    out += site.name;
    out += ' ';
    AppendBitsF64(&out, site.cpu_utilization);
    AppendBitsF64(&out, site.db_disk_utilization);
    AppendBitsF64(&out, site.log_disk_utilization);
    AppendBitsF64(&out, site.dio_per_s);
    AppendBitsF64(&out, site.txn_per_s);
    AppendBitsF64(&out, site.records_per_s);
    for (const model::ClassSolution& c : site.classes) {
      out += c.present ? "+" : "-";
      AppendBitsF64(&out, c.throughput_per_s);
      AppendBitsF64(&out, c.response_ms);
      AppendBitsF64(&out, c.pa);
      AppendBitsF64(&out, c.ns);
      AppendBitsF64(&out, c.pb);
      AppendBitsF64(&out, c.pd);
      AppendBitsF64(&out, c.plw);
      AppendBitsF64(&out, c.lh);
      AppendBitsF64(&out, c.nlk);
      AppendBitsF64(&out, c.sigma);
      AppendBitsF64(&out, c.io_per_request);
      AppendBitsF64(&out, c.r_lw_ms);
      AppendBitsF64(&out, c.r_rw_ms);
      AppendBitsF64(&out, c.r_cw_ms);
      AppendBitsF64(&out, c.d_lw_ms);
      AppendBitsF64(&out, c.d_rw_ms);
      AppendBitsF64(&out, c.d_cw_ms);
    }
    out += '\n';
  }
  return out;
}

}  // namespace carat::fuzz
