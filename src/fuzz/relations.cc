#include "fuzz/relations.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "carat/testbed.h"
#include "cc/cc.h"
#include "model/lock_model.h"
#include "model/yao.h"
#include "qn/mva.h"
#include "serve/solver_service.h"
#include "util/approx.h"

namespace carat::fuzz {

namespace {

using model::ClassParams;
using model::ClassSolution;
using model::ModelInput;
using model::ModelSolution;
using model::SiteParams;
using model::SiteSolution;
using model::TxnType;

std::string Fmt(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

// Accumulates the first mismatch; all Check* methods are no-ops once one
// mismatch is recorded, so `detail` always describes the first failure.
class Cmp {
 public:
  explicit Cmp(double rel, double floor = 0.0) : rel_(rel), floor_(floor) {}

  bool ok() const { return detail_.empty(); }
  const std::string& detail() const { return detail_; }

  void Rel(const std::string& what, double a, double b) {
    if (!ok()) return;
    if (util::ApproxRelAbs(a, b, rel_, floor_)) return;
    detail_ = what + ": " + Fmt(a) + " vs " + Fmt(b) +
              " (rel " + Fmt(util::RelDiff(a, b)) + " > " + Fmt(rel_) + ")";
  }

  void Bits(const std::string& what, double a, double b) {
    if (!ok()) return;
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    if (ba == bb) return;
    detail_ = what + ": " + Fmt(a) + " vs " + Fmt(b) + " (bitwise)";
  }

  void True(const std::string& what, bool cond) {
    if (!ok() || cond) return;
    detail_ = what;
  }

 private:
  double rel_, floor_;
  std::string detail_;
};

ModelSolution SolveModel(const ModelInput& input,
                         const model::SolverOptions& solver) {
  return model::CaratModel(input).Solve(solver);
}

// Per-class and per-site fieldwise comparison of two solutions, where site i
// of `a` corresponds to site `map_a_to_b(i)` of `b`. Both solutions must be
// converged before calling.
template <typename SiteMap>
void CompareSolutions(const ModelSolution& a, const ModelSolution& b,
                      SiteMap map, Cmp* cmp) {
  cmp->True("site counts differ", a.sites.size() == b.sites.size());
  if (!cmp->ok()) return;
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    const SiteSolution& sa = a.sites[i];
    const SiteSolution& sb = b.sites[map(i)];
    const std::string at = "site " + std::to_string(i);
    cmp->Rel(at + " cpu_util", sa.cpu_utilization, sb.cpu_utilization);
    cmp->Rel(at + " db_util", sa.db_disk_utilization, sb.db_disk_utilization);
    cmp->Rel(at + " log_util", sa.log_disk_utilization,
             sb.log_disk_utilization);
    cmp->Rel(at + " dio_per_s", sa.dio_per_s, sb.dio_per_s);
    cmp->Rel(at + " txn_per_s", sa.txn_per_s, sb.txn_per_s);
    cmp->Rel(at + " records_per_s", sa.records_per_s, sb.records_per_s);
    for (TxnType t : model::kAllTxnTypes) {
      const ClassSolution& ca = sa.Class(t);
      const ClassSolution& cb = sb.Class(t);
      cmp->True(at + " presence of " + std::string(model::Name(t)),
                ca.present == cb.present);
      if (!ca.present) continue;
      const std::string ct = at + " " + std::string(model::Name(t));
      cmp->Rel(ct + " throughput", ca.throughput_per_s, cb.throughput_per_s);
      cmp->Rel(ct + " response", ca.response_ms, cb.response_ms);
      cmp->Rel(ct + " pa", ca.pa, cb.pa);
      cmp->Rel(ct + " ns", ca.ns, cb.ns);
      cmp->Rel(ct + " pb", ca.pb, cb.pb);
      cmp->Rel(ct + " pd", ca.pd, cb.pd);
      cmp->Rel(ct + " plw", ca.plw, cb.plw);
      cmp->Rel(ct + " lh", ca.lh, cb.lh);
      cmp->Rel(ct + " nlk", ca.nlk, cb.nlk);
      cmp->Rel(ct + " sigma", ca.sigma, cb.sigma);
      cmp->Rel(ct + " io_per_request", ca.io_per_request, cb.io_per_request);
      cmp->Rel(ct + " d_lw", ca.d_lw_ms, cb.d_lw_ms);
      cmp->Rel(ct + " d_rw", ca.d_rw_ms, cb.d_rw_ms);
      cmp->Rel(ct + " d_cw", ca.d_cw_ms, cb.d_cw_ms);
    }
  }
}

// --- rule: site-label permutation ------------------------------------------

bool CheckSitePermutation(const Scenario& s, const CheckOptions& opts,
                          std::string* detail, bool* applicable) {
  const std::size_t n = s.input.sites.size();
  if (n < 2) return true;
  *applicable = true;

  // Rotate: transformed site i is base site (i + 1) mod n.
  ModelInput rotated = s.input;
  for (std::size_t i = 0; i < n; ++i)
    rotated.sites[i] = s.input.sites[(i + 1) % n];

  const ModelSolution base = SolveModel(s.input, opts.solver);
  const ModelSolution rot = SolveModel(rotated, opts.solver);
  if (!base.ok || !rot.ok) {
    *detail = "solver failed: " + base.error + rot.error;
    return false;
  }
  // The trajectories differ only by summation order; at the tolerance
  // boundary that can flip the final iteration, so compare solutions only
  // when both sides converged.
  if (!base.converged || !rot.converged) {
    *applicable = false;
    return true;
  }
  Cmp cmp(opts.permutation_rel, 1e-9);
  // base site (i+1)%n == rotated site i; i.e. rotated site i maps to base
  // site (i+1)%n.
  CompareSolutions(rot, base, [&](std::size_t i) { return (i + 1) % n; },
                   &cmp);
  if (!cmp.ok()) {
    *detail = "rotation changed the solution: " + cmp.detail();
    return false;
  }
  return true;
}

// --- rules on the scenario's qn site networks ------------------------------

// A closed product-form network derived from one site's parameters. The
// demand formulas only need to be *representative* (positive, spanning
// queueing and delay centers); the qn rules are theorems about MVA itself,
// so any well-formed network drawn from the scenario exercises them. Taking
// it from the scenario keeps the minimizer effective: shrinking the scenario
// shrinks this network.
qn::ClosedNetwork BuildSiteNetwork(const Scenario& s, std::size_t site_idx) {
  const SiteParams& site = s.input.sites[site_idx];
  qn::ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("CPU", qn::CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("DISK", qn::CenterKind::kQueueing);
  const std::size_t log = site.separate_log_disk
                              ? net.AddCenter("LOG", qn::CenterKind::kQueueing)
                              : cpu;  // placeholder; unused when shared
  const std::size_t comm = net.AddCenter("COMM", qn::CenterKind::kDelay);
  for (TxnType t : model::kAllTxnTypes) {
    const ClassParams& c = site.Class(t);
    if (c.population == 0) continue;
    const std::size_t k =
        net.AddChain(std::string(model::Name(t)), c.population,
                     site.think_time_ms);
    const double n = c.total_requests();
    const double recs = c.records_accessed();
    net.chains[k].demands[cpu] =
        c.u_cpu_ms + c.init_cpu_ms + c.tc_cpu_ms +
        n * (c.tm_cpu_ms + c.dm_cpu_ms + c.lr_cpu_ms) + recs * c.dmio_cpu_ms;
    net.chains[k].demands[disk] =
        recs * (c.dmio_read_ios + c.dmio_write_ios) * site.block_io_ms;
    if (site.separate_log_disk)
      net.chains[k].demands[log] = c.tcio_force_writes * site.block_io_ms;
    net.chains[k].demands[comm] =
        2.0 * s.input.comm_delay_ms * c.remote_requests;
  }
  return net;
}

// Splitting chain `c` (population >= 2) into two chains with identical
// demands and think time, populations ceil(N/2) and floor(N/2), leaves the
// product-form equilibrium over aggregate states unchanged: identical
// classes are interchangeable, so the split network's total-population
// process coincides with the original's. Hence X_c = X_a + X_b, R_a = R_b =
// R_c (removing one customer of an identical class yields the same reduced
// network either way), and all per-center measures are preserved.
bool CheckChainSplit(const Scenario& s, const CheckOptions& opts,
                     std::string* detail, bool* applicable) {
  for (std::size_t i = 0; i < s.input.sites.size(); ++i) {
    qn::ClosedNetwork net = BuildSiteNetwork(s, i);
    std::size_t split = net.chains.size();
    for (std::size_t k = 0; k < net.chains.size(); ++k) {
      if (net.chains[k].population >= 2) {
        split = k;
        break;
      }
    }
    if (split == net.chains.size()) continue;  // all populations are 1

    qn::ClosedNetwork halves = net;
    const int pop = net.chains[split].population;
    halves.chains[split].population = (pop + 1) / 2;
    halves.chains[split].name += "-a";
    qn::Chain other = net.chains[split];
    other.population = pop / 2;
    other.name += "-b";
    halves.chains.push_back(std::move(other));
    if (!qn::JointLatticeStates(halves, 1u << 20)) continue;  // too large

    const qn::MvaResult base = qn::ExactMva(net);
    const qn::MvaResult cut = qn::ExactMva(halves);
    if (!base.ok || !cut.ok) {
      *detail = "exact MVA failed: " + base.error + cut.error;
      return false;
    }
    *applicable = true;

    Cmp cmp(opts.chain_split_rel, 1e-12);
    const std::size_t b = halves.chains.size() - 1;  // the "-b" half
    cmp.Rel("split throughput sum",
            cut.solution.throughput[split] + cut.solution.throughput[b],
            base.solution.throughput[split]);
    cmp.Rel("half-a response vs original", cut.solution.response_time[split],
            base.solution.response_time[split]);
    if (pop / 2 > 0) {
      cmp.Rel("half-b response vs original", cut.solution.response_time[b],
              base.solution.response_time[split]);
    }
    for (std::size_t k = 0; k < net.chains.size(); ++k) {
      if (k == split) continue;
      cmp.Rel("bystander chain " + net.chains[k].name + " throughput",
              cut.solution.throughput[k], base.solution.throughput[k]);
    }
    for (std::size_t m = 0; m < net.centers.size(); ++m) {
      cmp.Rel("center " + net.centers[m].name + " queue length",
              cut.solution.queue_length[m], base.solution.queue_length[m]);
      cmp.Rel("center " + net.centers[m].name + " utilization",
              cut.solution.utilization[m], base.solution.utilization[m]);
    }
    if (!cmp.ok()) {
      *detail = "chain split at site " + std::to_string(i) + " (chain " +
                net.chains[split].name + ", N=" + std::to_string(pop) +
                "): " + cmp.detail();
      return false;
    }
  }
  return true;
}

// Scaling every demand and think time by a power of two k multiplies each
// MVA intermediate by an exact power of two: R = D(1+Q) and X = N/(Z+sum R)
// commute with the scaling because multiplying/dividing IEEE doubles by a
// power of two is exact and rounding commutes with it, so Q's trajectory is
// bit-identical and X scales by exactly 1/k. Holds for the exact recursion
// and for every Schweitzer iteration (including its convergence test, which
// is on the scale-invariant queue lengths).
bool CheckQnDemandScaling(const Scenario& s, const CheckOptions& opts,
                          std::string* detail, bool* applicable) {
  (void)opts;
  constexpr double kScale = 4.0;
  for (std::size_t i = 0; i < s.input.sites.size(); ++i) {
    qn::ClosedNetwork net = BuildSiteNetwork(s, i);
    if (net.chains.empty()) continue;
    qn::ClosedNetwork scaled = net;
    for (qn::Chain& chain : scaled.chains) {
      chain.think_time *= kScale;
      for (double& d : chain.demands) d *= kScale;
    }
    *applicable = true;

    for (const bool exact : {true, false}) {
      const qn::MvaResult base =
          exact ? qn::ExactMva(net) : qn::SchweitzerMva(net);
      const qn::MvaResult big =
          exact ? qn::ExactMva(scaled) : qn::SchweitzerMva(scaled);
      if (!base.ok || !big.ok) {
        *detail = "MVA failed: " + base.error + big.error;
        return false;
      }
      Cmp cmp(0.0);
      const char* which = exact ? "exact" : "schweitzer";
      for (std::size_t k = 0; k < net.chains.size(); ++k) {
        cmp.Bits(std::string(which) + " chain " + net.chains[k].name +
                     " throughput*k",
                 big.solution.throughput[k] * kScale,
                 base.solution.throughput[k]);
        cmp.Bits(std::string(which) + " chain " + net.chains[k].name +
                     " response/k",
                 big.solution.response_time[k] / kScale,
                 base.solution.response_time[k]);
      }
      for (std::size_t m = 0; m < net.centers.size(); ++m) {
        cmp.Bits(std::string(which) + " center " + net.centers[m].name +
                     " queue length",
                 big.solution.queue_length[m], base.solution.queue_length[m]);
        cmp.Bits(std::string(which) + " center " + net.centers[m].name +
                     " utilization",
                 big.solution.utilization[m], base.solution.utilization[m]);
      }
      if (!exact) {
        cmp.True("schweitzer iteration counts differ",
                 base.iterations == big.iterations);
      }
      if (!cmp.ok()) {
        *detail = "site " + std::to_string(i) + " x" + Fmt(kScale) + ": " +
                  cmp.detail();
        return false;
      }
    }
  }
  return true;
}

// --- rule: whole-model k-scaling -------------------------------------------

ModelInput ScaleModelTimes(const ModelInput& in, double k) {
  ModelInput out = in;
  out.comm_delay_ms *= k;
  out.restart_backoff_ms *= k;
  for (SiteParams& site : out.sites) {
    site.block_io_ms *= k;
    site.think_time_ms *= k;
    for (TxnType t : model::kAllTxnTypes) {
      ClassParams& c = site.Class(t);
      c.u_cpu_ms *= k;
      c.tm_cpu_ms *= k;
      c.dm_cpu_ms *= k;
      c.lr_cpu_ms *= k;
      c.dmio_cpu_ms *= k;
      c.dmio_disk_ms *= k;
      c.init_cpu_ms *= k;
      c.tc_cpu_ms *= k;
      c.ta_fixed_cpu_ms *= k;
      c.ta_cpu_per_granule_ms *= k;
      c.unlock_cpu_per_lock_ms *= k;
      // Dimensionless I/O counts (dmio_*_ios, tcio_force_writes,
      // taio_ios_per_granule) do not scale.
    }
  }
  return out;
}

// Every solver quantity is either a time (scales by k), a rate (scales by
// 1/k) or dimensionless (invariant): each fixed-point step combines operands
// of matching dimension, so the k=2 trajectory mirrors the base trajectory
// with every intermediate scaled by an exact power of two. The relative
// convergence test is scale-invariant, so both runs take the same
// iterations. (Asserted at rel 1e-12 rather than bitwise to stay agnostic
// to sub-normal denominators floored at 1e-12 inside the solver.)
bool CheckModelDemandScaling(const Scenario& s, const CheckOptions& opts,
                             std::string* detail, bool* applicable) {
  constexpr double kScale = 2.0;
  *applicable = true;
  const ModelSolution base = SolveModel(s.input, opts.solver);
  const ModelSolution big =
      SolveModel(ScaleModelTimes(s.input, kScale), opts.solver);
  if (!base.ok || !big.ok) {
    *detail = "solver failed: " + base.error + big.error;
    return false;
  }
  Cmp cmp(opts.model_scaling_rel, 1e-15);
  cmp.True("converged flags differ", base.converged == big.converged);
  if (!base.converged) {
    *applicable = false;  // tolerance-based compare needs a fixed point
    return true;
  }
  cmp.Rel("comm delay * k", big.comm_delay_ms, base.comm_delay_ms * kScale);
  for (std::size_t i = 0; i < base.sites.size() && cmp.ok(); ++i) {
    const SiteSolution& sb = base.sites[i];
    const SiteSolution& sk = big.sites[i];
    const std::string at = "site " + std::to_string(i);
    cmp.Rel(at + " cpu_util", sk.cpu_utilization, sb.cpu_utilization);
    cmp.Rel(at + " db_util", sk.db_disk_utilization, sb.db_disk_utilization);
    cmp.Rel(at + " log_util", sk.log_disk_utilization,
            sb.log_disk_utilization);
    cmp.Rel(at + " dio_per_s * k", sk.dio_per_s * kScale, sb.dio_per_s);
    cmp.Rel(at + " txn_per_s * k", sk.txn_per_s * kScale, sb.txn_per_s);
    for (TxnType t : model::kAllTxnTypes) {
      const ClassSolution& cb = sb.Class(t);
      const ClassSolution& ck = sk.Class(t);
      if (!cb.present) continue;
      const std::string ct = at + " " + std::string(model::Name(t));
      cmp.Rel(ct + " throughput * k", ck.throughput_per_s * kScale,
              cb.throughput_per_s);
      cmp.Rel(ct + " response / k", ck.response_ms / kScale, cb.response_ms);
      cmp.Rel(ct + " pa", ck.pa, cb.pa);
      cmp.Rel(ct + " ns", ck.ns, cb.ns);
      cmp.Rel(ct + " pb", ck.pb, cb.pb);
      cmp.Rel(ct + " pd", ck.pd, cb.pd);
      cmp.Rel(ct + " plw", ck.plw, cb.plw);
      cmp.Rel(ct + " lh", ck.lh, cb.lh);
      cmp.Rel(ct + " nlk", ck.nlk, cb.nlk);
      cmp.Rel(ct + " sigma", ck.sigma, cb.sigma);
      cmp.Rel(ct + " io_per_request", ck.io_per_request, cb.io_per_request);
      cmp.Rel(ct + " r_lw / k", ck.r_lw_ms / kScale, cb.r_lw_ms);
      cmp.Rel(ct + " r_rw / k", ck.r_rw_ms / kScale, cb.r_rw_ms);
      cmp.Rel(ct + " r_cw / k", ck.r_cw_ms / kScale, cb.r_cw_ms);
      cmp.Rel(ct + " d_lw / k", ck.d_lw_ms / kScale, cb.d_lw_ms);
      cmp.Rel(ct + " d_rw / k", ck.d_rw_ms / kScale, cb.d_rw_ms);
      cmp.Rel(ct + " d_cw / k", ck.d_cw_ms / kScale, cb.d_cw_ms);
    }
  }
  if (!cmp.ok()) {
    *detail = "time scaling x" + Fmt(kScale) + ": " + cmp.detail();
    return false;
  }
  return true;
}

// --- rule: lock-submodel mass scaling --------------------------------------

// Pb depends on lock mass only through the ratio (locks held) / N_g, PB
// through ratios of masses, and Pd / R_LW through PB and unscaled inputs.
// Scaling N_g and every locks_held by the same power of two multiplies
// numerator and denominator by exact powers of two, so every quotient's real
// value — and therefore its rounding — is unchanged: bit-exact invariance.
bool CheckLockMassScaling(const Scenario& s, const CheckOptions& opts,
                          std::string* detail, bool* applicable) {
  constexpr double kScale = 8.0;
  const ModelSolution sol = SolveModel(s.input, opts.solver);
  if (!sol.ok) {
    *detail = "solver failed: " + sol.error;
    return false;
  }
  for (std::size_t i = 0; i < s.input.sites.size(); ++i) {
    const SiteParams& site = s.input.sites[i];
    model::SiteLockInputs in;
    in.num_granules = site.num_granules;
    in.contention_factor = 1.0 + site.hot_access_fraction;
    std::array<double, model::kNumTxnTypes> rlt{};
    for (TxnType t : model::kAllTxnTypes) {
      const ClassSolution& c = sol.sites[i].Class(t);
      in.population[Index(t)] = site.Class(t).population;
      in.locks_held[Index(t)] = c.lh;
      in.lock_requests[Index(t)] = c.nlk;
      in.block_prob_per_execution[Index(t)] = c.plw;
      rlt[Index(t)] = model::MeanBlockingTime(c.nlk, c.response_ms);
    }
    model::SiteLockInputs scaled = in;
    scaled.num_granules *= kScale;
    for (double& lh : scaled.locks_held) lh *= kScale;
    *applicable = true;

    Cmp cmp(0.0);
    for (TxnType t : model::kAllTxnTypes) {
      if (site.Class(t).population == 0) continue;
      const std::string ct = "site " + std::to_string(i) + " " +
                             std::string(model::Name(t));
      cmp.Bits(ct + " Pb", model::BlockingProbability(scaled, t),
               model::BlockingProbability(in, t));
      cmp.Bits(ct + " Pd", model::DeadlockVictimProbability(scaled, t),
               model::DeadlockVictimProbability(in, t));
      cmp.Bits(ct + " R_LW", model::LockWaitDelay(scaled, t, rlt),
               model::LockWaitDelay(in, t, rlt));
      for (TxnType u : model::kAllTxnTypes) {
        cmp.Bits(ct + "/" + std::string(model::Name(u)) + " PB",
                 model::BlockerTypeProbability(scaled, t, u),
                 model::BlockerTypeProbability(in, t, u));
      }
    }
    if (!cmp.ok()) {
      *detail = "lock mass x" + Fmt(kScale) + ": " + cmp.detail();
      return false;
    }
  }
  return true;
}

// --- rule: granule-count invariance ----------------------------------------

bool AllPresentReadOnly(const ModelInput& input) {
  for (const SiteParams& site : input.sites)
    for (TxnType t : model::kAllTxnTypes)
      if (site.Class(t).population > 0 && model::IsUpdate(t)) return false;
  return true;
}

bool CheckGranuleInvariance(const Scenario& s, const CheckOptions& opts,
                            std::string* detail, bool* applicable) {
  constexpr int kFactor = 5;
  if (!AllPresentReadOnly(s.input)) return true;
  for (const SiteParams& site : s.input.sites) {
    if (site.records_per_granule != 1) return true;  // Yao's q would change
    if (site.buffer_blocks != 0) return true;        // hit rate would change
    // Skewed access breaks the invariant genuinely: the hot region is
    // hot_data_fraction * num_granules blocks, so when accesses saturate it
    // the expected distinct-granule count (and with it the LR/UL CPU
    // demand) depends on the granule count even at one record per granule.
    const model::AccessSkew skew{site.hot_data_fraction,
                                 site.hot_access_fraction};
    if (!skew.IsUniform()) return true;
  }
  *applicable = true;

  Scenario grown = s;
  for (SiteParams& site : grown.input.sites) site.num_granules *= kFactor;

  // Model half: with only shared locks Pb = 0 exactly, and with
  // records_per_granule = 1 Yao's formula degenerates to q = k, so the
  // granule count is inert.
  const ModelSolution base = SolveModel(s.input, opts.solver);
  const ModelSolution big = SolveModel(grown.input, opts.solver);
  if (!base.ok || !big.ok) {
    *detail = "solver failed: " + base.error + big.error;
    return false;
  }
  for (std::size_t i = 0; i < base.sites.size(); ++i) {
    for (TxnType t : model::kAllTxnTypes) {
      const ClassSolution& c = base.sites[i].Class(t);
      if (c.present && c.pb != 0.0) {
        *detail = "read-only workload has nonzero Pb = " + Fmt(c.pb) +
                  " at site " + std::to_string(i);
        return false;
      }
    }
  }
  if (base.converged && big.converged) {
    Cmp cmp(opts.granule_rel, 1e-12);
    CompareSolutions(base, big, [](std::size_t i) { return i; }, &cmp);
    if (!cmp.ok()) {
      *detail = "granule count x" + std::to_string(kFactor) +
                " moved the model solution: " + cmp.detail();
      return false;
    }
  }

  // Testbed half: shared locks never block, and with a free UL phase no
  // service time depends on which granules were drawn, so the whole event
  // trace — and the result fingerprint — is invariant bit for bit.
  if (opts.with_testbed) {
    bool free_unlock = true;
    for (const SiteParams& site : s.input.sites)
      for (TxnType t : model::kAllTxnTypes)
        if (site.Class(t).population > 0 &&
            site.Class(t).unlock_cpu_per_lock_ms != 0.0)
          free_unlock = false;
    if (free_unlock) {
      carat::TestbedOptions topts;
      topts.seed = s.testbed_seed;
      topts.warmup_ms = s.warmup_ms;
      topts.measure_ms = s.measure_ms;
      const carat::TestbedResult rbase = RunTestbed(s.input, topts);
      const carat::TestbedResult rbig = RunTestbed(grown.input, topts);
      if (!rbase.ok || !rbig.ok) {
        *detail = "testbed failed: " + rbase.error + rbig.error;
        return false;
      }
      for (const carat::NodeResult& node : rbase.nodes) {
        if (node.lock_blocks != 0) {
          *detail = "read-only testbed run blocked " +
                    std::to_string(node.lock_blocks) + " times at " +
                    node.name;
          return false;
        }
      }
      if (TestbedResultFingerprint(rbase) != TestbedResultFingerprint(rbig)) {
        *detail = "granule count x" + std::to_string(kFactor) +
                  " changed the testbed fingerprint";
        return false;
      }
    }
  }
  return true;
}

// --- rule: batch lanes vs scalar -------------------------------------------

// Four same-shape variants of the scenario (the shape key pins site count,
// chain presence and log-disk layout; costs, populations, granules and think
// times are all free).
std::vector<ModelInput> SameShapeVariants(const ModelInput& base) {
  std::vector<ModelInput> lanes;
  lanes.push_back(base);

  ModelInput costs = base;
  for (SiteParams& site : costs.sites)
    for (TxnType t : model::kAllTxnTypes) {
      ClassParams& c = site.Class(t);
      c.u_cpu_ms *= 1.5;
      c.dm_cpu_ms *= 1.5;
      c.dmio_cpu_ms *= 1.5;
    }
  lanes.push_back(std::move(costs));

  ModelInput env = base;
  for (SiteParams& site : env.sites) {
    site.num_granules *= 2;
    site.think_time_ms += 5.0;
  }
  lanes.push_back(std::move(env));

  ModelInput pops = base;
  for (SiteParams& site : pops.sites)
    for (TxnType t : model::kAllTxnTypes)
      if (site.Class(t).population > 0) site.Class(t).population += 1;
  lanes.push_back(std::move(pops));
  return lanes;
}

bool CheckBatchLaneIdentity(const Scenario& s, const CheckOptions& opts,
                            std::string* detail, bool* applicable) {
  *applicable = true;
  const std::vector<ModelInput> lanes = SameShapeVariants(s.input);
  const std::size_t width = lanes.size();

  std::vector<const ModelInput*> in_ptrs;
  std::vector<ModelSolution> outs(width);
  std::vector<ModelSolution*> out_ptrs;
  for (std::size_t w = 0; w < width; ++w) {
    in_ptrs.push_back(&lanes[w]);
    out_ptrs.push_back(&outs[w]);
  }
  model::CaratModel::SolveBatchInto(in_ptrs.data(), width, opts.solver,
                                    nullptr, nullptr, out_ptrs.data());
  for (std::size_t w = 0; w < width; ++w) {
    const ModelSolution scalar = SolveModel(lanes[w], opts.solver);
    if (ModelSolutionFingerprint(outs[w]) != ModelSolutionFingerprint(scalar)) {
      *detail = "batch lane " + std::to_string(w) +
                " differs from the scalar solve";
      return false;
    }
  }
  return true;
}

// --- rule: sharded testbed vs serial ---------------------------------------

bool CheckShardIdentity(const Scenario& s, const CheckOptions& opts,
                        std::string* detail, bool* applicable) {
  (void)opts;
  if (s.input.sites.size() < 2) return true;  // shards clamp to site count
  *applicable = true;
  carat::TestbedOptions serial;
  serial.seed = s.testbed_seed;
  serial.warmup_ms = s.warmup_ms;
  serial.measure_ms = s.measure_ms;
  serial.shards = 1;
  carat::TestbedOptions sharded = serial;
  sharded.shards = static_cast<int>(s.input.sites.size());
  const carat::TestbedResult a = RunTestbed(s.input, serial);
  const carat::TestbedResult b = RunTestbed(s.input, sharded);
  if (!a.ok || !b.ok) {
    *detail = "testbed failed: " + a.error + b.error;
    return false;
  }
  if (TestbedResultFingerprint(a) != TestbedResultFingerprint(b)) {
    *detail = "shards=" + std::to_string(sharded.shards) +
              " fingerprint differs from serial";
    return false;
  }
  return true;
}

// --- rule: serving stack vs bare solver ------------------------------------

bool CheckServeIdentity(const Scenario& s, const CheckOptions& opts,
                        std::string* detail, bool* applicable) {
  *applicable = true;
  std::vector<ModelInput> queries;
  queries.push_back(s.input);
  {
    ModelInput costs = s.input;
    for (SiteParams& site : costs.sites)
      for (TxnType t : model::kAllTxnTypes) site.Class(t).u_cpu_ms *= 1.5;
    queries.push_back(std::move(costs));
  }
  if (s.input.sites.size() >= 2) {
    // Rotation usually changes the per-site presence pattern, exercising the
    // service's shape grouping with a mixed-shape batch.
    ModelInput rotated = s.input;
    for (std::size_t i = 0; i < s.input.sites.size(); ++i)
      rotated.sites[i] = s.input.sites[(i + 1) % s.input.sites.size()];
    queries.push_back(std::move(rotated));
  }
  {
    ModelInput flipped = s.input;  // different shape: log-disk layout
    for (SiteParams& site : flipped.sites)
      site.separate_log_disk = !site.separate_log_disk;
    queries.push_back(std::move(flipped));
  }

  serve::SolverService::Options sopts;
  sopts.threads = 2;
  sopts.use_cache = false;
  sopts.warm_start = false;
  sopts.batch_lane_width = 2;
  sopts.solver = opts.solver;
  serve::SolverService service(sopts);

  // Scalar path.
  const ModelSolution via_submit = service.Submit(s.input).get();
  const ModelSolution direct = SolveModel(s.input, opts.solver);
  if (ModelSolutionFingerprint(via_submit) != ModelSolutionFingerprint(direct)) {
    *detail = "Submit() differs from CaratModel::Solve()";
    return false;
  }

  // Batch path, mixed shapes.
  std::vector<std::future<ModelSolution>> futs =
      service.SubmitBatch(queries);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const ModelSolution got = futs[q].get();
    const ModelSolution want = SolveModel(queries[q], opts.solver);
    if (ModelSolutionFingerprint(got) != ModelSolutionFingerprint(want)) {
      *detail = "SubmitBatch() query " + std::to_string(q) +
                " differs from CaratModel::Solve()";
      return false;
    }
  }
  return true;
}

// --- rule: exact MVA vs Schweitzer-Bard ------------------------------------

bool CheckExactVsSchweitzer(const Scenario& s, const CheckOptions& opts,
                            std::string* detail, bool* applicable) {
  model::SolverOptions exact = opts.solver;
  exact.use_exact_mva = true;
  model::SolverOptions approx = opts.solver;
  approx.use_exact_mva = false;
  const ModelSolution a = SolveModel(s.input, exact);
  const ModelSolution b = SolveModel(s.input, approx);
  if (!a.ok || !b.ok) {
    *detail = "solver failed: " + a.error + b.error;
    return false;
  }
  if (!a.converged || !b.converged) return true;  // no fixed point to judge
  *applicable = true;
  Cmp cmp(opts.schweitzer_rel, 1e-6);
  cmp.Rel("total txn/s", b.TotalTxnPerSec(), a.TotalTxnPerSec());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    cmp.Rel("site " + std::to_string(i) + " txn_per_s",
            b.sites[i].txn_per_s, a.sites[i].txn_per_s);
  }
  if (!cmp.ok()) {
    *detail = "exact vs Schweitzer: " + cmp.detail();
    return false;
  }
  return true;
}

// --- rule: model vs testbed ------------------------------------------------

bool CheckModelVsTestbed(const Scenario& s, const CheckOptions& opts,
                         std::string* detail, bool* applicable) {
  const ModelSolution sol = SolveModel(s.input, opts.solver);
  if (!sol.ok) {
    *detail = "solver failed: " + sol.error;
    return false;
  }
  if (!sol.converged) return true;

  carat::TestbedOptions topts;
  topts.seed = s.testbed_seed;
  topts.warmup_ms = s.warmup_ms;
  topts.measure_ms = s.measure_ms;
  const carat::TestbedResult sim = RunTestbed(s.input, topts);
  if (!sim.ok) {
    *detail = "testbed failed: " + sim.error;
    return false;
  }
  if (!sim.database_consistent) {
    *detail = "testbed database INCONSISTENT after run";
    return false;
  }

  bool any_site_judged = false;
  for (std::size_t i = 0; i < sim.nodes.size(); ++i) {
    std::uint64_t commits = 0;
    for (const carat::TypeResult& tr : sim.nodes[i].types)
      if (tr.present) commits += tr.commits;
    if (commits < opts.testbed_min_commits) continue;  // too noisy to judge
    any_site_judged = true;
    // Confidence-interval-aware bound: the testbed's throughput estimate has
    // standard error ~ X/sqrt(commits), so widen the policy tolerance by
    // z/sqrt(commits).
    const double tol =
        opts.testbed_rel +
        opts.testbed_ci_z / std::sqrt(static_cast<double>(commits));
    const double a = sol.sites[i].txn_per_s;
    const double b = sim.nodes[i].txn_per_s;
    if (!util::ApproxRelAbs(a, b, tol, 1e-6)) {
      *detail = "site " + std::to_string(i) + " txn/s: model " + Fmt(a) +
                " vs testbed " + Fmt(b) + " (rel " +
                Fmt(util::RelDiff(a, b)) + " > " + Fmt(tol) + " at " +
                std::to_string(commits) + " commits)";
      *applicable = true;
      return false;
    }
  }
  *applicable = any_site_judged;
  return true;
}

// --- rule: site-class replication ------------------------------------------

// Replicates the last site twice (members identical except for the name), so
// the solver's byte-identity detection finds a three-member class. Two
// class-A identities must hold on the replicated input (DESIGN.md §14):
// the hierarchical (collapsed) solve is bit-identical to the flat solve,
// and within the replicated class every member's solution is bit-identical
// to the representative's. Neither requires convergence — both paths run
// the same trajectory, so they stop at the same iteration either way.
bool CheckClassReplication(const Scenario& s, const CheckOptions& opts,
                           std::string* detail, bool* applicable) {
  *applicable = true;
  constexpr int kCopies = 2;
  ModelInput rep = s.input;
  const std::size_t j = rep.sites.size() - 1;
  for (int k = 0; k < kCopies; ++k) {
    SiteParams copy = rep.sites[j];
    copy.name += "-r" + std::to_string(k + 1);
    rep.sites.push_back(std::move(copy));
  }
  std::string err;
  if (!rep.Validate(&err)) {
    *detail = "replicated input invalid: " + err;
    return false;
  }

  model::SolverOptions flat_opts = opts.solver;
  flat_opts.collapse_site_classes = false;
  model::SolverOptions hier_opts = opts.solver;
  hier_opts.collapse_site_classes = true;
  const ModelSolution flat = SolveModel(rep, flat_opts);
  const ModelSolution hier = SolveModel(rep, hier_opts);
  if (!flat.ok || !hier.ok) {
    *detail = "solver failed: " + flat.error + hier.error;
    return false;
  }
  if (ModelSolutionFingerprint(flat) != ModelSolutionFingerprint(hier)) {
    *detail = "collapsed solve differs from the flat solve";
    return false;
  }

  Cmp cmp(0.0);  // every comparison below is bitwise
  for (int k = 0; k < kCopies; ++k) {
    const SiteSolution& a = flat.sites[j];
    const SiteSolution& b = flat.sites[j + 1 + static_cast<std::size_t>(k)];
    const std::string at = "replica " + std::to_string(k + 1);
    cmp.Bits(at + " cpu_util", a.cpu_utilization, b.cpu_utilization);
    cmp.Bits(at + " db_util", a.db_disk_utilization, b.db_disk_utilization);
    cmp.Bits(at + " log_util", a.log_disk_utilization,
             b.log_disk_utilization);
    cmp.Bits(at + " dio_per_s", a.dio_per_s, b.dio_per_s);
    cmp.Bits(at + " txn_per_s", a.txn_per_s, b.txn_per_s);
    cmp.Bits(at + " records_per_s", a.records_per_s, b.records_per_s);
    for (TxnType t : model::kAllTxnTypes) {
      const ClassSolution& ca = a.Class(t);
      const ClassSolution& cb = b.Class(t);
      cmp.True(at + " presence of " + std::string(model::Name(t)),
               ca.present == cb.present);
      if (!ca.present) continue;
      const std::string ct = at + " " + std::string(model::Name(t));
      cmp.Bits(ct + " throughput", ca.throughput_per_s, cb.throughput_per_s);
      cmp.Bits(ct + " response", ca.response_ms, cb.response_ms);
      cmp.Bits(ct + " pa", ca.pa, cb.pa);
      cmp.Bits(ct + " ns", ca.ns, cb.ns);
      cmp.Bits(ct + " pb", ca.pb, cb.pb);
      cmp.Bits(ct + " pd", ca.pd, cb.pd);
      cmp.Bits(ct + " plw", ca.plw, cb.plw);
      cmp.Bits(ct + " lh", ca.lh, cb.lh);
      cmp.Bits(ct + " nlk", ca.nlk, cb.nlk);
      cmp.Bits(ct + " sigma", ca.sigma, cb.sigma);
      cmp.Bits(ct + " r_lw", ca.r_lw_ms, cb.r_lw_ms);
      cmp.Bits(ct + " r_rw", ca.r_rw_ms, cb.r_rw_ms);
      cmp.Bits(ct + " r_cw", ca.r_cw_ms, cb.r_cw_ms);
      cmp.Bits(ct + " d_lw", ca.d_lw_ms, cb.d_lw_ms);
      cmp.Bits(ct + " d_rw", ca.d_rw_ms, cb.d_rw_ms);
      cmp.Bits(ct + " d_cw", ca.d_cw_ms, cb.d_cw_ms);
    }
  }
  if (!cmp.ok()) {
    *detail = "class members diverge: " + cmp.detail();
    return false;
  }
  return true;
}

// --- rule: cc-backend agreement at zero contention -------------------------

// On read-only workloads no lock is ever exclusive, so Pb = 0 exactly for
// every class and the LW phase is unreachable (its visit count is
// v(LR) * Pb). The backends differ only in Pd and R_LW — both multiplied by
// that zero — so every fixed-point trajectory, and with it throughput,
// response and the abort chain, is bit-identical across backends. (Pd, R_LW
// and the queue backend's locks-held estimate legitimately differ and are
// not compared.)
bool CheckBackendAgreement(const Scenario& s, const CheckOptions& opts,
                           std::string* detail, bool* applicable) {
  if (!AllPresentReadOnly(s.input)) return true;
  *applicable = true;
  const ModelSolution base = SolveModel(s.input, opts.solver);
  if (!base.ok) {
    *detail = "solver failed: " + base.error;
    return false;
  }
  for (cc::BackendKind kind : cc::kAllBackends) {
    if (kind == s.input.cc_backend) continue;
    ModelInput variant = s.input;
    variant.cc_backend = kind;
    const ModelSolution sol = SolveModel(variant, opts.solver);
    if (!sol.ok) {
      *detail = std::string("solver failed for ") + std::string(cc::Name(kind)) +
                ": " + sol.error;
      return false;
    }
    Cmp cmp(0.0);
    cmp.True("iteration counts differ", sol.iterations == base.iterations);
    cmp.True("converged flags differ", sol.converged == base.converged);
    for (std::size_t i = 0; i < base.sites.size() && cmp.ok(); ++i) {
      const SiteSolution& sa = base.sites[i];
      const SiteSolution& sb = sol.sites[i];
      const std::string at = "site " + std::to_string(i);
      cmp.Bits(at + " txn_per_s", sa.txn_per_s, sb.txn_per_s);
      cmp.Bits(at + " cpu_util", sa.cpu_utilization, sb.cpu_utilization);
      cmp.Bits(at + " db_util", sa.db_disk_utilization,
               sb.db_disk_utilization);
      for (TxnType t : model::kAllTxnTypes) {
        const ClassSolution& ca = sa.Class(t);
        const ClassSolution& cb = sb.Class(t);
        if (!ca.present) continue;
        const std::string ct = at + " " + std::string(model::Name(t));
        cmp.Bits(ct + " throughput", ca.throughput_per_s, cb.throughput_per_s);
        cmp.Bits(ct + " response", ca.response_ms, cb.response_ms);
        cmp.Bits(ct + " pa", ca.pa, cb.pa);
        cmp.Bits(ct + " ns", ca.ns, cb.ns);
        cmp.Bits(ct + " pb", ca.pb, cb.pb);
        cmp.Bits(ct + " plw", ca.plw, cb.plw);
        cmp.Bits(ct + " d_lw", ca.d_lw_ms, cb.d_lw_ms);
      }
    }
    if (!cmp.ok()) {
      *detail = std::string(cc::Name(kind)) +
                " diverges from " + std::string(cc::Name(s.input.cc_backend)) +
                " on a read-only scenario: " + cmp.detail();
      return false;
    }
  }
  return true;
}

// --- rule: queue-backend dominance -----------------------------------------

bool AnyPresentUpdate(const ModelInput& input) {
  for (const SiteParams& site : input.sites)
    for (TxnType t : model::kAllTxnTypes)
      if (site.Class(t).population > 0 && model::IsUpdate(t)) return true;
  return false;
}

std::uint64_t TotalCommits(const carat::TestbedResult& r) {
  std::uint64_t commits = 0;
  for (const carat::NodeResult& node : r.nodes)
    for (const carat::TypeResult& tr : node.types)
      if (tr.present) commits += tr.commits;
  return commits;
}

bool CheckBackendDominance(const Scenario& s, const CheckOptions& opts,
                           std::string* detail, bool* applicable) {
  (void)opts;
  if (!AnyPresentUpdate(s.input)) return true;  // nothing ever conflicts
  *applicable = true;
  carat::TestbedOptions topts;
  topts.seed = s.testbed_seed;
  topts.warmup_ms = s.warmup_ms;
  topts.measure_ms = s.measure_ms;

  // Exact half: ordered acquisition is deadlock-free by construction and a
  // queue transaction never aborts.
  ModelInput queued = s.input;
  queued.cc_backend = cc::BackendKind::kQueue;
  const carat::TestbedResult rq = RunTestbed(queued, topts);
  if (!rq.ok) {
    *detail = "queue testbed failed: " + rq.error;
    return false;
  }
  if (!rq.database_consistent) {
    *detail = "queue testbed database INCONSISTENT after run";
    return false;
  }
  std::uint64_t deadlocks = rq.global_deadlocks, aborts = 0;
  for (const carat::NodeResult& node : rq.nodes) {
    deadlocks += node.local_deadlocks;
    for (const carat::TypeResult& tr : node.types)
      if (tr.present) aborts += tr.aborts;
  }
  if (deadlocks != 0 || aborts != 0) {
    *detail = "queue backend recorded " + std::to_string(deadlocks) +
              " deadlock victim(s) and " + std::to_string(aborts) +
              " abort(s); both must be zero";
    return false;
  }

  // Comparative half, judged only where it is robust: when 2PL thrashes
  // (more deadlock victims than commits), the work it wastes re-running
  // victims dwarfs any convoying the upfront acquisition introduces, so the
  // deadlock-free backend must commit at least as much.
  ModelInput locked = s.input;
  locked.cc_backend = cc::BackendKind::k2PL;
  const carat::TestbedResult r2 = RunTestbed(locked, topts);
  if (!r2.ok) {
    *detail = "2pl testbed failed: " + r2.error;
    return false;
  }
  std::uint64_t victims = r2.global_deadlocks;
  for (const carat::NodeResult& node : r2.nodes)
    victims += node.local_deadlocks;
  const std::uint64_t commits_2pl = TotalCommits(r2);
  if (victims >= 50 && victims >= commits_2pl) {
    const std::uint64_t commits_q = TotalCommits(rq);
    if (commits_q < commits_2pl) {
      *detail = "thrashing 2PL (" + std::to_string(victims) +
                " victims) out-committed the queue backend: " +
                std::to_string(commits_2pl) + " vs " +
                std::to_string(commits_q);
      return false;
    }
  }
  return true;
}

// --- rule: non-2PL sharded testbed vs serial -------------------------------

bool CheckBackendShardIdentity(const Scenario& s, const CheckOptions& opts,
                               std::string* detail, bool* applicable) {
  (void)opts;
  if (s.input.sites.size() < 2) return true;  // shards clamp to site count
  // One non-2PL backend per scenario, drawn from the seed (deterministic);
  // kShardIdentity already covers the scenario's own backend.
  const cc::BackendKind kind =
      cc::kAllBackends[1 + s.testbed_seed % (cc::kNumBackends - 1)];
  if (kind == s.input.cc_backend) return true;
  *applicable = true;
  ModelInput variant = s.input;
  variant.cc_backend = kind;
  carat::TestbedOptions serial;
  serial.seed = s.testbed_seed;
  serial.warmup_ms = s.warmup_ms;
  serial.measure_ms = s.measure_ms;
  serial.shards = 1;
  carat::TestbedOptions sharded = serial;
  sharded.shards = static_cast<int>(s.input.sites.size());
  const carat::TestbedResult a = RunTestbed(variant, serial);
  const carat::TestbedResult b = RunTestbed(variant, sharded);
  if (!a.ok || !b.ok) {
    *detail = "testbed failed: " + a.error + b.error;
    return false;
  }
  if (TestbedResultFingerprint(a) != TestbedResultFingerprint(b)) {
    *detail = std::string(cc::Name(kind)) + " shards=" +
              std::to_string(sharded.shards) +
              " fingerprint differs from serial";
    return false;
  }
  return true;
}

}  // namespace

const char* RuleName(Rule r) {
  switch (r) {
    case Rule::kSitePermutation: return "site-permutation";
    case Rule::kChainSplit: return "chain-split";
    case Rule::kQnDemandScaling: return "qn-demand-scaling";
    case Rule::kModelDemandScaling: return "model-demand-scaling";
    case Rule::kLockMassScaling: return "lock-mass-scaling";
    case Rule::kGranuleInvariance: return "granule-invariance";
    case Rule::kBatchLaneIdentity: return "batch-lane-identity";
    case Rule::kShardIdentity: return "shard-identity";
    case Rule::kServeIdentity: return "serve-identity";
    case Rule::kExactVsSchweitzer: return "exact-vs-schweitzer";
    case Rule::kModelVsTestbed: return "model-vs-testbed";
    case Rule::kClassReplication: return "class-replication";
    case Rule::kBackendAgreement: return "backend-agreement";
    case Rule::kBackendDominance: return "backend-dominance";
    case Rule::kBackendShardIdentity: return "backend-shard-identity";
  }
  return "?";
}

bool RuleNeedsTestbed(Rule r) {
  return r == Rule::kShardIdentity || r == Rule::kModelVsTestbed ||
         r == Rule::kBackendDominance || r == Rule::kBackendShardIdentity;
}

void CheckStats::Merge(const CheckStats& other) {
  checked += other.checked;
  skipped += other.skipped;
  for (int i = 0; i < kNumRules; ++i) {
    per_rule_checked[i] += other.per_rule_checked[i];
    per_rule_violations[i] += other.per_rule_violations[i];
  }
}

bool CheckRule(const Scenario& s, Rule rule, const CheckOptions& opts,
               std::string* detail, bool* applicable) {
  std::string local_detail;
  bool local_applicable = false;
  if (detail == nullptr) detail = &local_detail;
  if (applicable == nullptr) applicable = &local_applicable;
  *applicable = false;
  detail->clear();
  switch (rule) {
    case Rule::kSitePermutation:
      return CheckSitePermutation(s, opts, detail, applicable);
    case Rule::kChainSplit:
      return CheckChainSplit(s, opts, detail, applicable);
    case Rule::kQnDemandScaling:
      return CheckQnDemandScaling(s, opts, detail, applicable);
    case Rule::kModelDemandScaling:
      return CheckModelDemandScaling(s, opts, detail, applicable);
    case Rule::kLockMassScaling:
      return CheckLockMassScaling(s, opts, detail, applicable);
    case Rule::kGranuleInvariance:
      return CheckGranuleInvariance(s, opts, detail, applicable);
    case Rule::kBatchLaneIdentity:
      return CheckBatchLaneIdentity(s, opts, detail, applicable);
    case Rule::kShardIdentity:
      return CheckShardIdentity(s, opts, detail, applicable);
    case Rule::kServeIdentity:
      return CheckServeIdentity(s, opts, detail, applicable);
    case Rule::kExactVsSchweitzer:
      return CheckExactVsSchweitzer(s, opts, detail, applicable);
    case Rule::kModelVsTestbed:
      return CheckModelVsTestbed(s, opts, detail, applicable);
    case Rule::kClassReplication:
      return CheckClassReplication(s, opts, detail, applicable);
    case Rule::kBackendAgreement:
      return CheckBackendAgreement(s, opts, detail, applicable);
    case Rule::kBackendDominance:
      return CheckBackendDominance(s, opts, detail, applicable);
    case Rule::kBackendShardIdentity:
      return CheckBackendShardIdentity(s, opts, detail, applicable);
  }
  return true;
}

std::vector<Violation> CheckScenario(const Scenario& s,
                                     const CheckOptions& opts,
                                     CheckStats* stats) {
  std::vector<Violation> violations;
  for (Rule rule : kAllRules) {
    if (RuleNeedsTestbed(rule) && !opts.with_testbed) continue;
    if (rule == Rule::kServeIdentity && !opts.with_serve) continue;
    std::string detail;
    bool applicable = false;
    const bool holds = CheckRule(s, rule, opts, &detail, &applicable);
    if (stats != nullptr) {
      if (applicable || !holds) {
        ++stats->checked;
        ++stats->per_rule_checked[static_cast<int>(rule)];
      } else {
        ++stats->skipped;
      }
    }
    if (!holds) {
      if (stats != nullptr)
        ++stats->per_rule_violations[static_cast<int>(rule)];
      violations.push_back(Violation{rule, std::move(detail), s});
    }
  }
  return violations;
}

}  // namespace carat::fuzz
