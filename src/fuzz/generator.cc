#include "fuzz/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cc/cc.h"
#include "workload/spec.h"

namespace carat::fuzz {

namespace {

using model::ClassParams;
using model::SiteParams;
using model::TxnType;

// Table 2 basic costs for one class, jittered around the paper's values.
// `scale` is a per-site multiplier (heterogeneous hardware), `jitter` draws
// a fresh +/-25% factor per field. The I/O counts stay at the paper's
// structural values (1 read; updates add journal + database writes) and
// dmio_disk_ms keeps the documented identity ios * block_io_ms.
void FillJitteredCosts(const workload::CostTable& base, double block_io_ms,
                       double scale, util::Rng* rng, TxnType t,
                       ClassParams* c) {
  auto jitter = [&](double v) { return v * scale * rng->NextLogUniform(0.8, 1.25); };
  const bool update = model::IsUpdate(t);
  const bool distributed = !model::IsLocal(t);
  c->u_cpu_ms = jitter(base.u_cpu);
  c->tm_cpu_ms = jitter(distributed ? base.tm_cpu_distributed : base.tm_cpu_local);
  c->dm_cpu_ms = jitter(update ? base.dm_cpu_update : base.dm_cpu_read);
  c->lr_cpu_ms = jitter(base.lr_cpu);
  c->dmio_cpu_ms = jitter(update ? base.dmio_cpu_update : base.dmio_cpu_read);
  c->dmio_read_ios = base.ios_read;
  c->dmio_write_ios = update ? base.ios_update - base.ios_read : 0.0;
  c->dmio_disk_ms =
      (c->dmio_read_ios + c->dmio_write_ios) * block_io_ms;
  c->DeriveDefaults(t);
}

int LogUniformInt(util::Rng* rng, int lo, int hi) {
  const double v = rng->NextLogUniform(static_cast<double>(lo),
                                       static_cast<double>(hi) + 0.999);
  return std::clamp(static_cast<int>(v), lo, hi);
}

// Letter names for the first 26 sites (the legacy scheme every corpus
// anchor was serialized with), numeric beyond that.
std::string SiteName(int i) {
  if (i < 26) return std::string("Node-") + static_cast<char>('A' + i);
  return "Node-" + std::to_string(i);
}

}  // namespace

Scenario GenerateScenario(util::Rng* rng, const GeneratorOptions& opts) {
  Scenario s;
  s.name = "gen";
  s.testbed_seed = (*rng)() | 1;  // nonzero

  const int num_sites = static_cast<int>(
      rng->NextIntIn(opts.min_sites, std::max(opts.min_sites, opts.max_sites)));
  // Class mode (site_classes > 0): draw K <= site_classes site templates and
  // replicate each to fill num_sites. The legacy mode is the degenerate
  // members-all-one case, so its Rng stream is untouched.
  std::vector<int> members;
  if (opts.site_classes > 0) {
    const int num_classes = std::min(
        static_cast<int>(rng->NextIntIn(1, std::max(1, opts.site_classes))),
        num_sites);
    members.assign(num_classes, 1);
    for (int r = num_classes; r < num_sites; ++r) {
      ++members[rng->NextBounded(static_cast<std::uint64_t>(num_classes))];
    }
  } else {
    members.assign(num_sites, 1);
  }
  const bool distributed_possible = opts.allow_distributed && num_sites >= 2;
  const bool read_only = !opts.allow_update || rng->NextDouble() < 0.15;

  // Shared workload shape. requests_per_txn >= 2 so coordinators always have
  // both a local and a remote share.
  const int requests_per_txn =
      static_cast<int>(rng->NextIntIn(2, std::max(2, opts.max_requests_per_txn)));
  const int records_per_request = static_cast<int>(rng->NextIntIn(1, 6));
  const int l_dist = (requests_per_txn + 1) / 2;
  const int r_dist = requests_per_txn - l_dist;
  const int other_sites = num_sites > 1 ? num_sites - 1 : 1;

  // Lock-contention tier: the number of granules relative to the aggregate
  // lock demand is what moves Pb across its whole range.
  const double tier = rng->NextDouble();
  int num_granules;
  if (tier < 0.4) num_granules = LogUniformInt(rng, 3000, 30000);       // low
  else if (tier < 0.8) num_granules = LogUniformInt(rng, 800, 3000);    // mid
  else num_granules = LogUniformInt(rng, 150, 800);                     // high

  // records_per_granule = 1 makes Yao's formula degenerate (q = k exactly),
  // which the granule-invariance rule needs; give it extra mass for
  // read-only scenarios where that rule applies.
  static constexpr int kGranuleSizes[] = {1, 2, 4, 6, 8};
  int records_per_granule;
  bool free_unlock = false;  // zero UL cost; see kGranuleInvariance
  if (read_only && rng->NextDouble() < 0.5) {
    records_per_granule = 1;
    // The testbed half of the granule-invariance rule needs the UL phase
    // free as well (its CPU cost is per *distinct* granule, and collision
    // rates depend on the granule count).
    free_unlock = rng->NextDouble() < 0.5;
  } else {
    records_per_granule = kGranuleSizes[rng->NextBounded(5)];
  }

  s.input.comm_delay_ms =
      (distributed_possible && opts.allow_comm_delay && rng->NextDouble() < 0.5)
          ? rng->NextLogUniform(0.05, 10.0)
          : 0.0;

  const workload::CostTable base_costs;
  int total_users = 0;
  std::vector<int> dro_at(num_sites, 0), du_at(num_sites, 0);
  s.input.sites.reserve(num_sites);

  for (std::size_t cls = 0; cls < members.size(); ++cls) {
    SiteParams site;
    site.num_granules = num_granules;
    site.records_per_granule = records_per_granule;
    site.block_io_ms = rng->NextLogUniform(8.0, 60.0);
    site.separate_log_disk = rng->NextDouble() < 0.2;
    site.think_time_ms = (opts.allow_think && rng->NextDouble() < 0.4)
                             ? rng->NextLogUniform(50.0, 2000.0)
                             : 0.0;
    if (opts.allow_skew && rng->NextDouble() < 0.25) {
      site.hot_data_fraction = rng->NextLogUniform(0.02, 0.3);
      site.hot_access_fraction =
          site.hot_data_fraction +
          (0.95 - site.hot_data_fraction) * rng->NextDouble();
    }
    if (opts.allow_buffer && rng->NextDouble() < 0.2) {
      site.buffer_blocks = std::max(
          1, static_cast<int>(num_granules * rng->NextLogUniform(0.05, 0.4)));
    }
    site.dm_pool_size = 0;  // unlimited, like the paper's experiments

    const double site_scale = rng->NextLogUniform(0.5, 2.0);
    const int max_pop = std::max(1, opts.max_population);
    const int lro_pop = static_cast<int>(rng->NextIntIn(0, max_pop));
    const int lu_pop = read_only ? 0 : static_cast<int>(rng->NextIntIn(0, max_pop));
    const int dro_pop =
        distributed_possible ? static_cast<int>(rng->NextIntIn(0, max_pop)) : 0;
    const int du_pop = (distributed_possible && !read_only)
                           ? static_cast<int>(rng->NextIntIn(0, max_pop))
                           : 0;

    ClassParams& lro = site.Class(TxnType::kLRO);
    lro.population = lro_pop;
    lro.local_requests = requests_per_txn;
    lro.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kLRO, &lro);

    ClassParams& lu = site.Class(TxnType::kLU);
    lu.population = lu_pop;
    lu.local_requests = requests_per_txn;
    lu.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kLU, &lu);

    ClassParams& droc = site.Class(TxnType::kDROC);
    droc.population = dro_pop;
    droc.local_requests = l_dist;
    droc.remote_requests = r_dist;
    droc.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kDROC, &droc);

    ClassParams& duc = site.Class(TxnType::kDUC);
    duc.population = du_pop;
    duc.local_requests = l_dist;
    duc.remote_requests = r_dist;
    duc.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kDUC, &duc);

    // Slave chains are filled in a second pass, once every site's
    // distributed user counts are known.
    ClassParams& dros = site.Class(TxnType::kDROS);
    dros.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kDROS, &dros);
    ClassParams& dus = site.Class(TxnType::kDUS);
    dus.records_per_request = records_per_request;
    FillJitteredCosts(base_costs, site.block_io_ms, site_scale, rng,
                      TxnType::kDUS, &dus);

    // Replicate the template: members differ only in name (so the solver's
    // byte-identity detection recovers exactly this class structure).
    for (int m = 0; m < members[cls]; ++m) {
      const int i = static_cast<int>(s.input.sites.size());
      dro_at[i] = dro_pop;
      du_at[i] = du_pop;
      total_users += lro_pop + lu_pop + dro_pop + du_pop;
      site.name = SiteName(i);
      s.input.sites.push_back(site);
    }
  }

  if (total_users == 0) {
    // Degenerate draw: give site 0 one local read-only user.
    s.input.sites[0].Class(TxnType::kLRO).population = 1;
  }
  if (free_unlock) {
    for (SiteParams& site : s.input.sites)
      for (TxnType t : model::kAllTxnTypes)
        site.Class(t).unlock_cpu_per_lock_ms = 0.0;
  }

  // Second pass: one slave chain per site serving the *other* sites'
  // distributed users, remote requests split evenly (workload/spec.cc
  // convention). Slave populations are capped at 2 * max_population so the
  // per-site MVA population does not grow with the site count — uncapped,
  // a 1024-site draw would put thousands of slave users at every site. The
  // cap equals the legacy maximum at the defaults (max_sites = 3:
  // elsewhere <= 2 * max_population), so default-option draws are
  // unchanged. Precomputed totals keep the pass O(sites); within one site
  // class every member sees the same `elsewhere` counts, so replicas stay
  // byte-identical.
  if (r_dist > 0) {
    int total_dro = 0, total_du = 0;
    for (int j = 0; j < num_sites; ++j) {
      total_dro += dro_at[j];
      total_du += du_at[j];
    }
    const int slave_cap = 2 * std::max(1, opts.max_population);
    for (int i = 0; i < num_sites; ++i) {
      const int dro_elsewhere = total_dro - dro_at[i];
      const int du_elsewhere = total_du - du_at[i];
      ClassParams& dros = s.input.sites[i].Class(TxnType::kDROS);
      dros.population = std::min(dro_elsewhere, slave_cap);
      dros.local_requests =
          dro_elsewhere > 0 ? std::max(r_dist / other_sites, 1) : 0;
      ClassParams& dus = s.input.sites[i].Class(TxnType::kDUS);
      dus.population = std::min(du_elsewhere, slave_cap);
      dus.local_requests =
          du_elsewhere > 0 ? std::max(r_dist / other_sites, 1) : 0;
    }
  }

  // Backend draw last: scenarios generated with allow_cc_backends = false
  // consume exactly the legacy stream.
  if (opts.allow_cc_backends && rng->NextDouble() >= 0.5) {
    s.input.cc_backend = cc::kAllBackends[
        1 + rng->NextBounded(static_cast<std::uint64_t>(cc::kNumBackends - 1))];
  }

  assert(s.input.Validate());
  return s;
}

}  // namespace carat::fuzz
