#include "fuzz/minimize.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

namespace carat::fuzz {

namespace {

using model::ClassParams;
using model::ModelInput;
using model::SiteParams;
using model::TxnType;

// Zeroes slave chains that lost their last coordinator (site or class
// removal can orphan them, which Validate rejects).
void RepairSlaves(ModelInput* input) {
  for (std::size_t j = 0; j < input->sites.size(); ++j) {
    for (TxnType s : {TxnType::kDROS, TxnType::kDUS}) {
      if (input->sites[j].Class(s).population == 0) continue;
      int coordinators = 0;
      for (std::size_t i = 0; i < input->sites.size(); ++i) {
        if (i == j) continue;
        coordinators += input->sites[i].Class(CoordinatorOf(s)).population;
      }
      if (coordinators == 0) input->sites[j].Class(s) = ClassParams{};
    }
  }
}

bool HasUsers(const ModelInput& input) {
  for (const SiteParams& site : input.sites)
    for (TxnType t : model::kAllTxnTypes)
      if (site.Class(t).population > 0) return true;
  return false;
}

// One shrink attempt: a transformed copy, or nullopt when the move does not
// apply / would produce an invalid scenario.
using Move = std::function<std::optional<Scenario>(const Scenario&)>;

std::optional<Scenario> Finish(Scenario cand) {
  RepairSlaves(&cand.input);
  if (!HasUsers(cand.input) || !cand.input.Validate()) return std::nullopt;
  return cand;
}

std::vector<Move> BuildMoves(const Scenario& shape_hint) {
  std::vector<Move> moves;

  // Drop one site (by current index; moves are re-derived every round).
  for (std::size_t drop = 0; drop < shape_hint.input.sites.size(); ++drop) {
    moves.push_back([drop](const Scenario& s) -> std::optional<Scenario> {
      if (s.input.sites.size() <= 1 || drop >= s.input.sites.size())
        return std::nullopt;
      Scenario cand = s;
      cand.input.sites.erase(cand.input.sites.begin() +
                             static_cast<std::ptrdiff_t>(drop));
      return Finish(std::move(cand));
    });
  }

  // Drop one class everywhere, then per (site, class).
  for (TxnType t : model::kAllTxnTypes) {
    moves.push_back([t](const Scenario& s) -> std::optional<Scenario> {
      Scenario cand = s;
      bool changed = false;
      for (SiteParams& site : cand.input.sites) {
        if (site.Class(t).population > 0) {
          site.Class(t) = ClassParams{};
          changed = true;
        }
      }
      if (!changed) return std::nullopt;
      return Finish(std::move(cand));
    });
  }
  for (std::size_t i = 0; i < shape_hint.input.sites.size(); ++i) {
    for (TxnType t : model::kAllTxnTypes) {
      moves.push_back([i, t](const Scenario& s) -> std::optional<Scenario> {
        if (i >= s.input.sites.size()) return std::nullopt;
        Scenario cand = s;
        if (cand.input.sites[i].Class(t).population == 0) return std::nullopt;
        cand.input.sites[i].Class(t) = ClassParams{};
        return Finish(std::move(cand));
      });
    }
  }

  // Halve populations / requests / records; shrink granules.
  auto for_each_class = [](Scenario s, auto fn) -> std::optional<Scenario> {
    bool changed = false;
    for (SiteParams& site : s.input.sites)
      for (TxnType t : model::kAllTxnTypes)
        if (site.Class(t).population > 0) changed |= fn(&site.Class(t));
    if (!changed) return std::nullopt;
    return Finish(std::move(s));
  };
  moves.push_back([for_each_class](const Scenario& s) {
    return for_each_class(s, [](ClassParams* c) {
      if (c->population <= 1) return false;
      c->population /= 2;
      return true;
    });
  });
  moves.push_back([for_each_class](const Scenario& s) {
    return for_each_class(s, [](ClassParams* c) {
      bool changed = false;
      if (c->local_requests > 1) {
        c->local_requests /= 2;
        changed = true;
      }
      if (c->remote_requests > 1) {
        c->remote_requests /= 2;
        changed = true;
      }
      return changed;
    });
  });
  moves.push_back([for_each_class](const Scenario& s) {
    return for_each_class(s, [](ClassParams* c) {
      if (c->records_per_request <= 1) return false;
      c->records_per_request = 1;
      return true;
    });
  });
  moves.push_back([](const Scenario& s) -> std::optional<Scenario> {
    Scenario cand = s;
    bool changed = false;
    for (SiteParams& site : cand.input.sites) {
      if (site.num_granules > 64) {
        site.num_granules /= 2;
        changed = true;
      }
    }
    if (!changed) return std::nullopt;
    return Finish(std::move(cand));
  });

  // Clear optional features.
  moves.push_back([](const Scenario& s) -> std::optional<Scenario> {
    Scenario cand = s;
    bool changed = false;
    for (SiteParams& site : cand.input.sites) {
      if (site.think_time_ms != 0.0) { site.think_time_ms = 0.0; changed = true; }
      if (site.hot_data_fraction != 0.0 || site.hot_access_fraction != 0.0) {
        site.hot_data_fraction = site.hot_access_fraction = 0.0;
        changed = true;
      }
      if (site.buffer_blocks != 0) { site.buffer_blocks = 0; changed = true; }
      if (site.separate_log_disk) { site.separate_log_disk = false; changed = true; }
      if (site.records_per_granule != 1) { site.records_per_granule = 1; changed = true; }
    }
    if (cand.input.comm_delay_ms != 0.0) {
      cand.input.comm_delay_ms = 0.0;
      changed = true;
    }
    if (!changed) return std::nullopt;
    return Finish(std::move(cand));
  });

  // Round every cost to one significant digit (repro readability), then try
  // forcing them all to a single flat value.
  auto round1 = [](double v) {
    if (v == 0.0) return 0.0;
    const double mag = std::pow(10.0, std::floor(std::log10(std::fabs(v))));
    return std::round(v / mag) * mag;
  };
  moves.push_back([round1](const Scenario& s) -> std::optional<Scenario> {
    Scenario cand = s;
    bool changed = false;
    auto touch = [&](double* v) {
      const double r = round1(*v);
      if (r != *v) { *v = r; changed = true; }
    };
    for (SiteParams& site : cand.input.sites) {
      touch(&site.block_io_ms);
      touch(&site.think_time_ms);
      for (TxnType t : model::kAllTxnTypes) {
        ClassParams& c = site.Class(t);
        touch(&c.u_cpu_ms); touch(&c.tm_cpu_ms); touch(&c.dm_cpu_ms);
        touch(&c.lr_cpu_ms); touch(&c.dmio_cpu_ms); touch(&c.dmio_disk_ms);
        touch(&c.init_cpu_ms); touch(&c.tc_cpu_ms); touch(&c.ta_fixed_cpu_ms);
        touch(&c.ta_cpu_per_granule_ms); touch(&c.unlock_cpu_per_lock_ms);
      }
    }
    touch(&cand.input.comm_delay_ms);
    if (!changed) return std::nullopt;
    return Finish(std::move(cand));
  });

  // Shrink the measurement window (testbed-backed rules re-run faster and
  // repro files replay faster).
  moves.push_back([](const Scenario& s) -> std::optional<Scenario> {
    if (s.measure_ms <= 50'000.0) return std::nullopt;
    Scenario cand = s;
    cand.measure_ms /= 2;
    cand.warmup_ms = std::min(cand.warmup_ms, cand.measure_ms / 4);
    return Finish(std::move(cand));
  });

  return moves;
}

}  // namespace

Scenario MinimizeScenario(const Scenario& start, Rule rule,
                          const CheckOptions& opts,
                          const MinimizeOptions& mopts, int* evals_used) {
  Scenario best = start;
  int evals = 0;
  auto still_violates = [&](const Scenario& cand) {
    ++evals;
    return !CheckRule(cand, rule, opts);
  };

  bool progress = true;
  while (progress && evals < mopts.max_evals) {
    progress = false;
    for (const Move& move : BuildMoves(best)) {
      if (evals >= mopts.max_evals) break;
      std::optional<Scenario> cand = move(best);
      if (!cand.has_value()) continue;
      if (still_violates(*cand)) {
        best = std::move(*cand);
        progress = true;
      }
    }
  }
  best.name = start.name + "-min";
  if (evals_used != nullptr) *evals_used = evals;
  return best;
}

}  // namespace carat::fuzz
