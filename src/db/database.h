// Block-granule database store for the testbed.
//
// Mirrors the paper's test database: N_g granules (512-byte disk blocks) of
// N_b records each per node. Records hold integer values so tests can verify
// transactional atomicity: committed updates persist, rolled-back updates
// vanish. Physical I/O *timing* is charged separately through the node's
// disk resource; this class only tracks logical state and access counts.

#ifndef CARAT_DB_DATABASE_H_
#define CARAT_DB_DATABASE_H_

#include <cstdint>
#include <vector>

namespace carat::db {

using RecordId = std::int64_t;
using GranuleId = std::int64_t;
using RecordValue = std::int64_t;

/// One node's partition of the database.
class Database {
 public:
  /// Creates `num_granules` granules of `records_per_granule` records, all
  /// initialized to zero.
  Database(GranuleId num_granules, int records_per_granule);

  GranuleId num_granules() const { return num_granules_; }
  int records_per_granule() const { return records_per_granule_; }
  RecordId num_records() const {
    return num_granules_ * records_per_granule_;
  }

  /// Granule containing a record.
  GranuleId GranuleOf(RecordId record) const {
    return record / records_per_granule_;
  }

  RecordValue Read(RecordId record) const { return values_[record]; }

  /// Overwrites a record (used by transactions and by rollback).
  void Write(RecordId record, RecordValue value) { values_[record] = value; }

  /// Snapshot of a whole granule's record values (the "before image" unit —
  /// journaling works at block granularity, like the testbed).
  std::vector<RecordValue> ReadGranule(GranuleId granule) const;

  /// Restores a granule from a before image.
  void WriteGranule(GranuleId granule, const std::vector<RecordValue>& image);

  /// Full content equality (used by recovery tests).
  bool ContentEquals(const Database& other) const {
    return values_ == other.values_;
  }

 private:
  GranuleId num_granules_;
  int records_per_granule_;
  std::vector<RecordValue> values_;
};

}  // namespace carat::db

#endif  // CARAT_DB_DATABASE_H_
