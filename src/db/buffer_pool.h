// Shared database buffer (LRU over granules).
//
// The paper's testbed had no shared buffer - its model assumption list says
// "a shared database buffer is not used to reduce database I/O" - and lists
// database buffering as future work. This pool implements that extension
// for the testbed; the analytical side uses a working-set hit approximation
// (model/solver.cc). Content always lives in db::Database; the pool only
// tracks residency, so a rollback's in-place restore never goes stale.

#ifndef CARAT_DB_BUFFER_POOL_H_
#define CARAT_DB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "db/database.h"

namespace carat::db {

class BufferPool {
 public:
  explicit BufferPool(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  /// Records an access to `granule`. Returns true on a hit; on a miss the
  /// granule becomes resident, evicting the least recently used block if
  /// the pool is full.
  bool Touch(GranuleId granule);

  bool Resident(GranuleId granule) const { return map_.contains(granule); }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRatio() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Forgets the counters (not the residency state - a warm cache stays
  /// warm across a measurement-window reset).
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::size_t capacity_;
  std::list<GranuleId> lru_;  // front = most recent
  std::unordered_map<GranuleId, std::list<GranuleId>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace carat::db

#endif  // CARAT_DB_BUFFER_POOL_H_
