#include "db/database.h"

#include <cassert>

namespace carat::db {

Database::Database(GranuleId num_granules, int records_per_granule)
    : num_granules_(num_granules),
      records_per_granule_(records_per_granule),
      values_(static_cast<std::size_t>(num_granules * records_per_granule),
              0) {
  assert(num_granules > 0 && records_per_granule > 0);
}

std::vector<RecordValue> Database::ReadGranule(GranuleId granule) const {
  const std::size_t begin =
      static_cast<std::size_t>(granule) * records_per_granule_;
  return std::vector<RecordValue>(values_.begin() + begin,
                                  values_.begin() + begin +
                                      records_per_granule_);
}

void Database::WriteGranule(GranuleId granule,
                            const std::vector<RecordValue>& image) {
  assert(static_cast<int>(image.size()) == records_per_granule_);
  const std::size_t begin =
      static_cast<std::size_t>(granule) * records_per_granule_;
  for (int i = 0; i < records_per_granule_; ++i) values_[begin + i] = image[i];
}

}  // namespace carat::db
