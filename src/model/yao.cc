#include "model/yao.h"

#include <algorithm>
#include <cmath>

namespace carat::model {

double YaoExpectedBlocks(long long total_records, long long total_blocks,
                         long long selected_records) {
  if (total_blocks <= 0 || total_records <= 0) return 0.0;
  if (selected_records <= 0) return 0.0;
  selected_records = std::min(selected_records, total_records);

  const double n = static_cast<double>(total_records);
  const double m = static_cast<double>(total_blocks);
  const double d = n / m;  // records per block

  // P[a given block untouched] = prod_{i=1..k} (n - d - i + 1) / (n - i + 1).
  // Computed in log space for numerical robustness at large k.
  double log_p = 0.0;
  for (long long i = 1; i <= selected_records; ++i) {
    const double numer = n - d - static_cast<double>(i) + 1.0;
    const double denom = n - static_cast<double>(i) + 1.0;
    if (numer <= 0.0) return m;  // block certainly touched
    log_p += std::log(numer) - std::log(denom);
  }
  return m * (1.0 - std::exp(log_p));
}

double MeanIosPerRequest(long long total_records, long long total_blocks,
                         int requests, int records_per_request) {
  if (requests <= 0) return 0.0;
  const double g = YaoExpectedBlocks(
      total_records, total_blocks,
      static_cast<long long>(requests) * records_per_request);
  return g / requests;
}

double YaoExpectedBlocksReal(double total_records, double total_blocks,
                             double selected_records) {
  if (total_blocks <= 0.0 || total_records <= 0.0) return 0.0;
  if (selected_records <= 0.0) return 0.0;
  selected_records = std::min(selected_records, total_records);
  const double n = total_records;
  const double m = total_blocks;
  const double d = n / m;
  if (n - d - selected_records + 1.0 <= 0.0) return m;
  // log C(n-d, k) - log C(n, k) via lgamma.
  const double log_p = std::lgamma(n - d + 1.0) -
                       std::lgamma(n - d - selected_records + 1.0) -
                       std::lgamma(n + 1.0) +
                       std::lgamma(n - selected_records + 1.0);
  return m * (1.0 - std::exp(log_p));
}

double AccessSkew::ContentionFactor() const {
  if (IsUniform()) return 1.0;
  const double s = hot_data_fraction;
  const double a = std::min(hot_access_fraction, 1.0);
  return a * a / s + (1.0 - a) * (1.0 - a) / (1.0 - s);
}

double YaoExpectedBlocksSkewed(long long total_records, long long total_blocks,
                               long long selected_records,
                               const AccessSkew& skew) {
  if (skew.IsUniform()) {
    return YaoExpectedBlocks(total_records, total_blocks, selected_records);
  }
  const double s = skew.hot_data_fraction;
  const double a = std::min(skew.hot_access_fraction, 1.0);
  const double hot_blocks = s * static_cast<double>(total_blocks);
  const double cold_blocks = static_cast<double>(total_blocks) - hot_blocks;
  const double hot_records = s * static_cast<double>(total_records);
  const double cold_records = static_cast<double>(total_records) - hot_records;
  const double k = static_cast<double>(selected_records);
  return YaoExpectedBlocksReal(hot_records, hot_blocks, a * k) +
         YaoExpectedBlocksReal(cold_records, cold_blocks, (1.0 - a) * k);
}

}  // namespace carat::model
