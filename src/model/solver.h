// The CARAT queueing network model solver (Section 6 of the paper).
//
// The model is a set of interacting per-site closed queueing networks. The
// synchronization delays (lock wait LW, remote wait RW, two-phase-commit
// wait CW) and the deadlock probabilities depend on the networks' own
// performance measures, so the solver iterates: solve each Site Processing
// Model by MVA, recompute the lock/remote/commit submodel quantities from
// the solutions, damp, and repeat to a fixed point.

#ifndef CARAT_MODEL_SOLVER_H_
#define CARAT_MODEL_SOLVER_H_

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/params.h"
#include "model/types.h"
#include "qn/ethernet.h"

namespace carat::exec {
class ThreadPool;
}  // namespace carat::exec

namespace carat::model {

/// Converged per-(type, site) quantities.
struct ClassSolution {
  bool present = false;         ///< population > 0
  double throughput_per_s = 0;  ///< commits per second, X(t,i)
  double response_ms = 0;       ///< per-commit cycle time R(t,i) (excl. Z)
  double pa = 0;                ///< per-submission abort probability (Eq. 3)
  double ns = 1;                ///< mean submissions per commit (Eq. 4)
  double pb = 0;                ///< per-lock-request blocking prob (Eq. 15)
  double pd = 0;                ///< deadlock-victim prob per block
  double plw = 0;               ///< blocks at least once per execution (Eq.16)
  double lh = 0;                ///< time-average locks held (Eq. 14)
  double nlk = 0;               ///< lock requests per execution (Eq. 2)
  double sigma = 1;             ///< abort progress fraction E[Y]/N_lk
  double io_per_request = 0;    ///< q(t), from Yao's formula
  double r_lw_ms = 0;           ///< per-visit lock wait delay (Eq. 20)
  double r_rw_ms = 0;           ///< per-visit remote wait delay (Eqs. 21-24)
  double r_cw_ms = 0;           ///< per-visit 2PC wait delay, commit path
  double d_lw_ms = 0;           ///< per-commit LW demand, D_LW (Eq. 7)
  double d_rw_ms = 0;           ///< per-commit RW demand, D_RW (Eq. 8)
  double d_cw_ms = 0;           ///< per-commit CW demand, D_CW (Eq. 9)
};

/// Converged per-site quantities.
struct SiteSolution {
  std::string name;
  double cpu_utilization = 0;
  double db_disk_utilization = 0;
  double log_disk_utilization = 0;  ///< 0 unless separate_log_disk
  double dio_per_s = 0;             ///< block I/Os per second (all disks)
  double txn_per_s = 0;             ///< commits/s of locally-homed txns
  double records_per_s = 0;         ///< normalized record throughput
  std::array<ClassSolution, kNumTxnTypes> classes;

  const ClassSolution& Class(TxnType t) const { return classes[Index(t)]; }
};

struct ModelSolution {
  bool ok = false;
  bool converged = false;
  int iterations = 0;
  /// True when this solve was seeded from a compatible WarmStart (the seed
  /// shifts the fixed-point trajectory, not the fixed point itself).
  bool warm_started = false;
  std::string error;
  std::vector<SiteSolution> sites;

  /// The inter-site delay used at convergence: ModelInput::comm_delay_ms,
  /// or the Ethernet model's output when SolverOptions::ethernet is set.
  double comm_delay_ms = 0.0;

  /// System-wide commits per second (locals + coordinators).
  double TotalTxnPerSec() const;
  /// System-wide normalized record throughput.
  double TotalRecordsPerSec() const;
};

/// An explicit site-class partition for hierarchical solving: sites mapped
/// to the same class are treated as replicas of one representative site
/// (Thomasian's flow-equivalent aggregation). The solver validates that all
/// members of a class share the representative's chain-presence pattern and
/// log-disk layout (the coupling topology depends on those); members whose
/// *other* parameters differ from the representative's are solved as if they
/// were the representative — an approximation the caller opts into
/// (DESIGN.md §14 states the tolerance class). Class ids need not be dense
/// or ordered; the solver renumbers them by first occurrence.
struct SiteClassSpec {
  std::vector<std::size_t> class_of_site;  ///< one entry per site
};

/// Solver options.
struct SolverOptions {
  int max_iterations = 500;
  double tolerance = 1e-9;   ///< relative change threshold on throughputs
  double damping = 0.5;      ///< weight of the newly computed estimates
  double max_abort_prob = 0.95;  ///< clamp on P_a to keep N_s finite
  bool use_exact_mva = true; ///< false forces Schweitzer-Bard at every site

  /// Fraction of a blocker's own lock-wait time counted in the blocking time
  /// RLT (Eq. 18). The paper's derivation effectively uses the full response
  /// time (fraction 1), but that makes the LW fixed point non-contractive at
  /// high contention; 0 uses only active execution time. The default models
  /// convoys partially while keeping the iteration stable (DESIGN.md §4).
  double blocker_wait_fraction = 0.5;

  /// Hierarchical site-class solving (DESIGN.md §14). The solver always
  /// groups byte-identical sites into classes and couples them through
  /// class-aggregated sums (the flat per-site-pair coupling lists were
  /// quadratic in the site count); with this flag set it additionally runs
  /// the fixed point and the per-site MVA solves over one *representative*
  /// site per class and expands the class solution to the members, making
  /// each iteration O(classes) instead of O(sites). Collapsed and flat
  /// solves of the same input are bit-identical (identical sites have
  /// identical trajectories either way) except under a warm seed whose
  /// values differ *within* a class — there the flat trajectory, though not
  /// the fixed point, can deviate; turn the flag off to reproduce such a
  /// flat trajectory exactly.
  bool collapse_site_classes = true;

  /// Optional explicit partition overriding byte-identity class detection.
  /// Borrowed, not owned; must outlive the solve. When set, its size must
  /// match the input's site count and every class must be presence-uniform,
  /// else the solve fails with ok = false.
  const SiteClassSpec* site_classes = nullptr;

  /// Worker pool for solving the per-site MVA networks concurrently inside
  /// each fixed-point iteration. The sites are independent given the
  /// previous iteration's delays, so the solution is bit-identical whether
  /// this is null (serial) or any pool size. The pool is borrowed, not
  /// owned, and may be shared across concurrent Solve() calls.
  exec::ThreadPool* pool = nullptr;

  /// Communication Network Model (Section 3): when set, the solver derives
  /// the inter-site delay alpha from the model's own message rate through
  /// the Ethernet contention model each iteration (instead of using the
  /// fixed ModelInput::comm_delay_ms), closing the low-level/high-level
  /// loop the paper describes.
  std::optional<qn::EthernetParams> ethernet;
  /// Mean message size in bits for the Ethernet model (CARAT requests fit
  /// one message; 1000 bytes is a generous envelope).
  double message_bits = 8000.0;
};

/// Converged fixed-point state of a previous solve, usable to seed a new
/// solve of a *nearby* input (same shape, slightly different populations or
/// request counts). Seeding starts the iteration from the neighbor's
/// blocking probabilities and synchronization delays instead of zero, which
/// cuts the iteration count on sweep-shaped query streams; the converged
/// answer is the same fixed point either way (within the solver tolerance).
struct WarmStart {
  struct ClassSeed {
    bool present = false;
    double pb = 0.0;        ///< blocking probability per lock request
    double pd = 0.0;        ///< deadlock-victim probability per block
    double pra = 0.0;       ///< abort probability per remote-wait visit
    double r_lw_ms = 0.0;   ///< per-visit lock wait delay
    double r_rw_ms = 0.0;   ///< per-visit remote wait delay
    double r_cwc_ms = 0.0;  ///< per-visit 2PC wait delay, commit path
    double r_cwa_ms = 0.0;  ///< per-visit 2PC wait delay, abort path
  };
  std::vector<std::array<ClassSeed, kNumTxnTypes>> sites;
  double comm_delay_ms = 0.0;

  /// A seed applies only to inputs with the same site count and per-site
  /// chain presence pattern; Solve() silently starts cold otherwise.
  bool CompatibleWith(const ModelInput& input) const;
};

/// Reusable cross-solve state: the per-site MVA networks, workspaces and
/// iteration buffers of CaratModel::SolveInto. Keyed to the input's *shape*
/// (SolveShapeKey); consecutive solves of same-shape inputs through one
/// arena perform zero heap allocations once warm. An arena must not be used
/// by two solves concurrently.
class SolveArena {
 public:
  SolveArena();
  ~SolveArena();
  SolveArena(SolveArena&&) noexcept;
  SolveArena& operator=(SolveArena&&) noexcept;

 private:
  friend class CaratModel;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Canonical key of the solve-relevant *shape* of an input: site count,
/// per-site chain presence and log-disk layout, plus the detected site-class
/// partition (byte-identical sites grouped by first occurrence), so a
/// collapsed 2-class input never shares arenas, warm seeds or batch lanes
/// with an all-distinct input of the same presence pattern. Inputs with
/// equal shape keys can share a SolveArena and are candidates for
/// warm-start seeding.
std::string SolveShapeKey(const ModelInput& input);

/// Reusable cross-solve state of CaratModel::SolveBatchInto: one lane of
/// SolveArena-equivalent state per scenario plus the shared per-site lockstep
/// MVA workspaces (qn::BatchMvaWorkspace). Keyed to the batch's shape and
/// lane count; an arena must not be used by two batch solves concurrently.
class BatchSolveArena {
 public:
  BatchSolveArena();
  ~BatchSolveArena();
  BatchSolveArena(BatchSolveArena&&) noexcept;
  BatchSolveArena& operator=(BatchSolveArena&&) noexcept;

 private:
  friend class CaratModel;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The model. Construct with a validated ModelInput and call Solve().
class CaratModel {
 public:
  explicit CaratModel(ModelInput input);

  /// Runs the fixed-point iteration. On input validation failure returns
  /// ok = false with an error message; otherwise ok = true and `converged`
  /// reports whether the tolerance was met within max_iterations.
  ModelSolution Solve(const SolverOptions& options = {}) const;

  /// Warm-start entry point: `warm`, when non-null and compatible, seeds the
  /// fixed point from a neighbor's converged state; `warm_out`, when
  /// non-null, receives this solve's converged state for seeding future
  /// solves. A cold solve (warm == nullptr) is bit-identical to Solve().
  ModelSolution Solve(const SolverOptions& options, const WarmStart* warm,
                      WarmStart* warm_out = nullptr) const;

  /// Allocation-free core: solves into caller-owned `out` reusing `arena`
  /// (nullptr uses a throwaway arena). With a warm arena of matching shape
  /// and a reused `out`, the whole solve performs zero heap allocations.
  void SolveInto(const SolverOptions& options, SolveArena* arena,
                 const WarmStart* warm, ModelSolution* out,
                 WarmStart* warm_out = nullptr) const;

  /// Lockstep batch solve: advances `lanes` same-shape scenarios through the
  /// fixed point together, solving every site's MVA across all scenarios via
  /// the SoA batch kernels (qn/mva_batch.h). Lane w's ModelSolution is
  /// bit-identical to `CaratModel(*inputs[w]).SolveInto(...)` with the same
  /// options and seed: each lane executes exactly the scalar step sequence
  /// and the batch MVA kernels are bit-identical per lane by contract. A
  /// lane that converges early freezes while the others continue. (The
  /// identity assumes matching retained MVA warm state — e.g. both arenas
  /// fresh. After a batch solve, an early-frozen lane's retained Schweitzer
  /// state includes post-freeze refinement at frozen demands, so a later
  /// *seeded* re-solve through the same arena reaches the same fixed point
  /// within tolerance rather than bit-exactly.)
  ///
  /// `inputs` and `outs` are arrays of `lanes` pointers; `seeds` and
  /// `warm_outs` may be nullptr (or hold per-lane nullptrs). All lanes must
  /// share a SolveShapeKey — a mismatched lane fails with an error and does
  /// not disturb its neighbors. `arena` may be nullptr for a throwaway.
  static void SolveBatchInto(const ModelInput* const* inputs,
                             std::size_t lanes, const SolverOptions& options,
                             BatchSolveArena* arena,
                             const WarmStart* const* seeds,
                             ModelSolution* const* outs,
                             WarmStart* const* warm_outs = nullptr);

  const ModelInput& input() const { return input_; }

 private:
  ModelInput input_;
};

}  // namespace carat::model

#endif  // CARAT_MODEL_SOLVER_H_
