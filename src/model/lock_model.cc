#include "model/lock_model.h"

#include <algorithm>
#include <cmath>

namespace carat::model {

namespace {

// Can a request issued by type `t` conflict with locks held by type `s`?
// Shared requests (read-only types) conflict only with exclusive holders.
bool CanBeBlockedBy(TxnType t, TxnType s) {
  if (IsReadOnly(t)) return IsUpdate(s);
  return true;  // exclusive requests conflict with every holder
}

// Total lock mass that can block a type-t request (the Eq. 15 denominator
// contribution), excluding the requester's own locks.
double BlockableLockMass(const SiteLockInputs& in, TxnType t) {
  double sum = 0.0;
  for (TxnType s : kAllTxnTypes) {
    if (!CanBeBlockedBy(t, s)) continue;
    sum += in.population[Index(s)] * in.locks_held[Index(s)];
    if (s == t) sum -= in.locks_held[Index(t)];  // never self-blocked
  }
  return std::max(sum, 0.0);
}

}  // namespace

double ExpectedLocksAtAbort(double pbpd, double nlk) {
  if (nlk <= 0.0) return 0.0;
  // The closed form below subtracts two O(1/p) terms; for tiny hazards it
  // cancels catastrophically, so use the uniform limit (truncated geometric
  // -> uniform on {0..N_lk-1}) when the total hazard is negligible.
  if (pbpd * nlk < 1e-6) return (nlk - 1.0) / 2.0;
  if (pbpd >= 1.0) return 0.0;  // always dies on the first request
  // E[Y] = (1-p)/p - N_lk * s^N_lk / (1 - s^N_lk), the mean of a truncated
  // geometric distribution on {0, ..., N_lk - 1} (Eq. 11). s^N_lk and
  // 1 - s^N_lk are computed via log1p/expm1 for stability.
  const double log_s = std::log1p(-pbpd);
  const double sn = std::exp(nlk * log_s);
  const double one_minus_sn = -std::expm1(nlk * log_s);
  if (one_minus_sn <= 0.0) return 0.0;
  return (1.0 - pbpd) / pbpd - nlk * sn / one_minus_sn;
}

double SigmaFraction(double pbpd, double nlk) {
  if (nlk <= 0.0) return 1.0;
  if (pbpd <= 0.0) return 1.0;
  return std::clamp(ExpectedLocksAtAbort(pbpd, nlk) / nlk, 0.0, 1.0);
}

double AverageLocksHeld(double nlk, double sigma, double pa, double rs,
                        double rut) {
  if (nlk <= 0.0 || rs <= 0.0) return 0.0;
  const double rf = sigma * rs;
  const double numer = (1.0 - (1.0 - sigma * sigma) * pa) * rs;
  const double denom = pa * rf + (1.0 - pa) * rs + rut;
  if (denom <= 0.0) return 0.0;
  return 0.5 * nlk * numer / denom;  // Eq. 14
}

double BlockingProbability(const SiteLockInputs& in, TxnType t) {
  if (in.num_granules <= 0.0) return 0.0;
  const double pb =
      in.contention_factor * BlockableLockMass(in, t) / in.num_granules;
  return std::clamp(pb, 0.0, 1.0);
}

double BlockAtLeastOnceProbability(double pb, double nlk) {
  if (nlk <= 0.0) return 0.0;
  const double p = std::clamp(pb, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - p, nlk);
}

double BlockerTypeProbability(const SiteLockInputs& in, TxnType t, TxnType s) {
  if (!CanBeBlockedBy(t, s)) return 0.0;
  const double denom = BlockableLockMass(in, t);
  if (denom <= 0.0) return 0.0;
  double mass = in.population[Index(s)] * in.locks_held[Index(s)];
  if (s == t) mass -= in.locks_held[Index(t)];
  return std::max(mass, 0.0) / denom;
}

double DeadlockVictimProbability(const SiteLockInputs& in, TxnType t) {
  const double nt = in.population[Index(t)];
  if (nt <= 0.0) return 0.0;
  double pd = 0.0;
  for (TxnType s : kAllTxnTypes) {
    const double pb_ts = BlockerTypeProbability(in, t, s);
    if (pb_ts <= 0.0) continue;
    const double s_blocked = in.block_prob_per_execution[Index(s)];
    if (s_blocked <= 0.0) continue;
    const double pb_st = BlockerTypeProbability(in, s, t);
    if (pb_st <= 0.0) continue;
    pd += pb_ts * s_blocked * pb_st / nt;
  }
  return std::clamp(pd, 0.0, 1.0);
}

double BlockingRatio(double nlk) {
  if (nlk <= 0.0) return 1.0 / 3.0;
  return (2.0 * nlk + 1.0) / (6.0 * nlk);  // Eq. 19
}

double MeanBlockingTime(double nlk_blocker, double blocker_execution_ms) {
  return BlockingRatio(nlk_blocker) * blocker_execution_ms;  // Eq. 18
}

double LockWaitDelay(const SiteLockInputs& in, TxnType t,
                     const std::array<double, kNumTxnTypes>& rlt) {
  double delay = 0.0;
  for (TxnType s : kAllTxnTypes) {
    delay += BlockerTypeProbability(in, t, s) * rlt[Index(s)];  // Eq. 20
  }
  return delay;
}

}  // namespace carat::model
