// Yao's formula [YAO77]: expected number of distinct blocks touched when k
// records are selected without replacement from n records stored uniformly
// in m blocks of n/m records each. Used to estimate g(t), the mean granules
// accessed per transaction (Section 5.2 of the paper), from which the mean
// disk I/Os per request q(t) = g(t)/n(t) follows.

#ifndef CARAT_MODEL_YAO_H_
#define CARAT_MODEL_YAO_H_

namespace carat::model {

/// Expected distinct blocks accessed. `total_records` = n, `total_blocks` =
/// m (records per block = n/m), `selected_records` = k. Returns m when
/// k >= n - n/m + 1 (every block certainly touched) and handles k = 0.
double YaoExpectedBlocks(long long total_records, long long total_blocks,
                         long long selected_records);

/// Mean disk I/Os per request for a transaction issuing `requests` requests
/// of `records_per_request` records each: q = g / requests.
double MeanIosPerRequest(long long total_records, long long total_blocks,
                         int requests, int records_per_request);

/// Real-valued Yao: expected distinct blocks for non-integer `selected`
/// (needed when a selection count is itself an expectation, e.g. the hot
/// and cold shares of a skewed access stream). Computed with lgamma:
///   P[block untouched] = C(n - d, k) / C(n, k).
double YaoExpectedBlocksReal(double total_records, double total_blocks,
                             double selected_records);

/// Hot/cold access skew: `hot_data_fraction` of the blocks receive
/// `hot_access_fraction` of the accesses (uniform within each region).
struct AccessSkew {
  double hot_data_fraction = 1.0;    ///< s; 1 (or <=0) means uniform
  double hot_access_fraction = 1.0;  ///< a; accesses landing in the hot set

  bool IsUniform() const {
    return hot_data_fraction <= 0.0 || hot_data_fraction >= 1.0 ||
           hot_access_fraction <= 0.0;
  }

  /// Lock-collision inflation factor relative to uniform access:
  /// f = a^2/s + (1-a)^2/(1-s); 1 for uniform (a = s).
  double ContentionFactor() const;
};

/// Expected distinct blocks touched by `selected` accesses under skew: the
/// two regions are sampled independently with their expected shares.
double YaoExpectedBlocksSkewed(long long total_records, long long total_blocks,
                               long long selected_records,
                               const AccessSkew& skew);

}  // namespace carat::model

#endif  // CARAT_MODEL_YAO_H_
