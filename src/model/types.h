// Transaction types of the CARAT model (Section 4.2 of the paper).
//
// The workload has four user-visible types (LRO, LU, DRO, DU); the model
// decomposes each distributed transaction into a coordinator chain at its
// home site and a slave chain at each participating site, giving the six
// model types T = {LRO, LU, DROC, DUC, DROS, DUS}.

#ifndef CARAT_MODEL_TYPES_H_
#define CARAT_MODEL_TYPES_H_

#include <array>
#include <string_view>

namespace carat::model {

enum class TxnType : int {
  kLRO = 0,   ///< local read-only
  kLU = 1,    ///< local update
  kDROC = 2,  ///< distributed read-only, coordinator chain
  kDUC = 3,   ///< distributed update, coordinator chain
  kDROS = 4,  ///< distributed read-only, slave chain
  kDUS = 5,   ///< distributed update, slave chain
};

inline constexpr int kNumTxnTypes = 6;

inline constexpr std::array<TxnType, kNumTxnTypes> kAllTxnTypes = {
    TxnType::kLRO,  TxnType::kLU,   TxnType::kDROC,
    TxnType::kDUC,  TxnType::kDROS, TxnType::kDUS,
};

inline constexpr int Index(TxnType t) { return static_cast<int>(t); }

/// True for types that take exclusive locks (update transactions).
inline constexpr bool IsUpdate(TxnType t) {
  return t == TxnType::kLU || t == TxnType::kDUC || t == TxnType::kDUS;
}

inline constexpr bool IsReadOnly(TxnType t) { return !IsUpdate(t); }

/// True for coordinator chains of distributed transactions.
inline constexpr bool IsCoordinator(TxnType t) {
  return t == TxnType::kDROC || t == TxnType::kDUC;
}

/// True for slave chains of distributed transactions.
inline constexpr bool IsSlave(TxnType t) {
  return t == TxnType::kDROS || t == TxnType::kDUS;
}

/// True for purely local transaction types.
inline constexpr bool IsLocal(TxnType t) {
  return t == TxnType::kLRO || t == TxnType::kLU;
}

/// The slave chain type matching a coordinator chain type.
inline constexpr TxnType SlaveOf(TxnType coordinator) {
  return coordinator == TxnType::kDROC ? TxnType::kDROS : TxnType::kDUS;
}

/// The coordinator chain type matching a slave chain type.
inline constexpr TxnType CoordinatorOf(TxnType slave) {
  return slave == TxnType::kDROS ? TxnType::kDROC : TxnType::kDUC;
}

inline constexpr std::string_view Name(TxnType t) {
  switch (t) {
    case TxnType::kLRO: return "LRO";
    case TxnType::kLU: return "LU";
    case TxnType::kDROC: return "DROC";
    case TxnType::kDUC: return "DUC";
    case TxnType::kDROS: return "DROS";
    case TxnType::kDUS: return "DUS";
  }
  return "?";
}

}  // namespace carat::model

#endif  // CARAT_MODEL_TYPES_H_
