#include "model/cc_submodel.h"

#include <algorithm>

namespace carat::model {

namespace {

// The paper's 2PL machinery (Eqs. 15-20). This is the exact operation
// sequence StepLockModel ran before the backend split: pass 1 computes the
// undamped Pb / P_lw / RLT per type, pass 2 reads them back for Pd and R_LW.
// Nothing here may be reordered — the solver's 2PL fixed point is pinned
// bitwise by the pre-backend fingerprints.
void Solve2PL(SiteLockInputs& li,
              const std::array<CcClassInputs, kNumTxnTypes>& cls,
              CcSiteOutputs* out) {
  std::array<double, kNumTxnTypes> rlt{};
  for (TxnType t : kAllTxnTypes) {
    const CcClassInputs& c = cls[Index(t)];
    if (!c.present) continue;
    out->pb[Index(t)] = BlockingProbability(li, t);
    out->plw[Index(t)] =
        BlockAtLeastOnceProbability(out->pb[Index(t)], c.nlk);
    rlt[Index(t)] = MeanBlockingTime(c.nlk, c.rexec);
  }
  li.block_prob_per_execution = out->plw;
  for (TxnType t : kAllTxnTypes) {
    if (!cls[Index(t)].present) continue;
    out->pd[Index(t)] = DeadlockVictimProbability(li, t);
    out->r_lw[Index(t)] = LockWaitDelay(li, t, rlt);
  }
}

// Restart-oriented backends share the conflict probability with 2PL; they
// differ in what a conflict costs. `die_prob` is the share of conflicts
// that abort: 1 for no-waiting. For wait-die a uniformly random conflict
// pair would give 1/2, but every restart re-enters with a fresh — hence
// youngest — id, so restarted requesters die again on almost any conflict;
// 3/4 is the first-order blend of the two regimes.
void SolveRestart(SiteLockInputs& li,
                  const std::array<CcClassInputs, kNumTxnTypes>& cls,
                  double die_prob, double backoff_ms, CcSiteOutputs* out) {
  std::array<double, kNumTxnTypes> rlt{};
  for (TxnType t : kAllTxnTypes) {
    const CcClassInputs& c = cls[Index(t)];
    if (!c.present) continue;
    out->pb[Index(t)] = BlockingProbability(li, t);
    out->plw[Index(t)] =
        BlockAtLeastOnceProbability(out->pb[Index(t)], c.nlk);
    rlt[Index(t)] = MeanBlockingTime(c.nlk, c.rexec);
  }
  li.block_prob_per_execution = out->plw;
  for (TxnType t : kAllTxnTypes) {
    if (!cls[Index(t)].present) continue;
    out->pd[Index(t)] = die_prob;
    // A dying conflict costs one restart backoff; a surviving one (wait-die
    // only) queues like 2PL.
    out->r_lw[Index(t)] = die_prob * backoff_ms +
                          (1.0 - die_prob) * LockWaitDelay(li, t, rlt);
  }
}

// Queue-oriented backend: ordered upfront acquisition. No conflict is ever
// fatal (Pd = 0), but a lock is held from upfront acquisition to commit —
// the blocker's whole residency, not just its execution. A blocked
// acquisition therefore waits half the blocker's residency on average,
// mixed over blocker classes by their locks-held share (same PB mixing as
// the 2PL R_LW, Eq. 20, with the blocker's remaining time 0.5 * rs(s)
// instead of the 2PL remaining-execution term). Two guards keep the fixed
// point contractive where the testbed's pipelined execution stays live:
// the blocker's own acquisition wait is subtracted from its holding time
// (a transaction does not hold a node's locks while still waiting for
// them), and — because acquisition is a single upfront pass whose waits on
// distinct holders overlap — the whole execution pays the wait at most
// once: the solver charges LW per conflict (N_lk * Pb of them per
// execution), so R_LW is normalized to make the total LW demand
// P_lw * LockWaitDelay. Without either guard the residency-wait feedback
// compounds and throughput collapses to near zero under high contention,
// the opposite of the testbed's behaviour.
void SolveQueue(SiteLockInputs& li,
                const std::array<CcClassInputs, kNumTxnTypes>& cls,
                CcSiteOutputs* out) {
  std::array<double, kNumTxnTypes> rlt{};
  for (TxnType t : kAllTxnTypes) {
    const CcClassInputs& c = cls[Index(t)];
    if (!c.present) continue;
    out->pb[Index(t)] = BlockingProbability(li, t);
    out->plw[Index(t)] =
        BlockAtLeastOnceProbability(out->pb[Index(t)], c.nlk);
    rlt[Index(t)] = 0.5 * std::max(c.rs - c.lw, 0.0);
  }
  li.block_prob_per_execution = out->plw;
  for (TxnType t : kAllTxnTypes) {
    const CcClassInputs& c = cls[Index(t)];
    if (!c.present) continue;
    out->pd[Index(t)] = 0.0;
    const double expected_conflicts = c.nlk * out->pb[Index(t)];
    out->r_lw[Index(t)] =
        expected_conflicts > 0.0
            ? out->plw[Index(t)] * LockWaitDelay(li, t, rlt) /
                  expected_conflicts
            : 0.0;
  }
}

}  // namespace

void SolveCcSite(cc::BackendKind kind, double restart_backoff_ms,
                 SiteLockInputs li,
                 const std::array<CcClassInputs, kNumTxnTypes>& cls,
                 CcSiteOutputs* out) {
  *out = CcSiteOutputs{};
  switch (kind) {
    case cc::BackendKind::k2PL:
      Solve2PL(li, cls, out);
      return;
    case cc::BackendKind::kNoWait:
      SolveRestart(li, cls, 1.0, restart_backoff_ms, out);
      return;
    case cc::BackendKind::kWaitDie:
      SolveRestart(li, cls, 0.75, restart_backoff_ms, out);
      return;
    case cc::BackendKind::kQueue:
      SolveQueue(li, cls, out);
      return;
  }
}

}  // namespace carat::model
