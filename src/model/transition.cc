#include "model/transition.h"

#include <array>
#include <cmath>
#include <cstddef>
#include <utility>

namespace carat::model {

namespace {

TransitionMatrix Zero() {
  TransitionMatrix m{};
  for (auto& row : m) row.fill(0.0);
  return m;
}

double& At(TransitionMatrix& m, Phase from, Phase to) {
  return m[Index(from)][Index(to)];
}

// Transitions shared by every chain variant: the DM/LR/DMIO loop, the abort
// and commit tails, and the return to user think.
void FillCommonTail(const TransitionInputs& in, TransitionMatrix* m) {
  const double q = in.io_per_request;
  At(*m, Phase::kDM, Phase::kTM) = 1.0 / (q + 1.0);
  At(*m, Phase::kDM, Phase::kLR) = q / (q + 1.0);
  At(*m, Phase::kLR, Phase::kDMIO) = 1.0 - in.pb;
  At(*m, Phase::kLR, Phase::kLW) = in.pb;
  At(*m, Phase::kDMIO, Phase::kDM) = 1.0;
  At(*m, Phase::kLW, Phase::kDMIO) = 1.0 - in.pd;
  At(*m, Phase::kLW, Phase::kTA) = in.pd;
  At(*m, Phase::kTC, Phase::kCWC) = 1.0;
  At(*m, Phase::kTA, Phase::kCWA) = 1.0;
  At(*m, Phase::kCWC, Phase::kTCIO) = 1.0;
  At(*m, Phase::kCWA, Phase::kTAIO) = 1.0;
  At(*m, Phase::kTCIO, Phase::kUL) = 1.0;
  At(*m, Phase::kTAIO, Phase::kUL) = 1.0;
  At(*m, Phase::kUL, Phase::kUT) = 1.0;
}

}  // namespace

TransitionMatrix BuildLocalOrCoordinatorMatrix(const TransitionInputs& in) {
  TransitionMatrix m = Zero();
  const double n = in.local_requests + in.remote_requests;
  const double c = 2.0 * n + 1.0;  // C(t) = 2 n(t) + 1

  At(m, Phase::kUT, Phase::kINIT) = 1.0;
  At(m, Phase::kINIT, Phase::kU) = 1.0;
  At(m, Phase::kU, Phase::kTM) = 1.0;
  At(m, Phase::kTM, Phase::kU) = n / c;
  At(m, Phase::kTM, Phase::kDM) = in.local_requests / c;
  At(m, Phase::kTM, Phase::kRW) = in.remote_requests / c;
  At(m, Phase::kTM, Phase::kTC) = 1.0 / c;
  At(m, Phase::kRW, Phase::kTM) = 1.0 - in.pra;
  At(m, Phase::kRW, Phase::kTA) = in.pra;
  FillCommonTail(in, &m);
  return m;
}

TransitionMatrix BuildSlaveMatrix(const TransitionInputs& in) {
  TransitionMatrix m = Zero();
  const double l = in.local_requests;
  const double c = 2.0 * l + 1.0;

  // A slave lies dormant in UT until the first REMDO of the next global
  // transaction arrives, which is TM work.
  At(m, Phase::kUT, Phase::kTM) = 1.0;
  At(m, Phase::kTM, Phase::kDM) = l / c;
  At(m, Phase::kTM, Phase::kRW) = l / c;
  At(m, Phase::kTM, Phase::kTC) = 1.0 / c;
  At(m, Phase::kRW, Phase::kTM) = 1.0 - in.pra;
  At(m, Phase::kRW, Phase::kTA) = in.pra;
  FillCommonTail(in, &m);
  return m;
}

TransitionMatrix BuildTransitionMatrix(TxnType type, const TransitionInputs& in) {
  return IsSlave(type) ? BuildSlaveMatrix(in)
                       : BuildLocalOrCoordinatorMatrix(in);
}

bool SolveVisitCounts(const TransitionMatrix& p, VisitCounts* v) {
  // Unknowns: V_c for the 15 phases other than UT; V_UT is fixed at 1.
  // Equations: V_c = sum_e V_e * p[e][c]  for c != UT.
  constexpr int kUt = Index(Phase::kUT);
  constexpr std::size_t n = kNumPhases - 1;

  // Map phase index -> unknown index (skip UT).
  auto unknown = [](int phase) { return phase < kUt ? phase : phase - 1; };

  // The system is a fixed 15x15, so it lives entirely on the stack: this
  // runs once per (site, type) per fixed-point iteration, and the model's
  // warm solve path must stay heap-allocation free. The elimination below
  // mirrors util::SolveLinearSystem operation for operation (same pivoting,
  // same update order), so the visit counts are bit-identical to the
  // heap-based solver it replaces.
  std::array<double, n * n> a{};
  std::array<double, n> b{};
  for (int c = 0; c < kNumPhases; ++c) {
    if (c == kUt) continue;
    const std::size_t row = unknown(c);
    a[row * n + unknown(c)] += 1.0;
    for (int e = 0; e < kNumPhases; ++e) {
      if (e == kUt) {
        b[row] += p[e][c];  // V_UT = 1 contributes to the constant term
      } else {
        a[row * n + unknown(e)] -= p[e][c];
      }
    }
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double value = std::fabs(a[r * n + col]);
      if (value > best) {
        best = value;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c)
        std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }

  std::array<double, n> x{};
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i * n + c] * x[c];
    x[i] = acc / a[i * n + i];
  }

  (*v)[kUt] = 1.0;
  for (int c = 0; c < kNumPhases; ++c) {
    if (c == kUt) continue;
    (*v)[c] = x[unknown(c)];
  }
  return true;
}

}  // namespace carat::model
