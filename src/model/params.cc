#include "model/params.h"

namespace carat::model {

void ClassParams::DeriveDefaults(TxnType type) {
  init_cpu_ms = 2.0 * tm_cpu_ms + dm_cpu_ms;
  tc_cpu_ms = IsCoordinator(type) ? 2.0 * tm_cpu_ms : tm_cpu_ms;
  tcio_force_writes = IsSlave(type) ? 2.0 : 1.0;
  ta_fixed_cpu_ms = tm_cpu_ms;
  if (IsUpdate(type)) {
    ta_cpu_per_granule_ms = dmio_cpu_ms;
    taio_ios_per_granule = 2.0;
  } else {
    ta_cpu_per_granule_ms = 0.0;
    taio_ios_per_granule = 0.0;
  }
}

bool ModelInput::Validate(std::string* error) const {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (sites.empty()) return fail("no sites");
  if (comm_delay_ms < 0) return fail("negative communication delay");
  if (restart_backoff_ms < 0) return fail("negative restart backoff");
  for (const SiteParams& site : sites) {
    if (site.num_granules <= 0) return fail("num_granules must be positive");
    if (site.records_per_granule <= 0)
      return fail("records_per_granule must be positive");
    if (site.block_io_ms < 0) return fail("negative block I/O time");
    if (site.think_time_ms < 0) return fail("negative think time");
    for (TxnType t : kAllTxnTypes) {
      const ClassParams& c = site.Class(t);
      if (c.population < 0) return fail("negative population");
      if (c.population == 0) continue;
      if (c.local_requests < 0 || c.remote_requests < 0)
        return fail("negative request count");
      if (IsLocal(t) && c.remote_requests != 0)
        return fail("local type with remote requests");
      if (IsSlave(t) && c.remote_requests != 0)
        return fail("slave chain with remote requests");
      if (IsCoordinator(t) && c.remote_requests == 0)
        return fail("coordinator with no remote requests");
      if (c.total_requests() <= 0) return fail("class with no requests");
      if (c.records_per_request <= 0)
        return fail("records_per_request must be positive");
    }
  }
  // Slave populations must have matching coordinators somewhere else.
  // Precomputing the per-type totals keeps this O(sites) — the naive
  // per-slave rescan was quadratic and its int accumulator could overflow
  // at thousands of sites. 64-bit totals are safe: populations are ints,
  // so the sum stays below sites * INT_MAX.
  for (TxnType s : {TxnType::kDROS, TxnType::kDUS}) {
    const TxnType t = CoordinatorOf(s);
    long long total_coordinators = 0;
    for (const SiteParams& site : sites) {
      total_coordinators += site.Class(t).population;
    }
    for (const SiteParams& site : sites) {
      if (site.Class(s).population == 0) continue;
      if (total_coordinators - site.Class(t).population == 0)
        return fail("slave chain without any coordinator");
    }
  }
  return true;
}

}  // namespace carat::model
