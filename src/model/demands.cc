#include "model/demands.h"

#include "model/phases.h"

namespace carat::model {

ClassDemands ComputeDemands(const SiteParams& site, TxnType t,
                            const VisitCounts& visits, double ns, double sigma,
                            double nlk, const PhaseDelays& delays,
                            double buffer_hit_prob) {
  const ClassParams& c = site.Class(t);
  auto v = [&visits](Phase p) { return visits[Index(p)]; };

  // Granules already updated when an abort strikes: locks are acquired
  // uniformly, so sigma * N_lk granules were touched (all of them updated,
  // for update types).
  const double undo_granules = sigma * nlk;

  ClassDemands d;

  // --- CPU (Eq. 5) ----------------------------------------------------------
  double cpu = 0.0;
  cpu += v(Phase::kINIT) * c.init_cpu_ms;
  cpu += v(Phase::kU) * c.u_cpu_ms;
  cpu += v(Phase::kTM) * c.tm_cpu_ms;
  cpu += v(Phase::kDM) * c.dm_cpu_ms;
  cpu += v(Phase::kLR) * c.lr_cpu_ms;
  cpu += v(Phase::kDMIO) * c.dmio_cpu_ms;
  cpu += v(Phase::kTC) * c.tc_cpu_ms;
  cpu += v(Phase::kTA) * c.ta_fixed_cpu_ms;
  cpu += v(Phase::kTAIO) * c.ta_cpu_per_granule_ms * undo_granules;
  // Unlock: committed executions release all N_lk locks, aborted executions
  // the sigma * N_lk held at the abort. V_TCIO and V_TAIO are exactly the
  // per-execution commit and abort probabilities.
  cpu += c.unlock_cpu_per_lock_ms *
         (v(Phase::kTCIO) * nlk + v(Phase::kTAIO) * undo_granules);
  d.cpu_ms = ns * cpu;

  // --- Disk (Eq. 6) ---------------------------------------------------------
  // With a buffer, the read portion of each granule access hits with
  // probability buffer_hit_prob; journal and database writes always go to
  // disk (write-through, as required by before-image journaling).
  const double dmio_per_visit =
      site.buffer_blocks > 0
          ? ((1.0 - buffer_hit_prob) * c.dmio_read_ios + c.dmio_write_ios) *
                site.block_io_ms
          : c.dmio_disk_ms;
  const double db_io = ns * v(Phase::kDMIO) * dmio_per_visit;
  const double commit_io =
      ns * v(Phase::kTCIO) * c.tcio_force_writes * site.block_io_ms;
  // Rollback I/O: taio_ios_per_granule I/Os per updated granule (journal
  // read + database write), applied to the granules updated before the abort.
  const double abort_io = ns * v(Phase::kTAIO) * c.taio_ios_per_granule *
                          undo_granules * site.block_io_ms;
  if (site.separate_log_disk) {
    d.db_disk_ms = db_io + 0.5 * abort_io;  // database-side writes
    d.log_disk_ms = commit_io + 0.5 * abort_io;  // journal-side reads/writes
  } else {
    d.db_disk_ms = db_io + commit_io + abort_io;
    d.log_disk_ms = 0.0;
  }

  // --- Synchronization delay centers (Eqs. 7-10) -----------------------------
  d.lw_ms = ns * v(Phase::kLW) * delays.r_lw_ms;
  d.rw_ms = ns * v(Phase::kRW) * delays.r_rw_ms;
  d.cw_ms = ns * (v(Phase::kCWC) * delays.r_cwc_ms +
                  v(Phase::kCWA) * delays.r_cwa_ms);
  d.ut_ms = (ns - 1.0) * site.think_time_ms;

  return d;
}

}  // namespace carat::model
