// Input parameter structures for the CARAT queueing network model.
//
// The "basic parameters" follow Table 2 of the paper: per transaction type
// and site, the per-visit CPU costs of the U, TM, DM, LR and DMIO phases and
// the per-visit disk cost of the DMIO phase (all in milliseconds). The
// remaining phase costs (INIT, TC, TCIO, TA, TAIO, UL) were derived from
// measurements in [JENQ86], which is not available; DeriveDefaults() below
// reconstructs them from the basic parameters with documented rules (see
// DESIGN.md section 4).

#ifndef CARAT_MODEL_PARAMS_H_
#define CARAT_MODEL_PARAMS_H_

#include <array>
#include <string>
#include <vector>

#include "cc/cc.h"
#include "model/types.h"

namespace carat::model {

/// Per-(type, site) workload and cost parameters.
struct ClassParams {
  /// Number of transactions of this type resident at this site, N(t,i).
  int population = 0;

  /// Local requests per execution, l(t). For slave chains this is the number
  /// of remote requests they serve on behalf of their coordinator.
  int local_requests = 0;

  /// Remote requests per execution, r(t); zero except for coordinators.
  int remote_requests = 0;

  /// Database records accessed per request (4 in all paper experiments).
  int records_per_request = 4;

  // --- Table 2 basic parameters (ms per phase visit) -----------------------
  double u_cpu_ms = 0.0;     ///< R_U^(cpu)
  double tm_cpu_ms = 0.0;    ///< R_TM^(cpu)
  double dm_cpu_ms = 0.0;    ///< R_DM^(cpu)
  double lr_cpu_ms = 0.0;    ///< R_LR^(cpu)
  double dmio_cpu_ms = 0.0;  ///< R_DMIO^(cpu)
  double dmio_disk_ms = 0.0; ///< R_DMIO^(disk) (3x block time for updates)

  /// Breakdown of the DMIO block transfers per granule access: one read
  /// (skippable on a buffer hit) plus, for updates, the journal and
  /// database writes. dmio_disk_ms must equal (reads + writes) * block time
  /// when no buffer is configured.
  double dmio_read_ios = 1.0;
  double dmio_write_ios = 0.0;

  // --- Reconstructed phase costs (see DeriveDefaults) ----------------------
  double init_cpu_ms = 0.0;          ///< INIT phase CPU
  double tc_cpu_ms = 0.0;            ///< commit processing CPU
  double tcio_force_writes = 1.0;    ///< log force-writes in TCIO
  double ta_fixed_cpu_ms = 0.0;      ///< abort handling CPU, fixed part
  double ta_cpu_per_granule_ms = 0.0;///< undo CPU per updated granule
  double taio_ios_per_granule = 0.0; ///< undo I/Os per updated granule
  double unlock_cpu_per_lock_ms = 0.3;

  /// Total requests per execution, n(t).
  int total_requests() const { return local_requests + remote_requests; }

  /// Records accessed per execution at this chain's site(s).
  int records_accessed() const {
    return total_requests() * records_per_request;
  }

  /// Fills the reconstructed phase costs from the basic parameters:
  ///   INIT = 2*TM + DM (TBEGIN and DBOPEN round trips);
  ///   TC   = TM for locals and slaves, 2*TM for coordinators (two commit
  ///          rounds of message processing);
  ///   TCIO = 1 force-write for locals and coordinators, 2 for slaves
  ///          (prepare force + commit write);
  ///   TA   = TM fixed + DMIO-CPU per updated granule;
  ///   TAIO = 2 I/Os per updated granule (journal read + database write),
  ///          0 for read-only types.
  void DeriveDefaults(TxnType type);
};

/// Per-site parameters.
struct SiteParams {
  std::string name;

  /// Number of lockable granules (database disk blocks), N_g.
  int num_granules = 3000;

  /// Database records per granule, N_b.
  int records_per_granule = 6;

  /// Service time of one block I/O on this site's database disk (ms):
  /// 28 for the paper's Node A (DEC RM05), 40 for Node B (DEC RP06).
  double block_io_ms = 28.0;

  /// When true, commit-log force writes (TCIO) and rollback I/O (TAIO) go to
  /// a separate log disk instead of sharing the database disk. The paper's
  /// testbed was forced to share one disk; this switch enables the ablation
  /// the paper says "would not be done in practice".
  bool separate_log_disk = false;

  /// Mean user think time between transactions, R_UT (0 in all experiments).
  double think_time_ms = 0.0;

  /// Access skew (extension; the paper assumes uniform random access):
  /// `hot_data_fraction` of the granules receive `hot_access_fraction` of
  /// the accesses. Zero values mean uniform.
  double hot_data_fraction = 0.0;
  double hot_access_fraction = 0.0;

  /// Shared database buffer in blocks (extension; the paper's assumption
  /// list rules a buffer out, so 0 = no buffer reproduces the paper).
  /// The testbed uses a real LRU pool; the model uses a working-set hit
  /// approximation (see BufferHitProbability in solver.cc).
  int buffer_blocks = 0;

  /// Size of the DM server pool ("fixed and determined at system start-up
  /// time" in CARAT). A DM server is held by a transaction for its lifetime
  /// at the node. 0 = unlimited (the paper's experiments sized the pool so
  /// that it never throttled). Testbed-only: like the paper, the analytical
  /// model assumes an adequate pool. Caution: pools smaller than the number
  /// of distributed transactions can themselves deadlock (a real hazard of
  /// the architecture); the testbed's probes do not chase DM-pool waits.
  int dm_pool_size = 0;

  /// Per-transaction-type parameters, indexed by Index(TxnType).
  std::array<ClassParams, kNumTxnTypes> classes;

  ClassParams& Class(TxnType t) { return classes[Index(t)]; }
  const ClassParams& Class(TxnType t) const { return classes[Index(t)]; }

  /// Total records stored at the site.
  long long total_records() const {
    return static_cast<long long>(num_granules) * records_per_granule;
  }
};

/// Full model input: the set of interacting Site Processing Models plus the
/// communication delay from the Communication Network Model.
struct ModelInput {
  std::vector<SiteParams> sites;

  /// Mean one-way inter-site message delay alpha (ms). Negligible on the
  /// paper's two-node Ethernet; see qn/ethernet.h for a model that computes
  /// it under contention.
  double comm_delay_ms = 0.0;

  /// Concurrency-control backend, applied uniformly across the mesh: selects
  /// the testbed's conflict handling and the model's paired CcSubmodel (see
  /// model/cc_submodel.h). Defaults to the paper's 2PL + probes.
  cc::BackendKind cc_backend = cc::BackendKind::k2PL;

  /// Mean restart backoff for the restart-oriented backends (ms): the
  /// testbed delays a failed submission uniformly on [0.5, 1.5] * mean, the
  /// CcSubmodel charges the mean per dying conflict. Unused by 2PL/queue.
  /// A time-dimension input like comm_delay_ms, so k-scaling scales it.
  double restart_backoff_ms = cc::kRestartBackoffMeanMs;

  /// Sanity checks; returns false and sets *error on malformed input.
  bool Validate(std::string* error = nullptr) const;
};

}  // namespace carat::model

#endif  // CARAT_MODEL_PARAMS_H_
