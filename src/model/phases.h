// Transaction execution phases (Section 4.1 of the paper).

#ifndef CARAT_MODEL_PHASES_H_
#define CARAT_MODEL_PHASES_H_

#include <array>
#include <string_view>

namespace carat::model {

/// The phases a transaction passes through during one execution. A phase is
/// a state of the Site Processing Model's embedded Markov chain; Table 1 of
/// the paper gives the transition probabilities.
enum class Phase : int {
  kUT = 0,    ///< user think wait between executions
  kINIT = 1,  ///< transaction initialization (TBEGIN / DBOPEN processing)
  kU = 2,     ///< user application processing
  kTM = 3,    ///< TM server processing of a message
  kDM = 4,    ///< DM server processing between lock requests
  kLR = 5,    ///< lock request processing (incl. local deadlock detection)
  kDMIO = 6,  ///< database disk I/O burst
  kLW = 7,    ///< blocked on a lock
  kRW = 8,    ///< waiting for a remote request / response
  kTC = 9,    ///< commit processing (2PC CPU)
  kTA = 10,   ///< abort/rollback processing (CPU)
  kTCIO = 11, ///< commit log force-write I/O
  kTAIO = 12, ///< rollback I/O (restore before-images)
  kCWC = 13,  ///< two-phase-commit wait, commit path
  kCWA = 14,  ///< two-phase-commit wait, abort path
  kUL = 15,   ///< unlock processing (release all locks)
};

inline constexpr int kNumPhases = 16;

inline constexpr int Index(Phase p) { return static_cast<int>(p); }

inline constexpr std::array<Phase, kNumPhases> kAllPhases = {
    Phase::kUT,   Phase::kINIT, Phase::kU,    Phase::kTM,
    Phase::kDM,   Phase::kLR,   Phase::kDMIO, Phase::kLW,
    Phase::kRW,   Phase::kTC,   Phase::kTA,   Phase::kTCIO,
    Phase::kTAIO, Phase::kCWC,  Phase::kCWA,  Phase::kUL,
};

inline constexpr std::string_view Name(Phase p) {
  switch (p) {
    case Phase::kUT: return "UT";
    case Phase::kINIT: return "INIT";
    case Phase::kU: return "U";
    case Phase::kTM: return "TM";
    case Phase::kDM: return "DM";
    case Phase::kLR: return "LR";
    case Phase::kDMIO: return "DMIO";
    case Phase::kLW: return "LW";
    case Phase::kRW: return "RW";
    case Phase::kTC: return "TC";
    case Phase::kTA: return "TA";
    case Phase::kTCIO: return "TCIO";
    case Phase::kTAIO: return "TAIO";
    case Phase::kCWC: return "CWC";
    case Phase::kCWA: return "CWA";
    case Phase::kUL: return "UL";
  }
  return "?";
}

}  // namespace carat::model

#endif  // CARAT_MODEL_PHASES_H_
