// Pluggable concurrency-control submodels, one per cc::BackendKind: the
// analytical counterpart of the testbed's CC backends. Each submodel maps
// the site's current contention state to the four quantities the fixed
// point iterates — Pb (conflict probability per lock request), Pd (the
// probability a conflict is fatal, i.e. forces a restart), P_lw (conflicts
// at least once per execution) and R_LW (mean delay per conflict).
//
// - k2PL reproduces the paper's Eqs. 15-20 bitwise (it is the exact
//   operation sequence the solver ran before backends existed).
// - kNoWait: every conflict aborts the requester on the spot (Pd = 1) and
//   costs one restart backoff instead of a queueing delay.
// - kWaitDie: restarted requesters re-enter with fresh (youngest) ids and
//   die again on almost any conflict, so more than the uniform-pair half
//   of the conflicts die (backoff); the survivors wait the 2PL queueing
//   delay.
// - kQueue: deterministic ordered acquisition never deadlocks (Pd = 0);
//   every lock is held from upfront acquisition to commit, so a conflict
//   waits on a blocker that is mid-residency — half a residency on
//   average, mixed over blocker classes.
//
// Pure functions; the solver damps the outputs (see StepLockModel).

#ifndef CARAT_MODEL_CC_SUBMODEL_H_
#define CARAT_MODEL_CC_SUBMODEL_H_

#include <array>

#include "cc/cc.h"
#include "model/lock_model.h"
#include "model/types.h"

namespace carat::model {

/// Per-type inputs to a CC submodel beyond SiteLockInputs.
struct CcClassInputs {
  bool present = false;
  double nlk = 0.0;    ///< lock requests per execution
  double rexec = 0.0;  ///< mean execution duration (success/abort mix), ms
  double rs = 0.0;     ///< successful-execution duration incl. waits, ms
  double lw = 0.0;     ///< lock-wait demand per commit cycle, ms
};

/// Per-type outputs, indexed by Index(TxnType); zero for absent types.
struct CcSiteOutputs {
  std::array<double, kNumTxnTypes> pb{};
  std::array<double, kNumTxnTypes> pd{};
  std::array<double, kNumTxnTypes> plw{};
  std::array<double, kNumTxnTypes> r_lw{};
};

/// Solves one site's CC submodel for backend `kind`. `li.locks_held` must
/// already reflect the backend's holding pattern (the solver's duration
/// step computes it; see AverageLocksHeld vs the queue backend's
/// whole-execution holding). `li.block_prob_per_execution` is an output of
/// this function's first pass and need not be filled by the caller.
/// `restart_backoff_ms` is ModelInput::restart_backoff_ms (read by the
/// restart-oriented backends only).
void SolveCcSite(cc::BackendKind kind, double restart_backoff_ms,
                 SiteLockInputs li,
                 const std::array<CcClassInputs, kNumTxnTypes>& cls,
                 CcSiteOutputs* out);

}  // namespace carat::model

#endif  // CARAT_MODEL_CC_SUBMODEL_H_
