#include "model/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "cc/cc.h"
#include "exec/thread_pool.h"
#include "model/cc_submodel.h"
#include "model/demands.h"
#include "model/lock_model.h"
#include "model/phases.h"
#include "model/transition.h"
#include "model/yao.h"
#include "qn/mva.h"
#include "qn/mva_batch.h"

namespace carat::model {

namespace {

// Mutable per-(site, type) iteration state.
struct ClassState {
  bool present = false;
  double q = 0.0;        // granule accesses (I/O bursts) per request
  double lock_ratio = 1.0;  // distinct locks / total accesses (re-access
                            // never blocks, so Pb applies to this share)
  double nlk = 0.0;    // lock requests per execution (Eq. 2)
  double pb = 0.0;     // blocking probability per lock request
  double pd = 0.0;     // deadlock-victim probability per block
  double pra = 0.0;    // abort probability per remote-wait visit
  double sigma = 1.0;  // abort progress fraction
  double pa = 0.0;     // per-submission abort probability
  double ns = 1.0;     // submissions per commit
  double plw = 0.0;    // blocks at least once per execution
  double lh = 0.0;     // time-average locks held
  double rs = 0.0;     // successful-execution duration
  double rexec = 0.0;  // mean execution duration (success/abort mix)
  PhaseDelays delays;  // r_lw / r_rw / r_cwc / r_cwa
  VisitCounts visits{};
  ClassDemands demands;
  double x = 0.0;      // throughput, commits per ms
  double r = 0.0;      // per-commit response (excl. Z), ms
};

struct SiteState {
  std::array<ClassState, kNumTxnTypes> cls;
  double cpu_util = 0.0;
  double db_util = 0.0;
  double log_util = 0.0;
  // Mean queue lengths from the site MVA, used to approximate the queueing
  // experienced by commit/abort message processing (arrival theorem).
  double cpu_q = 0.0;
  double db_q = 0.0;
  double log_q = 0.0;
};

// Per-site MVA network, built once per Solve() and updated in place each
// fixed-point iteration (only the chain demands change). The workspace
// persists across iterations, so the MVA solves allocate nothing after the
// first iteration and Schweitzer-Bard warm-starts from the previous
// iteration's queue lengths.
struct SiteNetwork {
  qn::ClosedNetwork net;
  std::size_t cpu = 0, disk = 0, log_disk = 0;
  std::size_t lw = 0, rw = 0, cw = 0, ut = 0;
  std::vector<TxnType> chain_types;
  double buffer_hit_prob = 0.0;
  qn::MvaWorkspace ws;
  bool mva_ok = true;
  std::string mva_error;
};

// ---- Site classes (hierarchical solving, DESIGN.md §14). -------------------
// Byte-identical sites (every solve-relevant parameter equal; the display
// name is excluded) form one class. The coupling sums below iterate over
// classes with multiplicities instead of over peer sites, which keeps the
// coupling state O(classes) instead of the old O(sites^2) lists and — when
// collapsing — makes a whole fixed-point iteration O(classes).

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvHash(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

void AppendRaw(const void* p, std::size_t n, std::string* out) {
  out->append(static_cast<const char*>(p), n);
}
void AppendF64(double v, std::string* out) { AppendRaw(&v, sizeof(v), out); }
void AppendI64(long long v, std::string* out) { AppendRaw(&v, sizeof(v), out); }

// Canonical byte image of every SiteParams field the solver reads. Two sites
// are replicas exactly when their blobs match byte for byte.
void AppendSiteBlob(const SiteParams& site, std::string* blob) {
  AppendI64(site.num_granules, blob);
  AppendI64(site.records_per_granule, blob);
  AppendF64(site.block_io_ms, blob);
  blob->push_back(site.separate_log_disk ? '\1' : '\0');
  AppendF64(site.think_time_ms, blob);
  AppendF64(site.hot_data_fraction, blob);
  AppendF64(site.hot_access_fraction, blob);
  AppendI64(site.buffer_blocks, blob);
  AppendI64(site.dm_pool_size, blob);
  for (const ClassParams& c : site.classes) {
    AppendI64(c.population, blob);
    AppendI64(c.local_requests, blob);
    AppendI64(c.remote_requests, blob);
    AppendI64(c.records_per_request, blob);
    AppendF64(c.u_cpu_ms, blob);
    AppendF64(c.tm_cpu_ms, blob);
    AppendF64(c.dm_cpu_ms, blob);
    AppendF64(c.lr_cpu_ms, blob);
    AppendF64(c.dmio_cpu_ms, blob);
    AppendF64(c.dmio_disk_ms, blob);
    AppendF64(c.dmio_read_ios, blob);
    AppendF64(c.dmio_write_ios, blob);
    AppendF64(c.init_cpu_ms, blob);
    AppendF64(c.tc_cpu_ms, blob);
    AppendF64(c.tcio_force_writes, blob);
    AppendF64(c.ta_fixed_cpu_ms, blob);
    AppendF64(c.ta_cpu_per_granule_ms, blob);
    AppendF64(c.taio_ios_per_granule, blob);
    AppendF64(c.unlock_cpu_per_lock_ms, blob);
  }
}

// One site-class partition plus its detection scratch. Class ids are dense
// and ordered by first occurrence, so on an input of pairwise-distinct sites
// class k IS site k. Every vector and per-class blob keeps its capacity
// across solves: re-partitioning a same-size input allocates nothing warm.
struct ClassPartition {
  std::vector<std::size_t> class_of_site;  // site -> class
  std::vector<std::size_t> rep_site;       // class -> first member
  std::vector<double> class_count;         // class -> member count
  std::vector<std::uint64_t> hashes;       // class -> blob hash (prefilter)
  std::vector<std::string> blobs;          // class -> canonical param blob
  std::string site_blob;                   // per-site scratch
  // Spec renumbering scratch: (raw id, dense id) pairs, scanned linearly.
  std::vector<std::pair<std::size_t, std::size_t>> id_map;

  std::size_t num_classes() const { return rep_site.size(); }

  void Clear(std::size_t num_sites) {
    class_of_site.clear();
    class_of_site.reserve(num_sites);
    rep_site.clear();
    class_count.clear();
    hashes.clear();
  }
  // Registers site i as the representative of a new class whose blob is the
  // current site_blob. assign() into a retained slot keeps string capacity.
  std::size_t AddClass(std::size_t i, std::uint64_t hash) {
    const std::size_t cls = rep_site.size();
    if (cls < blobs.size()) {
      blobs[cls].assign(site_blob);
    } else {
      blobs.push_back(site_blob);
    }
    hashes.push_back(hash);
    rep_site.push_back(i);
    class_count.push_back(0.0);
    return cls;
  }
};

void DetectClasses(const ModelInput& input, ClassPartition* part) {
  part->Clear(input.sites.size());
  for (std::size_t i = 0; i < input.sites.size(); ++i) {
    part->site_blob.clear();
    AppendSiteBlob(input.sites[i], &part->site_blob);
    const std::uint64_t h = FnvHash(part->site_blob);
    std::size_t cls = part->num_classes();
    for (std::size_t k = 0; k < part->num_classes(); ++k) {
      if (part->hashes[k] == h && part->blobs[k] == part->site_blob) {
        cls = k;
        break;
      }
    }
    if (cls == part->num_classes()) cls = part->AddClass(i, h);
    part->class_of_site.push_back(cls);
    part->class_count[cls] += 1.0;
  }
}

// Chain-presence/layout equality between two sites: the coupling topology
// and the network shape read exactly these bits, so a caller-provided class
// must be uniform in them (other parameter differences are an approximation
// the caller opted into; see SiteClassSpec).
bool SamePresence(const SiteParams& a, const SiteParams& b) {
  if (a.separate_log_disk != b.separate_log_disk) return false;
  for (TxnType t : kAllTxnTypes) {
    if ((a.Class(t).population > 0) != (b.Class(t).population > 0)) {
      return false;
    }
  }
  return true;
}

// Adopts a caller-provided partition: renumbers class ids by first
// occurrence and validates presence/layout uniformity. Returns false with
// *error set on a malformed spec.
bool ApplySiteClassSpec(const ModelInput& input, const SiteClassSpec& spec,
                        ClassPartition* part, std::string* error) {
  if (spec.class_of_site.size() != input.sites.size()) {
    *error = "site_classes size does not match the site count";
    return false;
  }
  part->Clear(input.sites.size());
  part->id_map.clear();
  for (std::size_t i = 0; i < input.sites.size(); ++i) {
    const std::size_t raw = spec.class_of_site[i];
    std::size_t cls = part->num_classes();
    for (const auto& [known_raw, dense] : part->id_map) {
      if (known_raw == raw) {
        cls = dense;
        break;
      }
    }
    if (cls == part->num_classes()) {
      part->site_blob.clear();
      cls = part->AddClass(i, 0);
      part->id_map.emplace_back(raw, cls);
    } else if (!SamePresence(input.sites[i],
                             input.sites[part->rep_site[cls]])) {
      *error = "site_classes groups sites with different chain presence "
               "or log-disk layout";
      return false;
    }
    part->class_of_site.push_back(cls);
    part->class_count[cls] += 1.0;
  }
  return true;
}

// The effective partition of one input under `options`: the explicit spec
// when provided (validated), byte-identity detection otherwise.
bool EffectivePartition(const ModelInput& input, const SolverOptions& options,
                        ClassPartition* part, std::string* error) {
  if (options.site_classes != nullptr) {
    return ApplySiteClassSpec(input, *options.site_classes, part, error);
  }
  DetectClasses(input, part);
  return true;
}

// Iteration-invariant class-level coupling (it depends only on chain
// presence and the partition): for each distributed chain pair (0 = DRO,
// 1 = DU), the classes whose slave (resp. coordinator) chain is present with
// their member counts, plus the total slave-site count. At use, a site's own
// class contributes multiplicity count - 1 (a site never couples with
// itself); entries whose multiplicity drops to zero are skipped, which
// reproduces the flat code's j != i loops exactly.
struct ClassCoupling {
  struct Entry {
    std::size_t cls;
    double count;
  };
  std::array<std::vector<Entry>, 2> slave_classes;
  std::array<std::vector<Entry>, 2> coord_classes;
  std::array<double, 2> total_slaves{};

  static std::size_t PairOf(TxnType t) {
    return t == TxnType::kDROC || t == TxnType::kDROS ? 0 : 1;
  }
  // Coupling multiplicity of `e` as seen from a site of class `own`.
  static double Mult(const Entry& e, std::size_t own) {
    return e.cls == own ? e.count - 1.0 : e.count;
  }
};

void BuildClassCoupling(const ModelInput& input, const ClassPartition& part,
                        ClassCoupling* coupling) {
  for (std::size_t c = 0; c < 2; ++c) {
    coupling->slave_classes[c].clear();
    coupling->coord_classes[c].clear();
    coupling->total_slaves[c] = 0.0;
  }
  for (std::size_t cls = 0; cls < part.num_classes(); ++cls) {
    const SiteParams& rep = input.sites[part.rep_site[cls]];
    const double count = part.class_count[cls];
    for (TxnType s : {TxnType::kDROS, TxnType::kDUS}) {
      if (rep.Class(s).population <= 0) continue;
      const std::size_t c = ClassCoupling::PairOf(s);
      coupling->slave_classes[c].push_back({cls, count});
      coupling->total_slaves[c] += count;
    }
    for (TxnType t : {TxnType::kDROC, TxnType::kDUC}) {
      if (rep.Class(t).population <= 0) continue;
      coupling->coord_classes[ClassCoupling::PairOf(t)].push_back(
          {cls, count});
    }
  }
}

// Number of slave sites serving a coordinator chain of type t homed at site
// i: every site with the matching slave chain except i itself (the flat
// code's SlaveSitesOf(i, t).size()).
double SlaveCountFor(const ModelInput& input, const ClassCoupling& coupling,
                     std::size_t i, TxnType t) {
  return coupling.total_slaves[ClassCoupling::PairOf(t)] -
         (input.sites[i].Class(SlaveOf(t)).population > 0 ? 1.0 : 0.0);
}

double Damp(double old_value, double new_value, double damping) {
  return (1.0 - damping) * old_value + damping * new_value;
}

AccessSkew SkewOf(const SiteParams& site) {
  if (site.hot_data_fraction > 0.0 && site.hot_data_fraction < 1.0 &&
      site.hot_access_fraction > 0.0) {
    return AccessSkew{site.hot_data_fraction,
                      std::min(site.hot_access_fraction, 1.0)};
  }
  return AccessSkew{1.0, 1.0};  // uniform
}

// Working-set approximation of the LRU buffer hit probability: the hot set
// is cached first, the remainder of the buffer covers the cold set.
double BufferHitProbability(const SiteParams& site) {
  if (site.buffer_blocks <= 0) return 0.0;
  const double b = site.buffer_blocks;
  const double ng = site.num_granules;
  const AccessSkew skew = SkewOf(site);
  if (skew.IsUniform()) return std::min(1.0, b / ng);
  const double hot_blocks = skew.hot_data_fraction * ng;
  const double a = skew.hot_access_fraction;
  if (b <= hot_blocks) return a * b / hot_blocks;
  const double cold_blocks = ng - hot_blocks;
  return a + (1.0 - a) * std::min(1.0, (b - hot_blocks) / cold_blocks);
}

// Commit processing time (CPU + forced log writes) of type t at `site`,
// used by the CW-delay estimates (Section 5.7). The commit messages queue
// behind regular work at the site's CPU and log disk; by the arrival
// theorem a visit in a closed network sees roughly the mean queue, so each
// service time is inflated by (1 + Q) with Q from the site MVA.
double CommitProcessingMs(const SiteParams& site, TxnType t, double cpu_q,
                          double log_disk_q) {
  const ClassParams& c = site.Class(t);
  return c.tc_cpu_ms * (1.0 + cpu_q) +
         c.tcio_force_writes * site.block_io_ms * (1.0 + log_disk_q);
}

// Abort processing time of type t at `site` given its current sigma/nlk,
// with the same queueing inflation.
double AbortProcessingMs(const SiteParams& site, TxnType t, double sigma,
                         double nlk, double cpu_q, double disk_q) {
  const ClassParams& c = site.Class(t);
  const double undo = sigma * nlk;
  return (c.ta_fixed_cpu_ms + undo * c.ta_cpu_per_granule_ms) * (1.0 + cpu_q) +
         undo * c.taio_ios_per_granule * site.block_io_ms * (1.0 + disk_q);
}

// Builds the shape signature: one byte per site packing the six chain
// presence bits and the log-disk flag, then the site-class partition (one
// class id per site, width sized to the site count). Inputs with equal
// signatures build identical center/chain structures AND identical
// class/coupling structures (only demands, populations and think times
// differ), so they can share a SolveArena — and a collapsed input can never
// alias a same-presence input with a different replication pattern. A
// trailing byte carries the CC backend id. The total length
// n * (1 + width(n)) + 1 strictly increases with the site count, so no two
// shapes collide.
void BuildShapeKey(const ModelInput& input, const ClassPartition& part,
                   std::string* key) {
  key->clear();
  const std::size_t n = input.sites.size();
  for (const SiteParams& site : input.sites) {
    unsigned byte = site.separate_log_disk ? 0x40u : 0u;
    for (TxnType t : kAllTxnTypes) {
      if (site.Class(t).population > 0) byte |= 1u << Index(t);
    }
    key->push_back(static_cast<char>(byte));
  }
  const int width = n <= 0xff ? 1 : n <= 0xffff ? 2 : 4;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t cls = part.class_of_site[i];
    for (int b = 0; b < width; ++b) {
      key->push_back(static_cast<char>(cls & 0xffu));
      cls >>= 8;
    }
  }
  // CC backend id: different backends iterate different fixed points, so
  // their arenas and warm state must never coalesce.
  key->push_back(static_cast<char>(static_cast<int>(input.cc_backend)));
}

// ---- Fixed-point building blocks. -----------------------------------------
// SolveInto and SolveBatchInto are the same algorithm: one scenario's solve
// is a sequence of these per-scenario steps plus the per-site MVA solves.
// The batch driver runs each step per lane and swaps the scalar MVA call for
// the lockstep batch kernels, so lane w's floating-point op sequence is
// exactly the scalar solve's — that (plus the batch kernels' own bit-identity
// contract) is why a batch solve is bit-identical per lane to SolveInto.
//
// Every step takes `units`: the sites the fixed point actually iterates —
// all of them flat, one representative per class when collapsing. Identical
// sites have identical trajectories either way (the coupling sums read only
// class-representative state), so the collapsed trajectory is the flat one
// restricted to the representatives, bitwise.

// Workload-independent quantities: presence, q(t) (Yao) and N_lk(t) (Eq. 2).
void InitWorkloadInvariants(const ModelInput& input,
                            const std::vector<std::size_t>& units,
                            std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    const SiteParams& site = input.sites[i];
    for (TxnType t : kAllTxnTypes) {
      const ClassParams& c = site.Class(t);
      ClassState& cs = (*st)[i].cls[Index(t)];
      cs.present = c.population > 0;
      if (!cs.present) continue;
      // Local requests drive the I/O and locking at this site; a
      // coordinator's remote requests are handled by its slave chains.
      // Every record access is a granule I/O (q), but only the first touch
      // of a granule is a fresh lock: N_lk counts distinct granules (Yao,
      // skew-aware) and lock_ratio rescales the per-LR blocking chance.
      if (c.local_requests > 0) {
        cs.q = c.records_per_request;
        cs.nlk = YaoExpectedBlocksSkewed(
            site.total_records(), site.num_granules,
            static_cast<long long>(c.local_requests) * c.records_per_request,
            SkewOf(site));
        const double accesses =
            static_cast<double>(c.local_requests) * c.records_per_request;
        cs.lock_ratio = accesses > 0 ? cs.nlk / accesses : 1.0;
      }
    }
  }
}

// Per-site MVA networks (Fig. 2), one per solve unit. The center/chain
// structure is iteration-invariant; only the demands are rewritten each
// iteration before the (possibly concurrent) MVA solves.
void BuildSiteNetworks(const ModelInput& input,
                       const std::vector<SiteState>& st,
                       const std::vector<std::size_t>& units,
                       std::vector<SiteNetwork>* nets) {
  nets->clear();
  nets->resize(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::size_t i = units[u];
    const SiteParams& site = input.sites[i];
    SiteNetwork& sn = (*nets)[u];
    sn.chain_types.reserve(kNumTxnTypes);
    sn.cpu = sn.net.AddCenter("CPU", qn::CenterKind::kQueueing);
    sn.disk = sn.net.AddCenter("DISK", qn::CenterKind::kQueueing);
    if (site.separate_log_disk)
      sn.log_disk = sn.net.AddCenter("LOG", qn::CenterKind::kQueueing);
    sn.lw = sn.net.AddCenter("LW", qn::CenterKind::kDelay);
    sn.rw = sn.net.AddCenter("RW", qn::CenterKind::kDelay);
    sn.cw = sn.net.AddCenter("CW", qn::CenterKind::kDelay);
    sn.ut = sn.net.AddCenter("UT", qn::CenterKind::kDelay);
    for (TxnType t : kAllTxnTypes) {
      if (!st[i].cls[Index(t)].present) continue;
      sn.net.AddChain(std::string(Name(t)), site.Class(t).population,
                      site.think_time_ms);
      sn.chain_types.push_back(t);
    }
  }
}

// Per-solve refresh of the quantities a shape key does not pin down:
// populations, think times and the buffer model may differ between
// same-shape inputs.
void RefreshSolveState(const ModelInput& input,
                       const std::vector<std::size_t>& units,
                       std::vector<SiteNetwork>* nets) {
  for (std::size_t u = 0; u < units.size(); ++u) {
    const SiteParams& site = input.sites[units[u]];
    SiteNetwork& sn = (*nets)[u];
    sn.buffer_hit_prob = BufferHitProbability(site);
    sn.mva_ok = true;
    for (std::size_t k = 0; k < sn.chain_types.size(); ++k) {
      sn.net.chains[k].population = site.Class(sn.chain_types[k]).population;
      sn.net.chains[k].think_time = site.think_time_ms;
    }
  }
}

// Parks a batch lane that is not being solved (input validation or shape
// mismatch) on a trivially solvable network: zero populations and demands
// pass validation and solve to zero throughput, so the lane can keep riding
// in the lockstep blocks without affecting its neighbors.
void ZeroLaneNetworks(std::vector<SiteNetwork>* nets) {
  for (SiteNetwork& sn : *nets) {
    sn.buffer_hit_prob = 0.0;
    sn.mva_ok = true;
    for (qn::Chain& chain : sn.net.chains) {
      chain.population = 0;
      chain.think_time = 0.0;
      std::fill(chain.demands.begin(), chain.demands.end(), 0.0);
    }
  }
}

// Seeds the fixed point's state variables (Pb, Pd, Pra and the
// synchronization delays) from a neighbor's converged values. Collapsed
// solves read only the representatives' seeds; member seeds are ignored.
void SeedClassStates(const WarmStart& warm,
                     const std::vector<std::size_t>& units,
                     std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    for (TxnType t : kAllTxnTypes) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present) continue;
      const WarmStart::ClassSeed& seed = warm.sites[i][Index(t)];
      cs.pb = seed.pb;
      cs.pd = seed.pd;
      cs.pra = seed.pra;
      cs.delays.r_lw_ms = seed.r_lw_ms;
      cs.delays.r_rw_ms = seed.r_rw_ms;
      cs.delays.r_cwc_ms = seed.r_cwc_ms;
      cs.delays.r_cwa_ms = seed.r_cwa_ms;
    }
  }
}

// (1) Visit counts with the current Pb / Pd / Pra. Returns false when a
// transition system is singular (the caller fails the solve).
bool StepVisitCounts(const ModelInput& input,
                     const std::vector<std::size_t>& units,
                     std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    const SiteParams& site = input.sites[i];
    for (TxnType t : kAllTxnTypes) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present) continue;
      const ClassParams& c = site.Class(t);
      TransitionInputs in;
      in.local_requests = c.local_requests;
      in.remote_requests = c.remote_requests;
      in.io_per_request = cs.q;
      in.pb = cs.pb * cs.lock_ratio;
      in.pd = cs.pd;
      in.pra = cs.pra;
      const TransitionMatrix p = BuildTransitionMatrix(t, in);
      if (!SolveVisitCounts(p, &cs.visits)) return false;
    }
  }
  return true;
}

// (2) sigma, P_a, N_s. Locals and coordinators first (Eq. 3); slaves inherit
// their coordinators' abort/submission behaviour.
void StepAbortChain(const ModelInput& input, const SolverOptions& options,
                    const ClassPartition& part, const ClassCoupling& coupling,
                    const std::vector<std::size_t>& units,
                    std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    for (TxnType t : kAllTxnTypes) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present || IsSlave(t)) continue;
      const double pbpd = cs.pb * cs.pd;
      cs.sigma = SigmaFraction(pbpd, cs.nlk);
      double pa = 1.0 - std::pow(1.0 - pbpd, cs.nlk);
      if (IsCoordinator(t)) {
        const int r = input.sites[i].Class(t).remote_requests;
        pa = 1.0 - (1.0 - pa) * std::pow(1.0 - cs.pra, r);
      }
      cs.pa = std::min(pa, options.max_abort_prob);
      cs.ns = 1.0 / (1.0 - cs.pa);
    }
  }
  for (std::size_t j : units) {
    const std::size_t own = part.class_of_site[j];
    for (TxnType s : {TxnType::kDROS, TxnType::kDUS}) {
      ClassState& cs = (*st)[j].cls[Index(s)];
      if (!cs.present) continue;
      cs.sigma = SigmaFraction(cs.pb * cs.pd, cs.nlk);
      // The slave resubmits whenever its global transaction does, so its
      // N_s matches the (population-weighted) coordinators'.
      const TxnType t = CoordinatorOf(s);
      double pa = 0.0, weight = 0.0;
      for (const ClassCoupling::Entry& e :
           coupling.coord_classes[ClassCoupling::PairOf(s)]) {
        const double m = ClassCoupling::Mult(e, own);
        if (m <= 0.0) continue;
        const std::size_t i = part.rep_site[e.cls];
        const ClassState& cc = (*st)[i].cls[Index(t)];
        const double mw = m * input.sites[i].Class(t).population;
        pa += mw * cc.pa;
        weight += mw;
      }
      cs.pa = weight > 0.0 ? std::min(pa / weight, options.max_abort_prob)
                           : 0.0;
      cs.ns = 1.0 / (1.0 - cs.pa);
    }
  }
}

// (3a) Demands (Eqs. 5-10) written into site i's network chains.
void FillSiteDemands(const SiteParams& site, SiteState* si, SiteNetwork* sn) {
  for (std::size_t k = 0; k < sn->chain_types.size(); ++k) {
    ClassState& cs = si->cls[Index(sn->chain_types[k])];
    cs.demands = ComputeDemands(site, sn->chain_types[k], cs.visits, cs.ns,
                                cs.sigma, cs.nlk, cs.delays,
                                sn->buffer_hit_prob);
    std::vector<double>& demands = sn->net.chains[k].demands;
    demands[sn->cpu] = cs.demands.cpu_ms;
    demands[sn->disk] = cs.demands.db_disk_ms;
    if (site.separate_log_disk) demands[sn->log_disk] = cs.demands.log_disk_ms;
    demands[sn->lw] = cs.demands.lw_ms;
    demands[sn->rw] = cs.demands.rw_ms;
    demands[sn->cw] = cs.demands.cw_ms;
    demands[sn->ut] = cs.demands.ut_ms;
  }
}

// (3b) Per-class and per-site readback of site i's MVA solution.
void ReadSiteSolution(const SiteParams& site, const qn::Solution& sol,
                      const SiteNetwork& sn, SiteState* si) {
  for (std::size_t k = 0; k < sn.chain_types.size(); ++k) {
    ClassState& cs = si->cls[Index(sn.chain_types[k])];
    cs.x = sol.throughput[k];
    cs.r = sol.response_time[k];
  }
  si->cpu_util = sol.utilization[sn.cpu];
  si->db_util = sol.utilization[sn.disk];
  si->log_util = site.separate_log_disk ? sol.utilization[sn.log_disk] : 0.0;
  si->cpu_q = sol.queue_length[sn.cpu];
  si->db_q = sol.queue_length[sn.disk];
  si->log_q = site.separate_log_disk ? sol.queue_length[sn.log_disk]
                                     : si->db_q;
}

// (4) Execution durations and locks held (Fig. 3 / Eq. 14).
void StepDurations(const ModelInput& input, const SolverOptions& options,
                   const std::vector<std::size_t>& units,
                   std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    const SiteParams& site = input.sites[i];
    for (TxnType t : kAllTxnTypes) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present) continue;
      // R from MVA covers one commit cycle: (N_s - 1) aborted executions
      // plus intermediate thinks plus the successful execution. Undo the
      // cycle structure to recover R_s (DESIGN.md section 4).
      const double active = std::max(cs.r - cs.demands.ut_ms, 0.0);
      const double denom = 1.0 + (cs.ns - 1.0) * cs.sigma;
      cs.rs = denom > 0.0 ? active / denom : active;
      // Blocking-time basis (Eq. 18): the blocker's execution time
      // *excluding its own lock waits*. Using the full response here makes
      // the LW fixed point non-contractive at high contention (waits
      // inflating waits); the paper's derivation assumes rare blocking, so
      // the active time is the consistent first-order basis (DESIGN.md §4).
      const double busy = std::max(
          cs.r - cs.demands.ut_ms -
              (1.0 - options.blocker_wait_fraction) * cs.demands.lw_ms,
          0.0);
      const double rs_busy = denom > 0.0 ? busy / denom : busy;
      cs.rexec = cs.pa * cs.sigma * rs_busy + (1.0 - cs.pa) * rs_busy;
      if (input.cc_backend == cc::BackendKind::kQueue) {
        // Queue backend: all N_lk locks are taken up front and held for the
        // whole execution, not grown linearly as Eq. 14 assumes.
        const double cycle = cs.rs + site.think_time_ms;
        cs.lh = cycle > 0.0 ? cs.nlk * cs.rs / cycle : cs.nlk;
      } else {
        cs.lh = AverageLocksHeld(cs.nlk, cs.sigma, cs.pa, cs.rs,
                                 site.think_time_ms);
      }
    }
  }
}

// (5) CC submodel: conflict / restart quantities for the configured backend
// (Eqs. 15-20 for 2PL; model/cc_submodel.h for the others), damped. The
// submodel computes undamped values from the current state; damping stays
// here so every backend shares the solver's convergence behaviour.
void StepLockModel(const ModelInput& input, double damping,
                   const std::vector<std::size_t>& units,
                   std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    SiteLockInputs li;
    li.num_granules = input.sites[i].num_granules;
    li.contention_factor = SkewOf(input.sites[i]).ContentionFactor();
    std::array<CcClassInputs, kNumTxnTypes> cls{};
    for (TxnType t : kAllTxnTypes) {
      const ClassState& cs = (*st)[i].cls[Index(t)];
      li.population[Index(t)] = input.sites[i].Class(t).population;
      li.locks_held[Index(t)] = cs.lh;
      li.lock_requests[Index(t)] = cs.nlk;
      cls[Index(t)] =
          CcClassInputs{cs.present, cs.nlk, cs.rexec, cs.rs, cs.demands.lw_ms};
    }
    CcSiteOutputs cc_out;
    SolveCcSite(input.cc_backend, input.restart_backoff_ms, li, cls, &cc_out);
    for (TxnType t : kAllTxnTypes) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present) continue;
      cs.pb = Damp(cs.pb, cc_out.pb[Index(t)], damping);
      cs.pd = Damp(cs.pd, cc_out.pd[Index(t)], damping);
      cs.plw = cc_out.plw[Index(t)];
      cs.delays.r_lw_ms =
          Damp(cs.delays.r_lw_ms, cc_out.r_lw[Index(t)], damping);
    }
  }
}

// (5b) Communication Network Model: derive alpha from the current message
// rate. Each remote request is a message pair; each commit adds two rounds
// (PREPARE/vote, COMMIT/ack) per slave site.
void StepEthernet(const ModelInput& input, const SolverOptions& options,
                  const ClassPartition& part, const ClassCoupling& coupling,
                  double damping, const std::vector<SiteState>& st,
                  double* alpha) {
  // Class-major with the chain types inner: for pairwise-distinct sites
  // (class k = site k) this is the flat site-major summation order exactly.
  double messages_per_ms = 0.0;
  for (std::size_t cls = 0; cls < part.num_classes(); ++cls) {
    const std::size_t i = part.rep_site[cls];
    for (TxnType t : {TxnType::kDROC, TxnType::kDUC}) {
      const ClassState& cs = st[i].cls[Index(t)];
      if (!cs.present) continue;
      const int r = input.sites[i].Class(t).remote_requests;
      const double slaves = SlaveCountFor(input, coupling, i, t);
      const double per_commit = cs.ns * 2.0 * r + 4.0 * slaves;
      messages_per_ms += part.class_count[cls] * (cs.x * per_commit);
    }
  }
  const double alpha_new = qn::EthernetMeanDelayMs(
      *options.ethernet, options.message_bits, messages_per_ms);
  *alpha = Damp(*alpha, alpha_new, damping);
}

// (6) Remote-wait and 2PC-wait coupling across sites (Eqs. 21-24, §5.7).
// The peer sums run over class representatives with multiplicity m (own
// class: count - 1; skipped at zero). For pairwise-distinct sites every
// m is 1 and the per-term expressions reduce to the flat per-peer ones
// bitwise — 1.0 * v == v and the addition order is the old site order.
void StepCrossSiteCoupling(const ModelInput& input, const ClassPartition& part,
                           const ClassCoupling& coupling, double alpha,
                           double damping,
                           const std::vector<std::size_t>& units,
                           std::vector<SiteState>* st) {
  for (std::size_t i : units) {
    const SiteParams& site = input.sites[i];
    const std::size_t own = part.class_of_site[i];
    // Coordinators.
    for (TxnType t : {TxnType::kDROC, TxnType::kDUC}) {
      ClassState& cs = (*st)[i].cls[Index(t)];
      if (!cs.present) continue;
      const TxnType s = SlaveOf(t);
      const double num_slaves = SlaveCountFor(input, coupling, i, t);
      const int r = site.Class(t).remote_requests;

      double slave_busy_sum = 0.0;   // Eq. 21/22 numerator
      double pra_sum = 0.0;
      double cwc_max = 0.0, cwa_max = 0.0;
      for (const ClassCoupling::Entry& e :
           coupling.slave_classes[ClassCoupling::PairOf(t)]) {
        const double m = ClassCoupling::Mult(e, own);
        if (m <= 0.0) continue;
        const std::size_t j = part.rep_site[e.cls];
        const ClassState& ss = (*st)[j].cls[Index(s)];
        slave_busy_sum += m * std::max(
            ss.r - ss.demands.rw_ms - ss.demands.ut_ms, 0.0);
        // Per-remote-request abort probability at the slave: the slave
        // acquires nlk/l locks per request, each fatal with Pb*Pd.
        const int ls = input.sites[j].Class(s).local_requests;
        if (ls > 0) {
          pra_sum += m * (1.0 - std::pow(1.0 - ss.pb * ss.pd, ss.nlk / ls));
        }
        cwc_max = std::max(
            cwc_max, CommitProcessingMs(input.sites[j], s, (*st)[j].cpu_q,
                                        (*st)[j].log_q));
        cwa_max = std::max(
            cwa_max, AbortProcessingMs(input.sites[j], s, ss.sigma, ss.nlk,
                                       (*st)[j].cpu_q, (*st)[j].db_q));
      }
      const double rrw_new =
          num_slaves <= 0.0 || r <= 0
              ? 0.0
              : 2.0 * alpha + slave_busy_sum / (cs.ns * r);
      const double pra_new = num_slaves <= 0.0 ? 0.0 : pra_sum / num_slaves;
      // Two round trips for PREPARE/COMMIT plus the slowest slave's commit
      // processing; one round trip plus rollback on the abort path.
      const double cwc_new = 4.0 * alpha + cwc_max;
      const double cwa_new = 2.0 * alpha + cwa_max;
      cs.delays.r_rw_ms = Damp(cs.delays.r_rw_ms, rrw_new, damping);
      cs.pra = Damp(cs.pra, pra_new, damping);
      cs.delays.r_cwc_ms = Damp(cs.delays.r_cwc_ms, cwc_new, damping);
      cs.delays.r_cwa_ms = Damp(cs.delays.r_cwa_ms, cwa_new, damping);
    }
    // Slaves.
    for (TxnType s : {TxnType::kDROS, TxnType::kDUS}) {
      ClassState& cs = (*st)[i].cls[Index(s)];
      if (!cs.present) continue;
      const TxnType t = CoordinatorOf(s);
      const int ls = site.Class(s).local_requests;

      double rrw_sum = 0.0, pra_sum = 0.0, cwc_sum = 0.0, weight = 0.0;
      for (const ClassCoupling::Entry& e :
           coupling.coord_classes[ClassCoupling::PairOf(s)]) {
        const double m = ClassCoupling::Mult(e, own);
        if (m <= 0.0) continue;
        const std::size_t ci = part.rep_site[e.cls];
        const ClassState& cc = (*st)[ci].cls[Index(t)];
        const double mw = m * input.sites[ci].Class(t).population;
        const double f =
            1.0 / std::max(SlaveCountFor(input, coupling, ci, t), 1.0);
        // Eq. 23/24: coordinator response minus the remote waits it spends
        // on this slave site and its think time, spread over the requests.
        const double avail = std::max(
            cc.r - cc.demands.rw_ms * f - cc.demands.ut_ms, 0.0);
        if (ls > 0 && cs.ns > 0.0)
          rrw_sum += mw * avail / (cs.ns * ls);
        // Abort signals reaching the slave stem from coordinator-side
        // deadlocks, spread over the slave's l+1 remote waits.
        const double pa_coord_local =
            1.0 - std::pow(1.0 - cc.pb * cc.pd, cc.nlk);
        pra_sum += mw * (1.0 - std::pow(1.0 - pa_coord_local,
                                        1.0 / (ls + 1.0)));
        cwc_sum += mw * CommitProcessingMs(input.sites[ci], t,
                                           (*st)[ci].cpu_q, (*st)[ci].log_q);
        weight += mw;
      }
      const double rrw_new = weight > 0.0 ? rrw_sum / weight : 0.0;
      const double pra_new = weight > 0.0 ? pra_sum / weight : 0.0;
      // Slave CWC: waiting for the coordinator's commit decision (one
      // round trip plus the coordinator's commit force-write).
      const double cwc_new =
          weight > 0.0 ? 2.0 * alpha + cwc_sum / weight : 0.0;
      cs.delays.r_rw_ms = Damp(cs.delays.r_rw_ms, rrw_new, damping);
      cs.pra = Damp(cs.pra, pra_new, damping);
      cs.delays.r_cwc_ms = Damp(cs.delays.r_cwc_ms, cwc_new, damping);
      cs.delays.r_cwa_ms = Damp(cs.delays.r_cwa_ms, 2.0 * alpha,
                                damping);
    }
  }
}

// (7) Convergence test on throughputs: max relative change, updating prev_x
// (sized units * kNumTxnTypes).
double ThroughputDelta(const std::vector<SiteState>& st,
                       const std::vector<std::size_t>& units,
                       std::vector<double>* prev_x) {
  double max_rel_delta = 0.0;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (TxnType t : kAllTxnTypes) {
      const ClassState& cs = st[units[u]].cls[Index(t)];
      const std::size_t idx = u * kNumTxnTypes + Index(t);
      const double denom = std::max(std::fabs(cs.x), 1e-12);
      max_rel_delta =
          std::max(max_rel_delta, std::fabs(cs.x - (*prev_x)[idx]) / denom);
      (*prev_x)[idx] = cs.x;
    }
  }
  return max_rel_delta;
}

// Expands a collapsed solve: copies each class representative's converged
// state onto the member sites. SiteState is trivially copyable, so the
// copies allocate nothing; downstream (ExportWarm, AssembleSolution) then
// runs over the full site vector unchanged.
void ExpandClassStates(const ClassPartition& part,
                       std::vector<SiteState>* st) {
  for (std::size_t i = 0; i < st->size(); ++i) {
    const std::size_t rep = part.rep_site[part.class_of_site[i]];
    if (rep != i) (*st)[i] = (*st)[rep];
  }
}

// Exports the converged state for future warm starts.
void ExportWarm(const std::vector<SiteState>& st, double alpha,
                WarmStart* warm_out) {
  warm_out->comm_delay_ms = alpha;
  warm_out->sites.assign(st.size(), {});
  for (std::size_t i = 0; i < st.size(); ++i) {
    for (TxnType t : kAllTxnTypes) {
      const ClassState& cs = st[i].cls[Index(t)];
      WarmStart::ClassSeed& seed = warm_out->sites[i][Index(t)];
      seed.present = cs.present;
      if (!cs.present) continue;
      seed.pb = cs.pb;
      seed.pd = cs.pd;
      seed.pra = cs.pra;
      seed.r_lw_ms = cs.delays.r_lw_ms;
      seed.r_rw_ms = cs.delays.r_rw_ms;
      seed.r_cwc_ms = cs.delays.r_cwc_ms;
      seed.r_cwa_ms = cs.delays.r_cwa_ms;
    }
  }
}

// Assembles the converged state into the caller's solution. assign() (rather
// than resize) value-resets every slot while keeping the vector's and the
// name strings' capacity, so a reused `out` of the same site count allocates
// nothing.
void AssembleSolution(const ModelInput& input, const std::vector<SiteState>& st,
                      bool converged, int iterations, double alpha,
                      ModelSolution* out) {
  const std::size_t num_sites = input.sites.size();
  out->converged = converged;
  out->iterations = iterations;
  out->comm_delay_ms = alpha;
  out->sites.assign(num_sites, SiteSolution{});
  for (std::size_t i = 0; i < num_sites; ++i) {
    const SiteParams& site = input.sites[i];
    SiteSolution& ss = out->sites[i];
    ss.name = site.name;
    ss.cpu_utilization = st[i].cpu_util;
    ss.db_disk_utilization = st[i].db_util;
    ss.log_disk_utilization = st[i].log_util;
    // Every disk operation transfers one block at block_io_ms, so the I/O
    // rate follows from utilization (the paper derives its modeled DIO the
    // same way).
    ss.dio_per_s =
        (st[i].db_util + st[i].log_util) / site.block_io_ms * 1000.0;
    for (TxnType t : kAllTxnTypes) {
      const ClassState& cs = st[i].cls[Index(t)];
      ClassSolution& c = ss.classes[Index(t)];
      c.present = cs.present;
      if (!cs.present) continue;
      c.throughput_per_s = cs.x * 1000.0;
      c.response_ms = cs.r;
      c.pa = cs.pa;
      c.ns = cs.ns;
      c.pb = cs.pb;
      c.pd = cs.pd;
      c.plw = cs.plw;
      c.lh = cs.lh;
      c.nlk = cs.nlk;
      c.sigma = cs.sigma;
      c.io_per_request = cs.q;
      c.r_lw_ms = cs.delays.r_lw_ms;
      c.r_rw_ms = cs.delays.r_rw_ms;
      c.r_cw_ms = cs.delays.r_cwc_ms;
      c.d_lw_ms = cs.demands.lw_ms;
      c.d_rw_ms = cs.demands.rw_ms;
      c.d_cw_ms = cs.demands.cw_ms;
      if (!IsSlave(t)) {
        const ClassParams& cp = site.Class(t);
        ss.txn_per_s += c.throughput_per_s;
        ss.records_per_s += c.throughput_per_s *
                            cp.total_requests() * cp.records_per_request;
      }
    }
  }
}

// Resets the solve-status fields of `out` the way SolveInto's prologue does.
void ResetSolution(ModelSolution* out) {
  out->ok = false;
  out->converged = false;
  out->iterations = 0;
  out->warm_started = false;
  out->error.clear();
  out->comm_delay_ms = 0.0;
}

}  // namespace

// Cross-solve state reused by SolveInto: everything whose size depends only
// on the input's shape. `shape` records the signature the buffers were built
// for; `shape_scratch` is persistent so re-deriving the signature of the
// next input allocates nothing.
struct SolveArena::Impl {
  std::string shape;
  std::string shape_scratch;
  ClassPartition part;
  std::vector<std::size_t> units;
  std::vector<SiteState> st;
  std::vector<SiteNetwork> nets;
  std::vector<double> prev_x;
  ClassCoupling coupling;
};

SolveArena::SolveArena() : impl_(std::make_unique<Impl>()) {}
SolveArena::~SolveArena() = default;
SolveArena::SolveArena(SolveArena&&) noexcept = default;
SolveArena& SolveArena::operator=(SolveArena&&) noexcept = default;

// Cross-solve state of SolveBatchInto: per-lane solve state (each lane is
// one scenario's SolveInto state) plus the shared per-site lockstep MVA
// workspaces. Lane w's column in site_ws[i] retains that lane's Schweitzer
// queue lengths across solves exactly like SolveArena retains its single
// site workspace.
struct BatchSolveArena::Impl {
  std::string shape;
  std::string shape_scratch;
  std::string lane_scratch;

  struct Lane {
    std::vector<SiteState> st;
    std::vector<SiteNetwork> nets;
    std::vector<double> prev_x;
    double alpha = 0.0;
    double damping = 0.0;
    bool active = false;     // still iterating
    bool failed = false;     // input rejected or a solve step failed
    bool converged = false;
    int iterations = 0;
  };
  std::vector<Lane> lanes;
  ClassPartition part;
  ClassPartition lane_part;
  std::vector<std::size_t> units;
  ClassCoupling coupling;
  std::vector<qn::BatchMvaWorkspace> site_ws;
  // [unit * lanes + lane] network pointers handed to the batch kernels, and
  // the per-unit outcome of the current iteration's MVA sweep.
  std::vector<const qn::ClosedNetwork*> net_ptrs;
  std::vector<unsigned char> site_ok;
  std::vector<std::string> site_error;
};

BatchSolveArena::BatchSolveArena() : impl_(std::make_unique<Impl>()) {}
BatchSolveArena::~BatchSolveArena() = default;
BatchSolveArena::BatchSolveArena(BatchSolveArena&&) noexcept = default;
BatchSolveArena& BatchSolveArena::operator=(BatchSolveArena&&) noexcept =
    default;

std::string SolveShapeKey(const ModelInput& input) {
  ClassPartition part;
  DetectClasses(input, &part);
  std::string key;
  BuildShapeKey(input, part, &key);
  return key;
}

bool WarmStart::CompatibleWith(const ModelInput& input) const {
  if (sites.size() != input.sites.size()) return false;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (TxnType t : kAllTxnTypes) {
      if (sites[i][Index(t)].present !=
          (input.sites[i].Class(t).population > 0)) {
        return false;
      }
    }
  }
  return true;
}

double ModelSolution::TotalTxnPerSec() const {
  double total = 0.0;
  for (const SiteSolution& s : sites) total += s.txn_per_s;
  return total;
}

double ModelSolution::TotalRecordsPerSec() const {
  double total = 0.0;
  for (const SiteSolution& s : sites) total += s.records_per_s;
  return total;
}

CaratModel::CaratModel(ModelInput input) : input_(std::move(input)) {}

ModelSolution CaratModel::Solve(const SolverOptions& options) const {
  return Solve(options, nullptr, nullptr);
}

ModelSolution CaratModel::Solve(const SolverOptions& options,
                                const WarmStart* warm,
                                WarmStart* warm_out) const {
  ModelSolution out;
  SolveInto(options, nullptr, warm, &out, warm_out);
  return out;
}

void CaratModel::SolveInto(const SolverOptions& options, SolveArena* arena,
                           const WarmStart* warm, ModelSolution* out,
                           WarmStart* warm_out) const {
  ResetSolution(out);
  if (!input_.Validate(&out->error)) {
    out->sites.clear();
    return;
  }
  out->ok = true;

  std::optional<SolveArena> local_arena;
  if (arena == nullptr) local_arena.emplace();
  SolveArena::Impl& ar =
      arena != nullptr ? *arena->impl_ : *local_arena->impl_;

  const std::size_t num_sites = input_.sites.size();
  // Alpha is fixed input unless the Ethernet model is enabled, in which
  // case it is re-derived from the model's own message rate each iteration
  // (the two-level coupling of Section 3).
  double alpha = input_.comm_delay_ms;

  // ---- Site classes and solve units. ---------------------------------------
  // The partition drives the class-aggregated coupling sums; with
  // collapse_site_classes it additionally shrinks the solved set to one
  // representative per class (expanded back after convergence).
  if (!EffectivePartition(input_, options, &ar.part, &out->error)) {
    out->ok = false;
    out->sites.clear();
    return;
  }
  const bool collapse =
      options.collapse_site_classes && ar.part.num_classes() < num_sites;
  std::vector<std::size_t>& units = ar.units;
  units.clear();
  units.reserve(collapse ? ar.part.num_classes() : num_sites);
  if (collapse) {
    for (std::size_t cls = 0; cls < ar.part.num_classes(); ++cls) {
      units.push_back(ar.part.rep_site[cls]);
    }
  } else {
    for (std::size_t i = 0; i < num_sites; ++i) units.push_back(i);
  }

  std::vector<SiteState>& st = ar.st;
  st.assign(num_sites, SiteState{});
  InitWorkloadInvariants(input_, units, &st);

  // ---- Shape-keyed arena state. --------------------------------------------
  // The per-unit networks, the class coupling and every other shape-sized
  // buffer are rebuilt only when the input's shape signature (presence +
  // partition + collapse mode) differs from the arena's; same-shape
  // re-solves just rewrite populations and demands in place and allocate
  // nothing.
  BuildShapeKey(input_, ar.part, &ar.shape_scratch);
  ar.shape_scratch.push_back(collapse ? '\1' : '\0');
  if (ar.shape != ar.shape_scratch) {
    ar.shape = ar.shape_scratch;
    BuildSiteNetworks(input_, st, units, &ar.nets);
    BuildClassCoupling(input_, ar.part, &ar.coupling);
  }
  std::vector<SiteNetwork>& nets = ar.nets;
  RefreshSolveState(input_, units, &nets);

  // ---- Warm-start seeding. -------------------------------------------------
  // A compatible seed initializes the fixed point's state variables (Pb, Pd,
  // Pra, the synchronization delays, alpha under the Ethernet model and the
  // retained per-site Schweitzer queue lengths) from a neighbor's converged
  // values. A cold solve resets the arena's retained queue lengths so the
  // trajectory is bit-identical to a fresh-arena solve.
  const bool seeded = warm != nullptr && warm->CompatibleWith(input_);
  out->warm_started = seeded;
  if (seeded) {
    if (options.ethernet.has_value()) alpha = warm->comm_delay_ms;
    SeedClassStates(*warm, units, &st);
  } else {
    for (SiteNetwork& sn : nets) sn.ws.qkm.clear();
  }

  // ---- Fixed-point iteration (Section 6). ----------------------------------
  const std::size_t num_units = units.size();
  std::vector<double>& prev_x = ar.prev_x;
  prev_x.assign(num_units * kNumTxnTypes, 0.0);
  bool converged = false;
  int iteration = 0;
  // High-contention inputs can make the plain damped iteration oscillate;
  // shrinking the damping factor over time restores convergence.
  double damping = options.damping;

  for (iteration = 1; iteration <= options.max_iterations; ++iteration) {
    if (iteration % 100 == 0) damping = std::max(damping * 0.5, 0.02);
    // (1) Visit counts with the current Pb / Pd / Pra.
    if (!StepVisitCounts(input_, units, &st)) {
      out->error = "visit-count system singular";
      out->ok = false;
      out->sites.clear();
      return;
    }

    // (2) sigma, P_a, N_s.
    StepAbortChain(input_, options, ar.part, ar.coupling, units, &st);

    // (3) Demands (Eqs. 5-10) and per-site MVA solve. Each site's network
    // depends only on that site's state from steps (1)-(2), so the solves
    // are independent and run concurrently on options.pool when provided
    // (bit-identical to the serial order — no cross-site reads or writes).
    const auto solve_site = [&](std::size_t u) {
      const std::size_t i = units[u];
      const SiteParams& site = input_.sites[i];
      SiteNetwork& sn = nets[u];
      FillSiteDemands(site, &st[i], &sn);

      // Warm-start from the previous iteration's queue lengths: the fixed
      // point moves the demands only slightly per iteration, so large-
      // population Schweitzer sites converge in a few rounds.
      sn.mva_ok =
          options.use_exact_mva
              ? qn::SolveMvaInPlace(sn.net, &sn.ws, 1u << 20,
                                    /*warm_start=*/true, &sn.mva_error)
              : qn::SchweitzerMvaInPlace(sn.net, &sn.ws, /*tolerance=*/1e-9,
                                         /*max_iterations=*/10000,
                                         /*warm_start=*/true, &sn.mva_error);
      if (!sn.mva_ok) return;
      ReadSiteSolution(site, sn.ws.solution, sn, &st[i]);
    };
    if (options.pool == nullptr) {
      // Run inline rather than through ParallelFor: wrapping the lambda in a
      // std::function would heap-allocate every iteration, and the serial
      // path is the service's allocation-free warm path.
      for (std::size_t u = 0; u < num_units; ++u) solve_site(u);
    } else {
      exec::ParallelFor(options.pool, 0, num_units, solve_site);
    }
    for (std::size_t u = 0; u < num_units; ++u) {
      if (!nets[u].mva_ok) {
        out->error = "MVA failed: " + nets[u].mva_error;
        out->ok = false;
        out->sites.clear();
        return;
      }
    }

    // (4) Execution durations and locks held (Fig. 3 / Eq. 14).
    StepDurations(input_, options, units, &st);

    // (5) Blocking and deadlock quantities (Eqs. 15-20), damped.
    StepLockModel(input_, damping, units, &st);

    // (5b) Communication Network Model.
    if (options.ethernet.has_value()) {
      StepEthernet(input_, options, ar.part, ar.coupling, damping, st,
                   &alpha);
    }

    // (6) Remote-wait and 2PC-wait coupling across sites.
    StepCrossSiteCoupling(input_, ar.part, ar.coupling, alpha, damping, units,
                          &st);

    // (7) Convergence test on throughputs.
    const double max_rel_delta = ThroughputDelta(st, units, &prev_x);
    if (iteration > 2 && max_rel_delta < options.tolerance) {
      converged = true;
      break;
    }
  }

  if (collapse) ExpandClassStates(ar.part, &st);
  if (warm_out != nullptr) ExportWarm(st, alpha, warm_out);
  AssembleSolution(input_, st, converged,
                   std::min(iteration, options.max_iterations), alpha, out);
}

void CaratModel::SolveBatchInto(const ModelInput* const* inputs,
                                std::size_t lanes,
                                const SolverOptions& options,
                                BatchSolveArena* arena,
                                const WarmStart* const* seeds,
                                ModelSolution* const* outs,
                                WarmStart* const* warm_outs) {
  if (lanes == 0) return;
  std::optional<BatchSolveArena> local_arena;
  if (arena == nullptr) local_arena.emplace();
  BatchSolveArena::Impl& ar =
      arena != nullptr ? *arena->impl_ : *local_arena->impl_;

  // ---- Per-lane validation and shape agreement. ----------------------------
  // Lane 0's shape (presence + class partition + collapse mode) defines the
  // block; a lane that fails input validation, has a malformed class spec or
  // disagrees on shape is failed up front and parked on a zeroed network so
  // the lockstep blocks stay rectangular. (The serving layer groups queries
  // by SolveShapeKey, so mismatches never occur there.)
  const std::size_t num_sites = inputs[0]->sites.size();
  std::string spec_error;
  if (!EffectivePartition(*inputs[0], options, &ar.part, &spec_error)) {
    // Lane 0's spec is malformed; the block still needs a well-defined
    // reference partition, so fall back to detection (lane 0 itself is
    // failed below like any other bad-spec lane).
    DetectClasses(*inputs[0], &ar.part);
  }
  BuildShapeKey(*inputs[0], ar.part, &ar.shape_scratch);
  const bool collapse =
      options.collapse_site_classes && ar.part.num_classes() < num_sites;
  ar.shape_scratch.push_back(collapse ? '\1' : '\0');
  std::size_t reference = lanes;  // first valid lane
  for (std::size_t w = 0; w < lanes; ++w) {
    ResetSolution(outs[w]);
    if (!inputs[w]->Validate(&outs[w]->error)) {
      outs[w]->sites.clear();
      continue;
    }
    if (!EffectivePartition(*inputs[w], options, &ar.lane_part,
                            &outs[w]->error)) {
      outs[w]->sites.clear();
      continue;
    }
    BuildShapeKey(*inputs[w], ar.lane_part, &ar.lane_scratch);
    ar.lane_scratch.push_back(collapse ? '\1' : '\0');
    if (ar.lane_scratch != ar.shape_scratch) {
      outs[w]->error = "batch lanes differ in model shape";
      outs[w]->sites.clear();
      continue;
    }
    outs[w]->ok = true;
    if (reference == lanes) reference = w;
  }
  if (reference == lanes) return;  // every lane rejected

  // ---- Solve units (see SolveInto). ----------------------------------------
  std::vector<std::size_t>& units = ar.units;
  units.clear();
  units.reserve(collapse ? ar.part.num_classes() : num_sites);
  if (collapse) {
    for (std::size_t cls = 0; cls < ar.part.num_classes(); ++cls) {
      units.push_back(ar.part.rep_site[cls]);
    }
  } else {
    for (std::size_t i = 0; i < num_sites; ++i) units.push_back(i);
  }
  const std::size_t num_units = units.size();

  // ---- Shape-keyed arena state (see SolveInto). ----------------------------
  if (ar.shape != ar.shape_scratch || ar.lanes.size() != lanes) {
    ar.shape = ar.shape_scratch;
    ar.lanes.resize(lanes);
    // Presence flags drive the chain layout; derive them from the reference
    // lane (all valid lanes agree by shape).
    std::vector<SiteState> ref_st(num_sites);
    InitWorkloadInvariants(*inputs[reference], units, &ref_st);
    for (std::size_t w = 0; w < lanes; ++w) {
      BuildSiteNetworks(*inputs[reference], ref_st, units, &ar.lanes[w].nets);
    }
    BuildClassCoupling(*inputs[reference], ar.part, &ar.coupling);
    // Fresh lockstep workspaces: the retained queue lengths of another shape
    // must not leak into this one.
    ar.site_ws.assign(num_units, qn::BatchMvaWorkspace{});
  }
  ar.net_ptrs.resize(num_units * lanes);
  ar.site_ok.assign(num_units, 1);
  ar.site_error.resize(num_units);
  for (std::size_t u = 0; u < num_units; ++u) {
    for (std::size_t w = 0; w < lanes; ++w) {
      ar.net_ptrs[u * lanes + w] = &ar.lanes[w].nets[u].net;
    }
  }

  // ---- Per-lane solve state, seeding and refresh. --------------------------
  std::size_t remaining = 0;
  for (std::size_t w = 0; w < lanes; ++w) {
    BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
    lane.converged = false;
    lane.iterations = 0;
    lane.failed = !outs[w]->ok;
    lane.active = !lane.failed;
    if (lane.failed) {
      ZeroLaneNetworks(&lane.nets);
      for (std::size_t u = 0; u < num_units; ++u)
        ar.site_ws[u].InvalidateWarm(w);
      continue;
    }
    ++remaining;
    lane.st.assign(num_sites, SiteState{});
    InitWorkloadInvariants(*inputs[w], units, &lane.st);
    RefreshSolveState(*inputs[w], units, &lane.nets);
    lane.alpha = inputs[w]->comm_delay_ms;
    lane.damping = options.damping;
    lane.prev_x.assign(num_units * kNumTxnTypes, 0.0);
    const WarmStart* seed = seeds != nullptr ? seeds[w] : nullptr;
    const bool seeded = seed != nullptr && seed->CompatibleWith(*inputs[w]);
    outs[w]->warm_started = seeded;
    if (seeded) {
      if (options.ethernet.has_value()) lane.alpha = seed->comm_delay_ms;
      SeedClassStates(*seed, units, &lane.st);
    } else {
      // Cold lane: drop its retained Schweitzer queue lengths, exactly like
      // the scalar arena's qkm.clear() (the other lanes' columns keep
      // theirs).
      for (std::size_t u = 0; u < num_units; ++u)
        ar.site_ws[u].InvalidateWarm(w);
    }
  }

  // ---- Lockstep fixed-point iteration. -------------------------------------
  // Each active lane advances through exactly the scalar SolveInto step
  // sequence; the per-site MVA solves run across lanes through the batch
  // kernels. A lane that meets the tolerance freezes: its state stops
  // changing (its MVA lanes keep riding with frozen demands, which is
  // harmless — nothing reads them back), so its results are bit-identical
  // to a scalar solve that stopped at the same iteration.
  for (int iteration = 1;
       iteration <= options.max_iterations && remaining > 0; ++iteration) {
    for (std::size_t w = 0; w < lanes; ++w) {
      BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
      if (!lane.active) continue;
      if (iteration % 100 == 0)
        lane.damping = std::max(lane.damping * 0.5, 0.02);
      if (!StepVisitCounts(*inputs[w], units, &lane.st)) {
        outs[w]->error = "visit-count system singular";
        outs[w]->ok = false;
        outs[w]->sites.clear();
        lane.active = false;
        lane.failed = true;
        ZeroLaneNetworks(&lane.nets);
        --remaining;
        continue;
      }
      StepAbortChain(*inputs[w], options, ar.part, ar.coupling, units,
                     &lane.st);
    }
    if (remaining == 0) break;

    // (3) Demands and lockstep per-site MVA. Unit u's batch touches only
    // unit u's networks and workspace, so units still parallelize across
    // the pool exactly like the scalar path.
    const auto solve_site = [&](std::size_t u) {
      const std::size_t i = units[u];
      for (std::size_t w = 0; w < lanes; ++w) {
        BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
        if (!lane.active) continue;
        FillSiteDemands(inputs[w]->sites[i], &lane.st[i], &lane.nets[u]);
      }
      const qn::ClosedNetwork* const* ptrs = ar.net_ptrs.data() + u * lanes;
      qn::BatchMvaWorkspace& ws = ar.site_ws[u];
      const bool ok =
          options.use_exact_mva
              ? qn::SolveMvaBatchInPlace(ptrs, lanes, &ws, 1u << 20,
                                         /*warm_start=*/true,
                                         &ar.site_error[u])
              : qn::SchweitzerMvaBatchInPlace(ptrs, lanes, &ws,
                                              /*tolerance=*/1e-9,
                                              /*max_iterations=*/10000,
                                              /*warm_start=*/true,
                                              &ar.site_error[u]);
      ar.site_ok[u] = ok ? 1 : 0;
      if (!ok) return;
      for (std::size_t w = 0; w < lanes; ++w) {
        BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
        if (!lane.active) continue;
        ReadSiteSolution(inputs[w]->sites[i], ws.solutions[w], lane.nets[u],
                         &lane.st[i]);
      }
    };
    if (options.pool == nullptr) {
      for (std::size_t u = 0; u < num_units; ++u) solve_site(u);
    } else {
      exec::ParallelFor(options.pool, 0, num_units, solve_site);
    }
    for (std::size_t u = 0; u < num_units; ++u) {
      if (ar.site_ok[u] != 0) continue;
      // A lockstep MVA failure cannot be attributed to one lane, so it
      // fails the remaining active lanes of the block. Validated model
      // inputs never produce invalid site networks, so this is unreachable
      // in practice.
      for (std::size_t w = 0; w < lanes; ++w) {
        BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
        if (!lane.active) continue;
        outs[w]->error = "MVA failed: " + ar.site_error[u];
        outs[w]->ok = false;
        outs[w]->sites.clear();
        lane.active = false;
        lane.failed = true;
      }
      remaining = 0;
    }
    if (remaining == 0) break;

    for (std::size_t w = 0; w < lanes; ++w) {
      BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
      if (!lane.active) continue;
      StepDurations(*inputs[w], options, units, &lane.st);
      StepLockModel(*inputs[w], lane.damping, units, &lane.st);
      if (options.ethernet.has_value()) {
        StepEthernet(*inputs[w], options, ar.part, ar.coupling, lane.damping,
                     lane.st, &lane.alpha);
      }
      StepCrossSiteCoupling(*inputs[w], ar.part, ar.coupling, lane.alpha,
                            lane.damping, units, &lane.st);
      const double max_rel_delta =
          ThroughputDelta(lane.st, units, &lane.prev_x);
      lane.iterations = iteration;
      if (iteration > 2 && max_rel_delta < options.tolerance) {
        lane.converged = true;
        lane.active = false;
        --remaining;
      }
    }
  }

  // ---- Export and assemble per lane. ---------------------------------------
  for (std::size_t w = 0; w < lanes; ++w) {
    BatchSolveArena::Impl::Lane& lane = ar.lanes[w];
    if (lane.failed) continue;
    if (collapse) ExpandClassStates(ar.part, &lane.st);
    if (warm_outs != nullptr && warm_outs[w] != nullptr) {
      ExportWarm(lane.st, lane.alpha, warm_outs[w]);
    }
    AssembleSolution(*inputs[w], lane.st, lane.converged,
                     lane.converged ? lane.iterations
                                    : options.max_iterations,
                     lane.alpha, outs[w]);
  }
}

}  // namespace carat::model
