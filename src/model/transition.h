// Phase-transition probabilities (Table 1 of the paper) and the visit-count
// solver (Eq. 1).

#ifndef CARAT_MODEL_TRANSITION_H_
#define CARAT_MODEL_TRANSITION_H_

#include <array>

#include "model/phases.h"
#include "model/types.h"

namespace carat::model {

/// Probabilistic quantities a transaction's transition matrix depends on.
struct TransitionInputs {
  int local_requests = 0;   ///< l(t)
  int remote_requests = 0;  ///< r(t); 0 for local and slave chains
  double io_per_request = 4.0;  ///< q(t), mean granule I/Os per request
  double pb = 0.0;          ///< Pb(t,i), lock request blocked
  double pd = 0.0;          ///< Pd(t,i), blocked request chosen deadlock victim
  double pra = 0.0;         ///< Pra(t,i), abort while in remote wait
};

/// Row-stochastic 16x16 phase-transition matrix; entry (from, to).
using TransitionMatrix = std::array<std::array<double, kNumPhases>, kNumPhases>;

/// Builds the transition matrix for a local or coordinator chain, exactly per
/// Table 1 of the paper. C(t) = 2 n(t) + 1 transitions leave the TM phase:
/// n back to the user process, l to a local DM server, r to a remote site,
/// and one into commit processing.
TransitionMatrix BuildLocalOrCoordinatorMatrix(const TransitionInputs& in);

/// Builds the matrix for a slave chain (the paper states the slave
/// expressions are "similar"; DESIGN.md section 4 gives our derivation).
/// A slave has no U phase: it wakes from UT into TM on the first REMDO,
/// returns to RW after each served request, and enters TC when the PREPARE
/// arrives, giving C = 2 l + 1 TM transitions split l:l:1 over DM, RW and TC.
TransitionMatrix BuildSlaveMatrix(const TransitionInputs& in);

/// Dispatches on the chain type.
TransitionMatrix BuildTransitionMatrix(TxnType type, const TransitionInputs& in);

/// Mean visits to each phase per execution (committed or aborted), V_c,
/// obtained by solving V = V . P with V_UT = 1 (Eq. 1).
using VisitCounts = std::array<double, kNumPhases>;

/// Solves Eq. 1. Returns false if the linear system is singular (malformed
/// matrix).
bool SolveVisitCounts(const TransitionMatrix& p, VisitCounts* v);

}  // namespace carat::model

#endif  // CARAT_MODEL_TRANSITION_H_
