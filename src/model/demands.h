// Service-demand assembly (Eqs. 2 and 5-10 of the paper): converts visit
// counts and per-phase costs into per-commit demands at every service center
// of the Site Processing Model.

#ifndef CARAT_MODEL_DEMANDS_H_
#define CARAT_MODEL_DEMANDS_H_

#include "model/params.h"
#include "model/transition.h"
#include "model/types.h"

namespace carat::model {

/// Current iteration estimates of the per-visit delays at the synchronization
/// delay centers (the quantities solved for by the fixed point, Section 6).
struct PhaseDelays {
  double r_lw_ms = 0.0;   ///< per LW visit
  double r_rw_ms = 0.0;   ///< per RW visit
  double r_cwc_ms = 0.0;  ///< per CWC visit
  double r_cwa_ms = 0.0;  ///< per CWA visit
};

/// Per-commit service demands of one chain at one site (Eqs. 5-10).
struct ClassDemands {
  double cpu_ms = 0.0;
  double db_disk_ms = 0.0;
  double log_disk_ms = 0.0;  ///< 0 unless the site has a separate log disk
  double lw_ms = 0.0;        ///< D_LW
  double rw_ms = 0.0;        ///< D_RW
  double cw_ms = 0.0;        ///< D_CW (commit + abort paths combined)
  double ut_ms = 0.0;        ///< D_UT = (N_s - 1) R_UT (Eq. 10)

  double Total() const {
    return cpu_ms + db_disk_ms + log_disk_ms + lw_ms + rw_ms + cw_ms + ut_ms;
  }
};

/// Assembles the demands for type `t` at `site`.
/// `visits` are per-execution visit counts (Eq. 1 output); `ns` is the mean
/// submissions per commit N_s (Eq. 4); `sigma` the mean abort progress
/// fraction (used for rollback and unlock cost, which depend on how many
/// granules were touched when the abort struck); `nlk` the lock requests per
/// execution; `buffer_hit_prob` lets buffered reads skip their block I/O
/// (0 under the paper's no-buffer assumption).
ClassDemands ComputeDemands(const SiteParams& site, TxnType t,
                            const VisitCounts& visits, double ns, double sigma,
                            double nlk, const PhaseDelays& delays,
                            double buffer_hit_prob = 0.0);

}  // namespace carat::model

#endif  // CARAT_MODEL_DEMANDS_H_
