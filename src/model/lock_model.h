// Lock-contention submodel (Section 5.4 of the paper): average locks held,
// blocking probabilities, deadlock-victim probability, and lock-wait delay.
//
// All functions are pure; the iterative solver (solver.h) feeds them the
// current estimates and damps the outputs.

#ifndef CARAT_MODEL_LOCK_MODEL_H_
#define CARAT_MODEL_LOCK_MODEL_H_

#include <array>

#include "model/types.h"

namespace carat::model {

/// Expected number of locks held at the end of an aborted execution, E[Y]
/// (Eq. 11), for a transaction requesting `nlk` locks where each request is
/// independently fatal with probability `pbpd` = Pb * Pd.
double ExpectedLocksAtAbort(double pbpd, double nlk);

/// sigma = E[Y] / N_lk, the mean fraction of lock requests issued before an
/// abort strikes. Defined as 1 when aborts are impossible.
double SigmaFraction(double pbpd, double nlk);

/// Time-average number of locks held by a transaction (Eq. 14).
/// `rs` is the mean duration of a successful execution, `rut` the mean think
/// time, `pa` the per-submission abort probability, `sigma` from above.
double AverageLocksHeld(double nlk, double sigma, double pa, double rs,
                        double rut);

/// Per-site per-type inputs for the blocking computations.
struct SiteLockInputs {
  /// Population N(t,i).
  std::array<double, kNumTxnTypes> population{};
  /// Time-average locks held per transaction, L_h(t,i).
  std::array<double, kNumTxnTypes> locks_held{};
  /// Total lock requests per execution, N_lk(t).
  std::array<double, kNumTxnTypes> lock_requests{};
  /// Probability a transaction blocks at least once per execution (Eq. 16);
  /// used by the two-cycle deadlock estimate.
  std::array<double, kNumTxnTypes> block_prob_per_execution{};
  /// Number of lockable granules at the site, N_g.
  double num_granules = 1.0;
  /// Lock-collision inflation from access skew (AccessSkew::ContentionFactor;
  /// 1 under the paper's uniform-access assumption).
  double contention_factor = 1.0;
};

/// Pb(t,i) (Eq. 15, mode-consistent form): probability one lock request of a
/// type-t transaction is blocked. Shared requests conflict only with
/// exclusive holders (the update types); exclusive requests conflict with
/// every holder. A transaction never blocks on its own locks.
double BlockingProbability(const SiteLockInputs& in, TxnType t);

/// P_lw(t,i) (Eq. 16): probability a type-t execution blocks at least once.
double BlockAtLeastOnceProbability(double pb, double nlk);

/// PB(t,s,i) (Eq. 17, mode-aware): probability the blocker is of type s given
/// a type-t request blocked. Zero for (reader t, reader s) pairs; the type-t
/// row sums to 1 whenever some blocker is possible.
double BlockerTypeProbability(const SiteLockInputs& in, TxnType t, TxnType s);

/// Pd(t,i): probability a blocked type-t request is a two-cycle deadlock
/// victim. Reconstruction of the [JENQ86] derivation (see DESIGN.md §4):
///   Pd(t,i) = sum_s PB(t,s,i) * P_lw(s,i) * PB(s,t,i) / N(t,i),
/// i.e. the blocker s must itself be blocked, and its blocker must be this
/// very transaction. First-order in Pb, mode-aware through PB.
double DeadlockVictimProbability(const SiteLockInputs& in, TxnType t);

/// Blocking ratio BR(t) (Eq. 19) = (2 N_lk + 1) / (6 N_lk), approximately
/// 1/3: the expected remaining lock-holding time of the blocker as a
/// fraction of its execution time.
double BlockingRatio(double nlk);

/// Mean remaining blocking time RLT(s,i) (Eq. 18) given the blocker's mean
/// execution duration.
double MeanBlockingTime(double nlk_blocker, double blocker_execution_ms);

/// R_LW(t,i) (Eq. 20): mean lock-wait delay per blocked request, combining
/// the blocker-type distribution with the per-type blocking times.
double LockWaitDelay(const SiteLockInputs& in, TxnType t,
                     const std::array<double, kNumTxnTypes>& rlt);

}  // namespace carat::model

#endif  // CARAT_MODEL_LOCK_MODEL_H_
