#include "dist/runtime.h"

#include <algorithm>
#include <utility>

namespace carat::dist {

void RtResource::Use(double service_virtual_ms) {
  if (service_virtual_ms <= 0.0) return;
  RtClock::TimePoint end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const RtClock::TimePoint now = std::chrono::steady_clock::now();
    const RtClock::TimePoint start = std::max(now, busy_until_);
    end = start + clock_->RealDuration(service_virtual_ms);
    busy_until_ = end;
    busy_virtual_ms_ += service_virtual_ms;
    ++completions_;
  }
  std::this_thread::sleep_until(end);
}

double RtResource::BacklogVms() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::chrono::duration<double, std::milli> ahead =
      busy_until_ - std::chrono::steady_clock::now();
  if (ahead.count() <= 0.0) return 0.0;
  return ahead.count() / clock_->scale();
}

double RtResource::BusyVirtualMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_virtual_ms_;
}

std::uint64_t RtResource::completions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completions_;
}

void RtResource::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  busy_virtual_ms_ = 0.0;
  completions_ = 0;
}

void RtFifoMutex::Lock() {
  std::unique_lock<std::mutex> lock(mu_);
  ++depth_;
  if (!held_ && queue_.empty()) {
    held_ = true;
    return;
  }
  auto waiter = std::make_shared<Waiter>();
  queue_.push_back(waiter);
  // Unlock hands ownership to us directly (held_ never drops while we
  // queue), so FIFO order holds even against fresh arrivals.
  waiter->cv.wait(lock, [&] { return waiter->ready; });
}

void RtFifoMutex::Unlock() {
  std::shared_ptr<Waiter> next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --depth_;
    if (queue_.empty()) {
      held_ = false;
    } else {
      next = queue_.front();
      queue_.pop_front();
      next->ready = true;
    }
  }
  if (next) next->cv.notify_one();
}

std::uint64_t RtFifoMutex::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

void RtSemaphore::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (available_ <= 0) {
    ++waits_;
    cv_.wait(lock, [&] { return available_ > 0; });
  }
  --available_;
}

void RtSemaphore::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++available_;
  }
  cv_.notify_one();
}

std::uint64_t RtSemaphore::waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_;
}

void RtSemaphore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  waits_ = 0;
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(fn));
      // idle_ still counts a waiter that an earlier Submit has notified but
      // that has not resumed yet, so `idle_ > 0` alone cannot prove this
      // task will be picked up: a notify here can land on that same
      // already-released waiter and be absorbed, stranding the task until
      // the running handler finishes. A REMDO handler can block on a lock
      // for arbitrarily long, so a stranded TABORT/VICTIM behind it
      // deadlocks the coordinator. Spawning whenever the backlog exceeds
      // the waiters closes that gap (the new thread is a guaranteed
      // pickup), so a single notify suffices in the other branch: every
      // released-but-unresumed waiter re-checks the queue under the
      // predicate loop before sleeping again.
      if (queue_.size() > static_cast<std::size_t>(idle_)) {
        threads_.emplace_back([this] { WorkerMain(); });
        ++live_;
      } else {
        cv_.notify_one();
      }
      return;
    }
  }
  // Shut down: run inline so late protocol messages still complete.
  fn();
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{queue_.size(), idle_, static_cast<std::size_t>(live_)};
}

void WorkerPool::WorkerMain() {
  // A blocking burst (e.g. a deadlock tangle parking many handlers at once)
  // can spawn hundreds of workers; retire the ones that stay idle so the
  // pool shrinks back to steady-state size. The retired std::thread handles
  // stay in threads_ and are joined at Shutdown.
  constexpr std::chrono::seconds kIdleRetire{2};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ++idle_;
    const bool work =
        cv_.wait_for(lock, kIdleRetire, [&] { return stop_ || !queue_.empty(); });
    --idle_;
    if (!work || queue_.empty()) {
      // Idled out, or stop_ with nothing left to drain. idle_ was already
      // decremented under mu_, so a racing Submit sees the reduced waiter
      // count and spawns a replacement instead of notifying a ghost.
      --live_;
      return;
    }
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    fn();
    lock.lock();
  }
}

void WorkerPool::Shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    threads.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& t : threads) t.join();
}

}  // namespace carat::dist
