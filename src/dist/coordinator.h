// Coordinator for a multi-process distributed testbed run.
//
// RunDistributed spawns one carat_sited process per site, walks them through
// the handshake (HELLO / CONFIG / PEERS / ALPHA / START / DRAINED / FINISH /
// REPORT / SHUTDOWN; see dist/wire.h), aggregates the per-site reports, and
// optionally cross-checks the aggregate throughput, response time and
// restart probability against the in-process RunTestbed reference run with
// the *measured* communication delay alpha fed in as comm_delay_ms — the
// distributed system and the event simulation execute the same protocol
// over the same cost tables, so they must agree within the (stochastic +
// scheduling-jitter) tolerances below.

#ifndef CARAT_DIST_COORDINATOR_H_
#define CARAT_DIST_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "dist/engine.h"
#include "dist/wire.h"

namespace carat::dist {

struct DistRunOptions {
  wire::DistConfig config;

  /// Real-time windows each site runs (milliseconds of wall clock).
  double warmup_real_ms = 1500.0;
  double measure_real_ms = 6000.0;
  double drain_timeout_ms = 20'000.0;

  /// Path to the carat_sited binary; empty resolves CARAT_SITED_BIN, then
  /// the running executable's directory, then its ../tools sibling.
  std::string sited_bin;

  /// Cross-check against the in-process reference. The tolerances absorb
  /// two independent noise sources: the finite distributed sample (a few
  /// thousand commits) and wall-clock scheduling jitter on loaded CI
  /// machines. Calibration: loopback 2-site mb8 runs land within ~10% on
  /// throughput; the bounds leave 3x headroom.
  bool check = true;
  double tol_throughput_rel = 0.35;
  double tol_response_rel = 0.45;
  double tol_restart_abs = 0.10;

  /// Reference-run virtual window (ms); long enough for tight statistics.
  double ref_warmup_vms = 50'000.0;
  double ref_measure_vms = 500'000.0;

  /// Invoked right after START ships, with each site's mesh endpoint
  /// ("host:port" by site index) — the hook drives external load (the load
  /// generator, benchmarks) while the sites' measurement window runs.
  std::function<void(const std::vector<std::string>& mesh_endpoints)>
      during_measure;
};

struct DistRunResult {
  bool ok = false;
  std::string error;

  /// Measured link delay: mean real RTT over all site pairs, and the
  /// virtual one-way delay fed to the reference model.
  double alpha_rtt_real_ms = 0.0;
  double alpha_virtual_ms = 0.0;

  std::vector<EngineReport> reports;  ///< by site
  double measured_vms = 0.0;          ///< mean site measurement window

  // Aggregates over resident users (virtual time base).
  std::uint64_t commits = 0;
  std::uint64_t submissions = 0;
  std::uint64_t aborts = 0;
  double dist_txn_per_s = 0.0;
  double dist_response_ms = 0.0;
  double dist_restart_prob = 0.0;
  std::uint64_t global_deadlocks = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t ext_commits = 0;
  bool all_drained = false;
  bool all_audits_ok = false;

  // Reference run and the comparison (when options.check).
  bool checked = false;
  double ref_txn_per_s = 0.0;
  double ref_response_ms = 0.0;
  double ref_restart_prob = 0.0;
  double throughput_rel_err = 0.0;
  double response_rel_err = 0.0;
  double restart_abs_err = 0.0;
  bool within_tolerance = false;
};

/// Resolves the carat_sited binary (see DistRunOptions::sited_bin); empty
/// string when none of the candidates exists.
std::string ResolveSitedBinary();

DistRunResult RunDistributed(const DistRunOptions& options);

}  // namespace carat::dist

#endif  // CARAT_DIST_COORDINATOR_H_
