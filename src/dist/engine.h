// One CARAT site as a real-time protocol engine.
//
// SiteEngine hosts everything a site process owns: the site's database with
// per-transaction before-image journaling, the blocking 2PL lock manager,
// the serialized TM server, the CPU / database-disk / log-disk resources
// (reservation-ledger FCFS, see dist/runtime.h), the resident user TR
// threads homed here, the slave-side handlers for remote requests and 2PC
// legs, and the probe logic for global deadlock detection. It is transport
// agnostic: outgoing mesh messages go through a Sender callback and incoming
// ones are fed to HandleMessage by the site daemon (on worker-pool threads —
// handlers block on locks and resources).
//
// The phase cost structure mirrors carat/testbed.cc visit by visit (INIT,
// U, TM routing, request execution, REMDO round trips, centralized 2PC with
// forced log writes, rollback, UL) so a distributed run is cross-checkable
// against the in-process RunTestbed reference: both implement the same
// protocol over the same cost tables, one in virtual time, one in scaled
// real time. All engine-internal times are *virtual* milliseconds.
//
// Global transaction ids encode the home site (gid = seq * num_sites +
// home), matching the in-process registry, so any site can route a probe
// toward a transaction's home without a directory lookup.

#ifndef CARAT_DIST_ENGINE_H_
#define CARAT_DIST_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "dist/rt_lock.h"
#include "dist/runtime.h"
#include "dist/wire.h"
#include "model/params.h"
#include "util/random.h"
#include "util/stats.h"

namespace carat::dist {

/// Per-transaction-type counters a site reports (home-site accounting, as
/// in the in-process testbed). Sums, not means, so the coordinator can
/// aggregate across sites exactly.
struct TypeCounters {
  bool present = false;
  std::uint64_t commits = 0;
  std::uint64_t submissions = 0;
  std::uint64_t aborts = 0;
  std::uint64_t records_committed = 0;
  double response_sum_vms = 0.0;     ///< sum of commit-cycle times
  double lock_wait_sum_vms = 0.0;    ///< per-cycle LW sums
  double remote_wait_sum_vms = 0.0;  ///< per-cycle RW sums
  double commit_wait_sum_vms = 0.0;  ///< per-cycle CW sums
};

/// Everything one site measures over a window, in virtual milliseconds.
struct EngineReport {
  double measured_vms = 0.0;
  double cpu_busy_vms = 0.0;
  double db_busy_vms = 0.0;
  double log_busy_vms = 0.0;
  std::uint64_t dio = 0;  ///< block I/O completions (db + log disks)
  std::uint64_t lock_requests = 0;
  std::uint64_t lock_blocks = 0;
  std::uint64_t local_deadlocks = 0;
  std::uint64_t cancelled_waits = 0;
  std::uint64_t global_deadlocks = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t dm_pool_waits = 0;
  std::uint64_t ext_commits = 0;  ///< load-generator transactions
  std::uint64_t ext_aborts = 0;
  bool drained = false;
  bool audit_ok = false;
  std::array<TypeCounters, model::kNumTxnTypes> types;

  std::string Encode() const;  ///< REPORT key=value payload
  static bool Decode(std::string_view body, EngineReport* out);
};

struct EngineOptions {
  int site = 0;
  int num_sites = 1;
  double scale = 0.1;  ///< real ms per virtual ms
  std::uint64_t seed = 1;
  bool spawn_users = true;
  double probe_cpu_ms = 1.0;
  double reprobe_interval_vms = 200.0;
  /// Probe journeys longer than this are dropped (the watchdog retries).
  /// Wait chains under heavy contention can be long: FIFO queues make the
  /// waits-for graph deep, and each cycle member costs up to two hops (home
  /// routing + evaluation).
  int max_probe_hops = 64;
};

class SiteEngine {
 public:
  /// Ships `body` (a wire payload, verb first) to site `to`; never invoked
  /// with to == this site. Must be thread-safe.
  using Sender = std::function<void(int to, const std::string& body)>;

  SiteEngine(const model::ModelInput& input, const EngineOptions& options,
             Sender sender);
  ~SiteEngine();

  SiteEngine(const SiteEngine&) = delete;
  SiteEngine& operator=(const SiteEngine&) = delete;

  /// Spawns the resident user threads (if configured) and the re-probe
  /// watchdog. Remote requests may arrive from peers before or after.
  void Start();

  /// Zeroes the measurement counters; called at the end of warm-up.
  void ResetStats();

  /// Signals resident users to stop at their next commit-cycle boundary and
  /// joins them. Records the measured window length.
  void StopUsers();

  /// Waits until no slave legs or external transactions remain in flight
  /// (all peers must have stopped submitting first). False on timeout.
  bool Drain(double timeout_real_ms);

  /// Runs the end-of-run audit and gathers the report. Call after Drain.
  EngineReport Collect();

  /// Stops everything (users, watchdog, handler pool). Engine becomes inert.
  void Stop();

  /// Dispatches one incoming mesh payload. Called on worker-pool threads;
  /// may block on locks/resources for extended (scaled) time.
  void HandleMessage(int from, const std::string& body);

  /// Runs one client-submitted transaction to commit (retrying aborts like
  /// a resident user) and returns the TXN_K payload. Blocking.
  std::string RunExternalTxn(std::string_view type_token, int requests);

  /// Runs `fn` on the engine's handler pool. The site daemon dispatches
  /// client TXN frames through this so a connection's reader thread never
  /// blocks on transaction execution (load generators pipeline frames).
  void Dispatch(std::function<void()> fn) { pool_.Submit(std::move(fn)); }

  int site() const { return options_.site; }
  const RtClock& clock() const { return clock_; }

  /// One-line-per-fact dump of the engine's wait state (lock waits and
  /// their wait-for edges, in-flight coordinator transactions with their
  /// pending reply counts, resident slave legs, external transactions) for
  /// diagnosing a stuck distributed run; the coordinator requests it via
  /// the DUMP control verb when a site misses a protocol deadline.
  std::string DebugSnapshot();

 private:
  struct PhaseAcct {
    double lock_wait_vms = 0.0;
    double remote_wait_vms = 0.0;
    double commit_wait_vms = 0.0;
  };

  /// A resident user TR thread and its measurement counters.
  struct UserDriver {
    model::TxnType type = model::TxnType::kLRO;
    util::Rng rng{0};
    std::thread thread;
    std::mutex mu;  ///< guards the counters against ResetStats/Collect
    std::uint64_t commits = 0;
    std::uint64_t submissions = 0;
    std::uint64_t aborts = 0;
    std::uint64_t records_committed = 0;
    util::StatAccumulator response_vms;
    util::StatAccumulator lock_wait_vms;
    util::StatAccumulator remote_wait_vms;
    util::StatAccumulator commit_wait_vms;
  };

  /// Coordinator-side registry entry for an in-flight transaction homed
  /// here: the blocking slot remote replies signal, plus the current node
  /// for probe routing.
  struct CoordTxn {
    model::TxnType type;
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;   ///< outstanding replies in the current round
    bool remdo_ok = true;
    int current_node = 0;
    /// Which round the coordinator is blocked in ("remdo", "prepare",
    /// "commit", "tabort") and since when — names the message a stuck
    /// transaction is waiting for in a DebugSnapshot.
    const char* phase = "run";
    double phase_start_vms = 0.0;
  };

  /// Per-site execution state of one transaction (the home part of a local
  /// coordinator, or a slave leg of a remote one): before images for
  /// rollback and applied updates for the commit-time audit credit.
  struct LocalTxnState {
    model::TxnType coord_type = model::TxnType::kLRO;
    std::map<db::GranuleId, std::vector<db::RecordValue>> undo;
    std::vector<db::RecordId> updated;
  };

  struct RequestSpec {
    int node = 0;
    std::vector<db::RecordId> records;
  };

  const model::SiteParams& params() const {
    return input_.sites[options_.site];
  }
  const model::ClassParams& HomeCosts(model::TxnType t) const {
    return params().Class(t);
  }
  const model::ClassParams& SlaveCosts(model::TxnType coord_type) const {
    return params().Class(model::SlaveOf(coord_type));
  }

  double NowVms() const { return clock_.NowVirtualMs(); }
  void Send(int to, const std::string& body);

  // --- resource usage (blocking, scaled real time) -------------------------
  void UseCpu(double vms) { cpu_.Use(vms); }
  void TmHandle(double vms);
  void DbIo(int blocks);
  void LogIo(int blocks);

  // --- transaction lifecycle (home side) -----------------------------------
  std::uint64_t NewGid(model::TxnType type);
  void EndGid(std::uint64_t gid);
  CoordTxn* FindCoordTxn(std::uint64_t gid);
  void SetCurrentNode(std::uint64_t gid, int node);

  void UserMain(UserDriver* driver);
  std::vector<RequestSpec> BuildPlan(model::TxnType type, int local_requests,
                                     int remote_requests,
                                     int records_per_request, util::Rng* rng);
  bool RunOnce(model::TxnType type, std::uint64_t gid,
               const std::vector<RequestSpec>& plan, PhaseAcct* acct);
  bool RemoteRequest(std::uint64_t gid, model::TxnType type,
                     const RequestSpec& req, std::vector<bool>* touched);
  void Commit2pc(std::uint64_t gid, model::TxnType type,
                 const std::vector<int>& slaves, PhaseAcct* acct);
  void GlobalAbort(std::uint64_t gid, model::TxnType type, int victim_node,
                   const std::vector<bool>& touched);

  // --- per-site execution (home part and slave legs) -----------------------
  bool ExecuteRequestHere(std::uint64_t gid, const model::ClassParams& costs,
                          bool update, const std::vector<db::RecordId>& records,
                          PhaseAcct* acct, LocalTxnState* state);
  void RollbackHere(std::uint64_t gid, const model::ClassParams& costs,
                    LocalTxnState* state);
  void ReleaseLocksHere(std::uint64_t gid, const model::ClassParams& costs);
  void CreditCommitted(LocalTxnState* state);

  // --- slave-side message handlers -----------------------------------------
  void HandleRemdo(int from, const std::string& body);
  void HandlePrepare(int from, const std::string& body);
  void HandleCommit(int from, const std::string& body);
  void HandleTabort(int from, const std::string& body);
  void HandleReply(const std::string& body, bool remdo);

  // --- global deadlock probes ----------------------------------------------
  void OnBlock(TxnId waiter, std::vector<TxnId> holders);
  void HandleProbe(std::uint64_t initiator, int initiator_site,
                   std::uint64_t target, int hops, std::uint64_t max_gid);
  void DeliverVictim(std::uint64_t initiator, int initiator_site);
  void WatchdogMain();

  int HomeOf(std::uint64_t gid) const {
    return static_cast<int>(gid % static_cast<std::uint64_t>(
                                      options_.num_sites));
  }

  const model::ModelInput input_;
  const EngineOptions options_;
  Sender sender_;
  RtClock clock_;

  RtResource cpu_;
  RtResource db_disk_;
  std::unique_ptr<RtResource> log_disk_;  ///< null: shares the db disk
  RtFifoMutex tm_mutex_;
  std::unique_ptr<RtSemaphore> dm_pool_;
  RtLockManager locks_;
  WorkerPool pool_;

  std::mutex db_mu_;  ///< guards database_, shadow_ and LocalTxnState maps
  db::Database database_;
  std::vector<std::uint64_t> shadow_;  ///< committed increments per record
  std::unordered_map<std::uint64_t, std::unique_ptr<LocalTxnState>> local_;

  std::mutex coord_mu_;  ///< guards coord_txns_ and next_seq_
  std::unordered_map<std::uint64_t, std::unique_ptr<CoordTxn>> coord_txns_;
  std::uint64_t next_seq_ = 0;

  std::vector<std::unique_ptr<UserDriver>> drivers_;
  std::atomic<bool> stop_users_{false};
  std::atomic<bool> stopping_{false};
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;

  std::mutex ext_mu_;
  util::Rng ext_rng_{0};
  int ext_active_ = 0;
  std::uint64_t ext_commits_ = 0;
  std::uint64_t ext_aborts_ = 0;
  std::condition_variable ext_cv_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> probes_sent_{0};
  std::atomic<std::uint64_t> global_deadlocks_{0};

  /// Per-verb send/receive counters (diagnostic): comparing one site's tx
  /// row against the peer's rx row in paired DebugSnapshots shows whether a
  /// missing protocol step was lost in transit or stalled after delivery.
  /// handled_ counts pool tasks that actually started; rx minus handled is
  /// work sitting in the pool queue.
  static constexpr int kNumVerbs = 11;
  static int VerbIndex(std::string_view verb);
  static const char* VerbName(int index);
  std::array<std::atomic<std::uint64_t>, kNumVerbs> tx_verbs_{};
  std::array<std::atomic<std::uint64_t>, kNumVerbs> rx_verbs_{};
  std::atomic<std::uint64_t> handled_{0};

  double window_start_vms_ = 0.0;
  double window_end_vms_ = 0.0;
};

}  // namespace carat::dist

#endif  // CARAT_DIST_ENGINE_H_
