#include "dist/site_daemon.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/engine.h"
#include "dist/wire.h"
#include "rpc/client.h"
#include "rpc/message_server.h"
#include "util/cli.h"

namespace carat::dist {

namespace {

/// Strips the "<id> " prefix rpc::Client prepends to binary frames.
std::string_view StripFrameId(std::string_view line) {
  const std::size_t space = line.find(' ');
  return space == std::string_view::npos ? std::string_view()
                                         : line.substr(space + 1);
}

class SiteDaemon {
 public:
  explicit SiteDaemon(const SiteDaemonOptions& options) : options_(options) {}

  int Run() {
    std::string error;
    server_ = std::make_unique<rpc::MessageServer>(
        rpc::MessageServer::Options{},
        [this](const rpc::MessageServer::ConnectionPtr& conn,
               const std::string& id, const std::string& body) {
          OnFrame(conn, id, body);
        });
    if (!server_->Start(&error)) return Fail("mesh listen: " + error);

    rpc::Client::ConnectOptions copts;
    copts.framing = rpc::FramingKind::kBinary;
    copts.recv_timeout_ms = options_.control_timeout_ms;
    copts.connect_timeout_ms = 5000;
    copts.connect_attempts = 50;
    copts.reconnect_backoff_ms = 100;
    if (!control_.Connect(options_.coordinator_host,
                          static_cast<std::uint16_t>(options_.coordinator_port),
                          &error, copts)) {
      return Fail("coordinator connect: " + error);
    }
    {
      std::string hello = "0 HELLO";
      wire::AppendKv(&hello, "site",
                     static_cast<std::int64_t>(options_.site));
      wire::AppendKv(&hello, "port",
                     static_cast<std::int64_t>(server_->port()));
      wire::AppendKv(&hello, "cc", std::string_view(options_.cc));
      if (!control_.SendLine(hello)) return Fail("HELLO send failed");
    }

    // Control loop: the coordinator drives, the daemon reacts.
    for (;;) {
      std::string line;
      if (!control_.ReadLine(&line)) {
        return Fail("coordinator link lost");
      }
      const std::string_view payload = StripFrameId(line);
      wire::TokenReader reader(payload);
      std::string_view verb;
      if (!reader.Next(&verb)) continue;
      int rc = 0;
      if (verb == "CONFIG") {
        rc = OnConfig(payload);
      } else if (verb == "PEERS") {
        rc = OnPeers(reader);
      } else if (verb == "START") {
        rc = OnStart(payload);
      } else if (verb == "FINISH") {
        rc = OnFinish(payload);
      } else if (verb == "DUMP") {
        // Stuck-run diagnosis: the coordinator asks for the wait state when
        // a site misses a protocol deadline. stderr reaches the operator's
        // terminal through the inherited descriptor.
        std::lock_guard<std::mutex> lock(mu_);
        std::fprintf(stderr, "carat_sited[site %d]: cc=%s\n", options_.site,
                     options_.cc.c_str());
        if (engine_ != nullptr) {
          std::fprintf(stderr, "%s", engine_->DebugSnapshot().c_str());
        }
      } else if (verb == "SHUTDOWN") {
        break;
      } else {
        rc = Fail("unexpected control verb: " + std::string(verb));
      }
      if (rc != 0) return rc;
    }

    Teardown();
    return 0;
  }

 private:
  struct OutLink {
    std::unique_ptr<rpc::Client> client;
    std::mutex send_mu;  ///< serializes SendLine against engine threads
    std::thread reader;
  };

  /// Serializes control-channel writes: DRAINED ships from the window
  /// thread while the control loop may answer DUMP or send REPORT.
  bool ControlSend(const std::string& line) {
    std::lock_guard<std::mutex> lock(control_send_mu_);
    return control_.SendLine(line);
  }

  int Fail(const std::string& message) {
    std::fprintf(stderr, "carat_sited[site %d]: %s\n", options_.site,
                 message.c_str());
    Teardown();
    return 1;
  }

  void Teardown() {
    closing_.store(true);
    if (engine_ != nullptr) engine_->Stop();
    if (window_thread_.joinable()) window_thread_.join();
    for (auto& link : out_) {
      if (link == nullptr || link->client == nullptr) continue;
      link->client->Close();  // unblocks the reader thread
      if (link->reader.joinable()) link->reader.join();
    }
    if (server_ != nullptr) server_->Shutdown();
  }

  int OnConfig(std::string_view payload) {
    // "CONFIG <kv...>": ParseKv skips the bare verb token.
    std::string error;
    if (!wire::DistConfig::Decode(payload, &config_, &error)) {
      return Fail(error);
    }
    if (options_.site < 0 || options_.site >= config_.sites) {
      return Fail("site index out of range");
    }
    if (config_.cc != options_.cc) {
      return Fail("CONFIG names cc backend '" + config_.cc +
                  "' but this site runs '" + options_.cc +
                  "' (mixed-backend meshes are rejected)");
    }
    EngineOptions eopts;
    eopts.site = options_.site;
    eopts.num_sites = config_.sites;
    eopts.scale = config_.scale;
    eopts.seed = config_.seed;
    eopts.spawn_users = config_.spawn_users;
    eopts.probe_cpu_ms = config_.probe_cpu_ms;
    eopts.reprobe_interval_vms = config_.reprobe_interval_ms;
    eopts.max_probe_hops = config_.max_probe_hops;
    auto engine = std::make_unique<SiteEngine>(
        config_.ToModelInput(), eopts,
        [this](int to, const std::string& body) { MeshSend(to, body); });
    {
      std::lock_guard<std::mutex> lock(mu_);
      engine_ = std::move(engine);
    }
    return 0;
  }

  int OnPeers(wire::TokenReader& reader) {
    if (engine_ == nullptr) return Fail("PEERS before CONFIG");
    std::vector<std::string> endpoints;
    std::string_view token;
    while (reader.Next(&token)) endpoints.emplace_back(token);
    if (static_cast<int>(endpoints.size()) != config_.sites) {
      return Fail("PEERS size mismatch");
    }
    out_.resize(static_cast<std::size_t>(config_.sites));

    // Dial every higher-indexed peer; SITE identifies us on their side.
    for (int j = options_.site + 1; j < config_.sites; ++j) {
      std::string host;
      int port = 0;
      if (!util::ParseHostPort(endpoints[static_cast<std::size_t>(j)].c_str(),
                               &host, &port, util::PortZeroPolicy::kReject)) {
        return Fail("bad peer endpoint: " + endpoints[j]);
      }
      auto link = std::make_unique<OutLink>();
      link->client = std::make_unique<rpc::Client>();
      rpc::Client::ConnectOptions copts;
      copts.framing = rpc::FramingKind::kBinary;
      copts.recv_timeout_ms = 0;  // mesh links may idle; Close() unblocks
      copts.connect_timeout_ms = 5000;
      copts.connect_attempts = 50;
      copts.reconnect_backoff_ms = 100;
      std::string error;
      if (!link->client->Connect(host, static_cast<std::uint16_t>(port),
                                 &error, copts)) {
        return Fail("peer " + std::to_string(j) + " connect: " + error);
      }
      if (!link->client->SendLine("0 SITE " + std::to_string(options_.site))) {
        return Fail("peer " + std::to_string(j) + " SITE send failed");
      }
      out_[static_cast<std::size_t>(j)] = std::move(link);
    }

    // Barrier: every lower-indexed peer must have dialed in before alpha
    // measurement (their connects also carry the PONG path).
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool ok = cv_.wait_for(
          lock, std::chrono::milliseconds(options_.control_timeout_ms),
          [&] { return in_count_ == options_.site; });
      if (!ok) return Fail("timed out waiting for lower-indexed peers");
    }

    // Alpha: median of 5 RTTs per outgoing link, measured synchronously
    // before the reader thread takes over the receive path.
    double rtt_sum = 0.0;
    int links = 0;
    for (int j = options_.site + 1; j < config_.sites; ++j) {
      OutLink* link = out_[static_cast<std::size_t>(j)].get();
      std::vector<double> rtts;
      for (int k = 0; k < 5; ++k) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!link->client->SendLine("0 PING " + std::to_string(k))) {
          return Fail("PING send failed");
        }
        std::string pong;
        if (!link->client->ReadLine(&pong)) return Fail("PONG read failed");
        const std::chrono::duration<double, std::milli> rtt =
            std::chrono::steady_clock::now() - t0;
        rtts.push_back(rtt.count());
      }
      std::sort(rtts.begin(), rtts.end());
      rtt_sum += rtts[rtts.size() / 2];
      ++links;
    }
    for (int j = options_.site + 1; j < config_.sites; ++j) {
      OutLink* link = out_[static_cast<std::size_t>(j)].get();
      link->reader = std::thread([this, link, j] { OutReader(link, j); });
    }

    std::string alpha = "0 ALPHA";
    wire::AppendKv(&alpha, "rtt_sum_ms", rtt_sum);
    wire::AppendKv(&alpha, "links", static_cast<std::int64_t>(links));
    if (!control_.SendLine(alpha)) return Fail("ALPHA send failed");
    return 0;
  }

  int OnStart(std::string_view payload) {
    if (engine_ == nullptr) return Fail("START before CONFIG");
    const auto kv = wire::ParseKv(payload);
    double warmup_ms = 0.0;
    double measure_ms = 0.0;
    if (!wire::KvDouble(kv, "warmup_ms", &warmup_ms) ||
        !wire::KvDouble(kv, "measure_ms", &measure_ms)) {
      return Fail("START missing window");
    }
    engine_->Start();
    // The window runs on its own thread so the control loop stays
    // responsive while the site measures (and while StopUsers drains a
    // contended system) — the coordinator can ask for a DUMP mid-window.
    window_thread_ = std::thread([this, warmup_ms, measure_ms] {
      RtClock::SleepRealMs(warmup_ms);
      engine_->ResetStats();
      RtClock::SleepRealMs(measure_ms);
      engine_->StopUsers();
      std::string drained = "0 DRAINED";
      wire::AppendKv(&drained, "site",
                     static_cast<std::int64_t>(options_.site));
      ControlSend(drained);
    });
    return 0;
  }

  int OnFinish(std::string_view payload) {
    if (engine_ == nullptr) return Fail("FINISH before CONFIG");
    // FINISH follows DRAINED, so the window thread has finished its work;
    // join it before draining the slave legs.
    if (window_thread_.joinable()) window_thread_.join();
    const auto kv = wire::ParseKv(payload);
    double timeout_ms = 10'000.0;
    wire::KvDouble(kv, "timeout_ms", &timeout_ms);
    const bool drained = engine_->Drain(timeout_ms);
    EngineReport report = engine_->Collect();
    report.drained = report.drained && drained;
    if (!ControlSend("0 REPORT" + report.Encode())) {
      return Fail("REPORT send failed");
    }
    return 0;
  }

  /// Reader for an outgoing (dialed) link: the peer pushes mesh frames back
  /// over the same connection.
  void OutReader(OutLink* link, int peer) {
    std::string line;
    while (link->client->ReadLine(&line)) {
      const std::string_view payload = StripFrameId(line);
      if (payload.empty()) continue;
      engine_->HandleMessage(peer, std::string(payload));
    }
    // A mesh link must outlive the run; a reader that exits outside
    // teardown means every further message from that peer is lost, so the
    // failure must be loud, not a silent wedge.
    if (!closing_.load()) {
      std::fprintf(stderr,
                   "carat_sited[site %d]: mesh link to site %d lost\n",
                   options_.site, peer);
    }
  }

  /// Engine Sender: route by peer index over whichever side owns the link.
  void MeshSend(int to, const std::string& body) {
    bool sent = false;
    if (to > options_.site) {
      OutLink* link = out_[static_cast<std::size_t>(to)].get();
      std::lock_guard<std::mutex> lock(link->send_mu);
      sent = link->client->SendLine("0 " + body);
    } else {
      rpc::MessageServer::ConnectionPtr conn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = in_.find(to);
        if (it != in_.end()) conn = it->second;
      }
      sent = conn != nullptr && conn->Send("0", body);
    }
    if (!sent && !closing_.load()) {
      std::fprintf(stderr,
                   "carat_sited[site %d]: mesh send to site %d failed (%s)\n",
                   options_.site, to,
                   std::string(body, 0, body.find(' ')).c_str());
    }
  }

  /// MessageServer handler: lower-indexed peers (after SITE) and load
  /// generator clients share the mesh port.
  void OnFrame(const rpc::MessageServer::ConnectionPtr& conn,
               const std::string& id, const std::string& body) {
    wire::TokenReader reader(body);
    std::string_view verb;
    if (!reader.Next(&verb)) return;
    if (verb == "SITE") {
      // A lower-indexed peer can dial in and identify itself *before* this
      // site has processed its own PEERS message (the coordinator fans
      // CONFIG+PEERS out to everyone, and peers race each other through the
      // handshake), so registration must not depend on any PEERS-derived
      // state — in_ is a map, not a config-sized vector, for exactly that
      // reason. Bounds are enforced at the barrier and by MeshSend lookups.
      int peer = -1;
      if (!reader.NextInt(&peer) || peer < 0 || peer > 1024) return;
      std::lock_guard<std::mutex> lock(mu_);
      auto& slot = in_[peer];
      if (slot != nullptr) return;  // duplicate claim
      slot = conn;
      conn_site_[conn->index()] = peer;
      ++in_count_;
      cv_.notify_all();
      return;
    }
    if (verb == "PING") {
      std::string_view k;
      reader.Next(&k);
      conn->Send("0", "PONG " + std::string(k));
      return;
    }
    if (verb == "TXN") {
      std::string_view type_token;
      int requests = 1;
      if (!reader.Next(&type_token) || !reader.NextInt(&requests)) return;
      SiteEngine* engine;
      {
        std::lock_guard<std::mutex> lock(mu_);
        engine = engine_.get();
      }
      if (engine == nullptr) return;
      engine->Dispatch(
          [engine, conn, id, type = std::string(type_token), requests] {
            conn->Send(id, engine->RunExternalTxn(type, requests));
          });
      return;
    }
    // Mesh traffic from an identified lower-indexed peer.
    int from = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = conn_site_.find(conn->index());
      if (it != conn_site_.end()) from = it->second;
    }
    if (from < 0 || engine_ == nullptr) return;
    engine_->HandleMessage(from, body);
  }

  const SiteDaemonOptions options_;
  rpc::Client control_;
  std::mutex control_send_mu_;
  std::thread window_thread_;
  std::unique_ptr<rpc::MessageServer> server_;
  wire::DistConfig config_;
  std::unique_ptr<SiteEngine> engine_;

  std::mutex mu_;  ///< guards engine_ pointer, in_, conn_site_, in_count_
  std::condition_variable cv_;
  std::vector<std::unique_ptr<OutLink>> out_;  ///< by peer index (> site)
  /// Dialed-in peers by index; a map because SITE frames may land before
  /// PEERS tells this site how many peers exist.
  std::unordered_map<int, rpc::MessageServer::ConnectionPtr> in_;
  std::unordered_map<std::uint64_t, int> conn_site_;
  int in_count_ = 0;
  std::atomic<bool> closing_{false};
};

}  // namespace

int RunSiteDaemon(const SiteDaemonOptions& options) {
  return SiteDaemon(options).Run();
}

}  // namespace carat::dist
