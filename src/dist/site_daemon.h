// One CARAT site as an OS process.
//
// The daemon owns a site's SiteEngine plus its network face: a
// rpc::MessageServer bound to an ephemeral mesh port (peers and load
// generators connect here) and a control connection *to* the coordinator
// (child dials parent, so the coordinator never parses ports from pipes —
// the HELLO message carries the mesh port).
//
// Startup handshake (see dist/wire.h for the message set):
//   1. bind mesh port, connect to the coordinator, send HELLO.
//   2. receive CONFIG, build the engine.
//   3. receive PEERS; dial every higher-indexed site (SITE i identifies us)
//      and wait until every lower-indexed site has dialed in.
//   4. measure each outgoing link's RTT with PING/PONG round trips and
//      report the medians' sum via ALPHA (each unordered pair is measured
//      exactly once, by its lower side).
//   5. on START: run users for the real-time warm-up + measurement window,
//      then report DRAINED; on FINISH: drain in-flight slave legs, audit,
//      REPORT; on SHUTDOWN: tear down and exit.

#ifndef CARAT_DIST_SITE_DAEMON_H_
#define CARAT_DIST_SITE_DAEMON_H_

#include <string>

namespace carat::dist {

struct SiteDaemonOptions {
  std::string coordinator_host = "127.0.0.1";
  int coordinator_port = 0;
  int site = 0;
  /// Concurrency-control backend this daemon runs (2pl | nowait | waitdie |
  /// queue). Reported in HELLO and echoed in DUMP; the coordinator rejects
  /// the mesh when any site's backend disagrees with the configured one,
  /// and the daemon refuses a CONFIG naming a different backend.
  std::string cc = "2pl";
  /// Bounds every wait on coordinator traffic; a silent coordinator past
  /// this means it died and the daemon exits instead of leaking.
  int control_timeout_ms = 120'000;
};

/// Runs the site daemon until SHUTDOWN (or a protocol/connect failure).
/// Returns a process exit code; failures are described on stderr.
int RunSiteDaemon(const SiteDaemonOptions& options);

}  // namespace carat::dist

#endif  // CARAT_DIST_SITE_DAEMON_H_
