// Wire message vocabulary for the distributed testbed.
//
// All messages ride rpc's length-prefixed binary framing (rpc/framing.h);
// the frame id is 0 on site-to-site and control links (correlation is by
// the global transaction id inside the payload) and the caller's request
// index on load-generator links (TXN / TXN_K). Payloads are space-separated
// ASCII tokens, verb first:
//
//   control (site <-> coordinator, site connects):
//     HELLO site=<i> port=<mesh port> cc=<backend>   site -> coordinator
//       (cc names the site's concurrency-control backend; the coordinator
//       rejects meshes whose sites disagree with the configured backend)
//     CONFIG <DistConfig key=value tokens>     coordinator -> site
//     PEERS <host:port> ...                    coordinator -> site (by index)
//     ALPHA rtt_ms=<median real RTT>           site -> coordinator
//     START warmup_ms=<real> measure_ms=<real> coordinator -> site
//     DRAINED site=<i>                         site -> coordinator
//     FINISH                                   coordinator -> site
//     REPORT <key=value tokens>                site -> coordinator
//     SHUTDOWN                                 coordinator -> site
//
//   mesh (site <-> site, lower index connects to higher):
//     SITE <i>                       identifies the connecting site
//     PING <k> / PONG <k>            alpha measurement round trips
//     REMDO <gid> <type> <r1,r2,..>  remote request (type = coordinator's)
//     REMDO_K <gid> <0|1>            remote request done (0 = victim)
//     PREPARE <gid> / VOTE <gid>     2PC phase 1
//     COMMIT <gid> / COMMIT_K <gid>  2PC phase 2
//     TABORT <gid> / ABORT_K <gid>   global abort leg
//     PROBE <initiator> <initiator_site> <target> <hops> <max_gid>
//     VICTIM <gid>                   global deadlock: cancel gid's wait
//
//   client (load generator -> any site's mesh port):
//     TXN <LRO|LU|DRO|DU> <requests>                  frame id = request index
//     TXN_K <gid> <commits> <retries> <response_vms>  echoes the frame id

#ifndef CARAT_DIST_WIRE_H_
#define CARAT_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "model/params.h"
#include "workload/spec.h"

namespace carat::dist::wire {

/// Sequential token reader over a space-separated payload.
class TokenReader {
 public:
  explicit TokenReader(std::string_view body) : body_(body) {}

  /// Next token; false at end of payload.
  bool Next(std::string_view* token);
  bool NextU64(std::uint64_t* value);
  bool NextInt(int* value);
  bool NextDouble(double* value);

 private:
  std::string_view body_;
  std::size_t pos_ = 0;
};

/// Appends " key=value" (exact round-trip for doubles via %.17g).
void AppendKv(std::string* out, std::string_view key, std::string_view value);
void AppendKv(std::string* out, std::string_view key, std::int64_t value);
void AppendKv(std::string* out, std::string_view key, std::uint64_t value);
void AppendKv(std::string* out, std::string_view key, double value);

/// Parses "k=v" tokens into a map; tokens without '=' are skipped.
std::unordered_map<std::string, std::string> ParseKv(std::string_view body);

/// Typed lookups into a ParseKv map; false (and untouched output) when the
/// key is missing or malformed.
bool KvU64(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, std::uint64_t* value);
bool KvInt(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, int* value);
bool KvDouble(const std::unordered_map<std::string, std::string>& kv,
              const std::string& key, double* value);

/// Renders record ids as "r1,r2,...", and back.
std::string JoinRecords(const std::vector<db::RecordId>& records);
bool SplitRecords(std::string_view token, std::vector<db::RecordId>* records);

/// Everything a site process needs to reconstruct the workload: the named
/// paper workload plus the overridable sizing knobs. Shipped in CONFIG.
struct DistConfig {
  std::string workload = "mb8";  ///< lb8 | mb4 | mb8 | ub6
  std::string cc = "2pl";        ///< cc backend: 2pl | nowait | waitdie | queue
  int requests_per_txn = 8;      ///< n
  int sites = 2;
  int num_granules = 3000;
  int records_per_granule = 6;
  int dm_pool_size = 0;
  double think_time_ms = 0.0;
  std::uint64_t seed = 1;
  double scale = 0.1;  ///< real ms per virtual ms
  bool spawn_users = true;
  double probe_cpu_ms = 1.0;
  double reprobe_interval_ms = 200.0;  ///< virtual
  int max_probe_hops = 64;

  std::string Encode() const;  ///< "key=value ..." (no verb)
  static bool Decode(std::string_view body, DistConfig* out,
                     std::string* error);

  /// The workload spec with this config's overrides applied.
  workload::WorkloadSpec ToSpec() const;
  model::ModelInput ToModelInput() const { return ToSpec().ToModelInput(); }
};

/// Mesh homogeneity guard: every site's HELLO-reported CC backend must equal
/// the coordinator's configured backend — the mesh executes one global
/// protocol, so a mixed mesh is a configuration error, not a degraded mode.
/// Returns "" when the mesh is consistent, else a human-readable error
/// naming the first offending site.
std::string CheckMeshBackends(const std::vector<std::string>& site_cc,
                              const std::string& config_cc);

}  // namespace carat::dist::wire

#endif  // CARAT_DIST_WIRE_H_
