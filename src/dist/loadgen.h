// Open-loop load generator for the distributed testbed.
//
// Drives TXN frames at a fixed arrival schedule: the k-th operation is due
// at start + k/rate, and its latency is measured from that *scheduled* time,
// not from when it was actually written to the socket — so when the system
// falls behind, the queueing delay the late operations suffered shows up in
// the percentiles instead of being silently absorbed (the classic
// coordinated-omission error of closed-loop "send, wait, send" drivers).
// A bounded in-flight window per connection keeps the generator itself from
// hoarding unbounded memory; window-full time counts against latency like
// any other queueing.
//
// Each connection runs a sender thread (paces the schedule, frames TXN with
// the operation index as the frame id) and a receiver thread (matches TXN_K
// frames by id, records latency into a per-connection
// rpc::LatencyHistogram). The per-connection histograms are Merge()d into
// one distribution at the end.

#ifndef CARAT_DIST_LOADGEN_H_
#define CARAT_DIST_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/latency_histogram.h"

namespace carat::dist {

struct LoadgenOptions {
  /// Site mesh endpoints ("host:port"); connections round-robin over them.
  std::vector<std::string> targets;

  /// Total client connections (one sender + one receiver thread each).
  int connections = 2;

  /// In-flight window per connection (ops sent but not yet answered).
  int ops_in_flight = 8;

  /// Requests per transaction (the TXN frame's second operand).
  int ops_per_txn = 8;

  /// lro | lu | dro | du | mix (mix cycles through all four).
  std::string type = "mix";

  /// Aggregate arrival rate (operations per real second) and run length.
  /// total_ops overrides rate*duration when > 0.
  double rate_per_s = 200.0;
  double duration_s = 2.0;
  std::uint64_t total_ops = 0;

  int connect_timeout_ms = 5000;
  int recv_timeout_ms = 60'000;
};

struct LoadgenResult {
  bool ok = false;
  std::string error;

  std::uint64_t scheduled = 0;  ///< arrivals in the fixed schedule
  std::uint64_t completed = 0;  ///< TXN_K frames received
  std::uint64_t committed = 0;
  std::uint64_t retries = 0;  ///< deadlock restarts reported by the sites
  std::uint64_t errors = 0;   ///< scheduled ops with no response

  double elapsed_s = 0.0;
  double achieved_per_s = 0.0;  ///< completed / elapsed

  /// Coordinated-omission-free latency distribution (scheduled -> reply).
  rpc::LatencyHistogram histogram;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

LoadgenResult RunLoadgen(const LoadgenOptions& options);

}  // namespace carat::dist

#endif  // CARAT_DIST_LOADGEN_H_
