#include "dist/coordinator.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "carat/testbed.h"
#include "rpc/message_server.h"

namespace carat::dist {

namespace {

std::string ExeDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return std::string();
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool Executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

/// Tracks the handshake state of one spawned site.
struct SiteState {
  rpc::MessageServer::ConnectionPtr conn;
  int mesh_port = -1;
  /// CC backend the site reported in HELLO. Absent on the wire means a
  /// pre-backend daemon, which always ran 2PL.
  std::string cc = "2pl";
  bool alpha = false;
  double rtt_sum_ms = 0.0;
  int links = 0;
  bool drained = false;
  bool reported = false;
  EngineReport report;
};

class Coordinator {
 public:
  explicit Coordinator(const DistRunOptions& options) : options_(options) {}

  DistRunResult Run() {
    DistRunResult result;
    if (options_.config.cc != "2pl") {
      // The distributed engine executes the 2PL+probes protocol; the other
      // backends run in the in-process testbed only for now. Rejecting here
      // keeps the CONFIG/HELLO cc plumbing honest until they arrive.
      result.error = "distributed execution of cc backend '" +
                     options_.config.cc +
                     "' is not implemented yet (only 2pl runs distributed; "
                     "use the in-process testbed for the other backends)";
      return result;
    }
    const int sites = options_.config.sites;
    states_.resize(static_cast<std::size_t>(sites));

    std::string sited = options_.sited_bin;
    if (sited.empty()) sited = ResolveSitedBinary();
    if (!Executable(sited)) {
      result.error = "carat_sited binary not found (set CARAT_SITED_BIN)";
      return result;
    }

    std::string error;
    server_ = std::make_unique<rpc::MessageServer>(
        rpc::MessageServer::Options{},
        [this](const rpc::MessageServer::ConnectionPtr& conn,
               const std::string& id, const std::string& body) {
          (void)id;
          OnFrame(conn, body);
        });
    if (!server_->Start(&error)) {
      result.error = "control listen: " + error;
      return result;
    }

    if (!Spawn(sited, &result)) return Abort(std::move(result));

    // HELLO barrier: every site is up and has bound its mesh port.
    if (!WaitAll([&](const SiteState& s) { return s.mesh_port >= 0; },
                 30'000)) {
      result.error = "timed out waiting for site HELLOs";
      return Abort(std::move(result));
    }

    // Backend homogeneity guard: the mesh executes one global CC protocol,
    // so every site's HELLO must name the configured backend.
    {
      std::vector<std::string> site_cc;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const SiteState& s : states_) site_cc.push_back(s.cc);
      }
      result.error = wire::CheckMeshBackends(site_cc, options_.config.cc);
      if (!result.error.empty()) return Abort(std::move(result));
    }

    // CONFIG + PEERS to every site; sites then build their mesh.
    std::vector<std::string> endpoints;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const SiteState& s : states_) {
        endpoints.push_back("127.0.0.1:" + std::to_string(s.mesh_port));
      }
    }
    {
      const std::string config_msg = "CONFIG" + options_.config.Encode();
      std::string peers_msg = "PEERS";
      for (const std::string& ep : endpoints) peers_msg += " " + ep;
      std::lock_guard<std::mutex> lock(mu_);
      for (SiteState& s : states_) {
        if (!s.conn->Send("0", config_msg) || !s.conn->Send("0", peers_msg)) {
          result.error = "control send failed";
        }
      }
    }
    if (!result.error.empty()) return Abort(std::move(result));

    // ALPHA barrier: the mesh is fully connected and measured.
    if (!WaitAll([&](const SiteState& s) { return s.alpha; }, 60'000)) {
      result.error = "timed out waiting for ALPHA (mesh build failed?)";
      return Abort(std::move(result));
    }
    {
      double rtt_sum = 0.0;
      int links = 0;
      std::lock_guard<std::mutex> lock(mu_);
      for (const SiteState& s : states_) {
        rtt_sum += s.rtt_sum_ms;
        links += s.links;
      }
      if (links > 0) result.alpha_rtt_real_ms = rtt_sum / links;
      result.alpha_virtual_ms =
          result.alpha_rtt_real_ms / 2.0 / options_.config.scale;
    }

    // START: sites time their own windows so the coordinator's scheduling
    // hiccups cannot shrink anyone's measurement.
    {
      std::string start = "START";
      wire::AppendKv(&start, "warmup_ms", options_.warmup_real_ms);
      wire::AppendKv(&start, "measure_ms", options_.measure_real_ms);
      std::lock_guard<std::mutex> lock(mu_);
      for (SiteState& s : states_) s.conn->Send("0", start);
    }
    if (options_.during_measure) options_.during_measure(endpoints);

    const double window_ms = options_.warmup_real_ms + options_.measure_real_ms;
    if (!WaitAll([&](const SiteState& s) { return s.drained; },
                 static_cast<int>(window_ms) + 60'000)) {
      result.error = "timed out waiting for DRAINED";
      DumpSites();
      return Abort(std::move(result));
    }

    // FINISH: everyone has stopped submitting; drain in-flight legs, audit,
    // report.
    {
      std::string finish = "FINISH";
      wire::AppendKv(&finish, "timeout_ms", options_.drain_timeout_ms);
      std::lock_guard<std::mutex> lock(mu_);
      for (SiteState& s : states_) s.conn->Send("0", finish);
    }
    if (!WaitAll([&](const SiteState& s) { return s.reported; },
                 static_cast<int>(options_.drain_timeout_ms) + 30'000)) {
      result.error = "timed out waiting for REPORT";
      DumpSites();
      return Abort(std::move(result));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (SiteState& s : states_) s.conn->Send("0", "SHUTDOWN");
      for (const SiteState& s : states_) result.reports.push_back(s.report);
    }
    if (!Reap(10'000)) {
      result.error = "site process did not exit cleanly";
      return Abort(std::move(result));
    }
    server_->Shutdown();

    Aggregate(&result);
    if (options_.check) Check(&result);
    result.ok = result.error.empty();
    return result;
  }

 private:
  bool Spawn(const std::string& sited, DistRunResult* result) {
    const std::string coord_arg =
        "127.0.0.1:" + std::to_string(server_->port());
    for (int i = 0; i < options_.config.sites; ++i) {
      const std::string site_arg = std::to_string(i);
      const pid_t pid = ::fork();
      if (pid < 0) {
        result->error = "fork failed";
        return false;
      }
      if (pid == 0) {
        ::execl(sited.c_str(), "carat_sited", "--coordinator",
                coord_arg.c_str(), "--site", site_arg.c_str(), "--cc",
                options_.config.cc.c_str(), static_cast<char*>(nullptr));
        ::_exit(127);  // exec failed
      }
      pids_.push_back(pid);
    }
    return true;
  }

  /// Waits for every child; SIGKILLs stragglers past the deadline.
  bool Reap(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    bool clean = true;
    for (const pid_t pid : pids_) {
      for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
          clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
          break;
        }
        if (r < 0) break;  // already reaped / gone
        if (std::chrono::steady_clock::now() > deadline) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &status, 0);
          clean = false;
          break;
        }
        ::usleep(10'000);
      }
    }
    pids_.clear();
    return clean;
  }

  /// Asks every site to print its wait state to stderr (DUMP) before the
  /// run is aborted, so a stuck distributed run leaves a diagnosis behind.
  void DumpSites() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (SiteState& s : states_) {
        if (s.conn != nullptr) s.conn->Send("0", "DUMP");
      }
    }
    ::usleep(1'500'000);  // give the sites time to write their snapshots
  }

  DistRunResult Abort(DistRunResult result) {
    for (const pid_t pid : pids_) ::kill(pid, SIGKILL);
    Reap(5'000);
    if (server_ != nullptr) server_->Shutdown();
    return result;
  }

  void OnFrame(const rpc::MessageServer::ConnectionPtr& conn,
               const std::string& body) {
    wire::TokenReader reader(body);
    std::string_view verb;
    if (!reader.Next(&verb)) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (verb == "HELLO") {
      const auto kv = wire::ParseKv(body);
      int site = -1;
      int port = -1;
      if (!wire::KvInt(kv, "site", &site) || !wire::KvInt(kv, "port", &port) ||
          site < 0 || site >= static_cast<int>(states_.size())) {
        return;
      }
      states_[static_cast<std::size_t>(site)].conn = conn;
      states_[static_cast<std::size_t>(site)].mesh_port = port;
      const auto cc_it = kv.find("cc");
      if (cc_it != kv.end()) {
        states_[static_cast<std::size_t>(site)].cc = cc_it->second;
      }
      conn_site_[conn->index()] = site;
      cv_.notify_all();
      return;
    }
    const auto it = conn_site_.find(conn->index());
    if (it == conn_site_.end()) return;
    SiteState& state = states_[static_cast<std::size_t>(it->second)];
    if (verb == "ALPHA") {
      const auto kv = wire::ParseKv(body);
      wire::KvDouble(kv, "rtt_sum_ms", &state.rtt_sum_ms);
      wire::KvInt(kv, "links", &state.links);
      state.alpha = true;
    } else if (verb == "DRAINED") {
      state.drained = true;
    } else if (verb == "REPORT") {
      if (EngineReport::Decode(body, &state.report)) state.reported = true;
    }
    cv_.notify_all();
  }

  bool WaitAll(const std::function<bool(const SiteState&)>& pred,
               int timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
      for (const SiteState& s : states_) {
        if (s.conn == nullptr || !pred(s)) return false;
      }
      return true;
    });
  }

  void Aggregate(DistRunResult* result) {
    double vms_sum = 0.0;
    double response_sum = 0.0;
    result->all_drained = true;
    result->all_audits_ok = true;
    for (const EngineReport& r : result->reports) {
      vms_sum += r.measured_vms;
      result->global_deadlocks += r.global_deadlocks;
      result->messages_sent += r.messages_sent;
      result->ext_commits += r.ext_commits;
      result->all_drained = result->all_drained && r.drained;
      result->all_audits_ok = result->all_audits_ok && r.audit_ok;
      for (const TypeCounters& t : r.types) {
        if (!t.present) continue;
        result->commits += t.commits;
        result->submissions += t.submissions;
        result->aborts += t.aborts;
        response_sum += t.response_sum_vms;
      }
    }
    if (!result->reports.empty()) {
      result->measured_vms = vms_sum / result->reports.size();
    }
    if (result->measured_vms > 0) {
      result->dist_txn_per_s =
          static_cast<double>(result->commits) / result->measured_vms * 1000.0;
    }
    if (result->commits > 0) {
      result->dist_response_ms =
          response_sum / static_cast<double>(result->commits);
    }
    if (result->submissions > 0) {
      result->dist_restart_prob = static_cast<double>(result->aborts) /
                                  static_cast<double>(result->submissions);
    }
  }

  void Check(DistRunResult* result) {
    model::ModelInput input = options_.config.ToModelInput();
    input.comm_delay_ms = result->alpha_virtual_ms;
    TestbedOptions topts;
    topts.seed = options_.config.seed;
    topts.warmup_ms = options_.ref_warmup_vms;
    topts.measure_ms = options_.ref_measure_vms;
    const TestbedResult ref = RunTestbed(input, topts);
    if (!ref.ok) {
      result->error = "reference run failed: " + ref.error;
      return;
    }
    std::uint64_t ref_commits = 0;
    std::uint64_t ref_submissions = 0;
    std::uint64_t ref_aborts = 0;
    double ref_response_weighted = 0.0;
    for (const NodeResult& node : ref.nodes) {
      for (const TypeResult& t : node.types) {
        if (!t.present) continue;
        ref_commits += t.commits;
        ref_submissions += t.submissions;
        ref_aborts += t.aborts;
        ref_response_weighted +=
            t.response_ms * static_cast<double>(t.commits);
      }
    }
    result->checked = true;
    result->ref_txn_per_s = ref.TotalTxnPerSec();
    if (ref_commits > 0) {
      result->ref_response_ms =
          ref_response_weighted / static_cast<double>(ref_commits);
    }
    if (ref_submissions > 0) {
      result->ref_restart_prob = static_cast<double>(ref_aborts) /
                                 static_cast<double>(ref_submissions);
    }
    const auto rel = [](double a, double b) {
      return b > 0 ? std::abs(a - b) / b : 0.0;
    };
    result->throughput_rel_err = rel(result->dist_txn_per_s,
                                     result->ref_txn_per_s);
    result->response_rel_err = rel(result->dist_response_ms,
                                   result->ref_response_ms);
    result->restart_abs_err =
        std::abs(result->dist_restart_prob - result->ref_restart_prob);
    result->within_tolerance =
        result->throughput_rel_err <= options_.tol_throughput_rel &&
        result->response_rel_err <= options_.tol_response_rel &&
        result->restart_abs_err <= options_.tol_restart_abs;
  }

  const DistRunOptions options_;
  std::unique_ptr<rpc::MessageServer> server_;
  std::vector<pid_t> pids_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<SiteState> states_;
  std::unordered_map<std::uint64_t, int> conn_site_;
};

}  // namespace

std::string ResolveSitedBinary() {
  if (const char* env = std::getenv("CARAT_SITED_BIN")) {
    if (Executable(env)) return env;
  }
  const std::string dir = ExeDir();
  if (dir.empty()) return std::string();
  if (Executable(dir + "/carat_sited")) return dir + "/carat_sited";
  if (Executable(dir + "/../tools/carat_sited")) {
    return dir + "/../tools/carat_sited";
  }
  return std::string();
}

DistRunResult RunDistributed(const DistRunOptions& options) {
  return Coordinator(options).Run();
}

}  // namespace carat::dist
