#include "dist/wire.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cc/cc.h"

namespace carat::dist::wire {

bool TokenReader::Next(std::string_view* token) {
  while (pos_ < body_.size() && body_[pos_] == ' ') ++pos_;
  if (pos_ >= body_.size()) return false;
  const std::size_t start = pos_;
  while (pos_ < body_.size() && body_[pos_] != ' ') ++pos_;
  *token = body_.substr(start, pos_ - start);
  return true;
}

bool TokenReader::NextU64(std::uint64_t* value) {
  std::string_view token;
  if (!Next(&token)) return false;
  char* end = nullptr;
  const std::string copy(token);
  *value = std::strtoull(copy.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !copy.empty();
}

bool TokenReader::NextInt(int* value) {
  std::string_view token;
  if (!Next(&token)) return false;
  char* end = nullptr;
  const std::string copy(token);
  const long v = std::strtol(copy.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || copy.empty()) return false;
  *value = static_cast<int>(v);
  return true;
}

bool TokenReader::NextDouble(double* value) {
  std::string_view token;
  if (!Next(&token)) return false;
  char* end = nullptr;
  const std::string copy(token);
  *value = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && !copy.empty();
}

void AppendKv(std::string* out, std::string_view key, std::string_view value) {
  out->push_back(' ');
  out->append(key);
  out->push_back('=');
  out->append(value);
}

void AppendKv(std::string* out, std::string_view key, std::int64_t value) {
  AppendKv(out, key, std::string_view(std::to_string(value)));
}

void AppendKv(std::string* out, std::string_view key, std::uint64_t value) {
  AppendKv(out, key, std::string_view(std::to_string(value)));
}

void AppendKv(std::string* out, std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  AppendKv(out, key, std::string_view(buf));
}

std::unordered_map<std::string, std::string> ParseKv(std::string_view body) {
  std::unordered_map<std::string, std::string> kv;
  TokenReader reader(body);
  std::string_view token;
  while (reader.Next(&token)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) continue;
    kv.emplace(std::string(token.substr(0, eq)),
               std::string(token.substr(eq + 1)));
  }
  return kv;
}

bool KvU64(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, std::uint64_t* value) {
  const auto it = kv.find(key);
  if (it == kv.end() || it->second.empty()) return false;
  char* end = nullptr;
  *value = std::strtoull(it->second.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool KvInt(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, int* value) {
  const auto it = kv.find(key);
  if (it == kv.end() || it->second.empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *value = static_cast<int>(parsed);
  return true;
}

bool KvDouble(const std::unordered_map<std::string, std::string>& kv,
              const std::string& key, double* value) {
  const auto it = kv.find(key);
  if (it == kv.end() || it->second.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(it->second.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string JoinRecords(const std::vector<db::RecordId>& records) {
  std::string out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(records[i]);
  }
  return out;
}

bool SplitRecords(std::string_view token, std::vector<db::RecordId>* records) {
  records->clear();
  std::size_t pos = 0;
  while (pos <= token.size()) {
    std::size_t comma = token.find(',', pos);
    if (comma == std::string_view::npos) comma = token.size();
    const std::string part(token.substr(pos, comma - pos));
    if (part.empty()) return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    records->push_back(static_cast<db::RecordId>(v));
    pos = comma + 1;
    if (comma == token.size()) break;
  }
  return !records->empty();
}

std::string DistConfig::Encode() const {
  std::string out;
  AppendKv(&out, "workload", std::string_view(workload));
  AppendKv(&out, "cc", std::string_view(cc));
  AppendKv(&out, "n", static_cast<std::int64_t>(requests_per_txn));
  AppendKv(&out, "sites", static_cast<std::int64_t>(sites));
  AppendKv(&out, "granules", static_cast<std::int64_t>(num_granules));
  AppendKv(&out, "rpg", static_cast<std::int64_t>(records_per_granule));
  AppendKv(&out, "dm_pool", static_cast<std::int64_t>(dm_pool_size));
  AppendKv(&out, "think_ms", think_time_ms);
  AppendKv(&out, "seed", seed);
  AppendKv(&out, "scale", scale);
  AppendKv(&out, "users", static_cast<std::int64_t>(spawn_users ? 1 : 0));
  AppendKv(&out, "probe_cpu", probe_cpu_ms);
  AppendKv(&out, "reprobe_ms", reprobe_interval_ms);
  AppendKv(&out, "max_hops", static_cast<std::int64_t>(max_probe_hops));
  return out;
}

bool DistConfig::Decode(std::string_view body, DistConfig* out,
                        std::string* error) {
  const auto kv = ParseKv(body);
  DistConfig config;
  const auto it = kv.find("workload");
  if (it == kv.end()) {
    *error = "CONFIG missing workload";
    return false;
  }
  config.workload = it->second;
  // `cc` is optional on the wire (pre-backend coordinators never send it and
  // mean 2PL), but when present it must name a known backend.
  const auto cc_it = kv.find("cc");
  if (cc_it != kv.end()) config.cc = cc_it->second;
  cc::BackendKind cc_kind;
  if (!cc::ParseBackend(config.cc, &cc_kind)) {
    *error = "CONFIG unknown cc backend '" + config.cc + "'";
    return false;
  }
  int users = 1;
  const bool ok = KvInt(kv, "n", &config.requests_per_txn) &&
                  KvInt(kv, "sites", &config.sites) &&
                  KvInt(kv, "granules", &config.num_granules) &&
                  KvInt(kv, "rpg", &config.records_per_granule) &&
                  KvInt(kv, "dm_pool", &config.dm_pool_size) &&
                  KvDouble(kv, "think_ms", &config.think_time_ms) &&
                  KvU64(kv, "seed", &config.seed) &&
                  KvDouble(kv, "scale", &config.scale) &&
                  KvInt(kv, "users", &users) &&
                  KvDouble(kv, "probe_cpu", &config.probe_cpu_ms) &&
                  KvDouble(kv, "reprobe_ms", &config.reprobe_interval_ms) &&
                  KvInt(kv, "max_hops", &config.max_probe_hops);
  if (!ok) {
    *error = "CONFIG field missing or malformed";
    return false;
  }
  config.spawn_users = users != 0;
  if (config.sites < 1 || config.scale <= 0.0 || config.num_granules < 1 ||
      config.records_per_granule < 1 || config.requests_per_txn < 1) {
    *error = "CONFIG values out of range";
    return false;
  }
  *out = config;
  return true;
}

workload::WorkloadSpec DistConfig::ToSpec() const {
  workload::WorkloadSpec spec;
  if (workload == "lb8") {
    spec = workload::MakeLB8(requests_per_txn, sites);
  } else if (workload == "mb4") {
    spec = workload::MakeMB4(requests_per_txn, sites);
  } else if (workload == "ub6") {
    spec = workload::MakeUB6(requests_per_txn, sites);
  } else {
    spec = workload::MakeMB8(requests_per_txn, sites);
  }
  spec.num_granules = num_granules;
  spec.records_per_granule = records_per_granule;
  spec.dm_pool_size = dm_pool_size;
  spec.think_time_ms = think_time_ms;
  cc::ParseBackend(cc, &spec.cc_backend);  // Decode validated the name
  return spec;
}

std::string CheckMeshBackends(const std::vector<std::string>& site_cc,
                              const std::string& config_cc) {
  for (std::size_t i = 0; i < site_cc.size(); ++i) {
    if (site_cc[i] == config_cc) continue;
    return "mixed-backend mesh: site " + std::to_string(i) + " runs cc=" +
           site_cc[i] + " but the coordinator configured cc=" + config_cc +
           "; every site must run the same concurrency-control backend";
  }
  return "";
}

}  // namespace carat::dist::wire
