#include "dist/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace carat::dist {

using model::ClassParams;
using model::TxnType;

// ---------------------------------------------------------------------------
// EngineReport wire form
// ---------------------------------------------------------------------------

std::string EngineReport::Encode() const {
  std::string out;
  wire::AppendKv(&out, "vms", measured_vms);
  wire::AppendKv(&out, "cpu", cpu_busy_vms);
  wire::AppendKv(&out, "db", db_busy_vms);
  wire::AppendKv(&out, "log", log_busy_vms);
  wire::AppendKv(&out, "dio", dio);
  wire::AppendKv(&out, "lreq", lock_requests);
  wire::AppendKv(&out, "lblk", lock_blocks);
  wire::AppendKv(&out, "ldl", local_deadlocks);
  wire::AppendKv(&out, "cw", cancelled_waits);
  wire::AppendKv(&out, "gdl", global_deadlocks);
  wire::AppendKv(&out, "probes", probes_sent);
  wire::AppendKv(&out, "msgs", messages_sent);
  wire::AppendKv(&out, "dmw", dm_pool_waits);
  wire::AppendKv(&out, "extc", ext_commits);
  wire::AppendKv(&out, "exta", ext_aborts);
  wire::AppendKv(&out, "drained",
                 static_cast<std::uint64_t>(drained ? 1 : 0));
  wire::AppendKv(&out, "audit",
                 static_cast<std::uint64_t>(audit_ok ? 1 : 0));
  for (int i = 0; i < model::kNumTxnTypes; ++i) {
    const TypeCounters& t = types[i];
    if (!t.present) continue;
    const std::string p = "t" + std::to_string(i) + "_";
    wire::AppendKv(&out, p + "c", t.commits);
    wire::AppendKv(&out, p + "s", t.submissions);
    wire::AppendKv(&out, p + "a", t.aborts);
    wire::AppendKv(&out, p + "r", t.records_committed);
    wire::AppendKv(&out, p + "resp", t.response_sum_vms);
    wire::AppendKv(&out, p + "lw", t.lock_wait_sum_vms);
    wire::AppendKv(&out, p + "rw", t.remote_wait_sum_vms);
    wire::AppendKv(&out, p + "cmw", t.commit_wait_sum_vms);
  }
  return out;
}

bool EngineReport::Decode(std::string_view body, EngineReport* out) {
  const auto kv = wire::ParseKv(body);
  EngineReport r;
  std::uint64_t drained = 0;
  std::uint64_t audit = 0;
  const bool ok =
      wire::KvDouble(kv, "vms", &r.measured_vms) &&
      wire::KvDouble(kv, "cpu", &r.cpu_busy_vms) &&
      wire::KvDouble(kv, "db", &r.db_busy_vms) &&
      wire::KvDouble(kv, "log", &r.log_busy_vms) &&
      wire::KvU64(kv, "dio", &r.dio) && wire::KvU64(kv, "lreq", &r.lock_requests) &&
      wire::KvU64(kv, "lblk", &r.lock_blocks) &&
      wire::KvU64(kv, "ldl", &r.local_deadlocks) &&
      wire::KvU64(kv, "cw", &r.cancelled_waits) &&
      wire::KvU64(kv, "gdl", &r.global_deadlocks) &&
      wire::KvU64(kv, "probes", &r.probes_sent) &&
      wire::KvU64(kv, "msgs", &r.messages_sent) &&
      wire::KvU64(kv, "dmw", &r.dm_pool_waits) &&
      wire::KvU64(kv, "extc", &r.ext_commits) &&
      wire::KvU64(kv, "exta", &r.ext_aborts) &&
      wire::KvU64(kv, "drained", &drained) && wire::KvU64(kv, "audit", &audit);
  if (!ok) return false;
  r.drained = drained != 0;
  r.audit_ok = audit != 0;
  for (int i = 0; i < model::kNumTxnTypes; ++i) {
    TypeCounters& t = r.types[i];
    const std::string p = "t" + std::to_string(i) + "_";
    if (!wire::KvU64(kv, p + "c", &t.commits)) continue;
    t.present = true;
    if (!(wire::KvU64(kv, p + "s", &t.submissions) &&
          wire::KvU64(kv, p + "a", &t.aborts) &&
          wire::KvU64(kv, p + "r", &t.records_committed) &&
          wire::KvDouble(kv, p + "resp", &t.response_sum_vms) &&
          wire::KvDouble(kv, p + "lw", &t.lock_wait_sum_vms) &&
          wire::KvDouble(kv, p + "rw", &t.remote_wait_sum_vms) &&
          wire::KvDouble(kv, p + "cmw", &t.commit_wait_sum_vms))) {
      return false;
    }
  }
  *out = r;
  return true;
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

SiteEngine::SiteEngine(const model::ModelInput& input,
                       const EngineOptions& options, Sender sender)
    : input_(input),
      options_(options),
      sender_(std::move(sender)),
      clock_(options.scale),
      cpu_(&clock_),
      db_disk_(&clock_),
      database_(input.sites[options.site].num_granules,
                input.sites[options.site].records_per_granule),
      ext_rng_(options.seed ^ 0xD15Cul ^
               (static_cast<std::uint64_t>(options.site) << 32)) {
  const model::SiteParams& site = params();
  if (site.separate_log_disk) {
    log_disk_ = std::make_unique<RtResource>(&clock_);
  }
  if (site.dm_pool_size > 0) {
    dm_pool_ = std::make_unique<RtSemaphore>(site.dm_pool_size);
  }
  shadow_.assign(static_cast<std::size_t>(database_.num_records()), 0);
  locks_.on_block = [this](TxnId waiter, std::vector<TxnId> holders) {
    // Launch probes off the blocking thread: the journey charges TM/CPU and
    // sends messages, while the waiter itself just sleeps on the lock.
    pool_.Submit([this, waiter, holders = std::move(holders)]() mutable {
      OnBlock(waiter, std::move(holders));
    });
  };
}

SiteEngine::~SiteEngine() { Stop(); }

void SiteEngine::Start() {
  if (options_.spawn_users) {
    const model::SiteParams& site = params();
    util::Rng root(options_.seed ^
                   (0x5173ull + static_cast<std::uint64_t>(options_.site)));
    for (TxnType t : {TxnType::kLRO, TxnType::kLU, TxnType::kDROC,
                      TxnType::kDUC}) {
      for (int u = 0; u < site.Class(t).population; ++u) {
        auto driver = std::make_unique<UserDriver>();
        driver->type = t;
        driver->rng = root.Fork();
        drivers_.push_back(std::move(driver));
      }
    }
    for (auto& driver : drivers_) {
      driver->thread = std::thread([this, d = driver.get()] { UserMain(d); });
    }
  }
  if (options_.num_sites > 1) {
    watchdog_ = std::thread([this] { WatchdogMain(); });
  }
  window_start_vms_ = NowVms();
}

void SiteEngine::Stop() {
  if (stopping_.exchange(true)) return;
  stop_users_ = true;
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& driver : drivers_) {
    if (driver->thread.joinable()) driver->thread.join();
  }
  pool_.Shutdown();
}

// ---------------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------------

int SiteEngine::VerbIndex(std::string_view verb) {
  if (verb == "REMDO") return 0;
  if (verb == "REMDO_K") return 1;
  if (verb == "PREPARE") return 2;
  if (verb == "VOTE") return 3;
  if (verb == "COMMIT") return 4;
  if (verb == "COMMIT_K") return 5;
  if (verb == "TABORT") return 6;
  if (verb == "ABORT_K") return 7;
  if (verb == "PROBE") return 8;
  if (verb == "VICTIM") return 9;
  return 10;
}

const char* SiteEngine::VerbName(int index) {
  static const char* const kNames[kNumVerbs] = {
      "REMDO",  "REMDO_K", "PREPARE", "VOTE",   "COMMIT", "COMMIT_K",
      "TABORT", "ABORT_K", "PROBE",   "VICTIM", "other"};
  return kNames[index];
}

void SiteEngine::Send(int to, const std::string& body) {
  ++messages_sent_;
  const std::string_view verb =
      std::string_view(body).substr(0, body.find(' '));
  ++tx_verbs_[static_cast<std::size_t>(VerbIndex(verb))];
  sender_(to, body);
}

void SiteEngine::TmHandle(double vms) {
  tm_mutex_.Lock();
  cpu_.Use(vms);
  tm_mutex_.Unlock();
}

void SiteEngine::DbIo(int blocks) {
  for (int i = 0; i < blocks; ++i) db_disk_.Use(params().block_io_ms);
}

void SiteEngine::LogIo(int blocks) {
  RtResource& disk = log_disk_ != nullptr ? *log_disk_ : db_disk_;
  for (int i = 0; i < blocks; ++i) disk.Use(params().block_io_ms);
}

// ---------------------------------------------------------------------------
// Coordinator registry
// ---------------------------------------------------------------------------

std::uint64_t SiteEngine::NewGid(TxnType type) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  const std::uint64_t gid =
      next_seq_++ * static_cast<std::uint64_t>(options_.num_sites) +
      static_cast<std::uint64_t>(options_.site);
  auto ct = std::make_unique<CoordTxn>();
  ct->type = type;
  ct->current_node = options_.site;
  coord_txns_.emplace(gid, std::move(ct));
  return gid;
}

void SiteEngine::EndGid(std::uint64_t gid) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  coord_txns_.erase(gid);
}

SiteEngine::CoordTxn* SiteEngine::FindCoordTxn(std::uint64_t gid) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  const auto it = coord_txns_.find(gid);
  return it == coord_txns_.end() ? nullptr : it->second.get();
}

void SiteEngine::SetCurrentNode(std::uint64_t gid, int node) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  const auto it = coord_txns_.find(gid);
  if (it != coord_txns_.end()) it->second->current_node = node;
}

// ---------------------------------------------------------------------------
// Resident users
// ---------------------------------------------------------------------------

void SiteEngine::UserMain(UserDriver* driver) {
  const ClassParams& costs = HomeCosts(driver->type);
  const double think = params().think_time_ms;
  const int records_per_commit = costs.records_accessed();
  while (!stop_users_.load(std::memory_order_relaxed)) {
    const double cycle_start = NowVms();
    PhaseAcct acct;
    bool committed = false;
    while (!committed) {
      if (think > 0) clock_.SleepVirtual(think);
      // Submissions and aborts are recorded when they happen, not when the
      // cycle finally commits: the restart probability must see the aborts
      // of a still-retrying tangle inside the measurement window, and an
      // abandoned cycle's attempts must not vanish from the count.
      {
        std::lock_guard<std::mutex> lock(driver->mu);
        ++driver->submissions;
      }
      const std::uint64_t gid = NewGid(driver->type);
      const std::vector<RequestSpec> plan =
          BuildPlan(driver->type, costs.local_requests, costs.remote_requests,
                    costs.records_per_request, &driver->rng);
      committed = RunOnce(driver->type, gid, plan, &acct);
      EndGid(gid);
      if (!committed) {
        {
          std::lock_guard<std::mutex> lock(driver->mu);
          ++driver->aborts;
        }
        // A stopping user abandons its cycle at the retry boundary instead
        // of insisting on one more commit — under heavy contention that
        // commit could outlast any drain deadline. The partial cycle's
        // per-cycle sums (response, records) are simply dropped; its
        // submissions and aborts were already counted above.
        if (stop_users_.load(std::memory_order_relaxed)) return;
      }
    }
    std::lock_guard<std::mutex> lock(driver->mu);
    ++driver->commits;
    driver->records_committed += records_per_commit;
    driver->response_vms.Add(NowVms() - cycle_start);
    driver->lock_wait_vms.Add(acct.lock_wait_vms);
    driver->remote_wait_vms.Add(acct.remote_wait_vms);
    driver->commit_wait_vms.Add(acct.commit_wait_vms);
  }
}

std::vector<SiteEngine::RequestSpec> SiteEngine::BuildPlan(
    TxnType type, int local_requests, int remote_requests,
    int records_per_request, util::Rng* rng) {
  if (records_per_request <= 0) records_per_request = 4;
  std::vector<int> remote_nodes;
  for (int j = 0; j < options_.num_sites; ++j) {
    if (j != options_.site) remote_nodes.push_back(j);
  }
  if (remote_nodes.empty()) {
    local_requests += remote_requests;
    remote_requests = 0;
  }
  (void)type;
  std::vector<RequestSpec> plan;
  int local_left = local_requests;
  int remote_left = remote_requests;
  int rr = 0;
  while (local_left > 0 || remote_left > 0) {
    RequestSpec req;
    if (local_left >= remote_left) {
      req.node = options_.site;
      --local_left;
    } else {
      req.node = remote_nodes[rr++ % remote_nodes.size()];
      --remote_left;
    }
    const std::uint64_t total = static_cast<std::uint64_t>(
        input_.sites[req.node].total_records());
    req.records.resize(records_per_request);
    for (int i = 0; i < records_per_request; ++i) {
      req.records[i] = static_cast<db::RecordId>(rng->NextBounded(total));
    }
    plan.push_back(std::move(req));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// One execution attempt (home side) — mirrors Testbed::RunOnce
// ---------------------------------------------------------------------------

bool SiteEngine::RunOnce(TxnType type, std::uint64_t gid,
                         const std::vector<RequestSpec>& plan,
                         PhaseAcct* acct) {
  const ClassParams& costs = HomeCosts(type);
  LocalTxnState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    auto& slot = local_[gid];
    slot = std::make_unique<LocalTxnState>();
    slot->coord_type = type;
    state = slot.get();
  }
  std::vector<bool> touched(static_cast<std::size_t>(options_.num_sites),
                            false);
  touched[static_cast<std::size_t>(options_.site)] = true;
  if (dm_pool_ != nullptr) dm_pool_->Acquire();

  // INIT: TBEGIN and DBOPEN via the home TM, plus DM allocation.
  TmHandle(costs.tm_cpu_ms);
  TmHandle(costs.tm_cpu_ms);
  UseCpu(costs.dm_cpu_ms);

  const bool update = model::IsUpdate(type);
  bool aborted = false;
  int victim_node = -1;
  for (const RequestSpec& req : plan) {
    UseCpu(costs.u_cpu_ms);       // U phase: prepare the request
    TmHandle(costs.tm_cpu_ms);    // home TM routes the TDO
    bool ok;
    if (req.node == options_.site) {
      ok = ExecuteRequestHere(gid, costs, update, req.records, acct, state);
      TmHandle(costs.tm_cpu_ms);  // DOSTEP_K routing
    } else {
      const double rw_start = NowVms();
      SetCurrentNode(gid, req.node);
      ok = RemoteRequest(gid, type, req, &touched);
      SetCurrentNode(gid, options_.site);
      if (acct != nullptr) acct->remote_wait_vms += NowVms() - rw_start;
      TmHandle(costs.tm_cpu_ms);  // home TM, REMDO_K
    }
    if (!ok) {
      aborted = true;
      victim_node = req.node;
      break;
    }
  }

  if (aborted) {
    GlobalAbort(gid, type, victim_node, touched);
  } else {
    TmHandle(costs.tm_cpu_ms);  // TEND
    std::vector<int> slaves;
    for (int j = 0; j < options_.num_sites; ++j) {
      if (touched[static_cast<std::size_t>(j)] && j != options_.site) {
        slaves.push_back(j);
      }
    }
    if (slaves.empty()) {
      // TC + TCIO: commit processing and the forced commit log record.
      UseCpu(costs.tc_cpu_ms);
      {
        std::lock_guard<std::mutex> lock(db_mu_);
        CreditCommitted(state);
      }
      LogIo(1);
      ReleaseLocksHere(gid, costs);
    } else {
      Commit2pc(gid, type, slaves, acct);
    }
  }

  {
    std::lock_guard<std::mutex> lock(db_mu_);
    local_.erase(gid);
  }
  if (dm_pool_ != nullptr) dm_pool_->Release();
  return !aborted;
}

bool SiteEngine::RemoteRequest(std::uint64_t gid, TxnType type,
                               const RequestSpec& req,
                               std::vector<bool>* touched) {
  CoordTxn* ct = FindCoordTxn(gid);
  {
    std::lock_guard<std::mutex> lock(ct->mu);
    ct->pending = 1;
    ct->remdo_ok = false;
    ct->phase = "remdo";
    ct->phase_start_vms = NowVms();
  }
  std::string body = "REMDO ";
  body += std::to_string(gid);
  body += ' ';
  body += std::to_string(model::Index(type));
  body += ' ';
  body += wire::JoinRecords(req.records);
  Send(req.node, body);
  bool ok;
  {
    std::unique_lock<std::mutex> lock(ct->mu);
    ct->cv.wait(lock, [&] { return ct->pending == 0; });
    ok = ct->remdo_ok;
    ct->phase = "run";
  }
  // A failed REMDO means the slave rolled back and vacated the node.
  (*touched)[static_cast<std::size_t>(req.node)] = ok;
  return ok;
}

void SiteEngine::Commit2pc(std::uint64_t gid, TxnType type,
                           const std::vector<int>& slaves, PhaseAcct* acct) {
  const ClassParams& costs = HomeCosts(type);
  CoordTxn* ct = FindCoordTxn(gid);
  const std::string gid_str = std::to_string(gid);

  // Phase 1: PREPARE legs in parallel; VOTE handlers charge the home TM and
  // signal ct.
  const double prepare_start = NowVms();
  {
    std::lock_guard<std::mutex> lock(ct->mu);
    ct->pending = static_cast<int>(slaves.size());
    ct->phase = "prepare";
    ct->phase_start_vms = prepare_start;
  }
  for (const int j : slaves) Send(j, "PREPARE " + gid_str);
  {
    std::unique_lock<std::mutex> lock(ct->mu);
    ct->cv.wait(lock, [&] { return ct->pending == 0; });
    ct->phase = "run";
  }
  if (acct != nullptr) acct->commit_wait_vms += NowVms() - prepare_start;

  // Decision: force-write the commit record at the coordinator. This is the
  // audit's commit point for the home site's updates.
  UseCpu(costs.tc_cpu_ms);
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it != local_.end()) CreditCommitted(it->second.get());
  }
  LogIo(1);

  // Phase 2: COMMIT legs in parallel.
  const double commit_start = NowVms();
  {
    std::lock_guard<std::mutex> lock(ct->mu);
    ct->pending = static_cast<int>(slaves.size());
    ct->phase = "commit";
    ct->phase_start_vms = commit_start;
  }
  for (const int j : slaves) Send(j, "COMMIT " + gid_str);
  {
    std::unique_lock<std::mutex> lock(ct->mu);
    ct->cv.wait(lock, [&] { return ct->pending == 0; });
    ct->phase = "run";
  }
  if (acct != nullptr) acct->commit_wait_vms += NowVms() - commit_start;

  ReleaseLocksHere(gid, costs);
}

void SiteEngine::GlobalAbort(std::uint64_t gid, TxnType type, int victim_node,
                             const std::vector<bool>& touched) {
  const ClassParams& costs = HomeCosts(type);
  LocalTxnState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it != local_.end()) state = it->second.get();
  }
  // The victim site rolled back first: remotely inside its REMDO leg, at
  // home right here.
  if (victim_node == options_.site) RollbackHere(gid, costs, state);
  CoordTxn* ct = FindCoordTxn(gid);
  const std::string gid_str = std::to_string(gid);
  for (int j = 0; j < options_.num_sites; ++j) {
    if (!touched[static_cast<std::size_t>(j)] || j == victim_node) continue;
    if (j == options_.site) {
      RollbackHere(gid, costs, state);
      continue;
    }
    // T_ABORT leg to a surviving slave, serially (as in the testbed).
    {
      std::lock_guard<std::mutex> lock(ct->mu);
      ct->pending = 1;
      ct->phase = "tabort";
      ct->phase_start_vms = NowVms();
    }
    Send(j, "TABORT " + gid_str);
    std::unique_lock<std::mutex> lock(ct->mu);
    ct->cv.wait(lock, [&] { return ct->pending == 0; });
    ct->phase = "run";
  }
}

// ---------------------------------------------------------------------------
// Per-site execution — mirrors txn::Node
// ---------------------------------------------------------------------------

bool SiteEngine::ExecuteRequestHere(std::uint64_t gid,
                                    const ClassParams& costs, bool update,
                                    const std::vector<db::RecordId>& records,
                                    PhaseAcct* acct, LocalTxnState* state) {
  // DM phase: processing before the first lock request.
  UseCpu(costs.dm_cpu_ms);
  const lock::LockMode mode =
      update ? lock::LockMode::kExclusive : lock::LockMode::kShared;
  for (const db::RecordId record : records) {
    const db::GranuleId granule = database_.GranuleOf(record);

    // LR phase: lock request processing, including deadlock detection.
    UseCpu(costs.lr_cpu_ms);
    const double before_lock = NowVms();
    const lock::LockOutcome outcome = locks_.Acquire(gid, granule, mode);
    if (acct != nullptr) acct->lock_wait_vms += NowVms() - before_lock;
    if (outcome == lock::LockOutcome::kAborted) {
      return false;  // deadlock victim; caller rolls back everywhere
    }

    // DMIO phase: block read, plus journal write and in-place database
    // write for updates (three I/Os, Table 2).
    UseCpu(costs.dmio_cpu_ms);
    DbIo(1);
    if (update) {
      {
        std::lock_guard<std::mutex> lock(db_mu_);
        if (state->undo.find(granule) == state->undo.end()) {
          state->undo.emplace(granule, database_.ReadGranule(granule));
        }
        database_.Write(record, database_.Read(record) + 1);
        state->updated.push_back(record);
      }
      LogIo(1);  // journal write (write-ahead of the update)
      DbIo(1);   // database write
    }

    // DM phase between lock requests.
    UseCpu(costs.dm_cpu_ms);
  }
  return true;
}

void SiteEngine::RollbackHere(std::uint64_t gid, const ClassParams& costs,
                              LocalTxnState* state) {
  // TA phase: abort handling.
  UseCpu(costs.ta_fixed_cpu_ms);
  int restored = 0;
  if (state != nullptr) {
    std::lock_guard<std::mutex> lock(db_mu_);
    restored = static_cast<int>(state->undo.size());
    const int rpg = params().records_per_granule;
    for (const auto& [granule, image] : state->undo) {
      for (int k = 0; k < static_cast<int>(image.size()); ++k) {
        database_.Write(granule * rpg + k, image[static_cast<std::size_t>(k)]);
      }
    }
    state->undo.clear();
    state->updated.clear();
  }
  // TAIO: per restored granule, read the journal and rewrite the block.
  for (int i = 0; i < restored; ++i) {
    UseCpu(costs.ta_cpu_per_granule_ms);
    LogIo(1);
    DbIo(1);
  }
  ReleaseLocksHere(gid, costs);
}

void SiteEngine::ReleaseLocksHere(std::uint64_t gid,
                                  const ClassParams& costs) {
  // UL phase: unlock processing proportional to the locks held here.
  const double locks_held = static_cast<double>(locks_.HeldCount(gid));
  if (locks_held > 0) UseCpu(costs.unlock_cpu_per_lock_ms * locks_held);
  locks_.ReleaseAll(gid);
}

void SiteEngine::CreditCommitted(LocalTxnState* state) {
  for (const db::RecordId record : state->updated) {
    ++shadow_[static_cast<std::size_t>(record)];
  }
  state->updated.clear();
  state->undo.clear();
}

// ---------------------------------------------------------------------------
// Slave-side handlers
// ---------------------------------------------------------------------------

void SiteEngine::HandleMessage(int from, const std::string& body) {
  {
    const std::string_view verb =
        std::string_view(body).substr(0, body.find(' '));
    ++rx_verbs_[static_cast<std::size_t>(VerbIndex(verb))];
  }
  pool_.Submit([this, from, body] {
    ++handled_;
    wire::TokenReader reader(body);
    std::string_view verb;
    if (!reader.Next(&verb)) return;
    if (verb == "REMDO") {
      HandleRemdo(from, body);
    } else if (verb == "PREPARE") {
      HandlePrepare(from, body);
    } else if (verb == "COMMIT") {
      HandleCommit(from, body);
    } else if (verb == "TABORT") {
      HandleTabort(from, body);
    } else if (verb == "REMDO_K") {
      HandleReply(body, /*remdo=*/true);
    } else if (verb == "VOTE" || verb == "COMMIT_K" || verb == "ABORT_K") {
      HandleReply(body, /*remdo=*/false);
    } else if (verb == "PROBE") {
      std::uint64_t initiator = 0;
      std::uint64_t target = 0;
      std::uint64_t max_gid = 0;
      int initiator_site = 0;
      int hops = 0;
      wire::TokenReader r(body);
      std::string_view v;
      if (r.Next(&v) && r.NextU64(&initiator) && r.NextInt(&initiator_site) &&
          r.NextU64(&target) && r.NextInt(&hops) && r.NextU64(&max_gid)) {
        HandleProbe(initiator, initiator_site, target, hops, max_gid);
      }
    } else if (verb == "VICTIM") {
      std::uint64_t gid = 0;
      wire::TokenReader r(body);
      std::string_view v;
      if (r.Next(&v) && r.NextU64(&gid)) locks_.CancelWait(gid);
    }
  });
}

void SiteEngine::HandleRemdo(int from, const std::string& body) {
  wire::TokenReader reader(body);
  std::string_view verb;
  std::string_view records_token;
  std::uint64_t gid = 0;
  int type_index = 0;
  std::vector<db::RecordId> records;
  if (!reader.Next(&verb) || !reader.NextU64(&gid) ||
      !reader.NextInt(&type_index) || !reader.Next(&records_token) ||
      !wire::SplitRecords(records_token, &records)) {
    return;
  }
  const TxnType coord_type = static_cast<TxnType>(type_index);
  const ClassParams& costs = SlaveCosts(coord_type);
  LocalTxnState* state = nullptr;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    auto& slot = local_[gid];
    if (slot == nullptr) {
      first = true;
      slot = std::make_unique<LocalTxnState>();
      slot->coord_type = coord_type;
    }
    state = slot.get();
  }
  // First touch: lazy slave DM assignment.
  if (first && dm_pool_ != nullptr) dm_pool_->Acquire();

  TmHandle(costs.tm_cpu_ms);  // slave TM, inbound
  const bool ok = ExecuteRequestHere(gid, costs, model::IsUpdate(coord_type),
                                     records, nullptr, state);
  if (!ok) {
    // Deadlock victim at the slave: roll back and vacate the node before the
    // failure response ships home.
    RollbackHere(gid, costs, state);
    {
      std::lock_guard<std::mutex> lock(db_mu_);
      local_.erase(gid);
    }
    if (dm_pool_ != nullptr) dm_pool_->Release();
  }
  TmHandle(costs.tm_cpu_ms);  // slave TM, REMDO_K
  Send(from, "REMDO_K " + std::to_string(gid) + (ok ? " 1" : " 0"));
}

void SiteEngine::HandlePrepare(int from, const std::string& body) {
  wire::TokenReader reader(body);
  std::string_view verb;
  std::uint64_t gid = 0;
  if (!reader.Next(&verb) || !reader.NextU64(&gid)) return;
  TxnType coord_type = TxnType::kDROC;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it == local_.end()) {
      // A PREPARE for unknown state means a slave leg vanished while home
      // believed it touched this node; voting yes would commit lost updates,
      // so make the violation loud instead of silently dropping it.
      std::fprintf(stderr, "site %d: PREPARE for unknown gid %llu\n",
                   options_.site, static_cast<unsigned long long>(gid));
      return;
    }
    coord_type = it->second->coord_type;
  }
  const ClassParams& costs = SlaveCosts(coord_type);
  TmHandle(costs.tm_cpu_ms);
  LogIo(1);  // forced prepare record
  Send(from, "VOTE " + std::to_string(gid));
}

void SiteEngine::HandleCommit(int from, const std::string& body) {
  wire::TokenReader reader(body);
  std::string_view verb;
  std::uint64_t gid = 0;
  if (!reader.Next(&verb) || !reader.NextU64(&gid)) return;
  TxnType coord_type = TxnType::kDROC;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it == local_.end()) {
      // Phase 2 must always ack or the coordinator blocks forever; a commit
      // of already-vacated state is trivially done.
      Send(from, "COMMIT_K " + std::to_string(gid));
      return;
    }
    coord_type = it->second->coord_type;
  }
  const ClassParams& costs = SlaveCosts(coord_type);
  TmHandle(costs.tm_cpu_ms);
  LogIo(1);  // commit record
  {
    // The coordinator's decision is already logged; COMMIT makes this
    // slave's updates durable for the audit.
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it != local_.end()) CreditCommitted(it->second.get());
  }
  ReleaseLocksHere(gid, costs);
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    local_.erase(gid);
  }
  if (dm_pool_ != nullptr) dm_pool_->Release();
  Send(from, "COMMIT_K " + std::to_string(gid));
}

void SiteEngine::HandleTabort(int from, const std::string& body) {
  wire::TokenReader reader(body);
  std::string_view verb;
  std::uint64_t gid = 0;
  if (!reader.Next(&verb) || !reader.NextU64(&gid)) return;
  TxnType coord_type = TxnType::kDROC;
  LocalTxnState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    const auto it = local_.find(gid);
    if (it == local_.end()) {
      // Aborting already-vacated state is a no-op, but the coordinator still
      // waits on the ack — never strand it.
      Send(from, "ABORT_K " + std::to_string(gid));
      return;
    }
    coord_type = it->second->coord_type;
    state = it->second.get();
  }
  const ClassParams& costs = SlaveCosts(coord_type);
  TmHandle(costs.tm_cpu_ms);
  RollbackHere(gid, costs, state);
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    local_.erase(gid);
  }
  if (dm_pool_ != nullptr) dm_pool_->Release();
  Send(from, "ABORT_K " + std::to_string(gid));
}

void SiteEngine::HandleReply(const std::string& body, bool remdo) {
  wire::TokenReader reader(body);
  std::string_view verb;
  std::uint64_t gid = 0;
  if (!reader.Next(&verb) || !reader.NextU64(&gid)) return;
  int ok = 1;
  if (remdo && !reader.NextInt(&ok)) return;
  CoordTxn* ct = FindCoordTxn(gid);
  if (ct == nullptr) return;  // transaction already ended (stale reply)
  if (!remdo) {
    // VOTE / COMMIT_K / ABORT_K pay the home TM handling before the
    // coordinator resumes, mirroring the in-process 2PC legs. (For REMDO_K
    // the coordinator thread itself charges the home TM after waking.)
    TmHandle(HomeCosts(ct->type).tm_cpu_ms);
  }
  // Notify while holding the mutex: the coordinator may destroy `ct` the
  // moment it observes pending == 0 after we release it.
  std::lock_guard<std::mutex> lock(ct->mu);
  if (remdo) ct->remdo_ok = ok != 0;
  if (ct->pending > 0) --ct->pending;
  ct->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Global deadlock probes (edge-chasing with max-gid uniqueness)
// ---------------------------------------------------------------------------

void SiteEngine::OnBlock(TxnId waiter, std::vector<TxnId> holders) {
  if (options_.num_sites < 2) return;
  for (const TxnId holder : holders) {
    if (locks_.IsWaiting(holder) || HomeOf(holder) == options_.site) {
      HandleProbe(waiter, options_.site, holder, 1, waiter);
    } else {
      ++probes_sent_;
      Send(HomeOf(holder), "PROBE " + std::to_string(waiter) + ' ' +
                               std::to_string(options_.site) + ' ' +
                               std::to_string(holder) + " 1 " +
                               std::to_string(waiter));
    }
  }
}

void SiteEngine::HandleProbe(std::uint64_t initiator, int initiator_site,
                             std::uint64_t target, int hops,
                             std::uint64_t max_gid) {
  if (hops > options_.max_probe_hops) return;
  TmHandle(options_.probe_cpu_ms);  // relay/evaluation message handling
  if (!locks_.IsWaiting(target)) {
    // Not blocked here. If this is the target's home, forward to wherever it
    // currently operates; otherwise the probe is stale.
    if (HomeOf(target) != options_.site) return;
    int current = -1;
    {
      std::lock_guard<std::mutex> lock(coord_mu_);
      const auto it = coord_txns_.find(target);
      if (it != coord_txns_.end()) current = it->second->current_node;
    }
    if (current < 0 || current == options_.site) return;  // ended or running
    ++probes_sent_;
    Send(current, "PROBE " + std::to_string(initiator) + ' ' +
                      std::to_string(initiator_site) + ' ' +
                      std::to_string(target) + ' ' + std::to_string(hops + 1) +
                      ' ' + std::to_string(max_gid));
    return;
  }
  // Evaluate: the target waits here; chase each transaction it waits for.
  const std::uint64_t new_max = std::max(max_gid, target);
  for (const TxnId holder : locks_.WaitingFor(target)) {
    if (holder == initiator) {
      // Cycle closed. Only the probe initiated by the cycle's largest gid
      // declares, so exactly one victim dies per cycle.
      if (initiator >= new_max) {
        ++global_deadlocks_;
        DeliverVictim(initiator, initiator_site);
      }
      continue;
    }
    if (locks_.IsWaiting(holder) || HomeOf(holder) == options_.site) {
      HandleProbe(initiator, initiator_site, holder, hops + 1, new_max);
    } else {
      ++probes_sent_;
      Send(HomeOf(holder), "PROBE " + std::to_string(initiator) + ' ' +
                               std::to_string(initiator_site) + ' ' +
                               std::to_string(holder) + ' ' +
                               std::to_string(hops + 1) + ' ' +
                               std::to_string(new_max));
    }
  }
}

void SiteEngine::DeliverVictim(std::uint64_t initiator, int initiator_site) {
  if (initiator_site == options_.site) {
    locks_.CancelWait(initiator);
  } else {
    Send(initiator_site, "VICTIM " + std::to_string(initiator));
  }
}

void SiteEngine::WatchdogMain() {
  const auto interval = clock_.RealDuration(options_.reprobe_interval_vms);
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, interval, [&] { return stopping_.load(); });
    if (stopping_.load()) return;
    lock.unlock();
    // Re-probe every blocked transaction: probes are stateless, so lost or
    // early (pre-cycle) journeys are simply retried.
    for (const TxnId waiter : locks_.WaitingTxns()) {
      OnBlock(waiter, locks_.WaitingFor(waiter));
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// External (load generator) transactions
// ---------------------------------------------------------------------------

std::string SiteEngine::RunExternalTxn(std::string_view type_token,
                                       int requests) {
  TxnType type = TxnType::kLRO;
  if (type_token == "LU") {
    type = TxnType::kLU;
  } else if (type_token == "DRO") {
    type = TxnType::kDROC;
  } else if (type_token == "DU") {
    type = TxnType::kDUC;
  }
  if (options_.num_sites < 2 && model::IsCoordinator(type)) {
    type = type == TxnType::kDROC ? TxnType::kLRO : TxnType::kLU;
  }
  if (requests < 1) requests = 1;
  int local_requests = requests;
  int remote_requests = 0;
  if (model::IsCoordinator(type)) {
    local_requests = (requests + 1) / 2;
    remote_requests = requests - local_requests;
  }
  util::Rng rng(0);
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    rng = ext_rng_.Fork();
    ++ext_active_;
  }
  const ClassParams& costs = HomeCosts(type);
  const double start_vms = NowVms();
  std::uint64_t retries = 0;
  std::uint64_t gid = 0;
  for (;;) {
    gid = NewGid(type);
    const std::vector<RequestSpec> plan =
        BuildPlan(type, local_requests, remote_requests,
                  costs.records_per_request, &rng);
    PhaseAcct acct;
    const bool committed = RunOnce(type, gid, plan, &acct);
    EndGid(gid);
    if (committed) break;
    ++retries;
  }
  const double response_vms = NowVms() - start_vms;
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    ++ext_commits_;
    ext_aborts_ += retries;
    --ext_active_;
    ext_cv_.notify_all();
  }
  std::string reply = "TXN_K ";
  reply += std::to_string(gid);
  reply += " 1 ";
  reply += std::to_string(retries);
  reply += ' ';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", response_vms);
  reply += buf;
  return reply;
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

void SiteEngine::ResetStats() {
  cpu_.ResetStats();
  db_disk_.ResetStats();
  if (log_disk_ != nullptr) log_disk_->ResetStats();
  if (dm_pool_ != nullptr) dm_pool_->ResetStats();
  locks_.ResetStats();
  messages_sent_ = 0;
  probes_sent_ = 0;
  global_deadlocks_ = 0;
  for (auto& driver : drivers_) {
    std::lock_guard<std::mutex> lock(driver->mu);
    driver->commits = driver->submissions = driver->aborts = 0;
    driver->records_committed = 0;
    driver->response_vms.Reset();
    driver->lock_wait_vms.Reset();
    driver->remote_wait_vms.Reset();
    driver->commit_wait_vms.Reset();
  }
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    ext_commits_ = ext_aborts_ = 0;
  }
  window_start_vms_ = NowVms();
  window_end_vms_ = window_start_vms_;
}

void SiteEngine::StopUsers() {
  stop_users_ = true;
  for (auto& driver : drivers_) {
    if (driver->thread.joinable()) driver->thread.join();
  }
  window_end_vms_ = NowVms();
}

bool SiteEngine::Drain(double timeout_real_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::duration<double, std::milli>(
                                timeout_real_ms));
  for (;;) {
    bool idle;
    {
      std::lock_guard<std::mutex> lock(db_mu_);
      idle = local_.empty();
    }
    if (idle) {
      std::lock_guard<std::mutex> lock(ext_mu_);
      idle = ext_active_ == 0;
    }
    if (idle) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    RtClock::SleepRealMs(10);
  }
}

EngineReport SiteEngine::Collect() {
  EngineReport report;
  report.measured_vms = window_end_vms_ - window_start_vms_;
  report.cpu_busy_vms = cpu_.BusyVirtualMs();
  report.db_busy_vms = db_disk_.BusyVirtualMs();
  report.dio = db_disk_.completions();
  if (log_disk_ != nullptr) {
    report.log_busy_vms = log_disk_->BusyVirtualMs();
    report.dio += log_disk_->completions();
  }
  report.lock_requests = locks_.requests();
  report.lock_blocks = locks_.blocks();
  report.local_deadlocks = locks_.local_deadlocks();
  report.cancelled_waits = locks_.cancelled_waits();
  report.global_deadlocks = global_deadlocks_.load();
  report.probes_sent = probes_sent_.load();
  report.messages_sent = messages_sent_.load();
  report.dm_pool_waits = dm_pool_ != nullptr ? dm_pool_->waits() : 0;
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    report.ext_commits = ext_commits_;
    report.ext_aborts = ext_aborts_;
  }
  for (auto& driver : drivers_) {
    std::lock_guard<std::mutex> lock(driver->mu);
    TypeCounters& t = report.types[model::Index(driver->type)];
    t.present = true;
    t.commits += driver->commits;
    t.submissions += driver->submissions;
    t.aborts += driver->aborts;
    t.records_committed += driver->records_committed;
    t.response_sum_vms += driver->response_vms.Sum();
    t.lock_wait_sum_vms += driver->lock_wait_vms.Sum();
    t.remote_wait_sum_vms += driver->remote_wait_vms.Sum();
    t.commit_wait_sum_vms += driver->commit_wait_vms.Sum();
  }
  // Audit: with everything drained, every record must equal the number of
  // committed updates applied to it (atomicity + write serialization).
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    report.drained = local_.empty();
    report.audit_ok = true;
    for (db::RecordId r = 0; r < database_.num_records(); ++r) {
      if (database_.Read(r) !=
          static_cast<db::RecordValue>(shadow_[static_cast<std::size_t>(r)])) {
        report.audit_ok = false;
        break;
      }
    }
  }
  return report;
}

std::string SiteEngine::DebugSnapshot() {
  std::string out = "site " + std::to_string(options_.site) + " @" +
                    std::to_string(NowVms()) + "vms\n";
  for (const TxnId waiter : locks_.WaitingTxns()) {
    out += "  lockwait gid=" + std::to_string(waiter) + " home=" +
           std::to_string(HomeOf(waiter)) + " for=[";
    bool first = true;
    for (const TxnId holder : locks_.WaitingFor(waiter)) {
      if (!first) out += ',';
      out += std::to_string(holder);
      first = false;
    }
    out += "]\n";
  }
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    for (const auto& [gid, ct] : coord_txns_) {
      std::lock_guard<std::mutex> ct_lock(ct->mu);
      out += "  coord gid=" + std::to_string(gid) +
             " pending=" + std::to_string(ct->pending) +
             " node=" + std::to_string(ct->current_node) + " phase=" +
             ct->phase;
      if (ct->pending > 0) {
        out += " age=" + std::to_string(NowVms() - ct->phase_start_vms) +
               "vms";
      }
      out += "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    for (const auto& [gid, state] : local_) {
      out += "  local gid=" + std::to_string(gid) + " home=" +
             std::to_string(HomeOf(gid)) + " updated=" +
             std::to_string(state->updated.size()) + "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    out += "  ext_active=" + std::to_string(ext_active_) + "\n";
  }
  // Message flow and execution backlog: a verb whose tx count at the peer
  // exceeds the rx count here was lost in transit; rx ahead of handled
  // tasks means work stranded in the pool queue; large resource backlogs
  // mean the handlers are alive but queued behind scaled service demand.
  out += "  tx";
  for (int i = 0; i < kNumVerbs; ++i) {
    const std::uint64_t n = tx_verbs_[static_cast<std::size_t>(i)].load();
    if (n != 0) out += ' ' + std::string(VerbName(i)) + '=' + std::to_string(n);
  }
  out += "\n  rx";
  for (int i = 0; i < kNumVerbs; ++i) {
    const std::uint64_t n = rx_verbs_[static_cast<std::size_t>(i)].load();
    if (n != 0) out += ' ' + std::string(VerbName(i)) + '=' + std::to_string(n);
  }
  const WorkerPool::Stats pool = pool_.stats();
  out += "\n  pool queued=" + std::to_string(pool.queued) +
         " idle=" + std::to_string(pool.idle) +
         " threads=" + std::to_string(pool.threads) +
         " handled=" + std::to_string(handled_.load()) + "\n";
  out += "  backlog cpu=" + std::to_string(cpu_.BacklogVms()) + "vms db=" +
         std::to_string(db_disk_.BacklogVms()) + "vms";
  if (log_disk_ != nullptr) {
    out += " log=" + std::to_string(log_disk_->BacklogVms()) + "vms";
  }
  out += " tm_depth=" + std::to_string(tm_mutex_.Depth()) + "\n";
  return out;
}

}  // namespace carat::dist
