#include "dist/loadgen.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "dist/wire.h"
#include "rpc/client.h"
#include "util/cli.h"

namespace carat::dist {

namespace {

using Clock = std::chrono::steady_clock;

const char* TypeToken(const std::string& type, std::uint64_t k) {
  if (type == "lro") return "LRO";
  if (type == "lu") return "LU";
  if (type == "dro") return "DRO";
  if (type == "du") return "DU";
  switch (k % 4) {  // mix
    case 0: return "LRO";
    case 1: return "LU";
    case 2: return "DRO";
    default: return "DU";
  }
}

struct Conn {
  rpc::Client client;
  std::uint64_t first = 0;   ///< this connection's ops: first, first+stride,..
  std::uint64_t stride = 1;
  std::uint64_t assigned = 0;

  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0;
  bool failed = false;

  std::uint64_t completed = 0;
  std::uint64_t committed = 0;
  std::uint64_t retries = 0;
  std::uint64_t errors = 0;
  double latency_sum_ms = 0.0;
  rpc::LatencyHistogram hist;

  std::thread sender;
  std::thread receiver;
};

}  // namespace

LoadgenResult RunLoadgen(const LoadgenOptions& options) {
  LoadgenResult result;
  if (options.targets.empty()) {
    result.error = "no targets";
    return result;
  }
  if (options.rate_per_s <= 0.0 || options.connections < 1 ||
      options.ops_in_flight < 1) {
    result.error = "rate, connections and ops_in_flight must be positive";
    return result;
  }
  const std::uint64_t total =
      options.total_ops > 0
          ? options.total_ops
          : static_cast<std::uint64_t>(options.rate_per_s *
                                       options.duration_s);
  if (total == 0) {
    result.error = "empty schedule";
    return result;
  }
  const std::chrono::duration<double> interval(1.0 / options.rate_per_s);
  const std::uint64_t conns =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(options.connections),
                              total);

  std::vector<std::unique_ptr<Conn>> pool;
  for (std::uint64_t c = 0; c < conns; ++c) {
    auto conn = std::make_unique<Conn>();
    conn->first = c;
    conn->stride = conns;
    conn->assigned = (total - c + conns - 1) / conns;
    const std::string& target =
        options.targets[static_cast<std::size_t>(c % options.targets.size())];
    std::string host;
    int port = 0;
    if (!util::ParseHostPort(target.c_str(), &host, &port,
                             util::PortZeroPolicy::kReject)) {
      result.error = "bad target: " + target;
      return result;
    }
    rpc::Client::ConnectOptions copts;
    copts.framing = rpc::FramingKind::kBinary;
    copts.recv_timeout_ms = options.recv_timeout_ms;
    copts.connect_timeout_ms = options.connect_timeout_ms;
    copts.connect_attempts = 20;
    copts.reconnect_backoff_ms = 100;
    std::string error;
    if (!conn->client.Connect(host, static_cast<std::uint16_t>(port), &error,
                              copts)) {
      result.error = "connect " + target + ": " + error;
      return result;
    }
    pool.push_back(std::move(conn));
  }

  // The fixed schedule: operation k is due at start + k * interval, on
  // connection k % conns. The small lead-in keeps the first arrivals from
  // being born late.
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(20);
  const std::string ops = std::to_string(options.ops_per_txn);

  for (auto& conn : pool) {
    Conn* c = conn.get();
    c->sender = std::thread([c, &options, &ops, start, interval, total] {
      for (std::uint64_t k = c->first; k < total; k += c->stride) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(interval * k));
        {
          std::unique_lock<std::mutex> lock(c->mu);
          c->cv.wait(lock, [&] {
            return c->in_flight < options.ops_in_flight || c->failed;
          });
          if (c->failed) return;
          ++c->in_flight;
        }
        std::string line = std::to_string(k);
        line += " TXN ";
        line += TypeToken(options.type, k);
        line += ' ';
        line += ops;
        if (!c->client.SendLine(line)) {
          std::lock_guard<std::mutex> lock(c->mu);
          c->failed = true;
          return;
        }
      }
    });
    c->receiver = std::thread([c, start, interval] {
      std::string line;
      while (c->completed + c->errors < c->assigned) {
        if (!c->client.ReadLine(&line)) {
          std::lock_guard<std::mutex> lock(c->mu);
          c->errors = c->assigned - c->completed;
          c->failed = true;
          c->cv.notify_all();
          return;
        }
        wire::TokenReader reader(line);
        std::uint64_t k = 0;
        std::string_view verb;
        std::uint64_t gid = 0;
        int commits = 0;
        int retries = 0;
        if (!reader.NextU64(&k) || !reader.Next(&verb) || verb != "TXN_K" ||
            !reader.NextU64(&gid) || !reader.NextInt(&commits) ||
            !reader.NextInt(&retries)) {
          continue;  // stray frame (not one of ours)
        }
        // Latency from the *scheduled* arrival, reconstructed from the id.
        const Clock::time_point due =
            start + std::chrono::duration_cast<Clock::duration>(interval * k);
        const std::chrono::duration<double, std::milli> latency =
            Clock::now() - due;
        const double ms = latency.count() > 0.0 ? latency.count() : 0.0;
        c->hist.Record(static_cast<std::uint64_t>(ms * 1000.0));
        c->latency_sum_ms += ms;
        ++c->completed;
        c->committed += static_cast<std::uint64_t>(commits);
        c->retries += static_cast<std::uint64_t>(retries);
        std::lock_guard<std::mutex> lock(c->mu);
        --c->in_flight;
        c->cv.notify_all();
      }
    });
  }

  for (auto& conn : pool) {
    conn->sender.join();
    conn->receiver.join();
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;

  result.scheduled = total;
  for (auto& conn : pool) {
    result.completed += conn->completed;
    result.committed += conn->committed;
    result.retries += conn->retries;
    result.errors += conn->errors;
    result.histogram.Merge(conn->hist);
    result.mean_ms += conn->latency_sum_ms;
  }
  result.elapsed_s = elapsed.count();
  if (result.elapsed_s > 0) {
    result.achieved_per_s =
        static_cast<double>(result.completed) / result.elapsed_s;
  }
  if (result.completed > 0) result.mean_ms /= result.completed;
  result.p50_ms = result.histogram.PercentileMs(50.0);
  result.p95_ms = result.histogram.PercentileMs(95.0);
  result.p99_ms = result.histogram.PercentileMs(99.0);
  result.ok = result.errors == 0 && result.completed == result.scheduled;
  if (!result.ok && result.error.empty()) {
    result.error = "some operations received no response";
  }
  return result;
}

}  // namespace carat::dist
