// Real-time execution primitives for the distributed testbed.
//
// The in-process testbed (carat/testbed.h) runs on a virtual-time event
// kernel; the distributed testbed runs each site as its own OS process, so
// time must be real. Every service demand of the protocol (CPU bursts, disk
// block I/Os) is emulated by sleeping a scaled amount of wall-clock time:
// `scale` real milliseconds per virtual millisecond. All protocol code keeps
// working in *virtual* milliseconds — the same unit as the model and the
// simulation — and RtClock converts at the sleep/measure boundary.
//
// RtResource is the FCFS single server. Instead of sleeping per caller (which
// would let scheduler overshoot accumulate through a queue), it keeps a
// reservation ledger: under a mutex each request computes
//     start = max(now, busy_until), end = start + service
// advances busy_until to `end`, and then sleeps until the *absolute* deadline
// `end` outside the lock. A thread that oversleeps does not push later
// reservations back — the ledger already fixed their deadlines — so timing
// error stays per-visit instead of compounding across the queue, and the
// measured busy time is exactly the virtual service demand, as in the
// simulation's sim::FcfsResource.

#ifndef CARAT_DIST_RUNTIME_H_
#define CARAT_DIST_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace carat::dist {

/// Wall-clock <-> virtual-time conversion for one site process. `scale` is
/// real milliseconds per virtual millisecond (0.1 = ten times faster than
/// the modeled hardware).
class RtClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit RtClock(double scale)
      : scale_(scale), start_(std::chrono::steady_clock::now()) {}

  double scale() const { return scale_; }

  /// Virtual milliseconds elapsed since this clock was created.
  double NowVirtualMs() const {
    const std::chrono::duration<double, std::milli> real =
        std::chrono::steady_clock::now() - start_;
    return real.count() / scale_;
  }

  /// Real-time duration corresponding to `virtual_ms`.
  std::chrono::steady_clock::duration RealDuration(double virtual_ms) const {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(virtual_ms * scale_));
  }

  /// Sleeps for `virtual_ms` of virtual time (scaled to real time).
  void SleepVirtual(double virtual_ms) const {
    if (virtual_ms <= 0.0) return;
    std::this_thread::sleep_for(RealDuration(virtual_ms));
  }

  static void SleepRealMs(double real_ms) {
    if (real_ms <= 0.0) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(real_ms));
  }

 private:
  double scale_;
  TimePoint start_;
};

/// FCFS single-server resource (a CPU or a disk) with a reservation ledger;
/// see the file comment. Thread-safe.
class RtResource {
 public:
  explicit RtResource(const RtClock* clock) : clock_(clock) {}
  RtResource(const RtResource&) = delete;
  RtResource& operator=(const RtResource&) = delete;

  /// Queues for the server, holds it for `service_virtual_ms`, returns when
  /// the service completes. FIFO by reservation order.
  void Use(double service_virtual_ms);

  /// Virtual milliseconds of reserved-but-undelivered service: how far
  /// busy_until_ has run ahead of the wall clock. Nonzero while requests
  /// queue; a large, growing value means offered load exceeds the server's
  /// (scaled) capacity. Diagnostic only.
  double BacklogVms() const;

  /// Virtual milliseconds of service delivered since the last reset.
  double BusyVirtualMs() const;

  /// Completed service visits since the last reset.
  std::uint64_t completions() const;

  void ResetStats();

 private:
  const RtClock* clock_;
  mutable std::mutex mu_;
  RtClock::TimePoint busy_until_{};  ///< end of the last reservation (real)
  double busy_virtual_ms_ = 0.0;
  std::uint64_t completions_ = 0;
};

/// FIFO mutex held across resource usages — the CARAT TM server is a
/// serially reusable process: it is seized, charges its CPU demand, and is
/// released. Waiters are served strictly in arrival order by direct
/// handoff to a per-waiter condition variable: exactly one thread wakes
/// per release. (A single shared cv with notify_all makes each service
/// cost O(queue) wakeups, and under a probe burst that positive feedback
/// — longer queue, slower service, faster growth — livelocks the whole
/// site: observed as thousands of handler threads parked on the TM while
/// the modeled CPU sat idle.)
class RtFifoMutex {
 public:
  void Lock();
  void Unlock();

  /// Current holder plus queued waiters. Diagnostic only.
  std::uint64_t Depth() const;

 private:
  struct Waiter {
    std::condition_variable cv;
    bool ready = false;
  };

  mutable std::mutex mu_;
  bool held_ = false;
  std::uint64_t depth_ = 0;  ///< holder + waiters
  std::deque<std::shared_ptr<Waiter>> queue_;
};

/// Counting semaphore for the fixed DM server pool. Counts how many
/// acquisitions had to wait (the testbed's dm_pool_waits measurement).
class RtSemaphore {
 public:
  explicit RtSemaphore(int count) : available_(count) {}

  void Acquire();
  void Release();

  std::uint64_t waits() const;
  void ResetStats();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int available_;
  std::uint64_t waits_ = 0;
};

/// Spawn-on-demand worker pool for protocol message handlers. A fixed-size
/// pool would distributed-deadlock: a REMDO handler can block on a lock that
/// only a later COMMIT message (needing a worker) will release. Submitting
/// when every worker is busy therefore spawns a new thread; idle workers are
/// reused and retire after staying idle, so a blocking burst does not leave
/// hundreds of parked threads behind. Threads are joined on Shutdown.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { Shutdown(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `fn` on a worker thread (inline if the pool is shut down).
  void Submit(std::function<void()> fn);

  /// Point-in-time pool occupancy for stuck-run diagnosis: a persistently
  /// nonzero `queued` with idle waiters available means tasks are stranded.
  struct Stats {
    std::size_t queued = 0;
    int idle = 0;
    std::size_t threads = 0;
  };
  Stats stats() const;

  /// Drains queued work and joins every worker. Idempotent.
  void Shutdown();

 private:
  void WorkerMain();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;  ///< every spawned handle, incl. retired
  int idle_ = 0;
  int live_ = 0;  ///< threads that have not retired
  bool stop_ = false;
};

}  // namespace carat::dist

#endif  // CARAT_DIST_RUNTIME_H_
