#include "dist/rt_lock.h"

#include <algorithm>
#include <unordered_set>

namespace carat::dist {

using lock::LockMode;
using lock::LockOutcome;

namespace {

bool Conflicts(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

}  // namespace

bool RtLockManager::CompatibleWithHolders(const GranuleLock& gl, TxnId txn,
                                          LockMode mode) const {
  for (const Holder& h : gl.holders) {
    if (h.txn == txn) continue;
    if (Conflicts(h.mode, mode)) return false;
  }
  return true;
}

void RtLockManager::Grant(TxnId txn, db::GranuleId granule, LockMode mode) {
  GranuleLock& gl = table_[granule];
  auto& held = held_[txn];
  auto it = held.find(granule);
  if (it != held.end()) {
    // Re-entrant: strengthen the existing hold in place.
    if (mode == LockMode::kExclusive && it->second == LockMode::kShared) {
      it->second = LockMode::kExclusive;
      for (Holder& h : gl.holders) {
        if (h.txn == txn) h.mode = LockMode::kExclusive;
      }
    }
    return;
  }
  held.emplace(granule, mode);
  gl.holders.push_back(Holder{txn, mode});
}

bool RtLockManager::TryGrantNow(TxnId txn, db::GranuleId granule,
                                LockMode mode) {
  GranuleLock& gl = table_[granule];
  auto held_it = held_.find(txn);
  const bool holds_already =
      held_it != held_.end() && held_it->second.count(granule) > 0;
  if (holds_already) {
    const LockMode held_mode = held_it->second[granule];
    if (held_mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return true;  // already at least as strong
    }
    // S -> X upgrade: only when no other holder conflicts (upgrades jump the
    // queue; our transactions never mix modes, so this path is defensive).
    if (CompatibleWithHolders(gl, txn, mode)) {
      Grant(txn, granule, mode);
      return true;
    }
    return false;
  }
  if (!gl.queue.empty()) return false;  // FIFO fairness: no overtaking
  if (!CompatibleWithHolders(gl, txn, mode)) return false;
  Grant(txn, granule, mode);
  return true;
}

std::vector<TxnId> RtLockManager::ConflictsOf(const GranuleLock& gl, TxnId txn,
                                              LockMode mode,
                                              std::size_t queue_limit) const {
  std::vector<TxnId> out;
  for (const Holder& h : gl.holders) {
    if (h.txn != txn && Conflicts(h.mode, mode)) out.push_back(h.txn);
  }
  const std::size_t limit = std::min(queue_limit, gl.queue.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const WaiterPtr& w = gl.queue[i];
    if (w->txn != txn && Conflicts(w->mode, mode)) out.push_back(w->txn);
  }
  return out;
}

std::vector<TxnId> RtLockManager::WaitingForLocked(TxnId txn) const {
  const auto wait_it = waiting_on_.find(txn);
  if (wait_it == waiting_on_.end()) return {};
  const auto table_it = table_.find(wait_it->second);
  if (table_it == table_.end()) return {};
  const GranuleLock& gl = table_it->second;
  std::size_t position = gl.queue.size();
  LockMode mode = LockMode::kShared;
  for (std::size_t i = 0; i < gl.queue.size(); ++i) {
    if (gl.queue[i]->txn == txn) {
      position = i;
      mode = gl.queue[i]->mode;
      break;
    }
  }
  if (position == gl.queue.size()) return {};
  return ConflictsOf(gl, txn, mode, position);
}

bool RtLockManager::ClosesCycle(TxnId start,
                                const std::vector<TxnId>& first_hops) const {
  // Iterative DFS over the local wait-for graph.
  std::vector<TxnId> stack(first_hops.rbegin(), first_hops.rend());
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (t == start) return true;
    if (!visited.insert(t).second) continue;
    for (const TxnId next : WaitingForLocked(t)) stack.push_back(next);
  }
  return false;
}

LockOutcome RtLockManager::Acquire(TxnId txn, db::GranuleId granule,
                                   LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  ++requests_;
  if (TryGrantNow(txn, granule, mode)) return LockOutcome::kGranted;

  GranuleLock& gl = table_[granule];
  // About to wait behind every current holder and queued waiter: a local
  // cycle through this request means deadlock, and the requester dies (the
  // testbed's victim policy).
  const std::vector<TxnId> first_hops =
      ConflictsOf(gl, txn, mode, gl.queue.size());
  if (ClosesCycle(txn, first_hops)) {
    ++local_deadlocks_;
    return LockOutcome::kAborted;
  }

  ++blocks_;
  WaiterPtr waiter = std::make_shared<Waiter>();
  waiter->txn = txn;
  waiter->mode = mode;
  gl.queue.push_back(waiter);
  waiting_on_[txn] = granule;

  if (on_block) {
    // Release the table mutex around the callback: it sends probe messages
    // and charges TM/CPU resources. The wait predicate below absorbs any
    // grant or cancellation that lands meanwhile.
    lock.unlock();
    on_block(txn, first_hops);
    lock.lock();
  }
  waiter->cv.wait(lock, [&] { return waiter->decided; });
  return waiter->outcome;
}

void RtLockManager::ProcessQueue(db::GranuleId granule) {
  const auto it = table_.find(granule);
  if (it == table_.end()) return;
  GranuleLock& gl = it->second;
  while (!gl.queue.empty()) {
    const WaiterPtr& w = gl.queue.front();
    if (!CompatibleWithHolders(gl, w->txn, w->mode)) break;
    WaiterPtr granted = w;
    gl.queue.pop_front();
    Grant(granted->txn, granule, granted->mode);
    waiting_on_.erase(granted->txn);
    granted->decided = true;
    granted->outcome = LockOutcome::kGranted;
    granted->cv.notify_one();
  }
  if (gl.holders.empty() && gl.queue.empty()) table_.erase(it);
}

void RtLockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  std::vector<db::GranuleId> granules;
  granules.reserve(held_it->second.size());
  for (const auto& [granule, mode] : held_it->second) granules.push_back(granule);
  held_.erase(held_it);
  for (const db::GranuleId granule : granules) {
    GranuleLock& gl = table_[granule];
    gl.holders.erase(std::remove_if(gl.holders.begin(), gl.holders.end(),
                                    [&](const Holder& h) {
                                      return h.txn == txn;
                                    }),
                     gl.holders.end());
    ProcessQueue(granule);
  }
}

bool RtLockManager::CancelWait(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto wait_it = waiting_on_.find(txn);
  if (wait_it == waiting_on_.end()) return false;
  const db::GranuleId granule = wait_it->second;
  waiting_on_.erase(wait_it);
  GranuleLock& gl = table_[granule];
  for (auto it = gl.queue.begin(); it != gl.queue.end(); ++it) {
    if ((*it)->txn != txn) continue;
    WaiterPtr cancelled = *it;
    gl.queue.erase(it);
    cancelled->decided = true;
    cancelled->outcome = LockOutcome::kAborted;
    cancelled->cv.notify_one();
    break;
  }
  ++cancelled_waits_;
  // Removing a queued waiter can unblock compatible waiters behind it.
  ProcessQueue(granule);
  return true;
}

bool RtLockManager::IsWaiting(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_on_.count(txn) > 0;
}

std::vector<TxnId> RtLockManager::WaitingTxns() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  out.reserve(waiting_on_.size());
  for (const auto& [txn, granule] : waiting_on_) out.push_back(txn);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TxnId> RtLockManager::WaitingFor(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WaitingForLocked(txn);
}

std::size_t RtLockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

std::uint64_t RtLockManager::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

std::uint64_t RtLockManager::blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_;
}

std::uint64_t RtLockManager::local_deadlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_deadlocks_;
}

std::uint64_t RtLockManager::cancelled_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_waits_;
}

void RtLockManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = blocks_ = local_deadlocks_ = cancelled_waits_ = 0;
}

}  // namespace carat::dist
