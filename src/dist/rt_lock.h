// Blocking two-phase-locking lock manager for the distributed testbed.
//
// Thread-blocking mirror of lock::LockManager (the coroutine/virtual-time
// implementation used by the in-process testbed): shared/exclusive locks at
// granule granularity, strict FIFO wait queues, local deadlock detection by
// cycle search over the site's transaction-wait-for graph when a request
// blocks, and cancellable waits so a transaction chosen as a *global*
// deadlock victim (by a cross-site probe) resumes with kAborted. The victim
// policy is the testbed's: the requester whose wait would close the cycle
// dies.
//
// Acquire() blocks the calling thread on a per-waiter condition variable —
// in the distributed runtime every transaction leg is a real thread, so
// blocking the thread *is* the lock wait. All bookkeeping is under one
// mutex; the on_block callback is invoked with the mutex released so it may
// send probe messages and charge resources.

#ifndef CARAT_DIST_RT_LOCK_H_
#define CARAT_DIST_RT_LOCK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "lock/lock_manager.h"

namespace carat::dist {

using TxnId = std::uint64_t;

class RtLockManager {
 public:
  RtLockManager() = default;
  RtLockManager(const RtLockManager&) = delete;
  RtLockManager& operator=(const RtLockManager&) = delete;

  /// Blocks until the lock is granted or the wait is cancelled. kAborted
  /// means the requester was chosen as a local deadlock victim or cancelled
  /// by CancelWait (global victim); no lock was acquired.
  lock::LockOutcome Acquire(TxnId txn, db::GranuleId granule,
                            lock::LockMode mode);

  /// Releases every lock held by `txn` and grants eligible waiters.
  void ReleaseAll(TxnId txn);

  /// Cancels `txn`'s pending wait, resuming it with kAborted. False if it
  /// was not waiting.
  bool CancelWait(TxnId txn);

  bool IsWaiting(TxnId txn) const;

  /// Waiting transactions in ascending id order (deterministic watchdog
  /// sweeps).
  std::vector<TxnId> WaitingTxns() const;

  /// Transactions `txn` waits for: conflicting holders plus conflicting
  /// earlier waiters on its granule. Empty if not waiting.
  std::vector<TxnId> WaitingFor(TxnId txn) const;

  std::size_t HeldCount(TxnId txn) const;

  /// Invoked (mutex released) whenever a request blocks and the local cycle
  /// check found no local deadlock; launches global probes.
  std::function<void(TxnId waiter, std::vector<TxnId> holders)> on_block;

  std::uint64_t requests() const;
  std::uint64_t blocks() const;
  std::uint64_t local_deadlocks() const;
  std::uint64_t cancelled_waits() const;
  void ResetStats();

 private:
  struct Waiter {
    TxnId txn;
    lock::LockMode mode;
    bool decided = false;
    lock::LockOutcome outcome = lock::LockOutcome::kGranted;
    std::condition_variable cv;
  };
  using WaiterPtr = std::shared_ptr<Waiter>;

  struct Holder {
    TxnId txn;
    lock::LockMode mode;
  };
  struct GranuleLock {
    std::vector<Holder> holders;
    std::deque<WaiterPtr> queue;
  };

  bool CompatibleWithHolders(const GranuleLock& gl, TxnId txn,
                             lock::LockMode mode) const;
  /// Immediate-grant check including FIFO fairness and re-entrant holds;
  /// mutates the table on success.
  bool TryGrantNow(TxnId txn, db::GranuleId granule, lock::LockMode mode);
  void Grant(TxnId txn, db::GranuleId granule, lock::LockMode mode);
  /// Grants queued waiters that became eligible (strict FIFO).
  void ProcessQueue(db::GranuleId granule);
  /// Conflicting predecessors of a request: conflicting holders plus
  /// conflicting waiters among the first `queue_limit` queue entries.
  std::vector<TxnId> ConflictsOf(const GranuleLock& gl, TxnId txn,
                                 lock::LockMode mode,
                                 std::size_t queue_limit) const;
  std::vector<TxnId> WaitingForLocked(TxnId txn) const;
  /// True if the local wait-for graph would contain a cycle through `start`
  /// once `start` waits for `first_hops`.
  bool ClosesCycle(TxnId start, const std::vector<TxnId>& first_hops) const;

  mutable std::mutex mu_;
  std::unordered_map<db::GranuleId, GranuleLock> table_;
  std::unordered_map<TxnId, std::unordered_map<db::GranuleId, lock::LockMode>>
      held_;
  std::unordered_map<TxnId, db::GranuleId> waiting_on_;

  std::uint64_t requests_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t local_deadlocks_ = 0;
  std::uint64_t cancelled_waits_ = 0;
};

}  // namespace carat::dist

#endif  // CARAT_DIST_RT_LOCK_H_
