#include "rpc/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "rpc/reactor.h"

namespace carat::rpc {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Creates a bound, listening, nonblocking socket on `addr`. With
/// `reuseport`, SO_REUSEPORT is required: if the kernel refuses it,
/// `*reuseport_failed` is set so the caller can fall back to the
/// single-acceptor mode instead of reporting a hard error.
int MakeListenSocket(const sockaddr_in& addr, bool reuseport,
                     bool* reuseport_failed, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      *error = std::string("setsockopt SO_REUSEPORT: ") + std::strerror(errno);
      *reuseport_failed = true;
      ::close(fd);
      return -1;
    }
#else
    *error = "SO_REUSEPORT not available";
    *reuseport_failed = true;
    ::close(fd);
    return -1;
#endif
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  SetNonBlocking(fd);
  return fd;
}

std::uint16_t LocalPort(int fd, std::string* error) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return 0;
  }
  return ntohs(bound.sin_port);
}

}  // namespace

TcpServer::TcpServer(Options options) : options_(std::move(options)) {}

TcpServer::~TcpServer() { Shutdown(); }

bool TcpServer::Start(std::string* error) {
  if (options_.service == nullptr || options_.pool == nullptr) {
    *error = "TcpServer requires a SolverService and a ThreadPool";
    return false;
  }
  if (options_.max_inflight == 0) {
    *error = "max_inflight must be >= 1";
    return false;
  }
  if (options_.reactors == 0) {
    *error = "reactors must be >= 1";
    return false;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string host =
      options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "not a numeric IPv4 listen address: '" + options_.host + "'";
    return false;
  }

  const std::size_t n = options_.reactors;
  std::vector<int> listen_fds(n, -1);
  single_acceptor_ = options_.force_single_acceptor || n == 1;

  if (!single_acceptor_) {
    // SO_REUSEPORT sharding: every reactor binds its own socket on the
    // shared port and the kernel spreads connections across them.
    bool reuseport_failed = false;
    listen_fds[0] = MakeListenSocket(addr, /*reuseport=*/true,
                                     &reuseport_failed, error);
    if (listen_fds[0] < 0) {
      if (!reuseport_failed) return false;
      single_acceptor_ = true;  // fall back below
    } else {
      const std::uint16_t bound = LocalPort(listen_fds[0], error);
      if (bound == 0) {
        ::close(listen_fds[0]);
        return false;
      }
      addr.sin_port = htons(bound);  // siblings must join the same group
      for (std::size_t i = 1; i < n; ++i) {
        bool sibling_failed = false;
        listen_fds[i] =
            MakeListenSocket(addr, /*reuseport=*/true, &sibling_failed, error);
        if (listen_fds[i] < 0) {
          for (const int fd : listen_fds) {
            if (fd >= 0) ::close(fd);
          }
          return false;
        }
      }
      port_ = bound;
    }
  }
  if (single_acceptor_) {
    // One listen socket on reactor 0; accepted fds are handed round-robin
    // to the other reactors.
    listen_fds.assign(n, -1);
    listen_fds[0] =
        MakeListenSocket(addr, /*reuseport=*/false, nullptr, error);
    if (listen_fds[0] < 0) return false;
    port_ = LocalPort(listen_fds[0], error);
    if (port_ == 0) {
      ::close(listen_fds[0]);
      return false;
    }
  }

  reactors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(this, i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    // The reactor owns its fd from here on (its destructor closes it even
    // when Start fails before the loop thread spawns).
    if (!reactors_[i]->Start(listen_fds[i], error)) {
      listen_fds[i] = -1;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (listen_fds[j] >= 0) ::close(listen_fds[j]);
      }
      for (std::size_t j = 0; j < i; ++j) reactors_[j]->BeginDrain();
      for (std::size_t j = 0; j < i; ++j) reactors_[j]->Join();
      reactors_.clear();
      return false;
    }
    listen_fds[i] = -1;
  }

  std::lock_guard<std::mutex> lock(join_mu_);
  started_ = true;
  return true;
}

void TcpServer::Shutdown() {
  // Serialize the drain + join so concurrent Shutdown calls (signal thread
  // + destructor) are safe: the first drains and joins, the rest see the
  // threads already joined.
  std::lock_guard<std::mutex> lock(join_mu_);
  if (!started_) return;
  for (const auto& reactor : reactors_) reactor->BeginDrain();
  for (const auto& reactor : reactors_) reactor->Join();
}

ServerStats TcpServer::stats() const {
  ServerStats total;
  for (const auto& reactor : reactors_) {
    const ServerStats s = reactor->StatsSnapshot();
    total.connections_accepted += s.connections_accepted;
    total.connections_closed += s.connections_closed;
    total.active_connections += s.active_connections;
    total.requests_submitted += s.requests_submitted;
    total.requests_completed += s.requests_completed;
    total.requests_rejected += s.requests_rejected;
    total.requests_timed_out += s.requests_timed_out;
    total.parse_errors += s.parse_errors;
    total.frames_oversized += s.frames_oversized;
    total.idle_disconnects += s.idle_disconnects;
  }
  return total;
}

std::vector<ServerStats> TcpServer::ReactorStats() const {
  std::vector<ServerStats> out;
  out.reserve(reactors_.size());
  for (const auto& reactor : reactors_) {
    out.push_back(reactor->StatsSnapshot());
  }
  return out;
}

double TcpServer::LatencyPercentileMs(double percentile) const {
  LatencyHistogram merged;
  for (const auto& reactor : reactors_) reactor->MergeLatency(&merged);
  return merged.PercentileMs(percentile);
}

bool TcpServer::TryAdmit() {
  const std::size_t prev = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void TcpServer::ReleaseAdmission() {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

std::size_t TcpServer::NextHandoffTarget() {
  return next_handoff_.fetch_add(1, std::memory_order_relaxed) %
         reactors_.size();
}

std::string TcpServer::BuildStatsBody() const {
  // Touches only per-reactor leaf stats mutexes and the service mutex; the
  // service never calls back into the server, so the order is one-way.
  const ServerStats agg = stats();
  LatencyHistogram merged;
  for (const auto& reactor : reactors_) reactor->MergeLatency(&merged);
  const serve::ServiceStats service = options_.service->stats();
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "STATS accepted=%llu active=%llu submitted=%llu completed=%llu "
      "rejected=%llu timed_out=%llu parse_errors=%llu oversized=%llu "
      "idle_disconnects=%llu cache_hits=%llu coalesced=%llu solved=%llu "
      "warm_started=%llu total_iterations=%llu cache_evictions=%llu "
      "cache_expirations=%llu batched=%llu batch_blocks=%llu "
      "batch_lanes_filled=%llu batch_scalar_tail=%llu "
      "p50_ms=%.3f p99_ms=%.3f",
      static_cast<unsigned long long>(agg.connections_accepted),
      static_cast<unsigned long long>(agg.active_connections),
      static_cast<unsigned long long>(agg.requests_submitted),
      static_cast<unsigned long long>(agg.requests_completed),
      static_cast<unsigned long long>(agg.requests_rejected),
      static_cast<unsigned long long>(agg.requests_timed_out),
      static_cast<unsigned long long>(agg.parse_errors),
      static_cast<unsigned long long>(agg.frames_oversized),
      static_cast<unsigned long long>(agg.idle_disconnects),
      static_cast<unsigned long long>(service.cache_hits),
      static_cast<unsigned long long>(service.coalesced),
      static_cast<unsigned long long>(service.solved),
      static_cast<unsigned long long>(service.warm_started),
      static_cast<unsigned long long>(service.total_iterations),
      static_cast<unsigned long long>(service.cache_evictions),
      static_cast<unsigned long long>(service.cache_expirations),
      static_cast<unsigned long long>(service.batched),
      static_cast<unsigned long long>(service.batch_blocks),
      static_cast<unsigned long long>(service.batch_lanes_filled),
      static_cast<unsigned long long>(service.batch_scalar_tail),
      merged.PercentileMs(50.0), merged.PercentileMs(99.0));
  std::string out = buf;
  out += " reactors=" + std::to_string(reactors_.size());
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    const ServerStats s = reactors_[i]->StatsSnapshot();
    char part[160];
    std::snprintf(part, sizeof(part),
                  " r%zu_active=%llu r%zu_submitted=%llu r%zu_completed=%llu",
                  i, static_cast<unsigned long long>(s.active_connections), i,
                  static_cast<unsigned long long>(s.requests_submitted), i,
                  static_cast<unsigned long long>(s.requests_completed));
    out += part;
  }
  return out;
}

}  // namespace carat::rpc
