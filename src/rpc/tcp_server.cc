#include "rpc/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

namespace carat::rpc {

namespace {

using Clock = std::chrono::steady_clock;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Longest accepted request id; a longer token is answered under the
/// unattributable id "?" (the line itself is already length-bounded).
constexpr std::size_t kMaxIdBytes = 64;

}  // namespace

TcpServer::TcpServer(Options options) : options_(std::move(options)) {}

TcpServer::~TcpServer() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

bool TcpServer::Start(std::string* error) {
  if (options_.service == nullptr || options_.pool == nullptr) {
    *error = "TcpServer requires a SolverService and a ThreadPool";
    return false;
  }
  if (options_.max_inflight == 0) {
    *error = "max_inflight must be >= 1";
    return false;
  }
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  SetNonBlocking(wake_rd_);
  SetNonBlocking(wake_wr_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string host =
      options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "not a numeric IPv4 listen address: '" + options_.host + "'";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = std::string("bind ") + host + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);

  started_ = true;
  loop_ = std::thread(&TcpServer::Loop, this);
  return true;
}

void TcpServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    draining_ = true;
  }
  Wake();
  // Serialize the join so concurrent Shutdown calls (signal thread +
  // destructor) are safe: the first joins, the rest see joinable() false.
  std::lock_guard<std::mutex> lock(join_mu_);
  if (loop_.joinable()) loop_.join();
}

ServerStats TcpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats snapshot = stats_;
  snapshot.active_connections = conns_.size();
  return snapshot;
}

double TcpServer::LatencyPercentileMs(double percentile) const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_.PercentileMs(percentile);
}

void TcpServer::Wake() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  // EAGAIN means the pipe already holds unread wake bytes: good enough.
}

void TcpServer::Loop() {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> ids;
  for (;;) {
    pfds.clear();
    ids.clear();
    bool polled_listen = false;
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) {
        if (listen_fd_ >= 0) {
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        bool flushed = inflight_total_ == 0;
        for (const auto& [id, conn] : conns_) {
          if (conn->out_pos < conn->out.size()) flushed = false;
        }
        if (flushed) {
          for (const auto& [id, conn] : conns_) {
            ::close(conn->fd);
            ++stats_.connections_closed;
          }
          conns_.clear();
          break;
        }
        timeout_ms = 100;  // belt and braces; completions also Wake()
      }
      pfds.push_back({wake_rd_, POLLIN, 0});
      if (!draining_ && listen_fd_ >= 0) {
        pfds.push_back({listen_fd_, POLLIN, 0});
        polled_listen = true;
      }
      const Clock::time_point now = Clock::now();
      for (const auto& [id, conn] : conns_) {
        short events = 0;
        if (!draining_ && !conn->read_closed &&
            conn->in.size() <= options_.max_line_bytes) {
          events |= POLLIN;
        }
        if (conn->out_pos < conn->out.size()) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
        ids.push_back(id);
        if (options_.idle_timeout_ms > 0 && conn->inflight == 0) {
          const auto deadline =
              conn->last_active +
              std::chrono::milliseconds(options_.idle_timeout_ms);
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count();
          const int rem_ms =
              static_cast<int>(std::clamp<long long>(remaining, 0, 60'000));
          timeout_ms = timeout_ms < 0 ? rem_ms : std::min(timeout_ms, rem_ms);
        }
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) break;

    std::lock_guard<std::mutex> lock(mu_);
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (polled_listen && (pfds[1].revents & POLLIN) && !draining_) {
      AcceptReady();
    }
    const std::size_t base = polled_listen ? 2 : 1;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t id = ids[i];
      if (conns_.find(id) == conns_.end()) continue;
      const short re = pfds[base + i].revents;
      if (re & (POLLERR | POLLNVAL)) {
        CloseConn(id);
        continue;
      }
      if (re & POLLIN) ReadReady(id);
    }
    // Opportunistic flush + close/idle sweep over every connection: workers
    // may have appended output to connections poll() reported nothing for.
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> sweep;
    sweep.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) sweep.push_back(id);
    for (const std::uint64_t id : sweep) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (conn->out_pos < conn->out.size() && !FlushConn(conn)) {
        CloseConn(id);
        continue;
      }
      const bool flushed = conn->out_pos >= conn->out.size();
      if ((conn->read_closed || conn->close_after_flush) &&
          conn->inflight == 0 && flushed) {
        CloseConn(id);
        continue;
      }
      if (options_.idle_timeout_ms > 0 && conn->inflight == 0 && flushed &&
          now - conn->last_active >=
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        ++stats_.idle_disconnects;
        CloseConn(id);
      }
    }
  }
  // Normally a no-op (the drain path closes everything); covers the
  // poll-failure exit so no descriptor outlives the loop.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, conn] : conns_) {
    ::close(conn->fd);
    ++stats_.connections_closed;
  }
  conns_.clear();
}

void TcpServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: nothing to accept
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_active = Clock::now();
    conns_.emplace(next_conn_id_++, std::move(conn));
    ++stats_.connections_accepted;
  }
}

void TcpServer::ReadReady(std::uint64_t conn_id) {
  Conn* conn = conns_.at(conn_id).get();
  char buf[4096];
  bool saw_eof = false;
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      conn->last_active = Clock::now();
      if (conn->in.size() > options_.max_line_bytes + 1 &&
          conn->in.find('\n') == std::string::npos) {
        break;  // oversized frame; handled below without reading more
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      // drained for now
    } else {
      CloseConn(conn_id);
      return;
    }
    break;
  }

  // Split complete lines out of the input buffer and handle each.
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (line.size() > options_.max_line_bytes) {
      ++stats_.frames_oversized;
      Respond(conn_id, "? ERROR line exceeds " +
                           std::to_string(options_.max_line_bytes) +
                           " bytes");
      conn->read_closed = true;
      conn->close_after_flush = true;
      break;
    }
    HandleLine(conn_id, std::move(line));
    if (conns_.find(conn_id) == conns_.end()) return;  // closed underneath
    if (conn->read_closed) break;
  }
  conn->in.erase(0, start);

  // A partial line that can no longer fit is an oversized frame: reject it
  // and close (flushing first), instead of buffering without bound.
  if (!conn->read_closed && conn->in.size() > options_.max_line_bytes) {
    ++stats_.frames_oversized;
    Respond(conn_id, "? ERROR line exceeds " +
                         std::to_string(options_.max_line_bytes) + " bytes");
    conn->in.clear();
    conn->read_closed = true;
    conn->close_after_flush = true;
  }
  if (saw_eof) {
    // Torn frame: whatever partial line remains is discarded. The
    // connection stays up until in-flight responses have been flushed.
    conn->in.clear();
    conn->read_closed = true;
  }
}

bool TcpServer::FlushConn(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<std::size_t>(n);
      conn->last_active = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return true;  // kernel buffer full; POLLOUT will resume
    }
    return false;  // broken pipe or a hard error
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  }
  return true;
}

void TcpServer::CloseConn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  ++stats_.connections_closed;
  // In-flight solves for this connection keep running; their responses are
  // dropped in PostResponse when the id no longer resolves.
}

void TcpServer::Respond(std::uint64_t conn_id, const std::string& line) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second->out += line;
  it->second->out += '\n';
  it->second->last_active = Clock::now();
}

void TcpServer::HandleLine(std::uint64_t conn_id, std::string line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(std::move(tok));
  if (tokens.empty() || tokens[0][0] == '#') return;  // blank or comment

  const std::string& id = tokens[0];
  if (id.size() > kMaxIdBytes) {
    ++stats_.parse_errors;
    Respond(conn_id, "? ERROR request id exceeds " +
                         std::to_string(kMaxIdBytes) + " bytes");
    return;
  }
  if (tokens.size() == 1) {
    ++stats_.parse_errors;
    Respond(conn_id, id + " ERROR empty request");
    return;
  }
  if (tokens[1] == "STATS") {
    Respond(conn_id, BuildStatsLine(id));
    return;
  }

  // Extract the protocol-level deadline_ms field; the rest of the tokens
  // are the query in the serve::ParseQuery grammar.
  double deadline_ms = 0.0;
  std::string body;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].rfind("deadline_ms=", 0) == 0) {
      const char* value = tokens[i].c_str() + sizeof("deadline_ms=") - 1;
      char* end = nullptr;
      deadline_ms = std::strtod(value, &end);
      if (*value == '\0' || *end != '\0' || deadline_ms < 0) {
        ++stats_.parse_errors;
        Respond(conn_id, id + " ERROR bad value in '" + tokens[i] + "'");
        return;
      }
      continue;
    }
    if (!body.empty()) body += ' ';
    body += tokens[i];
  }

  serve::Query query;
  model::ModelInput input;
  std::string error;
  if (!serve::ParseQuery(body, &query, &input, &error)) {
    ++stats_.parse_errors;
    Respond(conn_id, id + " ERROR " + error);
    return;
  }

  if (inflight_total_ >= options_.max_inflight) {
    ++stats_.requests_rejected;
    Respond(conn_id, id + " BUSY");
    return;
  }
  ++inflight_total_;
  ++conns_.at(conn_id)->inflight;
  ++stats_.requests_submitted;

  const Clock::time_point enqueued = Clock::now();
  const bool has_deadline = deadline_ms > 0.0;
  const Clock::time_point deadline =
      has_deadline
          ? enqueued + std::chrono::microseconds(
                           static_cast<long long>(deadline_ms * 1000.0))
          : Clock::time_point();
  const std::optional<bool> exact = query.use_exact_mva;

  options_.pool->Submit([this, conn_id, id, query = std::move(query),
                         input = std::move(input), enqueued, has_deadline,
                         deadline, exact]() mutable {
    // An expired request is answered without occupying this worker for a
    // solve; the check runs at dispatch, after any time spent queued.
    if (has_deadline && Clock::now() >= deadline) {
      PostResponse(conn_id, id + " TIMEOUT", enqueued, /*timed_out=*/true);
      return;
    }
    model::ModelSolution solution;
    try {
      if (exact.has_value()) {
        model::SolverOptions solver = options_.service->options().solver;
        solver.use_exact_mva = *exact;
        solution = options_.service->SolveSync(std::move(input), &solver);
      } else {
        solution = options_.service->SolveSync(std::move(input));
      }
    } catch (const std::exception& e) {
      solution = model::ModelSolution{};
      solution.ok = false;
      solution.error = e.what();
    } catch (...) {
      solution = model::ModelSolution{};
      solution.ok = false;
      solution.error = "unknown solver failure";
    }
    if (has_deadline && Clock::now() > deadline) {
      // Solved, but past its deadline: the answer the client contracted for
      // no longer exists. The solution stays cached for future queries.
      PostResponse(conn_id, id + " TIMEOUT", enqueued, /*timed_out=*/true);
      return;
    }
    PostResponse(conn_id, id + " " + serve::FormatResult(query, solution),
                 enqueued, /*timed_out=*/false);
  });
}

void TcpServer::PostResponse(std::uint64_t conn_id, const std::string& line,
                             Clock::time_point enqueued, bool timed_out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (timed_out) {
      ++stats_.requests_timed_out;
    } else {
      ++stats_.requests_completed;
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - enqueued);
      latency_.Record(static_cast<std::uint64_t>(micros.count()));
    }
    --inflight_total_;
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) {
      Conn* conn = it->second.get();
      --conn->inflight;
      conn->out += line;
      conn->out += '\n';
    }
  }
  Wake();
}

std::string TcpServer::BuildStatsLine(const std::string& id) {
  // Called with mu_ held; the service has its own mutex and never calls
  // back into the server, so the service -> server lock order is one-way.
  const serve::ServiceStats service = options_.service->stats();
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "%s STATS accepted=%llu active=%zu submitted=%llu completed=%llu "
      "rejected=%llu timed_out=%llu parse_errors=%llu oversized=%llu "
      "idle_disconnects=%llu cache_hits=%llu coalesced=%llu solved=%llu "
      "warm_started=%llu total_iterations=%llu cache_evictions=%llu "
      "cache_expirations=%llu p50_ms=%.3f p99_ms=%.3f",
      id.c_str(), static_cast<unsigned long long>(stats_.connections_accepted),
      conns_.size(),
      static_cast<unsigned long long>(stats_.requests_submitted),
      static_cast<unsigned long long>(stats_.requests_completed),
      static_cast<unsigned long long>(stats_.requests_rejected),
      static_cast<unsigned long long>(stats_.requests_timed_out),
      static_cast<unsigned long long>(stats_.parse_errors),
      static_cast<unsigned long long>(stats_.frames_oversized),
      static_cast<unsigned long long>(stats_.idle_disconnects),
      static_cast<unsigned long long>(service.cache_hits),
      static_cast<unsigned long long>(service.coalesced),
      static_cast<unsigned long long>(service.solved),
      static_cast<unsigned long long>(service.warm_started),
      static_cast<unsigned long long>(service.total_iterations),
      static_cast<unsigned long long>(service.cache_evictions),
      static_cast<unsigned long long>(service.cache_expirations),
      latency_.PercentileMs(50.0), latency_.PercentileMs(99.0));
  return buf;
}

}  // namespace carat::rpc
