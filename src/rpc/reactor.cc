#include "rpc/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

namespace carat::rpc {

namespace {

// epoll_event.data.u64 tags; connection ids start at 2.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

/// Longest accepted request id; a longer token is answered under the
/// unattributable id "?" (the frame itself is already length-bounded).
constexpr std::size_t kMaxIdBytes = 64;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Reactor::Reactor(TcpServer* server, std::size_t index)
    : server_(server), index_(index) {}

Reactor::~Reactor() {
  Join();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Reactor::Start(int listen_fd, std::string* error) {
  listen_fd_ = listen_fd;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    *error = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    *error = std::string("eventfd: ") + std::strerror(errno);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    *error = std::string("epoll_ctl wake: ") + std::strerror(errno);
    return false;
  }
  if (listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      *error = std::string("epoll_ctl listen: ") + std::strerror(errno);
      return false;
    }
  }
  loop_ = std::thread(&Reactor::Loop, this);
  return true;
}

void Reactor::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  Wake();
}

void Reactor::Join() {
  if (loop_.joinable()) loop_.join();
}

void Reactor::Adopt(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_.load(std::memory_order_relaxed)) {
      adopted_.push_back(fd);
      fd = -1;
    }
  }
  if (fd >= 0) {
    ::close(fd);  // draining: no new connections
    return;
  }
  Wake();
}

ServerStats Reactor::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Reactor::MergeLatency(LatencyHistogram* into) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  into->Merge(latency_);
}

void Reactor::Wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  // EAGAIN means the counter is already nonzero: the loop will wake.
}

void Reactor::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int idle_timeout_ms = server_->options().idle_timeout_ms;
  for (;;) {
    int timeout_ms = -1;
    bool exit_loop = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_.load(std::memory_order_acquire)) {
        if (listen_fd_ >= 0) {
          ::close(listen_fd_);  // closing deregisters it from epoll
          listen_fd_ = -1;
        }
        for (const int fd : adopted_) ::close(fd);
        adopted_.clear();
        // Exit once every response has been flushed. The global in-flight
        // count (not just this reactor's) must reach zero first: a pool
        // worker holds a reactor's mutex while posting, so observing zero
        // under the mutex proves no worker will touch this reactor again.
        bool flushed =
            server_->inflight_.load(std::memory_order_acquire) == 0;
        for (const auto& [id, conn] : conns_) {
          if (conn->inflight != 0 || conn->out_pos < conn->out.size()) {
            flushed = false;
          }
          UpdateInterest(id, conn.get());  // drops read interest
        }
        if (flushed) {
          std::lock_guard<std::mutex> slock(stats_mu_);
          for (const auto& [id, conn] : conns_) {
            ::close(conn->fd);
            ++stats_.connections_closed;
          }
          stats_.active_connections = 0;
          conns_.clear();
          exit_loop = true;
        }
        timeout_ms = 100;  // belt and braces; completions also Wake()
      } else if (idle_timeout_ms > 0) {
        const Clock::time_point now = Clock::now();
        for (const auto& [id, conn] : conns_) {
          if (conn->inflight != 0) continue;
          const auto deadline =
              conn->last_active + std::chrono::milliseconds(idle_timeout_ms);
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count();
          const int rem_ms =
              static_cast<int>(std::clamp<long long>(remaining, 0, 60'000));
          timeout_ms = timeout_ms < 0 ? rem_ms : std::min(timeout_ms, rem_ms);
        }
      }
    }
    if (exit_loop) break;

    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    std::lock_guard<std::mutex> lock(mu_);
    const bool draining = draining_.load(std::memory_order_acquire);
    for (int i = 0; i < ready; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t re = events[i].events;
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t n =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (tag == kListenTag) {
        if (!draining && listen_fd_ >= 0) AcceptReady();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      if (re & (EPOLLERR)) {
        CloseConn(tag);
        continue;
      }
      if ((re & EPOLLIN) && !draining) {
        ReadReady(tag);
        it = conns_.find(tag);
        if (it == conns_.end()) continue;
      }
      if (re & EPOLLHUP) {
        // The peer closed both directions: responses are undeliverable, so
        // once reads have drained (or during a drain) drop the connection
        // instead of spinning on the level-triggered HUP.
        if (it->second->read_closed || draining) {
          CloseConn(tag);
          continue;
        }
      }
      if (re & EPOLLOUT) MarkDirty(tag, it->second.get());
    }

    // Connections handed off by the accepting reactor (fallback mode).
    if (!adopted_.empty()) {
      std::vector<int> adopted;
      adopted.swap(adopted_);
      for (const int fd : adopted) {
        if (draining) {
          ::close(fd);
        } else {
          AddConn(fd);
        }
      }
    }

    // Settle connections with fresh output (worker posts, EPOLLOUT) or
    // fresh close conditions: flush, then close or re-arm interest.
    while (!dirty_.empty()) {
      std::vector<std::uint64_t> dirty;
      dirty.swap(dirty_);
      for (const std::uint64_t id : dirty) SettleConn(id);
    }

    if (!draining && idle_timeout_ms > 0) {
      const Clock::time_point now = Clock::now();
      std::vector<std::uint64_t> sweep;
      sweep.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) sweep.push_back(id);
      for (const std::uint64_t id : sweep) {
        const auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        if (conn->inflight == 0 && conn->out_pos >= conn->out.size() &&
            now - conn->last_active >=
                std::chrono::milliseconds(idle_timeout_ms)) {
          {
            std::lock_guard<std::mutex> slock(stats_mu_);
            ++stats_.idle_disconnects;
          }
          CloseConn(id);
        }
      }
    }
  }
  // Normally a no-op (the drain path closes everything); covers the
  // epoll-failure exit so no descriptor outlives the loop.
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    for (const auto& [id, conn] : conns_) {
      ::close(conn->fd);
      ++stats_.connections_closed;
    }
    stats_.active_connections = 0;
  }
  conns_.clear();
  for (const int fd : adopted_) ::close(fd);
  adopted_.clear();
}

void Reactor::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: nothing to accept
    if (server_->single_acceptor_) {
      const std::size_t target = server_->NextHandoffTarget();
      if (target != index_) {
        // One-directional lock edge: only the accepting reactor ever takes
        // another reactor's mutex, so the order stays acyclic.
        server_->reactors_[target]->Adopt(fd);
        continue;
      }
    }
    AddConn(fd);
  }
}

void Reactor::AddConn(int fd) {
  SetNonBlocking(fd);
  SetNoDelay(fd);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->last_active = Clock::now();
  conn->events = EPOLLIN;
  const std::uint64_t id = next_conn_id_++;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  conns_.emplace(id, std::move(conn));
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.connections_accepted;
  ++stats_.active_connections;
}

void Reactor::ReadReady(std::uint64_t conn_id) {
  Conn* conn = conns_.at(conn_id).get();
  char buf[4096];
  bool saw_eof = false;
  const std::size_t max_body = server_->options().max_line_bytes;
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
      conn->last_active = Clock::now();
      // Decode (or reject) before buffering further; level-triggered epoll
      // re-reports whatever remains in the socket.
      if (conn->in.size() > max_body + 16) break;
      continue;
    }
    if (n == 0) {
      saw_eof = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      // drained for now
    } else {
      CloseConn(conn_id);
      return;
    }
    break;
  }

  // Framing negotiation: the connection's first byte selects binary (0x00)
  // or text (anything else; no text id may begin with a NUL).
  if (!conn->negotiated && !conn->in.empty()) {
    if (conn->in[0] == kBinaryFramingByte) {
      if (server_->options().enable_binary_framing) {
        conn->framing = Framing::Create(FramingKind::kBinary);
        conn->in.erase(0, 1);
        conn->negotiated = true;
      } else {
        conn->framing = Framing::Create(FramingKind::kText);
        conn->negotiated = true;
        {
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.parse_errors;
        }
        Respond(conn_id, "?", "ERROR binary framing disabled");
        conn->in.clear();
        conn->read_closed = true;
        conn->close_after_flush = true;
      }
    } else {
      conn->framing = Framing::Create(FramingKind::kText);
      conn->negotiated = true;
    }
  }

  if (conn->negotiated && !conn->read_closed) {
    std::vector<Framing::Message> messages;
    std::string decode_error;
    const bool decoded =
        conn->framing->Decode(&conn->in, max_body, &messages, &decode_error);
    for (Framing::Message& message : messages) {
      HandleMessage(conn_id, std::move(message));
      if (conns_.find(conn_id) == conns_.end()) return;  // closed underneath
      if (conn->read_closed) break;
    }
    if (!decoded && !conn->read_closed) {
      FrameError(conn_id, conn, decode_error);
    }
  }

  if (saw_eof) {
    // Torn frame: whatever partial frame remains is discarded. The
    // connection stays up until in-flight responses have been flushed.
    conn->in.clear();
    conn->read_closed = true;
  }
  MarkDirty(conn_id, conn);
}

void Reactor::FrameError(std::uint64_t conn_id, Conn* conn,
                         const std::string& error) {
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.frames_oversized;
  }
  Respond(conn_id, "?", "ERROR " + error);
  conn->in.clear();
  conn->read_closed = true;
  conn->close_after_flush = true;
}

bool Reactor::FlushConn(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<std::size_t>(n);
      conn->last_active = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return true;  // kernel buffer full; EPOLLOUT will resume
    }
    return false;  // broken pipe or a hard error
  }
  conn->out.clear();
  conn->out_pos = 0;
  return true;
}

void Reactor::CloseConn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);  // closing deregisters the fd from epoll
  conns_.erase(it);
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.connections_closed;
  --stats_.active_connections;
  // In-flight solves for this connection keep running; their responses are
  // dropped in PostResponse when the id no longer resolves.
}

void Reactor::SettleConn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  conn->dirty = false;
  if (conn->out_pos < conn->out.size() && !FlushConn(conn)) {
    CloseConn(conn_id);
    return;
  }
  const bool flushed = conn->out_pos >= conn->out.size();
  if ((conn->read_closed || conn->close_after_flush) && conn->inflight == 0 &&
      flushed) {
    CloseConn(conn_id);
    return;
  }
  UpdateInterest(conn_id, conn);
}

void Reactor::UpdateInterest(std::uint64_t conn_id, Conn* conn) {
  std::uint32_t want = 0;
  if (!draining_.load(std::memory_order_relaxed) && !conn->read_closed) {
    want |= EPOLLIN;
  }
  if (conn->out_pos < conn->out.size()) want |= EPOLLOUT;
  if (want == conn->events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->events = want;
}

void Reactor::MarkDirty(std::uint64_t conn_id, Conn* conn) {
  if (conn->dirty) return;
  conn->dirty = true;
  dirty_.push_back(conn_id);
}

void Reactor::Respond(std::uint64_t conn_id, const std::string& id,
                      const std::string& body) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  conn->framing->Encode(id, body, &conn->out);
  conn->last_active = Clock::now();
  MarkDirty(conn_id, conn);
}

void Reactor::HandleMessage(std::uint64_t conn_id, Framing::Message message) {
  Conn* conn = conns_.at(conn_id).get();
  const std::string id = std::move(message.id);
  if (id.size() > kMaxIdBytes) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.parse_errors;
    }
    Respond(conn_id, "?", "ERROR request id exceeds " +
                              std::to_string(kMaxIdBytes) + " bytes");
    return;
  }
  std::istringstream in(message.body);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(std::move(tok));
  if (tokens.empty()) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.parse_errors;
    }
    Respond(conn_id, id, "ERROR empty request");
    return;
  }
  if (tokens[0] == "STATS") {
    Respond(conn_id, id, server_->BuildStatsBody());
    return;
  }

  // Extract the protocol-level deadline_ms field; the rest of the tokens
  // are the query in the serve::ParseQuery grammar.
  double deadline_ms = 0.0;
  std::string body;
  for (const std::string& token : tokens) {
    if (token.rfind("deadline_ms=", 0) == 0) {
      const char* value = token.c_str() + sizeof("deadline_ms=") - 1;
      char* end = nullptr;
      deadline_ms = std::strtod(value, &end);
      if (*value == '\0' || *end != '\0' || deadline_ms < 0) {
        {
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.parse_errors;
        }
        Respond(conn_id, id, "ERROR bad value in '" + token + "'");
        return;
      }
      continue;
    }
    if (!body.empty()) body += ' ';
    body += token;
  }

  serve::Query query;
  model::ModelInput input;
  std::string error;
  if (!serve::ParseQuery(body, &query, &input, &error)) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.parse_errors;
    }
    Respond(conn_id, id, "ERROR " + error);
    return;
  }

  if (!server_->TryAdmit()) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.requests_rejected;
    }
    Respond(conn_id, id, "BUSY");
    return;
  }
  ++conn->inflight;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.requests_submitted;
  }

  const Clock::time_point enqueued = Clock::now();
  const bool has_deadline = deadline_ms > 0.0;
  const Clock::time_point deadline =
      has_deadline
          ? enqueued + std::chrono::microseconds(
                           static_cast<long long>(deadline_ms * 1000.0))
          : Clock::time_point();
  const std::optional<bool> exact = query.use_exact_mva;
  serve::SolverService* service = server_->options().service;

  server_->options().pool->Submit([this, conn_id, id, query = std::move(query),
                                   input = std::move(input), enqueued,
                                   has_deadline, deadline, exact,
                                   service]() mutable {
    // An expired request is answered without occupying this worker for a
    // solve; the check runs at dispatch, after any time spent queued.
    if (has_deadline && Clock::now() >= deadline) {
      PostResponse(conn_id, id, "TIMEOUT", enqueued, /*timed_out=*/true);
      return;
    }
    model::ModelSolution solution;
    try {
      if (exact.has_value()) {
        model::SolverOptions solver = service->options().solver;
        solver.use_exact_mva = *exact;
        solution = service->SolveSync(std::move(input), &solver);
      } else {
        solution = service->SolveSync(std::move(input));
      }
    } catch (const std::exception& e) {
      solution = model::ModelSolution{};
      solution.ok = false;
      solution.error = e.what();
    } catch (...) {
      solution = model::ModelSolution{};
      solution.ok = false;
      solution.error = "unknown solver failure";
    }
    if (has_deadline && Clock::now() > deadline) {
      // Solved, but past its deadline: the answer the client contracted for
      // no longer exists. The solution stays cached for future queries.
      PostResponse(conn_id, id, "TIMEOUT", enqueued, /*timed_out=*/true);
      return;
    }
    PostResponse(conn_id, id, serve::FormatResult(query, solution), enqueued,
                 /*timed_out=*/false);
  });
}

void Reactor::PostResponse(std::uint64_t conn_id, const std::string& id,
                           const std::string& body, Clock::time_point enqueued,
                           bool timed_out) {
  // The whole body runs under mu_, Wake() included: a drain observing the
  // global in-flight count at zero under mu_ is therefore guaranteed no
  // worker will touch this reactor afterwards.
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    if (timed_out) {
      ++stats_.requests_timed_out;
    } else {
      ++stats_.requests_completed;
      const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - enqueued);
      latency_.Record(static_cast<std::uint64_t>(micros.count()));
    }
  }
  const auto it = conns_.find(conn_id);
  if (it != conns_.end()) {
    Conn* conn = it->second.get();
    --conn->inflight;
    conn->framing->Encode(id, body, &conn->out);
    MarkDirty(conn_id, conn);
  }
  server_->ReleaseAdmission();
  Wake();
}

}  // namespace carat::rpc
