// One event-loop shard of rpc::TcpServer: a thread owning a private epoll
// instance, a wake eventfd, and the connections assigned to it. N reactors
// share the listen port via SO_REUSEPORT (each holds its own listen fd), or
// — when that is unavailable — reactor 0 accepts and hands descriptors
// round-robin to the others through Adopt(). A connection lives its whole
// life on one reactor; solver work still fans out to the shared
// exec::ThreadPool, whose workers post responses back to the owning
// reactor.
//
// Locking (kept cycle-free across reactors):
//   mu_        guards the connection table, adopted-fd queue and dirty
//              list. Held by this reactor's thread, by pool workers posting
//              responses, and briefly by reactor 0 when handing off an
//              accepted fd (a one-directional edge: only the acceptor locks
//              another reactor's mu_).
//   stats_mu_  leaf mutex guarding the counters and latency histogram.
//              Never held while acquiring anything else, so any thread —
//              including another reactor building an aggregated STATS
//              response while holding its own mu_ — may snapshot it.

#ifndef CARAT_RPC_REACTOR_H_
#define CARAT_RPC_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpc/framing.h"
#include "rpc/latency_histogram.h"
#include "rpc/tcp_server.h"

namespace carat::rpc {

class Reactor {
 public:
  Reactor(TcpServer* server, std::size_t index);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Takes ownership of `listen_fd` (-1 when this reactor only receives
  /// handed-off connections) and spawns the loop thread.
  bool Start(int listen_fd, std::string* error);

  /// Signals the drain: stop accepting and reading, finish admitted
  /// requests, flush, close. Returns immediately; Join() waits.
  void BeginDrain();

  /// Joins the loop thread if running. Callers serialize via the server.
  void Join();

  /// Hands an accepted descriptor to this reactor (the single-acceptor
  /// fallback). Takes ownership of `fd`; closes it when draining.
  void Adopt(int fd);

  /// Counter snapshot (leaf mutex only; safe from any thread).
  ServerStats StatsSnapshot() const;

  /// Adds this reactor's latency observations into `*into`.
  void MergeLatency(LatencyHistogram* into) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    std::unique_ptr<Framing> framing;  ///< set once negotiated
    bool negotiated = false;
    std::string in;           ///< bytes read, not yet decoded into frames
    std::string out;          ///< response bytes not yet written
    std::size_t out_pos = 0;  ///< written prefix of `out`
    std::uint32_t events = 0; ///< current epoll interest mask
    std::size_t inflight = 0;
    bool read_closed = false;  ///< EOF seen or frame error: no more reads
    bool close_after_flush = false;
    bool dirty = false;  ///< queued in dirty_ for a flush/close sweep
    Clock::time_point last_active;
  };

  void Loop();
  void AcceptReady();
  void AddConn(int fd);
  void ReadReady(std::uint64_t conn_id);
  bool FlushConn(Conn* conn);  ///< false when the connection broke
  void CloseConn(std::uint64_t conn_id);
  /// Flushes pending output and closes the connection if it is finished
  /// (read side closed, nothing in flight, everything flushed); otherwise
  /// refreshes the epoll interest mask.
  void SettleConn(std::uint64_t conn_id);
  void UpdateInterest(std::uint64_t conn_id, Conn* conn);
  void MarkDirty(std::uint64_t conn_id, Conn* conn);
  void HandleMessage(std::uint64_t conn_id, Framing::Message message);
  void FrameError(std::uint64_t conn_id, Conn* conn, const std::string& error);
  void Respond(std::uint64_t conn_id, const std::string& id,
               const std::string& body);
  void PostResponse(std::uint64_t conn_id, const std::string& id,
                    const std::string& body, Clock::time_point enqueued,
                    bool timed_out);
  void Wake();

  TcpServer* const server_;
  const std::size_t index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::thread loop_;
  std::atomic<bool> draining_{false};

  std::mutex mu_;
  std::uint64_t next_conn_id_ = 2;  ///< 0 = listen tag, 1 = wake tag
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<int> adopted_;          ///< handed-off fds awaiting AddConn
  std::vector<std::uint64_t> dirty_;  ///< conns with new output to settle

  mutable std::mutex stats_mu_;  ///< leaf: counters + histogram only
  ServerStats stats_;
  LatencyHistogram latency_;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_REACTOR_H_
