#include "rpc/latency_histogram.h"

#include <bit>
#include <cmath>

namespace carat::rpc {

namespace {

// Bucket index for a microsecond value: identity below 8, then
// (major, sub) where major = floor(log2(v)) and sub is the next 3 bits.
std::size_t BucketIndex(std::uint64_t micros) {
  if (micros < 8) return static_cast<std::size_t>(micros);
  const int major = std::bit_width(micros) - 1;  // >= 3
  const std::size_t sub =
      static_cast<std::size_t>((micros >> (major - 3)) & 0x7);
  const std::size_t index =
      8 + static_cast<std::size_t>(major - 3) * 8 + sub;
  return index < LatencyHistogram::kNumBuckets
             ? index
             : LatencyHistogram::kNumBuckets - 1;
}

// Inclusive upper edge (µs) of the values mapping to `index`.
std::uint64_t BucketUpperMicros(std::size_t index) {
  if (index < 8) return static_cast<std::uint64_t>(index);
  const int major = 3 + static_cast<int>((index - 8) / 8);
  const std::uint64_t sub = (index - 8) % 8;
  const std::uint64_t width = std::uint64_t{1} << (major - 3);
  return (std::uint64_t{1} << major) + (sub + 1) * width - 1;
}

// Inclusive lower edge (µs); equals the upper edge for the exact buckets.
std::uint64_t BucketLowerMicros(std::size_t index) {
  if (index < 8) return static_cast<std::uint64_t>(index);
  const int major = 3 + static_cast<int>((index - 8) / 8);
  const std::uint64_t sub = (index - 8) % 8;
  const std::uint64_t width = std::uint64_t{1} << (major - 3);
  return (std::uint64_t{1} << major) + sub * width;
}

// Every value at or above this clamps into the last bucket.
constexpr std::uint64_t kMaxTrackedMicros = (std::uint64_t{1} << 31) - 1;

}  // namespace

void LatencyHistogram::Record(std::uint64_t micros) {
  if (micros > kMaxTrackedMicros) ++overflow_;
  ++counts_[BucketIndex(micros)];
  ++total_;
}

double LatencyHistogram::PercentileMs(double percentile) const {
  if (total_ == 0) return 0.0;
  if (percentile < 0.0) percentile = 0.0;
  if (percentile > 100.0) percentile = 100.0;
  // Rank of the target observation, 1-based; p=0 maps to the first.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(total_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= rank) {
      // Interpolate the rank's position within this bucket (midpoint
      // convention): observation `k` of `c` sits at fraction (k - 0.5) / c
      // of the bucket span, so a constant stream reports ~its true value
      // instead of the bucket's inclusive upper edge.
      const double lower = static_cast<double>(BucketLowerMicros(i));
      const double upper = static_cast<double>(BucketUpperMicros(i));
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) /
          static_cast<double>(counts_[i]);
      return (lower + (upper - lower) * frac) / 1000.0;
    }
    seen += counts_[i];
  }
  return static_cast<double>(BucketUpperMicros(kNumBuckets - 1)) / 1000.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  overflow_ += other.overflow_;
}

void LatencyHistogram::Clear() {
  for (std::uint64_t& c : counts_) c = 0;
  total_ = 0;
  overflow_ = 0;
}

}  // namespace carat::rpc
