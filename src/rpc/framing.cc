#include "rpc/framing.h"

#include <cstdint>
#include <cstring>

namespace carat::rpc {

namespace {

// Binary frames are always little-endian on the wire, independent of the
// host (the serialization is explicit byte shifts, so big-endian hosts
// produce the same bytes).
std::uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t LoadU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | reinterpret_cast<const unsigned char*>(p)[i];
  }
  return v;
}

void AppendU32(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class TextFraming final : public Framing {
 public:
  bool Decode(std::string* buf, std::size_t max_body_bytes,
              std::vector<Message>* out, std::string* error) override {
    std::size_t start = 0;
    bool ok = true;
    for (;;) {
      const std::size_t nl = buf->find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buf->substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (line.size() > max_body_bytes) {
        *error = "line exceeds " + std::to_string(max_body_bytes) + " bytes";
        ok = false;
        break;
      }
      // Blank lines and '#' comments are protocol-level no-ops.
      const std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      const std::size_t id_end = line.find_first_of(" \t", first);
      Message m;
      if (id_end == std::string::npos) {
        m.id = line.substr(first);
      } else {
        m.id = line.substr(first, id_end - first);
        const std::size_t body = line.find_first_not_of(" \t", id_end);
        if (body != std::string::npos) m.body = line.substr(body);
      }
      out->push_back(std::move(m));
    }
    buf->erase(0, start);
    // A partial line that can no longer fit a newline is an oversized frame
    // even before the newline arrives: never buffer without bound.
    if (ok && buf->size() > max_body_bytes + 1) {
      *error = "line exceeds " + std::to_string(max_body_bytes) + " bytes";
      ok = false;
    }
    return ok;
  }

  void Encode(const std::string& id, const std::string& body,
              std::string* wire) const override {
    *wire += id;
    wire->push_back(' ');
    *wire += body;
    wire->push_back('\n');
  }
};

class BinaryFraming final : public Framing {
 public:
  bool Decode(std::string* buf, std::size_t max_body_bytes,
              std::vector<Message>* out, std::string* error) override {
    std::size_t start = 0;
    bool ok = true;
    for (;;) {
      if (buf->size() - start < 4) break;
      const std::uint32_t len = LoadU32(buf->data() + start);
      if (len < 8) {
        *error = "binary frame length " + std::to_string(len) + " < 8";
        ok = false;
        break;
      }
      if (len - 8 > max_body_bytes) {
        *error = "binary frame payload exceeds " +
                 std::to_string(max_body_bytes) + " bytes";
        ok = false;
        break;
      }
      if (buf->size() - start < 4u + len) break;  // partial frame
      Message m;
      m.id = std::to_string(LoadU64(buf->data() + start + 4));
      m.body.assign(*buf, start + 12, len - 8);
      out->push_back(std::move(m));
      start += 4u + len;
    }
    buf->erase(0, start);
    return ok;
  }

  void Encode(const std::string& id, const std::string& body,
              std::string* wire) const override {
    // "?" (the text protocol's unattributable id) and anything else that is
    // not a decimal u64 map to the reserved id 0.
    std::uint64_t id_value = 0;
    if (!id.empty() && id.find_first_not_of("0123456789") == std::string::npos) {
      id_value = std::strtoull(id.c_str(), nullptr, 10);
    }
    AppendU32(static_cast<std::uint32_t>(8 + body.size()), wire);
    AppendU64(id_value, wire);
    *wire += body;
  }

  bool Empty(const std::string& buf) const override {
    return buf.size() < 4;
  }
};

}  // namespace

Framing::~Framing() = default;

std::unique_ptr<Framing> Framing::Create(FramingKind kind) {
  if (kind == FramingKind::kBinary) {
    return std::make_unique<BinaryFraming>();
  }
  return std::make_unique<TextFraming>();
}

}  // namespace carat::rpc
