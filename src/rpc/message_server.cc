#include "rpc/message_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace carat::rpc {

namespace {

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

MessageServer::Connection::Connection(int fd, std::uint64_t index)
    : fd_(fd), index_(index) {}

MessageServer::Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool MessageServer::Connection::Send(const std::string& id,
                                     const std::string& body) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0 || framing_ == nullptr) return false;
  std::string wire;
  framing_->Encode(id, body, &wire);
  return WriteAll(fd_, wire.data(), wire.size());
}

void MessageServer::Connection::Close() {
  // Shutdown (not close) so a concurrent Send/read fails cleanly instead of
  // racing a reused descriptor; the fd itself is closed by the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

MessageServer::MessageServer(Options options, Handler handler,
                             CloseHandler on_close)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      on_close_(std::move(on_close)) {}

MessageServer::~MessageServer() { Shutdown(); }

bool MessageServer::Start(std::string* error) {
  if (started_) {
    *error = "MessageServer::Start called twice";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string host =
      options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "not a numeric IPv4 listen address: '" + options_.host + "'";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Surface the kernel-assigned port (Options::port == 0 binds ephemeral).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MessageServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int pr = ::poll(fds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Shutdown woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnectionPtr conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      conn = std::make_shared<Connection>(fd, next_index_++);
      connections_.push_back(conn);
    }
    conn->reader_ = std::thread([this, conn] { ReadLoop(conn); });
  }
}

void MessageServer::ReadLoop(const ConnectionPtr& conn) {
  std::string buf;
  std::vector<Framing::Message> messages;
  bool negotiated = false;
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error or Close()'s shutdown
    buf.append(chunk, static_cast<std::size_t>(n));
    if (!negotiated) {
      // The very first byte picks the framing (0x00 = binary); doing it
      // under the write mutex publishes framing_ to concurrent Send()ers.
      negotiated = true;
      const FramingKind kind = buf[0] == kBinaryFramingByte
                                   ? FramingKind::kBinary
                                   : FramingKind::kText;
      if (kind == FramingKind::kBinary) buf.erase(0, 1);
      std::lock_guard<std::mutex> lock(conn->write_mu_);
      conn->kind_ = kind;
      conn->framing_ = Framing::Create(kind);
    }
    messages.clear();
    std::string decode_error;
    const bool ok = conn->framing_->Decode(&buf, options_.max_body_bytes,
                                           &messages, &decode_error);
    for (const Framing::Message& m : messages) handler_(conn, m.id, m.body);
    if (!ok) break;  // oversized/malformed frame: tear the connection down
  }
  if (on_close_) on_close_(conn);
  conn->Close();
}

void MessageServer::Shutdown() {
  if (!started_) return;
  std::vector<ConnectionPtr> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    connections = connections_;
  }
  const char byte = 'x';
  [[maybe_unused]] const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  accept_thread_.join();
  for (const ConnectionPtr& conn : connections) conn->Close();
  for (const ConnectionPtr& conn : connections) {
    if (conn->reader_.joinable()) conn->reader_.join();
  }
  {
    // Connections accepted between the snapshot and the accept thread
    // exiting are already closed (stopping_ was observed under mu_).
    std::lock_guard<std::mutex> lock(mu_);
    connections_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

}  // namespace carat::rpc
