#include "rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace carat::rpc {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error, int recv_timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    *error = "not a numeric IPv4 address: '" + host + "'";
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return true;
}

bool Client::SendLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  return SendRaw(framed);
}

bool Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Client::ReadLine(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, timeout or error
  }
}

bool Client::Request(const std::string& line, std::string* response) {
  return SendLine(line) && ReadLine(response);
}

void Client::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

}  // namespace carat::rpc
