#include "rpc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace carat::rpc {

namespace {

/// Remaining milliseconds until `deadline`, clamped to >= 0 and rounded up
/// so a sub-millisecond remainder still polls instead of busy-looping.
int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - std::chrono::steady_clock::now());
  if (remaining.count() <= 0) return 0;
  return static_cast<int>((remaining.count() + 999) / 1000);
}

bool SetBlocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

/// Waits for a nonblocking (or EINTR-interrupted) connect to resolve and
/// checks SO_ERROR. `timeout_ms` <= 0 waits forever.
bool FinishConnect(int fd, int timeout_ms, std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait_ms = -1;
    if (timeout_ms > 0) {
      wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) {
        *error = "connect: timed out";
        return false;
      }
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      *error = std::string("connect poll: ") + std::strerror(errno);
      return false;
    }
    if (pr == 0) {
      *error = "connect: timed out";
      return false;
    }
    break;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    *error = std::string("getsockopt SO_ERROR: ") + std::strerror(errno);
    return false;
  }
  if (so_error != 0) {
    *error = std::string("connect: ") + std::strerror(so_error);
    return false;
  }
  return true;
}

}  // namespace

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error, int recv_timeout_ms) {
  ConnectOptions options;
  options.recv_timeout_ms = recv_timeout_ms;
  return Connect(host, port, error, options);
}

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error, const ConnectOptions& options) {
  const int attempts = options.connect_attempts < 1 ? 1
                                                    : options.connect_attempts;
  for (int attempt = 0;; ++attempt) {
    if (ConnectOnce(host, port, error, options)) return true;
    if (attempt + 1 >= attempts) return false;
    if (options.reconnect_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.reconnect_backoff_ms));
    }
  }
}

bool Client::ConnectOnce(const std::string& host, std::uint16_t port,
                         std::string* error, const ConnectOptions& options) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    *error = "not a numeric IPv4 address: '" + host + "'";
    Close();
    return false;
  }

  const bool timed_connect = options.connect_timeout_ms > 0;
  if (timed_connect) SetBlocking(fd_, false);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // EINPROGRESS is the nonblocking path; EINTR leaves a blocking connect
    // completing asynchronously — both resolve via poll + SO_ERROR.
    if (errno != EINPROGRESS && errno != EINTR) {
      *error = std::string("connect: ") + std::strerror(errno);
      Close();
      return false;
    }
    if (!FinishConnect(fd_, options.connect_timeout_ms, error)) {
      Close();
      return false;
    }
  }
  if (timed_connect) SetBlocking(fd_, true);

  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout_ms > 0) {
    // Belt only: the real bound is the poll() deadline in FillBuf; this
    // keeps even a direct read() on the fd from hanging forever.
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  recv_timeout_ms_ = options.recv_timeout_ms;
  kind_ = options.framing;
  framing_ = Framing::Create(kind_);
  if (kind_ == FramingKind::kBinary) {
    if (!SendRaw(std::string(1, kBinaryFramingByte))) {
      *error = "failed to send binary framing negotiation byte";
      Close();
      return false;
    }
  }
  return true;
}

bool Client::SendLine(const std::string& line) {
  if (kind_ == FramingKind::kText) {
    std::string framed = line;
    framed += '\n';
    return SendRaw(framed);
  }
  const std::size_t sep = line.find_first_of(" \t");
  const std::string id = line.substr(0, sep);
  std::string body;
  if (sep != std::string::npos) {
    std::size_t start = line.find_first_not_of(" \t", sep);
    if (start != std::string::npos) body = line.substr(start);
  }
  std::string wire;
  framing_->Encode(id, body, &wire);
  return SendRaw(wire);
}

bool Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Client::FillBuf(Clock::time_point deadline, bool has_deadline) {
  for (;;) {
    if (has_deadline) {
      const int wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) return false;  // total deadline spent
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) return false;  // deadline
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && has_deadline) {
      continue;  // SO_RCVTIMEO fired early; the poll deadline governs
    }
    return false;
  }
}

bool Client::ReadLine(std::string* line) {
  if (fd_ < 0) return false;
  const bool has_deadline = recv_timeout_ms_ > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(recv_timeout_ms_);
  if (kind_ == FramingKind::kText) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!FillBuf(deadline, has_deadline)) return false;
    }
  }
  // Binary framing: surface each frame as "<id> <payload>".
  constexpr std::size_t kMaxClientBody = 1 << 20;
  for (;;) {
    if (pending_pos_ < pending_.size()) {
      const Framing::Message& message = pending_[pending_pos_++];
      *line = message.id;
      *line += ' ';
      *line += message.body;
      if (pending_pos_ == pending_.size()) {
        pending_.clear();
        pending_pos_ = 0;
      }
      return true;
    }
    std::string decode_error;
    if (!framing_->Decode(&buf_, kMaxClientBody, &pending_, &decode_error)) {
      return false;  // malformed frame from the server
    }
    if (!pending_.empty()) continue;
    if (!FillBuf(deadline, has_deadline)) return false;
  }
}

bool Client::Request(const std::string& line, std::string* response) {
  return SendLine(line) && ReadLine(response);
}

void Client::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  pending_.clear();
  pending_pos_ = 0;
}

}  // namespace carat::rpc
