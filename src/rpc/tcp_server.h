// Network serving front-end for the what-if solver: an epoll-based,
// multi-reactor TCP server speaking the newline-delimited text protocol
// (default) or the negotiated length-prefixed binary protocol over plain
// POSIX sockets (no third-party dependencies). See rpc/framing.h for the
// exact bytes of both framings.
//
// Text wire protocol — one request per line, one response line per request:
//
//   request:   <id> <workload> <n> [key=value ...] [deadline_ms=N]
//              <id> STATS
//   response:  <id> <result line>          (serve::FormatResult bytes)
//              <id> BUSY                   (admission queue full)
//              <id> TIMEOUT                (deadline_ms elapsed)
//              <id> ERROR <message>        (malformed request)
//              <id> STATS <counters>
//
// `<id>` is an opaque client-chosen token (no whitespace, <= 64 bytes)
// echoed on the response, so clients may pipeline requests and match
// answers as they complete — responses are written per-completion, not in
// request order. A connection whose first byte is 0x00 switches to binary
// framing (u32 len | u64 id | payload, in both directions); the payload
// bytes are exactly the text protocol's body, so both framings answer
// byte-identical payloads for the same query stream. The query grammar is
// the one tools/carat_serve reads from stdin (serve::ParseQuery), and
// serve::FormatResult is the single source of result bytes, so the same
// query produces byte-identical result lines on every front-end.
//
// Architecture: `--reactors N` event-loop threads (rpc::Reactor), each
// owning a private epoll instance and its own connections. Sharding is by
// SO_REUSEPORT — every reactor binds its own listen socket on the shared
// port and the kernel spreads incoming connections across them. Where
// SO_REUSEPORT is unavailable (or Options::force_single_acceptor is set,
// which the tests use), reactor 0 owns the single listen socket and hands
// accepted descriptors round-robin to the other reactors over their wake
// eventfds. A connection lives its whole life on one reactor.
//
// Hardening, in the way an inference front-end would be hardened:
//   - admission control: at most `max_inflight` admitted-but-unanswered
//     requests across all reactors; past that a request is answered `BUSY`
//     immediately instead of buffering without bound;
//   - per-request deadlines: a request whose `deadline_ms` elapses while it
//     waits in the dispatch queue answers `TIMEOUT` without occupying a
//     solver thread (and one that finishes solving past its deadline also
//     answers `TIMEOUT`);
//   - idle-connection timeouts: connections with no traffic and nothing in
//     flight for `idle_timeout_ms` are closed;
//   - oversized frames (a text line or binary payload longer than
//     `max_line_bytes`, or a malformed binary length) are answered with an
//     ERROR and the connection is closed; torn frames (EOF mid-frame) are
//     discarded without crashing;
//   - graceful drain: Shutdown() stops accepting and reading on every
//     reactor, lets every admitted request finish, flushes all responses,
//     then closes.
//
// Threading: each reactor thread owns its sockets' I/O; admitted requests
// are dispatched to the borrowed exec::ThreadPool, whose workers solve
// synchronously through serve::SolverService::SolveSync and post the
// response back to the owning reactor. Counters and histograms live behind
// per-reactor leaf mutexes so STATS can aggregate across reactors from any
// reactor thread without lock cycles. See DESIGN.md §9.

#ifndef CARAT_RPC_TCP_SERVER_H_
#define CARAT_RPC_TCP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "rpc/latency_histogram.h"
#include "serve/query.h"
#include "serve/solver_service.h"

namespace carat::rpc {

class Reactor;

/// Monotonic counters; TcpServer::stats() returns the aggregate across
/// reactors, TcpServer::ReactorStats() the per-reactor breakdown.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t active_connections = 0;  ///< gauge, not a counter
  std::uint64_t requests_submitted = 0;  ///< admitted into the dispatch queue
  std::uint64_t requests_completed = 0;  ///< answered with a result line
  std::uint64_t requests_rejected = 0;   ///< answered BUSY
  std::uint64_t requests_timed_out = 0;  ///< answered TIMEOUT
  std::uint64_t parse_errors = 0;        ///< answered ERROR
  std::uint64_t frames_oversized = 0;    ///< dropped + connection closed
  std::uint64_t idle_disconnects = 0;
};

class TcpServer {
 public:
  struct Options {
    /// Numeric IPv4 listen address ("0.0.0.0" for all interfaces;
    /// "localhost" is accepted as an alias for 127.0.0.1).
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the outcome from port().
    std::uint16_t port = 0;
    /// The solving service answering queries. Borrowed, required.
    serve::SolverService* service = nullptr;
    /// Dispatch + solver workers. Borrowed, required. Workers solve through
    /// SolverService::SolveSync, so the pool's FIFO queue is the dispatch
    /// queue and its size is the service's solve concurrency.
    exec::ThreadPool* pool = nullptr;
    /// Event-loop threads. Each reactor owns an epoll instance and (with
    /// SO_REUSEPORT) its own listen socket on the shared port.
    std::size_t reactors = 1;
    /// Admission bound: admitted-but-unanswered requests (across all
    /// reactors) past this answer BUSY. Must be >= 1.
    std::size_t max_inflight = 256;
    /// Close connections idle (no traffic, nothing in flight) longer than
    /// this; 0 disables.
    int idle_timeout_ms = 0;
    /// Longest accepted request line / binary payload (excluding framing).
    std::size_t max_line_bytes = 4096;
    /// Accept the 0x00 binary-framing negotiation byte. When false a
    /// binary hello is answered with a text ERROR and the connection is
    /// closed (strict text-only deployments: carat_served --framing=text).
    bool enable_binary_framing = true;
    /// Testing hook: skip SO_REUSEPORT sharding and exercise the
    /// single-acceptor round-robin handoff fallback.
    bool force_single_acceptor = false;
  };

  explicit TcpServer(Options options);

  /// Shuts down gracefully if still running.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the reactor threads. Returns false with a
  /// message on any socket-layer failure. Call at most once.
  bool Start(std::string* error);

  /// The bound port (useful with Options::port == 0). Valid after Start.
  std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting connections and reading requests on
  /// every reactor, finish every admitted request, flush all responses,
  /// close. Blocks until all reactor threads have exited. Idempotent and
  /// callable from any thread (including a signal-forwarding thread).
  void Shutdown();

  /// Aggregate counters across all reactors.
  ServerStats stats() const;

  /// Per-reactor counter breakdown, indexed by reactor.
  std::vector<ServerStats> ReactorStats() const;

  /// Service-time percentile (admission to response) in milliseconds,
  /// over the merged per-reactor histograms.
  double LatencyPercentileMs(double percentile) const;

  /// True when the SO_REUSEPORT fallback (single acceptor + round-robin
  /// fd handoff) is active. Valid after Start.
  bool single_acceptor() const { return single_acceptor_; }

  const Options& options() const { return options_; }

 private:
  friend class Reactor;

  /// Admission check shared by all reactors: reserves one in-flight slot,
  /// or returns false when the global bound is reached.
  bool TryAdmit();
  void ReleaseAdmission();

  /// Round-robin target for the single-acceptor handoff fallback.
  std::size_t NextHandoffTarget();

  /// The body (without the request id) of a STATS response: aggregate
  /// counters, service counters, merged percentiles, and the per-reactor
  /// breakdown. Touches only per-reactor leaf stats mutexes and the
  /// service mutex, so any reactor thread may call it while holding its
  /// own connection mutex.
  std::string BuildStatsBody() const;

  Options options_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  bool single_acceptor_ = false;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> next_handoff_{0};
  std::mutex join_mu_;  ///< serializes the Shutdown join
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_TCP_SERVER_H_
