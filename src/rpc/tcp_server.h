// Network serving front-end for the what-if solver: a poll()-based TCP
// server speaking a newline-delimited request protocol over plain POSIX
// sockets (no third-party dependencies).
//
// Wire protocol — one request per line, one response line per request:
//
//   request:   <id> <workload> <n> [key=value ...] [deadline_ms=N]
//              <id> STATS
//   response:  <id> <result line>          (serve::FormatResult bytes)
//              <id> BUSY                   (admission queue full)
//              <id> TIMEOUT                (deadline_ms elapsed)
//              <id> ERROR <message>        (malformed request)
//              <id> STATS <counters>
//
// `<id>` is an opaque client-chosen token (no whitespace, <= 64 bytes)
// echoed on the response, so clients may pipeline requests and match
// answers as they complete — responses are written per-completion, not in
// request order. The query grammar after the id is exactly the one
// tools/carat_serve reads from stdin (serve::ParseQuery); the same query
// therefore produces byte-identical result lines on both front-ends.
//
// Hardening, in the way an inference front-end would be hardened:
//   - admission control: at most `max_inflight` admitted-but-unanswered
//     requests; past that a request is answered `BUSY` immediately instead
//     of buffering without bound;
//   - per-request deadlines: a request whose `deadline_ms` elapses while it
//     waits in the dispatch queue answers `TIMEOUT` without occupying a
//     solver thread (and one that finishes solving past its deadline also
//     answers `TIMEOUT`);
//   - idle-connection timeouts: connections with no traffic and nothing in
//     flight for `idle_timeout_ms` are closed;
//   - oversized frames (a line longer than `max_line_bytes` with no
//     newline) are answered with an ERROR and the connection is closed;
//     torn frames (EOF mid-line) are discarded without crashing;
//   - graceful drain: Shutdown() stops accepting and reading, lets every
//     admitted request finish, flushes all responses, then closes.
//
// Threading: one internal poll thread owns all socket I/O; admitted
// requests are dispatched to the borrowed exec::ThreadPool, whose workers
// solve synchronously through serve::SolverService::SolveSync and post the
// response back to the poll thread. One mutex guards connections, counters
// and the latency histogram. See DESIGN.md §9.

#ifndef CARAT_RPC_TCP_SERVER_H_
#define CARAT_RPC_TCP_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "exec/thread_pool.h"
#include "rpc/latency_histogram.h"
#include "serve/query.h"
#include "serve/solver_service.h"

namespace carat::rpc {

/// Monotonic counters; a snapshot is returned by TcpServer::stats().
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t active_connections = 0;  ///< gauge, not a counter
  std::uint64_t requests_submitted = 0;  ///< admitted into the dispatch queue
  std::uint64_t requests_completed = 0;  ///< answered with a result line
  std::uint64_t requests_rejected = 0;   ///< answered BUSY
  std::uint64_t requests_timed_out = 0;  ///< answered TIMEOUT
  std::uint64_t parse_errors = 0;        ///< answered ERROR
  std::uint64_t frames_oversized = 0;    ///< dropped + connection closed
  std::uint64_t idle_disconnects = 0;
};

class TcpServer {
 public:
  struct Options {
    /// Numeric IPv4 listen address ("0.0.0.0" for all interfaces;
    /// "localhost" is accepted as an alias for 127.0.0.1).
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the outcome from port().
    std::uint16_t port = 0;
    /// The solving service answering queries. Borrowed, required.
    serve::SolverService* service = nullptr;
    /// Dispatch + solver workers. Borrowed, required. Workers solve through
    /// SolverService::SolveSync, so the pool's FIFO queue is the dispatch
    /// queue and its size is the service's solve concurrency.
    exec::ThreadPool* pool = nullptr;
    /// Admission bound: admitted-but-unanswered requests past this answer
    /// BUSY. Must be >= 1.
    std::size_t max_inflight = 256;
    /// Close connections idle (no traffic, nothing in flight) longer than
    /// this; 0 disables.
    int idle_timeout_ms = 0;
    /// Longest accepted request line (excluding the newline).
    std::size_t max_line_bytes = 4096;
  };

  explicit TcpServer(Options options);

  /// Shuts down gracefully if still running.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the poll thread. Returns false with a
  /// message on any socket-layer failure. Call at most once.
  bool Start(std::string* error);

  /// The bound port (useful with Options::port == 0). Valid after Start.
  std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting connections and reading requests,
  /// finish every admitted request, flush all responses, close. Blocks
  /// until the poll thread has exited. Idempotent and callable from any
  /// thread (including a signal-forwarding thread).
  void Shutdown();

  ServerStats stats() const;

  /// Service-time percentile (admission to response) in milliseconds.
  double LatencyPercentileMs(double percentile) const;

 private:
  struct Conn {
    int fd = -1;
    std::string in;          ///< bytes read, not yet split into lines
    std::string out;         ///< response bytes not yet written
    std::size_t out_pos = 0; ///< written prefix of `out`
    std::size_t inflight = 0;
    bool read_closed = false;   ///< EOF seen or frame error: no more reads
    bool close_after_flush = false;
    std::chrono::steady_clock::time_point last_active;
  };

  void Loop();
  void AcceptReady();
  void ReadReady(std::uint64_t conn_id);
  bool FlushConn(Conn* conn);  ///< false when the connection broke
  void CloseConn(std::uint64_t conn_id);
  void HandleLine(std::uint64_t conn_id, std::string line);
  void Respond(std::uint64_t conn_id, const std::string& line);
  void PostResponse(std::uint64_t conn_id, const std::string& line,
                    std::chrono::steady_clock::time_point enqueued,
                    bool timed_out);
  std::string BuildStatsLine(const std::string& id);
  void Wake();

  Options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::thread loop_;
  bool started_ = false;
  std::mutex join_mu_;  ///< serializes the Shutdown join

  mutable std::mutex mu_;
  bool draining_ = false;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::size_t inflight_total_ = 0;
  ServerStats stats_;
  LatencyHistogram latency_;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_TCP_SERVER_H_
