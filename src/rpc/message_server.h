// Generic framed-message TCP server for peer-to-peer protocols.
//
// rpc::TcpServer is a request/response front-end hard-wired to the solver
// service: its reactors parse the serve:: query grammar and dispatch to a
// thread pool. The distributed testbed needs the *wire* half of that —
// framing negotiation, length-prefixed binary frames, per-connection
// ordering — without the solver coupling, and with the freedom to push
// frames in either direction at any time (site processes exchange REMDO /
// PREPARE / COMMIT / probe traffic that is not request/response shaped).
//
// MessageServer provides exactly that: it accepts connections, negotiates
// the framing per connection by the first byte (0x00 = binary, anything
// else = text; see rpc/framing.h), and invokes a handler for every decoded
// frame. The handler receives a Connection handle whose Send() is
// thread-safe and usable at any later time from any thread, so replies and
// server-initiated pushes share one path. One reader thread per connection
// keeps per-peer FIFO ordering trivially (the TCP stream *is* the queue);
// the expected peer count here is small (a handful of sites plus load
// generator connections), so thread-per-connection is the simple and
// sufficient choice — the epoll reactors remain the high-fan-in front-end.
//
// Listening on port 0 binds a kernel-assigned ephemeral port and surfaces
// it through port() after Start(), so multi-process tests and the carat_dist
// coordinator can spawn site processes without port races.

#ifndef CARAT_RPC_MESSAGE_SERVER_H_
#define CARAT_RPC_MESSAGE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/framing.h"

namespace carat::rpc {

class MessageServer {
 public:
  /// One accepted connection. Handed to the handler as a shared_ptr so the
  /// daemon may retain it and Send() later (peer links, async replies).
  class Connection {
   public:
    Connection(int fd, std::uint64_t index);
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Writes one frame in the connection's negotiated framing. Thread-safe
    /// (serialized by a per-connection write mutex). For binary peers `id`
    /// must be the decimal rendering of a u64. False on any write error or
    /// after the connection closed.
    bool Send(const std::string& id, const std::string& body);

    /// Half-closes the socket; the reader thread then winds down.
    void Close();

    /// Server-unique index (accept order).
    std::uint64_t index() const { return index_; }

    /// Negotiated framing; valid once the first byte arrived.
    FramingKind framing() const { return kind_; }

   private:
    friend class MessageServer;

    int fd_;
    const std::uint64_t index_;
    FramingKind kind_ = FramingKind::kText;
    std::unique_ptr<Framing> framing_;
    std::mutex write_mu_;
    std::thread reader_;
  };

  using ConnectionPtr = std::shared_ptr<Connection>;

  /// Invoked on the connection's reader thread for every decoded frame, in
  /// stream order. Long-running work must be dispatched elsewhere — while
  /// the handler runs, no further frame from this connection is decoded
  /// (that ordering is what the site protocol relies on for per-peer FIFO).
  using Handler = std::function<void(const ConnectionPtr&,
                                     const std::string& id,
                                     const std::string& body)>;

  /// Invoked once per connection after its last frame (EOF, error or
  /// shutdown), on the reader thread.
  using CloseHandler = std::function<void(const ConnectionPtr&)>;

  struct Options {
    /// Numeric IPv4 listen address ("localhost" = 127.0.0.1).
    std::string host = "127.0.0.1";
    /// 0 binds a kernel-assigned ephemeral port; read it from port().
    std::uint16_t port = 0;
    /// Longest accepted text line / binary payload.
    std::size_t max_body_bytes = 1 << 20;
  };

  MessageServer(Options options, Handler handler,
                CloseHandler on_close = nullptr);
  ~MessageServer();

  MessageServer(const MessageServer&) = delete;
  MessageServer& operator=(const MessageServer&) = delete;

  /// Binds, listens, starts the accept thread. False with a message on any
  /// socket failure. Call at most once.
  bool Start(std::string* error);

  /// The bound port (the kernel's pick when Options::port was 0). Valid
  /// after Start().
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void ReadLoop(const ConnectionPtr& conn);

  Options options_;
  Handler handler_;
  CloseHandler on_close_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe that unblocks the accept poll
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex mu_;  ///< guards connections_ and stopping_
  bool stopping_ = false;
  std::vector<ConnectionPtr> connections_;
  std::uint64_t next_index_ = 0;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_MESSAGE_SERVER_H_
