// Tiny blocking client for the rpc::TcpServer wire protocol: connect, send
// request lines, read response lines. Used by the loopback integration
// tests, bench/perf_rpc and as the sample embedding API; it is deliberately
// synchronous — pipelining is achieved by sending many lines before reading
// (the server answers per-completion).
//
// The client speaks either framing (rpc/framing.h). In binary mode the
// SendLine/ReadLine API is preserved: the first whitespace token of an
// outgoing line becomes the frame id (it must be the id's decimal digits)
// and incoming frames are surfaced as "<id> <payload>" lines — so callers,
// tests and benchmarks share one code path across framings and responses
// compare byte-identically.
//
// Robustness: connect() honours a timeout (nonblocking connect + poll),
// reads honour a *total* receive deadline via poll(POLLIN) — a server that
// drips one byte per interval cannot wedge the caller the way a plain
// per-read SO_RCVTIMEO would allow — and EINTR is retried everywhere.
//
// Not thread-safe: one Client per thread.

#ifndef CARAT_RPC_CLIENT_H_
#define CARAT_RPC_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpc/framing.h"

namespace carat::rpc {

class Client {
 public:
  struct ConnectOptions {
    /// > 0 bounds the *total* wall-clock time a ReadLine may spend waiting,
    /// regardless of how the server paces its bytes. 0 waits forever.
    int recv_timeout_ms = 0;
    /// > 0 bounds connect(); 0 uses the OS default (blocking connect).
    int connect_timeout_ms = 0;
    /// kBinary sends the 0x00 negotiation byte immediately after connect.
    FramingKind framing = FramingKind::kText;
    /// Total connect attempts (>= 1). Attempts past the first wait
    /// `reconnect_backoff_ms` between tries, so a caller can survive a peer
    /// that is slow to bind its listen socket (a freshly spawned site
    /// process, a restarting server). Default: a single attempt — the
    /// pre-existing fail-fast behaviour.
    int connect_attempts = 1;
    /// Pause between connect attempts (ms); only meaningful with
    /// connect_attempts > 1.
    int reconnect_backoff_ms = 100;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a numeric IPv4 `host` ("localhost" is accepted) and sets
  /// TCP_NODELAY. With connect_attempts > 1, failed attempts retry after
  /// `reconnect_backoff_ms` until the attempt budget is spent; `*error`
  /// reports the last failure.
  bool Connect(const std::string& host, std::uint16_t port, std::string* error,
               const ConnectOptions& options);

  /// Legacy convenience: text framing, no connect timeout.
  bool Connect(const std::string& host, std::uint16_t port, std::string* error,
               int recv_timeout_ms = 0);

  /// Sends one request. Text framing writes `line` plus a newline; binary
  /// framing takes the first whitespace token as the frame id (decimal,
  /// else id 0) and the rest as the payload. False on any write error.
  bool SendLine(const std::string& line);

  /// Writes `bytes` exactly as given (no framing applied) — used by tests
  /// to produce torn, malformed and oversized frames.
  bool SendRaw(const std::string& bytes);

  /// Reads the next response as a line: the raw line in text framing
  /// (newline stripped), "<id> <payload>" in binary framing. False on EOF,
  /// the receive deadline expiring, or a read error.
  bool ReadLine(std::string* line);

  /// SendLine + ReadLine — the lockstep convenience path.
  bool Request(const std::string& line, std::string* response);

  /// Closes the write side only, signalling EOF while responses can still
  /// be read (used to exercise the server's torn-frame/drain paths).
  void CloseSend();

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One connect attempt (the pre-backoff Connect body).
  bool ConnectOnce(const std::string& host, std::uint16_t port,
                   std::string* error, const ConnectOptions& options);

  /// Blocks until at least one more byte is appended to buf_. False on
  /// EOF, error, or (when `has_deadline`) the deadline passing.
  bool FillBuf(Clock::time_point deadline, bool has_deadline);

  int fd_ = -1;
  FramingKind kind_ = FramingKind::kText;
  std::unique_ptr<Framing> framing_;
  int recv_timeout_ms_ = 0;
  std::string buf_;
  std::vector<Framing::Message> pending_;  ///< decoded, not yet returned
  std::size_t pending_pos_ = 0;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_CLIENT_H_
