// Tiny blocking client for the rpc::TcpServer wire protocol: connect, send
// newline-delimited request lines, read newline-delimited response lines.
// Used by the loopback integration tests, bench/perf_rpc and as the sample
// embedding API; it is deliberately synchronous — pipelining is achieved by
// sending many lines before reading (the server answers per-completion).
//
// Not thread-safe: one Client per thread.

#ifndef CARAT_RPC_CLIENT_H_
#define CARAT_RPC_CLIENT_H_

#include <cstdint>
#include <string>

namespace carat::rpc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a numeric IPv4 `host` ("localhost" is accepted) and sets
  /// TCP_NODELAY. `recv_timeout_ms` > 0 arms SO_RCVTIMEO so a silent server
  /// fails ReadLine instead of hanging forever.
  bool Connect(const std::string& host, std::uint16_t port,
               std::string* error, int recv_timeout_ms = 0);

  /// Writes `line` plus a newline, fully. False on any write error.
  bool SendLine(const std::string& line);

  /// Writes `bytes` exactly as given (no newline appended) — used by tests
  /// to produce torn and oversized frames.
  bool SendRaw(const std::string& bytes);

  /// Reads the next response line (newline stripped). False on EOF, a
  /// receive timeout or a read error.
  bool ReadLine(std::string* line);

  /// SendLine + ReadLine — the lockstep convenience path.
  bool Request(const std::string& line, std::string* response);

  /// Closes the write side only, signalling EOF while responses can still
  /// be read (used to exercise the server's torn-frame/drain paths).
  void CloseSend();

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_CLIENT_H_
