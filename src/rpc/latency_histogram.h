// Fixed-bucket latency histogram for the serving front-end's live metrics.
//
// Log-linear buckets (HDR-style): exact counts below 8 µs, then 8 linear
// sub-buckets per power of two up to ~34 s. Recording is an array increment
// — no allocation, no floating point — so it can sit on the request hot
// path; percentile queries walk the (fixed, 232-entry) array and report the
// bucket's upper edge, bounding relative error at 12.5%.
//
// Not internally synchronized: rpc::TcpServer guards it with the server
// mutex, the same way serve::SolutionCache relies on the service mutex.

#ifndef CARAT_RPC_LATENCY_HISTOGRAM_H_
#define CARAT_RPC_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>

namespace carat::rpc {

class LatencyHistogram {
 public:
  /// 8 exact buckets + 8 sub-buckets for each power of two in [2^3, 2^31) µs.
  static constexpr std::size_t kNumBuckets = 8 + 8 * 28;

  /// Counts one observation of `micros` microseconds. Values past the last
  /// bucket (~36 min) clamp into it.
  void Record(std::uint64_t micros);

  /// The latency (in milliseconds) below which `percentile` (0..100) of the
  /// recorded observations fall: the upper edge of the bucket holding that
  /// rank. Returns 0 when nothing has been recorded.
  double PercentileMs(double percentile) const;

  std::uint64_t count() const { return total_; }

  void Clear();

 private:
  std::uint64_t counts_[kNumBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_LATENCY_HISTOGRAM_H_
