// Fixed-bucket latency histogram for the serving front-end's live metrics.
//
// Log-linear buckets (HDR-style): exact counts below 8 µs, then 8 linear
// sub-buckets per power of two up to ~36 min. Recording is an array
// increment — no allocation, no floating point — so it can sit on the
// request hot path. Percentile queries walk the (fixed, 232-entry) array
// and interpolate the rank's position within its bucket (midpoint
// convention), so a constant stream reports ~its true value instead of the
// bucket's upper edge; the residual error is bounded by half a bucket
// width (6.25%). Values past the last bucket clamp into it and are counted
// by overflow_count() so a clamped tail is visible rather than silent.
//
// Not internally synchronized: the rpc reactors guard their histograms
// with the per-reactor stats mutex, the same way serve::SolutionCache
// relies on the service mutex. Merge() lets the server aggregate
// per-reactor histograms into one distribution for global percentiles.

#ifndef CARAT_RPC_LATENCY_HISTOGRAM_H_
#define CARAT_RPC_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>

namespace carat::rpc {

class LatencyHistogram {
 public:
  /// 8 exact buckets + 8 sub-buckets for each power of two in [2^3, 2^31) µs.
  static constexpr std::size_t kNumBuckets = 8 + 8 * 28;

  /// Counts one observation of `micros` microseconds. Values past the last
  /// bucket (~36 min) clamp into it and increment overflow_count().
  void Record(std::uint64_t micros);

  /// The latency (in milliseconds) below which `percentile` (0..100) of the
  /// recorded observations fall, interpolated within the bucket holding
  /// that rank. Returns 0 when nothing has been recorded.
  double PercentileMs(double percentile) const;

  std::uint64_t count() const { return total_; }

  /// Observations that exceeded the last bucket's upper edge and were
  /// clamped into it (their percentile contribution understates them).
  std::uint64_t overflow_count() const { return overflow_; }

  /// Adds `other`'s observations into this histogram (used to aggregate
  /// per-reactor histograms into a server-wide distribution).
  void Merge(const LatencyHistogram& other);

  void Clear();

 private:
  std::uint64_t counts_[kNumBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_LATENCY_HISTOGRAM_H_
