// Wire framing for the rpc layer, shared by the server reactors and
// rpc::Client so both ends of a connection always agree on the bytes.
//
// Two framings exist; a connection negotiates once, by its very first byte:
//
//   text (default)  Newline-delimited lines, `<id> <body>\n` in both
//                   directions. Any first byte other than 0x00 is text (no
//                   request id may begin with a NUL), so existing clients
//                   negotiate implicitly by doing nothing.
//
//   binary (0x00)   The client sends a single 0x00 byte immediately after
//                   connecting; every subsequent frame, in both directions,
//                   is length-prefixed:
//
//                       0        4            12            4+len
//                       +--------+------------+---------------+
//                       | u32 len|   u64 id   |    payload    |
//                       +--------+------------+---------------+
//                        little-  little-       len - 8 bytes
//                        endian   endian
//
//                   `len` counts the id and payload (so len >= 8) and is
//                   bounded by the server's max payload option; `id` is the
//                   client-chosen request id echoed on the response (id 0 is
//                   reserved for unattributable server errors, mirroring the
//                   text protocol's "?" id). The payload bytes are exactly
//                   the text protocol's body — serve::ParseQuery grammar on
//                   requests, serve::FormatResult / BUSY / TIMEOUT / ERROR /
//                   STATS bytes on responses — so the two framings carry
//                   byte-identical payloads for the same query stream.
//
// Both directions share one frame shape per framing, so a single
// Decode/Encode pair serves client and server symmetrically. Decoders are
// incremental: they consume whole frames from a growing buffer and leave
// any trailing partial frame in place (short reads are the caller's normal
// case, not an error).

#ifndef CARAT_RPC_FRAMING_H_
#define CARAT_RPC_FRAMING_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace carat::rpc {

enum class FramingKind { kText, kBinary };

/// The byte a client sends first to negotiate binary framing.
inline constexpr char kBinaryFramingByte = '\0';

class Framing {
 public:
  /// One decoded message: the request/response id plus everything after it.
  struct Message {
    std::string id;
    std::string body;
  };

  virtual ~Framing();

  /// Splits every complete frame out of `*buf` (the consumed prefix is
  /// erased; a trailing partial frame stays). Text framing skips blank
  /// lines and '#' comments here, at the protocol layer. Returns false on
  /// an unrecoverable protocol error — an oversized or malformed frame —
  /// with a human-readable message in `*error`; the connection must then
  /// be torn down (already-decoded messages in `*out` remain valid).
  /// `max_body_bytes` bounds a text line / binary payload.
  virtual bool Decode(std::string* buf, std::size_t max_body_bytes,
                      std::vector<Message>* out, std::string* error) = 0;

  /// Appends one framed message to `*wire`. For binary framing `id` must
  /// be the decimal rendering of a u64 (ids decoded from a binary peer
  /// always are); the text protocol's unattributable "?" id maps to 0.
  virtual void Encode(const std::string& id, const std::string& body,
                      std::string* wire) const = 0;

  /// True when `buf` still lacks the bytes to even begin decoding (used by
  /// callers that distinguish "need more" from "idle").
  virtual bool Empty(const std::string& buf) const { return buf.empty(); }

  static std::unique_ptr<Framing> Create(FramingKind kind);
};

}  // namespace carat::rpc

#endif  // CARAT_RPC_FRAMING_H_
