// Concurrency-control backend vocabulary, shared by the testbed and the
// analytical model.
//
// The 1987 paper hard-wires one policy: two-phase locking with FIFO waits
// and probe-based global deadlock detection. This header names that policy
// and its alternatives so every layer — LockManager conflict handling,
// testbed transaction flow, the model's blocking/deadlock submodel, cache
// keys, workload specs, CLI flags, wire config — selects behaviour from one
// enum instead of assuming 2PL:
//
//   k2PL      blocked requests wait FIFO; local cycles + cross-site probes
//             find deadlocks and abort a victim (the paper's system).
//   kNoWait   restart-oriented: any lock conflict aborts the requester
//             immediately; the user retries after a randomized backoff.
//             No waiting means no deadlocks and no probes.
//   kWaitDie  restart-oriented: on conflict an older transaction (smaller
//             global id) waits, a younger one dies and retries after
//             backoff. Waits only ever point at older transactions, so the
//             wait-for graph is acyclic by construction — again no probes.
//   kQueue    queue-oriented (Calvin / Qadah style): a transaction's full
//             read/write set is known up front, and each participating node
//             enqueues the whole granule set in one deterministic globally
//             ordered acquisition at first arrival. The (node, granule)
//             resource order makes deadlock impossible; conflicts appear
//             only as queueing delay at the granule partitions.
//
// Every backend preserves the sharded kernel's byte-determinism contract:
// results are bit-identical at any shard count for a fixed seed.

#ifndef CARAT_CC_CC_H_
#define CARAT_CC_CC_H_

#include <array>
#include <string_view>

namespace carat::cc {

enum class BackendKind : int {
  k2PL = 0,
  kNoWait = 1,
  kWaitDie = 2,
  kQueue = 3,
};

inline constexpr int kNumBackends = 4;
inline constexpr std::array<BackendKind, kNumBackends> kAllBackends = {
    BackendKind::k2PL, BackendKind::kNoWait, BackendKind::kWaitDie,
    BackendKind::kQueue};

/// Stable lowercase names, used by CLI flags, scenario files, CSV headers
/// and the dist wire config.
constexpr std::string_view Name(BackendKind k) {
  switch (k) {
    case BackendKind::k2PL: return "2pl";
    case BackendKind::kNoWait: return "nowait";
    case BackendKind::kWaitDie: return "waitdie";
    case BackendKind::kQueue: return "queue";
  }
  return "?";
}

/// Parses a backend name; false (and untouched output) on unknown names.
constexpr bool ParseBackend(std::string_view name, BackendKind* out) {
  for (BackendKind k : kAllBackends) {
    if (name == Name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

/// True for the backends that resolve conflicts by aborting + restarting
/// (the requester backs off before resubmitting).
constexpr bool IsRestartOriented(BackendKind k) {
  return k == BackendKind::kNoWait || k == BackendKind::kWaitDie;
}

/// True for the backends whose wait graph cannot form cycles — they never
/// wire deadlock probes or watchdogs.
constexpr bool IsDeadlockFree(BackendKind k) { return k != BackendKind::k2PL; }

/// Mean of the uniform restart backoff the testbed inserts before a
/// restart-oriented backend resubmits an aborted transaction (the model's
/// paired submodels charge the same mean as their lock-wait delay). Uniform
/// on [0.5, 1.5) * mean, drawn from the user's own RNG stream, so runs stay
/// deterministic.
inline constexpr double kRestartBackoffMeanMs = 10.0;

}  // namespace carat::cc

#endif  // CARAT_CC_CC_H_
