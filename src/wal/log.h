// Before-image write-ahead journal (the paper's recovery protocol).
//
// The testbed journals the before image of every granule a transaction
// updates, before the in-place database write. Rollback restores before
// images in reverse order; commit appends a commit record (force-written by
// the caller through its disk resource). The log also supports a recovery
// scan that reconstructs a consistent database after a crash: committed
// transactions' effects stay, all others are undone — exercised by the WAL
// tests to show the journaling protocol is actually sufficient.

#ifndef CARAT_WAL_LOG_H_
#define CARAT_WAL_LOG_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/database.h"

namespace carat::wal {

using TxnId = std::uint64_t;

enum class RecordKind {
  kBeforeImage,  ///< granule before image, written before the update
  kPrepare,      ///< 2PC participant prepared (force-written)
  kCommit,       ///< transaction committed (force-written at coordinator)
  kAbort,        ///< transaction rolled back
};

struct LogRecord {
  RecordKind kind;
  TxnId txn = 0;
  db::GranuleId granule = -1;
  std::vector<db::RecordValue> before_image;  // kBeforeImage only
};

/// An append-only journal for one node.
class Log {
 public:
  /// Appends a before-image record. Must precede the in-place write of the
  /// granule (the write-ahead rule); enforced in debug builds via the
  /// pending-update set.
  void LogBeforeImage(TxnId txn, db::GranuleId granule,
                      std::vector<db::RecordValue> image);

  void LogPrepare(TxnId txn);
  void LogCommit(TxnId txn);
  void LogAbort(TxnId txn);

  /// Rolls a live transaction back: restores its before images in reverse
  /// order and appends an abort record. Returns the number of granules
  /// restored (each costs the caller journal-read + database-write I/O).
  int Rollback(TxnId txn, db::Database* db);

  /// Crash recovery: rebuilds `db` so that exactly the transactions with a
  /// commit record keep their effects. (Before-image journaling: undo all
  /// updates of unfinished/aborted transactions, in reverse log order.)
  void Recover(db::Database* db) const;

  /// Distributed recovery: like Recover, but an in-doubt transaction (no
  /// local commit or abort record) keeps its effects when the *global*
  /// decision - in real 2PC obtained by asking the coordinator about
  /// prepared transactions - says it committed.
  void Recover(db::Database* db,
               const std::function<bool(TxnId)>& globally_committed) const;

  /// True if `txn` has a commit record.
  bool IsCommitted(TxnId txn) const { return committed_.contains(txn); }

  /// True if `txn` has an abort record (undo already applied at run time).
  bool IsAborted(TxnId txn) const { return aborted_.contains(txn); }

  std::size_t size() const { return records_.size(); }
  const std::vector<LogRecord>& records() const { return records_; }

  /// Drops state for a finished transaction (live bookkeeping only; the
  /// record history is retained for recovery).
  void Forget(TxnId txn);

 private:
  std::vector<LogRecord> records_;
  // Live-transaction index: positions of each txn's before-image records.
  std::unordered_map<TxnId, std::vector<std::size_t>> live_images_;
  std::unordered_set<TxnId> committed_;
  std::unordered_set<TxnId> aborted_;
};

}  // namespace carat::wal

#endif  // CARAT_WAL_LOG_H_
