#include "wal/log.h"

#include <algorithm>

namespace carat::wal {

void Log::LogBeforeImage(TxnId txn, db::GranuleId granule,
                         std::vector<db::RecordValue> image) {
  live_images_[txn].push_back(records_.size());
  records_.push_back(
      LogRecord{RecordKind::kBeforeImage, txn, granule, std::move(image)});
}

void Log::LogPrepare(TxnId txn) {
  records_.push_back(LogRecord{RecordKind::kPrepare, txn, -1, {}});
}

void Log::LogCommit(TxnId txn) {
  records_.push_back(LogRecord{RecordKind::kCommit, txn, -1, {}});
  committed_.insert(txn);
}

void Log::LogAbort(TxnId txn) {
  records_.push_back(LogRecord{RecordKind::kAbort, txn, -1, {}});
  aborted_.insert(txn);
}

int Log::Rollback(TxnId txn, db::Database* db) {
  auto it = live_images_.find(txn);
  if (it == live_images_.end()) {
    LogAbort(txn);
    return 0;
  }
  // Restore newest-first. A transaction may have journaled the same granule
  // twice (re-access); reverse order makes the oldest image win, restoring
  // the pre-transaction state.
  int restored = 0;
  for (auto pos = it->second.rbegin(); pos != it->second.rend(); ++pos) {
    const LogRecord& rec = records_[*pos];
    db->WriteGranule(rec.granule, rec.before_image);
    ++restored;
  }
  live_images_.erase(it);
  LogAbort(txn);
  return restored;
}

void Log::Recover(db::Database* db) const {
  Recover(db, [](TxnId) { return false; });
}

void Log::Recover(db::Database* db,
                  const std::function<bool(TxnId)>& globally_committed) const {
  // Undo pass, newest record first: restore before images of every
  // transaction that neither committed (locally or by global decision) nor
  // was already rolled back at run time (an abort record marks a completed
  // undo, like a CLR chain).
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->kind != RecordKind::kBeforeImage) continue;
    if (committed_.contains(it->txn)) continue;
    if (aborted_.contains(it->txn)) continue;
    if (globally_committed(it->txn)) continue;
    db->WriteGranule(it->granule, it->before_image);
  }
}

void Log::Forget(TxnId txn) { live_images_.erase(txn); }

}  // namespace carat::wal
