#include "workload/spec.h"

#include <cassert>
#include <string>

namespace carat::workload {

namespace {

using model::ClassParams;
using model::TxnType;

// Fills the Table 2 basic costs for one class.
void FillCosts(const CostTable& costs, double block_io_ms, TxnType t,
               ClassParams* c) {
  const bool update = model::IsUpdate(t);
  const bool distributed = !model::IsLocal(t);
  c->u_cpu_ms = costs.u_cpu;
  c->tm_cpu_ms = distributed ? costs.tm_cpu_distributed : costs.tm_cpu_local;
  c->dm_cpu_ms = update ? costs.dm_cpu_update : costs.dm_cpu_read;
  c->lr_cpu_ms = costs.lr_cpu;
  c->dmio_cpu_ms = update ? costs.dmio_cpu_update : costs.dmio_cpu_read;
  c->dmio_disk_ms = (update ? costs.ios_update : costs.ios_read) * block_io_ms;
  c->dmio_read_ios = costs.ios_read;
  c->dmio_write_ios = update ? costs.ios_update - costs.ios_read : 0.0;
  c->DeriveDefaults(t);
}

WorkloadSpec MakeBase(std::string name, int requests_per_txn, int num_nodes) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.requests_per_txn = requests_per_txn;
  spec.nodes.resize(num_nodes);
  return spec;
}

}  // namespace

model::ModelInput WorkloadSpec::ToModelInput() const {
  model::ModelInput input;
  input.comm_delay_ms = comm_delay_ms;
  input.cc_backend = cc_backend;
  const int num_nodes = static_cast<int>(nodes.size());
  const int other_nodes = num_nodes > 1 ? num_nodes - 1 : 1;
  const int l_dist = distributed_local_requests();
  const int r_dist = distributed_remote_requests();

  for (int i = 0; i < num_nodes; ++i) {
    model::SiteParams site;
    // Letter names below 26 nodes (the scheme every anchor was recorded
    // with), numeric beyond — 'A' + i overflows char on large clusters.
    site.name = i < 26 ? std::string("Node-") + static_cast<char>('A' + i)
                       : "Node-" + std::to_string(i);
    site.num_granules = num_granules;
    site.records_per_granule = records_per_granule;
    site.block_io_ms = !block_io_ms.empty()
                           ? block_io_ms[i % block_io_ms.size()]
                           : (i % 2 == 0 ? 28.0 : 40.0);
    site.separate_log_disk = separate_log_disk;
    site.think_time_ms = think_time_ms;
    site.hot_data_fraction = hot_data_fraction;
    site.hot_access_fraction = hot_access_fraction;
    site.buffer_blocks = buffer_blocks;
    site.dm_pool_size = dm_pool_size;

    // Local classes.
    ClassParams& lro = site.Class(TxnType::kLRO);
    lro.population = nodes[i].lro;
    lro.local_requests = requests_per_txn;
    lro.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kLRO, &lro);

    ClassParams& lu = site.Class(TxnType::kLU);
    lu.population = nodes[i].lu;
    lu.local_requests = requests_per_txn;
    lu.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kLU, &lu);

    // Coordinator chains of this node's distributed users.
    ClassParams& droc = site.Class(TxnType::kDROC);
    droc.population = nodes[i].dro;
    droc.local_requests = l_dist;
    droc.remote_requests = r_dist;
    droc.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kDROC, &droc);

    ClassParams& duc = site.Class(TxnType::kDUC);
    duc.population = nodes[i].du;
    duc.local_requests = l_dist;
    duc.remote_requests = r_dist;
    duc.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kDUC, &duc);

    // Slave chains serving the *other* nodes' distributed users. Each remote
    // transaction keeps one slave per participating node; remote requests
    // are split evenly over the other nodes.
    int dro_elsewhere = 0, du_elsewhere = 0;
    for (int j = 0; j < num_nodes; ++j) {
      if (j == i) continue;
      dro_elsewhere += nodes[j].dro;
      du_elsewhere += nodes[j].du;
    }
    ClassParams& dros = site.Class(TxnType::kDROS);
    dros.population = r_dist > 0 ? dro_elsewhere : 0;
    dros.local_requests = r_dist > 0 ? std::max(r_dist / other_nodes, 1) : 0;
    dros.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kDROS, &dros);

    ClassParams& dus = site.Class(TxnType::kDUS);
    dus.population = r_dist > 0 ? du_elsewhere : 0;
    dus.local_requests = r_dist > 0 ? std::max(r_dist / other_nodes, 1) : 0;
    dus.records_per_request = records_per_request;
    FillCosts(costs, site.block_io_ms, TxnType::kDUS, &dus);

    input.sites.push_back(std::move(site));
  }
  return input;
}

WorkloadSpec MakeLB8(int requests_per_txn, int num_nodes) {
  WorkloadSpec spec = MakeBase("LB8", requests_per_txn, num_nodes);
  for (NodeMix& node : spec.nodes) node = NodeMix{4, 4, 0, 0};
  return spec;
}

WorkloadSpec MakeMB4(int requests_per_txn, int num_nodes) {
  WorkloadSpec spec = MakeBase("MB4", requests_per_txn, num_nodes);
  for (NodeMix& node : spec.nodes) node = NodeMix{1, 1, 1, 1};
  return spec;
}

WorkloadSpec MakeMB8(int requests_per_txn, int num_nodes) {
  WorkloadSpec spec = MakeBase("MB8", requests_per_txn, num_nodes);
  for (NodeMix& node : spec.nodes) node = NodeMix{2, 2, 2, 2};
  return spec;
}

WorkloadSpec MakeUB6(int requests_per_txn, int num_nodes) {
  WorkloadSpec spec = MakeBase("UB6", requests_per_txn, num_nodes);
  for (NodeMix& node : spec.nodes) node = NodeMix{2, 2, 1, 1};
  return spec;
}

}  // namespace carat::workload
