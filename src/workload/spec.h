// The paper's synthetic transaction workloads (Section 2).
//
// Four user-visible transaction types — local read-only (LRO), local update
// (LU), distributed read-only (DRO) and distributed update (DU) — are
// parameterized by the number of requests per transaction n and the number
// of records per request (4 in all experiments). The four standard two-node
// workloads are LB8, MB4, MB8 and UB6.
//
// Cost parameters are the paper's Table 2 values for Node A (DEC RM05 disk,
// 28 ms/block) and Node B (DEC RP06 disk, 40 ms/block).

#ifndef CARAT_WORKLOAD_SPEC_H_
#define CARAT_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "cc/cc.h"
#include "model/params.h"

namespace carat::workload {

/// Users of each type resident at one node. DRO/DU users issue distributed
/// transactions coordinated at this node.
struct NodeMix {
  int lro = 0;
  int lu = 0;
  int dro = 0;
  int du = 0;

  int total() const { return lro + lu + dro + du; }
};

/// Table 2 basic parameter values (milliseconds).
struct CostTable {
  double u_cpu = 7.8;
  double tm_cpu_local = 8.0;
  double tm_cpu_distributed = 12.0;
  double dm_cpu_read = 5.4;
  double dm_cpu_update = 8.6;
  double lr_cpu = 2.2;
  double dmio_cpu_read = 1.5;
  double dmio_cpu_update = 2.5;
  /// Block I/Os per DMIO visit: one read for read-only access, three for an
  /// update (database read + journal write + database write).
  double ios_read = 1.0;
  double ios_update = 3.0;
};

/// A complete workload specification, convertible to model input (and, via
/// carat/testbed.h, to a testbed configuration).
struct WorkloadSpec {
  std::string name;
  std::vector<NodeMix> nodes;

  int requests_per_txn = 4;     ///< n, swept 4..20 in the paper
  int records_per_request = 4;
  int num_granules = 3000;      ///< N_g per node (512-byte blocks)
  int records_per_granule = 6;  ///< N_b
  double think_time_ms = 0.0;   ///< R_UT (zero in all experiments)
  double comm_delay_ms = 0.0;   ///< alpha (negligible on the test Ethernet)
  bool separate_log_disk = false;

  /// Extensions beyond the paper's assumptions (0 = paper behaviour):
  /// hot/cold access skew and a shared LRU database buffer per node.
  double hot_data_fraction = 0.0;
  double hot_access_fraction = 0.0;
  int buffer_blocks = 0;
  int dm_pool_size = 0;  ///< 0 = unlimited DM servers per node

  /// Concurrency-control backend (paper: 2PL + probes). Applied uniformly
  /// to every node of the mesh; see src/cc/cc.h.
  cc::BackendKind cc_backend = cc::BackendKind::k2PL;

  /// Per-node block I/O times; defaults to {28, 40, 28, 40, ...}.
  std::vector<double> block_io_ms;

  CostTable costs;

  /// Local requests of a distributed transaction; the remainder are remote,
  /// split evenly over the other nodes. The paper does not state the split;
  /// we use half local / half remote (see DESIGN.md).
  int distributed_local_requests() const { return (requests_per_txn + 1) / 2; }
  int distributed_remote_requests() const {
    return requests_per_txn - distributed_local_requests();
  }

  /// Builds the analytical model input, decomposing DRO/DU users into
  /// coordinator chains at their home node and slave chains at the others.
  model::ModelInput ToModelInput() const;
};

/// LB8: local-only, eight users per node (4 LRO + 4 LU).
WorkloadSpec MakeLB8(int requests_per_txn, int num_nodes = 2);

/// MB4: one user of each type per node.
WorkloadSpec MakeMB4(int requests_per_txn, int num_nodes = 2);

/// MB8: two users of each type per node.
WorkloadSpec MakeMB8(int requests_per_txn, int num_nodes = 2);

/// UB6: local-intensive distributed mix (2 LRO, 2 LU, 1 DRO, 1 DU per node).
WorkloadSpec MakeUB6(int requests_per_txn, int num_nodes = 2);

}  // namespace carat::workload

#endif  // CARAT_WORKLOAD_SPEC_H_
