// Global transaction identity for the distributed testbed.

#ifndef CARAT_TXN_IDS_H_
#define CARAT_TXN_IDS_H_

#include <cstdint>

#include "model/types.h"

namespace carat::txn {

/// Globally unique transaction id (also used as the lock-manager TxnId at
/// every node the transaction touches).
using GlobalTxnId = std::uint64_t;

/// What the coordinator TM knows about a transaction.
struct TxnDescriptor {
  GlobalTxnId gid = 0;
  model::TxnType user_type = model::TxnType::kLRO;  ///< LRO/LU/DROC/DUC
  int home_node = 0;
  /// Node where the transaction currently operates (there is at most one
  /// active request per transaction). Maintained by the coordinator TM at
  /// the home site; probe routing reads it there.
  int current_node = 0;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_IDS_H_
